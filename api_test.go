package npudvfs

import (
	"testing"
)

// The facade must expose a working end-to-end path without touching
// internal packages directly.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end facade test in -short mode")
	}
	l := NewLab()
	m, err := WorkloadByName("vit")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := l.BuildModels(m, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultStrategyConfig()
	cfg.GA.PopSize = 40
	cfg.GA.Generations = 80
	strat, err := GenerateStrategy(ms.Input(l.Chip), cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.MeasureFixed(m, 1800)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.MeasureStrategy(m, strat, DefaultExecutorOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoreW >= base.MeanCoreW {
		t.Errorf("facade pipeline produced no AICore saving: %g vs %g W", res.MeanCoreW, base.MeanCoreW)
	}
	if loss := res.TimeMicros/base.TimeMicros - 1; loss > 0.05 {
		t.Errorf("facade pipeline loss %.3f too large", loss)
	}
}

func TestFacadeConstructors(t *testing.T) {
	chip := DefaultChip()
	if err := chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := AscendVFCurve().Max(); got != 1800 {
		t.Errorf("curve max = %g, want 1800", got)
	}
	if len(WorkloadNames()) < 9 {
		t.Errorf("registry has %d workloads, want >= 9", len(WorkloadNames()))
	}
	if _, err := WorkloadByName("no-such-model"); err == nil {
		t.Error("unknown workload: want error")
	}
	if NewProfiler(chip, 1) == nil {
		t.Error("nil profiler")
	}
	m, err := FitPerfModel([]MHz{1000, 1800}, []Micros{100, 90})
	if err != nil {
		t.Fatal(err)
	}
	if diff := m.Micros(1000) - 100; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("2-point fit not exact at fit point: %g", m.Micros(1000))
	}
	fixed := FixedStrategy(1500)
	if fixed.FreqAt(123) != 1500 {
		t.Error("fixed strategy not constant")
	}
	g := DefaultGroundTruth(chip)
	if NewExecutor(chip, g) == nil {
		t.Error("nil executor")
	}
	th := DefaultThermal()
	if lab := NewLabFor(chip, g, th, 3); lab == nil || lab.Chip != chip {
		t.Error("NewLabFor did not wire the chip")
	}
}
