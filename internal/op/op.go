// Package op defines the operator abstraction shared by the simulated
// NPU, the profiler, the analytical models and the DVFS strategy
// generator.
//
// An operator is described by the quantities the paper's timeline
// analysis (Sect. 4.2) depends on: the number of core-computation blocks
// n, the data moved in (Ld) and out (St) per block, the core cycles per
// block, whether the kernel uses PingPong double-buffering, and whether
// Ld and St are dependent. Besides compute operators, traces also carry
// AICPU operators, communication operators and scheduler-generated idle
// slots, which are insensitive to the AICore frequency (Table 1).
package op

import "fmt"

// Class partitions trace entries by execution engine (Sect. 6.1).
type Class uint8

const (
	// Compute runs on the AICore and is affected by core frequency.
	Compute Class = iota
	// AICPU runs on the NPU's embedded CPU; AICore-frequency-insensitive.
	AICPU
	// Communication is collective/network time; frequency-insensitive.
	Communication
	// Idle is scheduler-generated gap time between operators.
	Idle
)

var classNames = [...]string{"Compute", "AICPU", "Communication", "Idle"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Scenario identifies which of the four timeline cases of Sect. 4.2 a
// compute kernel falls into.
type Scenario uint8

const (
	// PingPongFreeIndep: no double buffering, Ld and St independent
	// (Sect. 4.2.1, Eq. 5).
	PingPongFreeIndep Scenario = iota
	// PingPongFreeDep: no double buffering, St depends on Ld
	// (Sect. 4.2.2, Eq. 6).
	PingPongFreeDep
	// PingPongIndep: double buffering, Ld and St independent
	// (Sect. 4.2.3, Eq. 7).
	PingPongIndep
	// PingPongDep: double buffering, St depends on Ld
	// (Sect. 4.2.4, Eq. 8).
	PingPongDep
)

var scenarioNames = [...]string{
	"PingPongFree/IndepLdSt",
	"PingPongFree/DepLdSt",
	"PingPong/IndepLdSt",
	"PingPong/DepLdSt",
}

func (s Scenario) String() string {
	if int(s) < len(scenarioNames) {
		return scenarioNames[s]
	}
	return fmt.Sprintf("Scenario(%d)", uint8(s))
}

// PingPong reports whether the scenario uses double buffering.
func (s Scenario) PingPong() bool { return s == PingPongIndep || s == PingPongDep }

// DependentLdSt reports whether St depends on Ld in this scenario.
func (s Scenario) DependentLdSt() bool { return s == PingPongFreeDep || s == PingPongDep }

// Pipe names one hardware pipeline whose utilization the profiler
// reports. Cube, Vector, Scalar and MTE1 are core-domain pipelines;
// MTE2 (move-in, Ld) and MTE3 (move-out, St) cross into the uncore
// domain (Sect. 2.2, 6.1).
type Pipe uint8

const (
	Cube Pipe = iota
	Vector
	Scalar
	MTE1
	MTE2 // Ld: uncore -> core transfers
	MTE3 // St: core -> uncore transfers
	NumPipes
)

var pipeNames = [...]string{"cube", "vector", "scalar", "mte1", "mte2", "mte3"}

func (p Pipe) String() string {
	if int(p) < len(pipeNames) {
		return pipeNames[p]
	}
	return fmt.Sprintf("Pipe(%d)", uint8(p))
}

// CoreDomain reports whether the pipeline belongs to the core frequency
// domain. MTE2/MTE3 transfer rates depend on both domains and are
// treated as uncore pipelines for bottleneck classification.
func (p Pipe) CoreDomain() bool { return p <= MTE1 }

// Spec describes one operator instance in a trace. For Compute
// operators the timeline fields drive the cycle model (Eqs. 5-8); for
// the other classes only FixedTime matters.
type Spec struct {
	// Name identifies the operator type, e.g. "MatMul", "Gelu".
	Name string
	// Shape distinguishes instances of the same type with different
	// input shapes; the paper fits separate models per (type, shape)
	// because power and cycle behaviour differ (Sect. 5.4.1).
	Shape string
	// Class selects the execution engine.
	Class Class
	// Scenario selects the timeline case for Compute operators.
	Scenario Scenario
	// Blocks is n, the number of core-computation blocks.
	Blocks int
	// LoadBytes is the Ld (move-in) volume per block, in bytes.
	LoadBytes float64
	// StoreBytes is the St (move-out) volume per block, in bytes.
	StoreBytes float64
	// CoreCycles is the core-domain computation cycles per block.
	CoreCycles float64
	// CorePipe is the pipeline performing the core computation.
	CorePipe Pipe
	// L2Hit is the fraction of Ld/St traffic served by the L2 cache
	// (0..1). The paper notes that BW_uncore is influenced by the L2
	// bandwidth, HBM bandwidth and L2 hit rate (Sect. 4.1); the hit
	// rate therefore moves the saturation frequency f_s per operator.
	L2Hit float64
	// PrePostTime is frequency-independent pre- and post-processing
	// time in microseconds (dispatch, host-side setup). Dominant for
	// the short operators the paper classifies as no-pipeline bound.
	PrePostTime float64
	// FixedTime is the duration in microseconds of non-Compute
	// entries (AICPU, Communication, Idle).
	FixedTime float64
}

// Key returns the model identity for the operator: operators of the
// same type but different input shapes need individual models.
func (s *Spec) Key() string {
	if s.Shape == "" {
		return s.Name
	}
	return s.Name + "/" + s.Shape
}

// FrequencyScaled reports whether AICore frequency affects this entry's
// duration at all.
func (s *Spec) FrequencyScaled() bool { return s.Class == Compute }

// Validate checks internal consistency of a Spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("op: empty operator name")
	}
	switch s.Class {
	case Compute:
		if s.Blocks <= 0 {
			return fmt.Errorf("op %s: Blocks = %d, must be positive", s.Key(), s.Blocks)
		}
		if s.LoadBytes < 0 || s.StoreBytes < 0 || s.CoreCycles < 0 {
			return fmt.Errorf("op %s: negative timeline quantity", s.Key())
		}
		//lint:allow floateq exact sentinel: validation rejects all-zero work, not near-zero work
		if s.LoadBytes == 0 && s.StoreBytes == 0 && s.CoreCycles == 0 {
			return fmt.Errorf("op %s: compute operator with no work", s.Key())
		}
		if s.CorePipe > MTE1 {
			return fmt.Errorf("op %s: core pipe %v is not in the core domain", s.Key(), s.CorePipe)
		}
		if s.PrePostTime < 0 {
			return fmt.Errorf("op %s: negative PrePostTime", s.Key())
		}
		if s.L2Hit < 0 || s.L2Hit > 1 {
			return fmt.Errorf("op %s: L2Hit = %g outside [0, 1]", s.Key(), s.L2Hit)
		}
	case AICPU, Communication, Idle:
		if s.FixedTime <= 0 {
			return fmt.Errorf("op %s: %v entry needs positive FixedTime", s.Key(), s.Class)
		}
	default:
		return fmt.Errorf("op %s: unknown class %d", s.Key(), s.Class)
	}
	return nil
}
