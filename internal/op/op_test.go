package op

import (
	"strings"
	"testing"
)

func validCompute() Spec {
	return Spec{
		Name:       "MatMul",
		Shape:      "1024x1024",
		Class:      Compute,
		Scenario:   PingPongIndep,
		Blocks:     8,
		LoadBytes:  1 << 20,
		StoreBytes: 1 << 18,
		CoreCycles: 50000,
		CorePipe:   Cube,
	}
}

func TestScenarioFlags(t *testing.T) {
	cases := []struct {
		s        Scenario
		pingPong bool
		dep      bool
	}{
		{PingPongFreeIndep, false, false},
		{PingPongFreeDep, false, true},
		{PingPongIndep, true, false},
		{PingPongDep, true, true},
	}
	for _, tc := range cases {
		if tc.s.PingPong() != tc.pingPong {
			t.Errorf("%v.PingPong() = %v, want %v", tc.s, tc.s.PingPong(), tc.pingPong)
		}
		if tc.s.DependentLdSt() != tc.dep {
			t.Errorf("%v.DependentLdSt() = %v, want %v", tc.s, tc.s.DependentLdSt(), tc.dep)
		}
	}
}

func TestPipeDomains(t *testing.T) {
	core := []Pipe{Cube, Vector, Scalar, MTE1}
	uncore := []Pipe{MTE2, MTE3}
	for _, p := range core {
		if !p.CoreDomain() {
			t.Errorf("%v.CoreDomain() = false, want true", p)
		}
	}
	for _, p := range uncore {
		if p.CoreDomain() {
			t.Errorf("%v.CoreDomain() = true, want false", p)
		}
	}
}

func TestKey(t *testing.T) {
	s := validCompute()
	if got := s.Key(); got != "MatMul/1024x1024" {
		t.Errorf("Key() = %q, want MatMul/1024x1024", got)
	}
	s.Shape = ""
	if got := s.Key(); got != "MatMul" {
		t.Errorf("Key() without shape = %q, want MatMul", got)
	}
}

func TestValidateAcceptsGoodSpecs(t *testing.T) {
	good := []Spec{
		validCompute(),
		{Name: "AllReduce", Class: Communication, FixedTime: 120},
		{Name: "TopK", Class: AICPU, FixedTime: 55},
		{Name: "idle", Class: Idle, FixedTime: 10},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", s.Key(), err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		substr string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty"},
		{"zero blocks", func(s *Spec) { s.Blocks = 0 }, "Blocks"},
		{"negative load", func(s *Spec) { s.LoadBytes = -1 }, "negative"},
		{"no work", func(s *Spec) { s.LoadBytes, s.StoreBytes, s.CoreCycles = 0, 0, 0 }, "no work"},
		{"uncore core pipe", func(s *Spec) { s.CorePipe = MTE2 }, "core domain"},
		{"negative prepost", func(s *Spec) { s.PrePostTime = -3 }, "PrePostTime"},
	}
	for _, tc := range cases {
		s := validCompute()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
	fixed := Spec{Name: "AllReduce", Class: Communication, FixedTime: 0}
	if err := fixed.Validate(); err == nil {
		t.Error("Communication with zero FixedTime: Validate() = nil, want error")
	}
}

func TestFrequencyScaled(t *testing.T) {
	if s := validCompute(); !s.FrequencyScaled() {
		t.Error("compute op must be frequency scaled")
	}
	for _, c := range []Class{AICPU, Communication, Idle} {
		s := Spec{Name: "x", Class: c, FixedTime: 1}
		if s.FrequencyScaled() {
			t.Errorf("%v op must not be frequency scaled", c)
		}
	}
}

func TestStringNames(t *testing.T) {
	if Cube.String() != "cube" || MTE3.String() != "mte3" {
		t.Errorf("pipe names wrong: %v %v", Cube, MTE3)
	}
	if Compute.String() != "Compute" || Idle.String() != "Idle" {
		t.Errorf("class names wrong: %v %v", Compute, Idle)
	}
	if !strings.Contains(PingPongDep.String(), "PingPong") {
		t.Errorf("scenario name wrong: %v", PingPongDep)
	}
}
