// Package evaltab implements the flat evaluation table behind the
// model-based policy evaluation hot path (core and dualdvfs): the
// per-stage, per-allele quantities a GA individual is scored from,
// stored as one stride-indexed []float64 block in structure-of-arrays
// order so scoring one gene touches one contiguous quadruple instead
// of four pointer-chased [][]float64 rows.
//
// The table also carries the Eq. 17 scoring parameters and solves the
// Sect. 5.4 temperature fixed point in closed form: over a fixed
// assignment the predicted SoC power is affine in ΔT
// (P = soc0 + γ·ΔT·v̄), so ΔT = k·P(ΔT) has the exact solution
// k·soc0/(1-k·γ·v̄) — see powermodel.SolveDeltaTLinear.
//
// Scoring is exposed both whole-vector (InitSums + ScoreSums, which is
// exactly what Score does) and incrementally (UpdateSums applies a
// one-gene delta in O(1)), which is what lets the GA engine score a
// crossover/mutation child in O(changed genes). The accumulation-order
// invariant (DESIGN.md §10): InitSums walks genes in ascending order
// with one independent accumulator per quantity, so a full re-walk of
// the same vector is bit-identical no matter who calls it; delta
// updates are allowed to differ from a re-walk only by floating-point
// reassociation.
//
// This package works in raw float64 throughout — it is the documented
// unit boundary (like npu and powersim, it is not in dvfslint's
// unit-typed set); the typed packages wrap Prediction into their
// units-typed forms at the API edge.
package evaltab

import (
	"npudvfs/internal/powermodel"
	"npudvfs/internal/units"
)

// Quad is the number of quantities stored per (stage, allele) cell and
// accumulated per assignment.
const Quad = 4

// Indices of the per-assignment accumulators (and of the quantities
// within a table cell).
const (
	SumTime  = iota // predicted duration, µs
	SumSocE         // SoC energy excluding the temperature term, W·µs
	SumCoreE        // AICore energy excluding the temperature term, W·µs
	SumVT           // ∫V dt for the temperature term, V·µs
)

// Prediction is the raw model prediction of an assignment.
type Prediction struct {
	TimeMicros float64
	SoCWatts   float64
	CoreWatts  float64
	DeltaTC    float64
}

// Table holds the precomputed per-stage, per-allele quadruples and the
// scoring parameters. Cell (s, g) lives at vals[(s*alleles+g)*Quad :
// ...+Quad] in (time, socE, coreE, vt) order.
type Table struct {
	stages  int
	alleles int
	stride  int // alleles*Quad: width of one stage row
	vals    []float64

	// K is the equilibrium temperature rise per SoC watt (Eq. 15);
	// GammaSoC/GammaCore the leakage temperature coefficients
	// (dP/dΔT per volt). TemperatureAware mirrors the power model's
	// ablation switch: when false, ΔT is pinned to zero.
	K                float64
	GammaSoC         float64
	GammaCore        float64
	TemperatureAware bool

	// PerBaseline is 1/µs at the all-baseline assignment and PerLB the
	// Eq. 17 compliance bound; the problem builder sets both after the
	// baseline prediction.
	PerBaseline float64
	PerLB       float64
}

// New returns a zeroed table for stages×alleles cells.
func New(stages, alleles int) *Table {
	return &Table{
		stages:  stages,
		alleles: alleles,
		stride:  alleles * Quad,
		vals:    make([]float64, stages*alleles*Quad),
	}
}

// Stages returns the number of stages (genes).
func (t *Table) Stages() int { return t.stages }

// Alleles returns the number of alleles per gene.
func (t *Table) Alleles() int { return t.alleles }

// Add accumulates one operator's contribution into the (stage, allele)
// cell: predicted duration, SoC and AICore energies excluding the
// temperature term, and the ∫V dt increment.
func (t *Table) Add(stage, allele int, dur, socE, coreE, vt float64) {
	c := t.vals[stage*t.stride+allele*Quad:]
	c[SumTime] += dur
	c[SumSocE] += socE
	c[SumCoreE] += coreE
	c[SumVT] += vt
}

// InitSums fills sums (length Quad) with the assignment's accumulators
// by a full walk in ascending gene order — the canonical accumulation
// order every re-walk must reproduce bit-identically.
func (t *Table) InitSums(ind []int, sums []float64) {
	var dur, socE, coreE, vt float64
	for s, g := range ind {
		c := t.vals[s*t.stride+g*Quad:]
		dur += c[SumTime]
		socE += c[SumSocE]
		coreE += c[SumCoreE]
		vt += c[SumVT]
	}
	sums[SumTime] = dur
	sums[SumSocE] = socE
	sums[SumCoreE] = coreE
	sums[SumVT] = vt
}

// UpdateSums applies the delta of changing one gene from oldAllele to
// newAllele. The result may differ from a full re-walk by
// floating-point reassociation only (callers bound the drift by
// periodically re-walking; see the ga engine).
func (t *Table) UpdateSums(sums []float64, gene, oldAllele, newAllele int) {
	row := gene * t.stride
	o := t.vals[row+oldAllele*Quad:]
	n := t.vals[row+newAllele*Quad:]
	sums[SumTime] += n[SumTime] - o[SumTime]
	sums[SumSocE] += n[SumSocE] - o[SumSocE]
	sums[SumCoreE] += n[SumCoreE] - o[SumCoreE]
	sums[SumVT] += n[SumVT] - o[SumVT]
}

// PredictSums computes iteration time, mean powers and the closed-form
// self-consistent temperature rise from accumulated sums.
func (t *Table) PredictSums(sums []float64) Prediction {
	dur := sums[SumTime]
	if dur <= 0 {
		return Prediction{}
	}
	soc0 := sums[SumSocE] / dur // mean SoC power before the temperature term
	vMean := sums[SumVT] / dur  // time-weighted mean voltage
	deltaT := 0.0
	if t.TemperatureAware {
		deltaT = float64(powermodel.SolveDeltaTLinear(
			units.CelsiusPerWatt(t.K), units.Watt(soc0), t.GammaSoC*vMean))
	}
	return Prediction{
		TimeMicros: dur,
		SoCWatts:   soc0 + t.GammaSoC*deltaT*vMean,
		CoreWatts:  sums[SumCoreE]/dur + t.GammaCore*deltaT*vMean,
		DeltaTC:    deltaT,
	}
}

// Predict computes the prediction for an assignment from scratch.
//
//lint:hotpath
func (t *Table) Predict(ind []int) Prediction {
	var sums [Quad]float64
	t.InitSums(ind, sums[:])
	return t.PredictSums(sums[:])
}

// batchTile is the number of candidates a batch walk accumulates at
// once. The tile's accumulator block (batchTile×Quad float64, 2 KB)
// lives on the stack and stays L1-resident across the whole
// gene-major sweep, so each table row loaded from memory is reused
// batchTile times instead of once — the entire point of the batch
// entry points below.
const batchTile = 64

// InitSumsBatch fills count partial-sum quadruples (candidate c's
// sums at sums[c*Quad : (c+1)*Quad]) from full walks of count
// candidates stored back to back in genes (candidate c at
// genes[c*stages : (c+1)*stages]). The walk is gene-major within a
// tile: for each stage, the stage's row of the SoA table is applied
// to every candidate in the tile before moving on, turning the
// per-candidate pointer chase into contiguous passes over the table.
// Each candidate still accumulates in ascending gene order with one
// independent accumulator per quantity, so every quadruple is
// bit-identical to a per-candidate InitSums walk (ga.BatchPartialScorer
// contract).
//
//lint:hotpath
func (t *Table) InitSumsBatch(genes []int, count int, sums []float64) {
	for base := 0; base < count; base += batchTile {
		m := count - base
		if m > batchTile {
			m = batchTile
		}
		var acc [batchTile * Quad]float64
		t.accumTile(genes[base*t.stages:], m, &acc)
		copy(sums[base*Quad:(base+m)*Quad], acc[:m*Quad])
	}
}

// ScoreBatch writes the Eq. 17 fitness of count candidates (stored
// back to back in genes, as in InitSumsBatch) into scores[:count].
// Each score is bit-identical to Score of the same vector
// (ga.BatchScorer contract): the tile accumulation reproduces
// InitSums exactly and the mapping is the same ScoreSums.
//
//lint:hotpath
func (t *Table) ScoreBatch(genes []int, count int, scores []float64) {
	for base := 0; base < count; base += batchTile {
		m := count - base
		if m > batchTile {
			m = batchTile
		}
		var acc [batchTile * Quad]float64
		t.accumTile(genes[base*t.stages:], m, &acc)
		for c := 0; c < m; c++ {
			scores[base+c] = t.ScoreSums(acc[c*Quad : (c+1)*Quad])
		}
	}
}

// accumTile accumulates the quadruples of m candidates (m ≤
// batchTile) into acc, sweeping gene-major: stage s's table row is
// reused across all m candidates while it is hot.
func (t *Table) accumTile(genes []int, m int, acc *[batchTile * Quad]float64) {
	stages := t.stages
	for s := 0; s < stages; s++ {
		row := t.vals[s*t.stride:]
		for c := 0; c < m; c++ {
			cell := row[genes[c*stages+s]*Quad:]
			a := acc[c*Quad : c*Quad+Quad]
			a[SumTime] += cell[SumTime]
			a[SumSocE] += cell[SumSocE]
			a[SumCoreE] += cell[SumCoreE]
			a[SumVT] += cell[SumVT]
		}
	}
}

// ScoreSums maps accumulated sums to the Eq. 17 fitness.
func (t *Table) ScoreSums(sums []float64) float64 {
	pred := t.PredictSums(sums)
	if pred.TimeMicros <= 0 || pred.SoCWatts <= 0 {
		return 0
	}
	per := 1 / pred.TimeMicros
	score := t.PerBaseline * t.PerBaseline / pred.SoCWatts
	if per >= t.PerLB {
		return 2 * score
	}
	rel := per / t.PerLB
	return score * rel * rel
}

// Score returns the Eq. 17 fitness of an assignment. It is exactly
// InitSums followed by ScoreSums, so whole-vector and sum-based
// scoring of the same gene vector are bit-identical.
//
//lint:hotpath
func (t *Table) Score(ind []int) float64 {
	var sums [Quad]float64
	t.InitSums(ind, sums[:])
	return t.ScoreSums(sums[:])
}
