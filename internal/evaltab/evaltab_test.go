package evaltab

import (
	"math"
	"math/rand"
	"testing"
)

// fill populates a table with deterministic pseudo-random operator
// contributions: several Add calls per cell, as the problem builders do.
func fill(t *Table, rng *rand.Rand) {
	for s := 0; s < t.Stages(); s++ {
		for g := 0; g < t.Alleles(); g++ {
			for op := 0; op < 3; op++ {
				dur := 1 + 50*rng.Float64()
				soc := 20 + 80*rng.Float64()
				core := 10 + 40*rng.Float64()
				v := 0.7 + 0.3*rng.Float64()
				t.Add(s, g, dur, soc*dur, core*dur, v*dur)
			}
		}
	}
}

func randInd(n, alleles int, rng *rand.Rand) []int {
	ind := make([]int, n)
	for i := range ind {
		ind[i] = rng.Intn(alleles)
	}
	return ind
}

func TestScoreIsInitSumsPlusScoreSums(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New(12, 7)
	fill(tab, rng)
	tab.K = 0.09
	tab.GammaSoC = 0.4
	tab.GammaCore = 0.15
	tab.TemperatureAware = true
	tab.PerBaseline = 1.0 / 300
	tab.PerLB = 0.95 / 300

	for trial := 0; trial < 200; trial++ {
		ind := randInd(12, 7, rng)
		sums := make([]float64, Quad)
		tab.InitSums(ind, sums)
		if got, want := tab.ScoreSums(sums), tab.Score(ind); got != want {
			t.Fatalf("trial %d: ScoreSums∘InitSums = %g, Score = %g (must be bit-identical)", trial, got, want)
		}
	}
}

func TestUpdateSumsTracksFullWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := New(20, 9)
	fill(tab, rng)
	tab.K = 0.11
	tab.GammaSoC = 0.33
	tab.GammaCore = 0.12
	tab.TemperatureAware = true
	tab.PerBaseline = 1.0 / 500
	tab.PerLB = 0.9 / 500

	ind := randInd(20, 9, rng)
	sums := make([]float64, Quad)
	tab.InitSums(ind, sums)

	// Chain 5000 random single-gene deltas; the drifting sums must stay
	// within 1e-9 relative of a fresh full walk at every step.
	fresh := make([]float64, Quad)
	for step := 0; step < 5000; step++ {
		gene := rng.Intn(20)
		next := rng.Intn(9)
		tab.UpdateSums(sums, gene, ind[gene], next)
		ind[gene] = next

		tab.InitSums(ind, fresh)
		for q := 0; q < Quad; q++ {
			if rel := math.Abs(sums[q]-fresh[q]) / math.Max(math.Abs(fresh[q]), 1); rel > 1e-9 {
				t.Fatalf("step %d sum[%d]: delta-tracked %g vs full walk %g (rel %g)", step, q, sums[q], fresh[q], rel)
			}
		}
		if ds, fs := tab.ScoreSums(sums), tab.ScoreSums(fresh); math.Abs(ds-fs)/math.Max(math.Abs(fs), 1e-300) > 1e-9 {
			t.Fatalf("step %d: delta score %g vs full score %g", step, ds, fs)
		}
	}
}

func TestPredictMatchesManualComputation(t *testing.T) {
	tab := New(2, 2)
	// One operator per cell, hand-picked numbers.
	tab.Add(0, 0, 10, 10*30, 10*12, 10*0.8)
	tab.Add(0, 1, 8, 8*40, 8*15, 8*0.9)
	tab.Add(1, 0, 20, 20*25, 20*10, 20*0.8)
	tab.Add(1, 1, 15, 15*35, 15*14, 15*0.9)
	tab.K = 0.1
	tab.GammaSoC = 0.5
	tab.GammaCore = 0.2
	tab.TemperatureAware = true

	pred := tab.Predict([]int{1, 0})
	dur := 8.0 + 20.0
	soc0 := (8*40.0 + 20*25.0) / dur
	core0 := (8*15.0 + 20*10.0) / dur
	vMean := (8*0.9 + 20*0.8) / dur
	// Closed-form fixpoint of dt = K·(soc0 + GammaSoC·dt·vMean).
	dt := tab.K * soc0 / (1 - tab.K*tab.GammaSoC*vMean)

	if math.Abs(pred.TimeMicros-dur) > 1e-12 {
		t.Errorf("TimeMicros = %g, want %g", pred.TimeMicros, dur)
	}
	if math.Abs(pred.DeltaTC-dt)/dt > 1e-9 {
		t.Errorf("DeltaTC = %g, want %g", pred.DeltaTC, dt)
	}
	if want := soc0 + tab.GammaSoC*dt*vMean; math.Abs(pred.SoCWatts-want)/want > 1e-9 {
		t.Errorf("SoCWatts = %g, want %g", pred.SoCWatts, want)
	}
	if want := core0 + tab.GammaCore*dt*vMean; math.Abs(pred.CoreWatts-want)/want > 1e-9 {
		t.Errorf("CoreWatts = %g, want %g", pred.CoreWatts, want)
	}
}

func TestPredictTemperatureUnawarePinsDeltaT(t *testing.T) {
	tab := New(1, 1)
	tab.Add(0, 0, 10, 10*30, 10*12, 10*0.8)
	tab.K = 0.1
	tab.GammaSoC = 0.5
	tab.GammaCore = 0.2
	tab.TemperatureAware = false

	pred := tab.Predict([]int{0})
	if pred.DeltaTC != 0 {
		t.Errorf("DeltaTC = %g, want 0 when temperature-unaware", pred.DeltaTC)
	}
	if pred.SoCWatts != 30 || pred.CoreWatts != 12 {
		t.Errorf("powers = %g/%g, want the raw means 30/12", pred.SoCWatts, pred.CoreWatts)
	}
}

func TestZeroDurationEdges(t *testing.T) {
	tab := New(2, 2)
	tab.PerBaseline = 1
	tab.PerLB = 1
	// All cells empty: duration 0 everywhere.
	if pred := tab.Predict([]int{0, 1}); pred != (Prediction{}) {
		t.Errorf("empty table Predict = %+v, want zero value", pred)
	}
	if s := tab.Score([]int{0, 1}); s != 0 {
		t.Errorf("empty table Score = %g, want 0", s)
	}
}

func TestScoreEq17Branches(t *testing.T) {
	tab := New(1, 2)
	tab.Add(0, 0, 100, 100*50, 100*20, 100*0.8) // slow allele
	tab.Add(0, 1, 80, 80*60, 80*25, 80*0.9)     // fast allele
	tab.PerBaseline = 1.0 / 80
	tab.PerLB = 1.0 / 90 // compliance bound: at most 90 µs

	// Fast allele complies: score = 2·Per_base²/Power.
	fast := tab.Predict([]int{1})
	if want := 2 * tab.PerBaseline * tab.PerBaseline / fast.SoCWatts; tab.Score([]int{1}) != want {
		t.Errorf("compliant score = %g, want %g", tab.Score([]int{1}), want)
	}
	// Slow allele violates: score = (per/perLB)²·Per_base²/Power.
	slow := tab.Predict([]int{0})
	rel := (1 / slow.TimeMicros) / tab.PerLB
	if want := rel * rel * tab.PerBaseline * tab.PerBaseline / slow.SoCWatts; tab.Score([]int{0}) != want {
		t.Errorf("penalized score = %g, want %g", tab.Score([]int{0}), want)
	}
}

// TestBatchMatchesScalarBitIdentical pins the ga.BatchScorer /
// ga.BatchPartialScorer contracts: the gene-major tiled sweep must
// reproduce the scalar InitSums walk and Score bit for bit, for every
// candidate, across tile boundaries (the cohort spans two full tiles
// plus a ragged tail) and at the empty and single-candidate edges.
func TestBatchMatchesScalarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const stages, alleles = 17, 6
	tab := New(stages, alleles)
	fill(tab, rng)
	tab.K = 0.09
	tab.GammaSoC = 0.4
	tab.GammaCore = 0.15
	tab.TemperatureAware = true
	tab.PerBaseline = 1.0 / 300
	tab.PerLB = 0.95 / 300

	for _, count := range []int{0, 1, 63, 64, 65, 150} {
		genes := make([]int, count*stages)
		for i := range genes {
			genes[i] = rng.Intn(alleles)
		}
		scores := make([]float64, count)
		sums := make([]float64, count*Quad)
		tab.ScoreBatch(genes, count, scores)
		tab.InitSumsBatch(genes, count, sums)
		one := make([]float64, Quad)
		for c := 0; c < count; c++ {
			ind := genes[c*stages : (c+1)*stages]
			if got, want := scores[c], tab.Score(ind); got != want {
				t.Fatalf("count %d candidate %d: ScoreBatch = %g, Score = %g (must be bit-identical)", count, c, got, want)
			}
			tab.InitSums(ind, one)
			for q := 0; q < Quad; q++ {
				if got, want := sums[c*Quad+q], one[q]; got != want {
					t.Fatalf("count %d candidate %d sum %d: InitSumsBatch = %g, InitSums = %g", count, c, q, got, want)
				}
			}
		}
	}
}
