package units

import "testing"

func TestDurationConversions(t *testing.T) {
	if got := Millis(5).Micros(); got != 5000 {
		t.Fatalf("Millis(5).Micros() = %v, want 5000", got)
	}
	if got := Micros(2500).Millis(); got != 2.5 {
		t.Fatalf("Micros(2500).Millis() = %v, want 2.5", got)
	}
	// Round-trip is exact for values without sub-ns fractions.
	if got := Micros(123456).Millis().Micros(); got != 123456 {
		t.Fatalf("round trip = %v, want 123456", got)
	}
}

func TestFrequencyHelpers(t *testing.T) {
	if got := MHz(1500).Cycles(Micros(2)); got != 3000 {
		t.Fatalf("Cycles = %v, want 3000", got)
	}
	if got := MHz(1500).GHz(); got != 1.5 {
		t.Fatalf("GHz = %v, want 1.5", got)
	}
}

func TestEnergyHelpers(t *testing.T) {
	// 4 W over 500 µs = 2000 µJ = 2 mJ.
	e := Energy(Watt(4), Micros(500))
	if e != 2 {
		t.Fatalf("Energy = %v, want 2", e)
	}
	if got := e.Over(Micros(500)); got != 4 {
		t.Fatalf("Over = %v, want 4", got)
	}
}

func TestCoefficientHelpers(t *testing.T) {
	if got := Watt(30).Over(MHz(1500)); got != 0.02 {
		t.Fatalf("Watt.Over = %v, want 0.02", got)
	}
	if got := CelsiusPerWatt(0.5).Times(Watt(20)); got != 10 {
		t.Fatalf("Times = %v, want 10", got)
	}
}

func TestFloats(t *testing.T) {
	if Floats[MHz](nil) != nil {
		t.Fatalf("Floats(nil) should be nil")
	}
	fs := Floats([]MHz{1000, 1800})
	if len(fs) != 2 || fs[0] != 1000 || fs[1] != 1800 {
		t.Fatalf("Floats = %v", fs)
	}
}
