// Package units defines the typed physical quantities used across the
// model stack. Every quantity the paper's equations manipulate — core
// frequency (MHz), operator time (µs), rail voltage (V), domain power
// (W), die temperature (°C), energy (mJ) — gets a defined type, so a
// GHz/MHz slip or an Eq. 16 `P·t` energy term fed a frequency is a
// compile error at package boundaries instead of a silently corrupted
// `T(f) = a·f + c/f` fit (Func. 2, Sect. 4) or `P = αfV² + βfV² +
// γΔT·V + θV` prediction (Eq. 11, Sect. 5).
//
// Defined float64 types convert freely to float64 inside expressions,
// so the type system alone cannot catch cross-unit arithmetic once a
// value has been laundered through float64. The dvfslint `unitcheck`
// analyzer closes that gap: it tracks unit provenance through float64
// conversions and flags additive arithmetic that mixes units, raw
// float64 signatures with physical-quantity names in the typed
// packages, and bare frequency literals outside the V-F table package
// (internal/vf).
//
// Conventions (unchanged from the seed): a frequency in MHz is
// numerically cycles per microsecond, so Cycles = f·t needs no
// conversion constants; energy in W·µs is a microjoule, and the
// Millijoule type stores the /1000 of that.
package units

// MHz is a core-domain frequency in megahertz. The DVFS window of the
// reference platform is 1000-1800 MHz (Fig. 9); frequency constants
// belong in internal/vf, not scattered through the models (enforced by
// unitcheck).
type MHz float64

// Micros is a duration in microseconds, the timeline unit of the
// performance model (Sect. 4).
type Micros float64

// Millis is a duration in milliseconds, used by wire schemas and
// latency reporting (the FAI is quoted in ms in the paper).
type Millis float64

// Volt is a rail voltage in volts, selected by the firmware V-F table.
type Volt float64

// Watt is a power in watts (AICore or SoC domain).
type Watt float64

// Celsius is a die temperature in °C — either absolute (T of Eq. 15)
// or a rise over ambient (the ΔT of Eq. 10; °C and ΔT share a scale,
// only the zero point differs).
type Celsius float64

// Millijoule is an energy in millijoules, the `P·t` integral of
// Eq. 16.
type Millijoule float64

// CelsiusPerWatt is the thermal resistance k of Eq. 15: equilibrium
// temperature rise per watt of SoC power.
type CelsiusPerWatt float64

// WattPerMHz is a per-frequency power coefficient, the slope form the
// idle-power fit of Eq. 12 works in.
type WattPerMHz float64

// Micros converts a millisecond duration to microseconds.
func (m Millis) Micros() Micros { return Micros(float64(m) * 1000) }

// Millis converts a microsecond duration to milliseconds.
func (t Micros) Millis() Millis { return Millis(float64(t) / 1000) }

// Cycles returns the core cycles elapsed over t at frequency f. MHz is
// numerically cycles/µs, so this is a bare product — but routing it
// through a named helper keeps the dimension change auditable.
func (f MHz) Cycles(t Micros) float64 { return float64(f) * float64(t) }

// GHz returns the frequency in gigahertz (the exponent scale of
// Func. 3).
func (f MHz) GHz() float64 { return float64(f) / 1000 }

// Energy integrates power over a duration: W·µs = µJ, stored as mJ.
func Energy(p Watt, t Micros) Millijoule {
	return Millijoule(float64(p) * float64(t) / 1000)
}

// Over returns the mean power of an energy spread over a duration, the
// inverse of Energy.
func (e Millijoule) Over(t Micros) Watt {
	return Watt(float64(e) * 1000 / float64(t))
}

// Over returns the per-frequency coefficient of a power at a
// frequency.
func (p Watt) Over(f MHz) WattPerMHz { return WattPerMHz(float64(p) / float64(f)) }

// Times scales the thermal resistance by a SoC power, yielding the
// equilibrium temperature rise of Eq. 15.
func (k CelsiusPerWatt) Times(p Watt) Celsius {
	return Celsius(float64(k) * float64(p))
}

// Floats copies a slice of any unit type to raw float64, the boundary
// crossing into the unitless numeric kernels of internal/stats.
func Floats[T ~float64](xs []T) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
