// Package executor simulates executing a workload iteration under a
// DVFS strategy with the SetFreq mechanism of Sect. 7.1 (Fig. 14).
//
// SetFreq operators are dispatched on a dedicated stream and take a
// fixed actuation latency (1 ms on the Ascend NPU, ~15 ms on a V100)
// to take effect. To make a frequency change land exactly at its
// intended operator, the executor subtracts the latency from the
// switch time and picks the last operator starting before that point
// as the trigger: the SetFreq is dispatched when the trigger operator
// starts, and Event Record/Wait synchronization optionally guarantees
// the change completes before the target operator begins.
//
// The executor is the "hardware run" of the evaluation: it integrates
// the ground-truth power model and thermal state over the actual
// execution, so measured results can be compared against model
// predictions and against the paper's trends.
package executor

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"npudvfs/internal/core"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
)

// Options controls actuation behaviour.
type Options struct {
	// SetFreqLatencyMicros is the actuation latency of the SetFreq
	// operator (1000 µs on the Ascend platform).
	SetFreqLatencyMicros float64
	// ExtraDelayMicros postpones SetFreq deployment, simulating a
	// slower platform: the Fig. 18 V100 comparison adds 14 ms.
	ExtraDelayMicros float64
	// DelayJitterMicros adds a uniform random extra delay in
	// [0, DelayJitterMicros) per SetFreq, modeling the unstable
	// actuation of platforms without a fast frequency-control path
	// (the Ascend SetFreq has a "stable activation time", Sect. 7.1 —
	// slower platforms do not). Jitter smears switch landings across
	// stage boundaries, eroding the frequency/operator alignment that
	// fine-grained DVFS relies on.
	DelayJitterMicros float64
	// JitterSeed drives the jitter sequence deterministically.
	JitterSeed int64
	// Sync enforces the Event Wait: the operator at a switch point
	// stalls until the frequency change completes. The production
	// configuration uses it; the delayed-deployment comparison does
	// not (the change simply lands late).
	Sync bool
}

// DefaultOptions returns the production Ascend configuration.
func DefaultOptions() Options {
	return Options{SetFreqLatencyMicros: 1000, Sync: true}
}

// Result is the measured outcome of one executed iteration.
type Result struct {
	// TimeMicros is the iteration wall time.
	TimeMicros float64
	// MeanSoCW and MeanCoreW are time-weighted mean powers.
	MeanSoCW, MeanCoreW float64
	// EnergySoCJ and EnergyCoreJ are the integrated energies in
	// joules.
	EnergySoCJ, EnergyCoreJ float64
	// Switches counts frequency changes that took effect.
	Switches int
	// StallMicros is time spent waiting on Event Wait
	// synchronization.
	StallMicros float64
	// EndTempC is the die temperature at iteration end.
	EndTempC float64
}

// pendingSwitch is a scheduled frequency change.
type pendingSwitch struct {
	triggerOp int // dispatch SetFreq while this op runs
	targetOp  int // the op that must see the new frequency
	// offsetMicros is where within the trigger operator the dispatch
	// happens, derived from the baseline timeline: the paper's
	// executor subtracts the SetFreq latency from the switch time, so
	// the dispatch lands latency-early rather than at an operator
	// boundary (Fig. 14).
	offsetMicros float64
	freqMHz      float64
	uncoreScale  float64 // 0 = leave at nominal
	effectTime   float64 // filled at runtime: dispatch + latency
	dispatched   bool
	applied      bool
}

// Executor runs traces under strategies on the simulated chip.
//
// Concurrency contract: one Executor may be shared by any number of
// goroutines calling Run/RunStable/planSwitches concurrently, provided
// Chip and Ground are not reassigned after New and each goroutine
// supplies its own *thermal.State (thermal evolution is per-run
// mutable state). The GA worker pool relies on this: every Score call
// of a hardware-in-the-loop problem drives the same Executor. The only
// internal mutable state is the lazily populated scaled-view cache,
// which is guarded by mu.
type Executor struct {
	Chip   *npu.Chip
	Ground *powersim.Ground

	// mu guards scaled. Chip and Ground are treated as immutable after
	// construction and read without locking.
	mu sync.RWMutex
	// scaled caches per-uncore-scale views of the chip and ground
	// truth for the two-domain extension.
	scaled map[float64]scaledView
}

type scaledView struct {
	chip   *npu.Chip
	ground *powersim.Ground
}

// New returns an executor for the chip with its ground-truth power.
func New(chip *npu.Chip, ground *powersim.Ground) *Executor {
	return &Executor{Chip: chip, Ground: ground}
}

// viewAt returns the chip and ground truth adjusted for an uncore
// scale (cached; scale 1 or 0 is the stock view). Safe for concurrent
// use: the common paths (stock view, cache hit) take only a read lock,
// and on a racing miss both builders compute the same deterministic
// view, so whichever wins the write lock publishes it first.
func (e *Executor) viewAt(scale float64) scaledView {
	//lint:allow floateq exact sentinels: 0 = unset, 1 = stock; the scaled-view cache below is keyed by the exact scale value
	if scale == 0 || scale == 1 {
		return scaledView{chip: e.Chip, ground: e.Ground}
	}
	e.mu.RLock()
	v, ok := e.scaled[scale]
	e.mu.RUnlock()
	if ok {
		return v
	}
	chip := e.Chip.WithUncoreScale(scale)
	g := *e.Ground
	g.Chip = chip
	g.UncoreScale = scale
	v = scaledView{chip: chip, ground: &g}
	e.mu.Lock()
	if cached, ok := e.scaled[scale]; ok {
		v = cached
	} else {
		if e.scaled == nil {
			//lint:allow allocfree cache-miss path: the view cache is built once per distinct uncore scale, then every walk hits it
			e.scaled = make(map[float64]scaledView)
		}
		//lint:allow allocfree cache-miss path: one insert per distinct uncore scale, amortized to zero across runs
		e.scaled[scale] = v
	}
	e.mu.Unlock()
	return v
}

// validateStrategy checks the structural assumptions planSwitches
// depends on: points sorted strictly ascending by OpIndex (sorted and
// unique) and every OpIndex inside the trace. Violations would not
// crash the executor — they would silently misplace switch landings,
// because the trigger search binary-searches the baseline timeline —
// so Run rejects them with a descriptive error instead.
func validateStrategy(trace []op.Spec, strat *core.Strategy) error {
	for i, pt := range strat.Points {
		if pt.OpIndex < 0 || pt.OpIndex >= len(trace) {
			return fmt.Errorf("executor: strategy point %d has OpIndex %d outside trace [0, %d)",
				i, pt.OpIndex, len(trace))
		}
		if i > 0 && pt.OpIndex == strat.Points[i-1].OpIndex {
			return fmt.Errorf("executor: strategy points %d and %d duplicate OpIndex %d",
				i-1, i, pt.OpIndex)
		}
		if i > 0 && pt.OpIndex < strat.Points[i-1].OpIndex {
			return fmt.Errorf("executor: strategy points not sorted by OpIndex (%d at point %d after %d)",
				pt.OpIndex, i, strat.Points[i-1].OpIndex)
		}
	}
	return nil
}

// planSwitches converts strategy points into trigger-anticipated
// pending switches, per Fig. 14: the SetFreq latency is subtracted
// from each frequency adjustment time point on the strategy's own
// expected timeline (operators before a switch run at their assigned
// frequency), so landings stay precise even when early low-frequency
// stages stretch the schedule.
//
// Safe for concurrent calls: it reads only the immutable chip/ground
// views (via the locked cache) and the caller's trace and strategy,
// and requires strat.Points sorted and unique by OpIndex (checked by
// Run via validateStrategy).
func (e *Executor) planSwitches(trace []op.Spec, strat *core.Strategy, opt Options) []pendingSwitch {
	starts := make([]float64, len(trace))
	now := 0.0
	// Walk the sorted points with a cursor instead of calling
	// FreqAt/UncoreScaleAt (each O(points)) per operator, caching the
	// current scaled view — the timeline build is O(ops+points).
	freq := float64(strat.BaselineMHz)
	scale := 1.0
	view := e.viewAt(scale)
	pi := 0
	for i := range trace {
		for pi < len(strat.Points) && strat.Points[pi].OpIndex <= i {
			pt := &strat.Points[pi]
			freq = float64(pt.FreqMHz)
			s := pt.UncoreScale
			//lint:allow floateq exact sentinel: 0 means "uncore scale unset"
			if s == 0 {
				s = 1
			}
			//lint:allow floateq exact scale values key the cached view; a repeated point carries the identical float
			if s != scale {
				scale = s
				view = e.viewAt(scale)
			}
			pi++
		}
		starts[i] = now
		now += view.chip.Time(&trace[i], freq)
	}
	plan := make([]pendingSwitch, 0, len(strat.Points))
	for _, pt := range strat.Points {
		if pt.OpIndex == 0 {
			continue // initial frequency, applied before execution
		}
		anticipated := starts[pt.OpIndex] - opt.SetFreqLatencyMicros
		// The trigger is the last operator starting at or before the
		// anticipated dispatch time.
		trigger := sort.Search(len(starts), func(i int) bool { return starts[i] > anticipated }) - 1
		if trigger < 0 {
			trigger = 0
		}
		if trigger >= pt.OpIndex {
			trigger = pt.OpIndex - 1
		}
		offset := anticipated - starts[trigger]
		if offset < 0 {
			offset = 0
		}
		plan = append(plan, pendingSwitch{
			triggerOp:    trigger,
			targetOp:     pt.OpIndex,
			offsetMicros: offset,
			freqMHz:      float64(pt.FreqMHz),
			uncoreScale:  pt.UncoreScale,
		})
	}
	return plan
}

// Run executes one iteration of the trace under the strategy,
// advancing the thermal state, and returns measured results.
//
// Run is safe for concurrent calls on a shared Executor as long as
// each caller passes its own *thermal.State: all per-run bookkeeping
// (switch plan, current frequency/view, accumulators) is local, and
// the scaled-view cache is internally synchronized. The strategy's
// Points must be sorted strictly ascending by OpIndex; Run returns a
// descriptive error otherwise rather than silently misaligning switch
// landings.
func (e *Executor) Run(trace []op.Spec, strat *core.Strategy, th *thermal.State, opt Options) (*Result, error) {
	if e.Chip == nil || e.Ground == nil {
		return nil, fmt.Errorf("executor: incomplete executor")
	}
	if th == nil {
		return nil, fmt.Errorf("executor: nil thermal state")
	}
	if strat == nil || len(strat.Points) == 0 {
		return nil, fmt.Errorf("executor: nil or empty strategy")
	}
	if err := validateStrategy(trace, strat); err != nil {
		return nil, err
	}
	if opt.SetFreqLatencyMicros < 0 || opt.ExtraDelayMicros < 0 || opt.DelayJitterMicros < 0 {
		return nil, fmt.Errorf("executor: negative latency")
	}
	var jitter *rand.Rand
	if opt.DelayJitterMicros > 0 {
		jitter = rand.New(rand.NewSource(opt.JitterSeed))
	}
	plan := e.planSwitches(trace, strat, opt)
	freq := float64(strat.Points[0].FreqMHz)
	scale := strat.Points[0].UncoreScale
	if strat.Points[0].OpIndex != 0 {
		freq = float64(strat.BaselineMHz)
		scale = 0
	}
	view := e.viewAt(scale)

	res := &Result{}
	c := runCursor{
		e: e, plan: plan, opt: opt, jitter: jitter, th: th, res: res,
		freq: freq, view: view,
	}
	c.walk(trace)
	res.TimeMicros = c.now
	if c.now > 0 {
		res.MeanSoCW = res.EnergySoCJ * 1e6 / c.now
		res.MeanCoreW = res.EnergyCoreJ * 1e6 / c.now
	}
	res.EndTempC = float64(th.TempC())
	return res, nil
}

// runCursor is the per-run mutable state of Run's cursor walk. It used
// to live in closures inside Run; hoisting it onto one stack value
// keeps the GA's hardware-in-the-loop scoring loop closure-free (each
// capture was a heap allocation per Run) and gives the //lint:hotpath
// gate a root to hold. The cursors applyLo/dispatchHi/syncCur are
// monotone over the plan, which is ordered by targetOp with
// non-decreasing triggerOp (strategy points are strictly ascending and
// the anticipated dispatch times inherit the timeline's order).
// [applyLo, dispatchHi) is the in-flight window — dispatched but not
// yet all applied — and every scan below touches only it, so the walk
// is O(ops+plan) instead of rescanning the whole plan per operator.
// The window stays tiny (switch spacing is the FAI, actuation latency
// ~1 ms), but applied entries need not be contiguous under jitter, so
// applyLo only advances over the applied prefix.
type runCursor struct {
	e      *Executor
	plan   []pendingSwitch
	opt    Options
	jitter *rand.Rand
	th     *thermal.State
	res    *Result

	freq float64
	view scaledView
	now  float64

	applyLo    int
	dispatchHi int
	syncCur    int
}

// applyEffects applies every pending effect up to time t, in plan
// index order (the order the seed implementation applied them).
func (c *runCursor) applyEffects(t float64) {
	for j := c.applyLo; j < c.dispatchHi; j++ {
		p := &c.plan[j]
		if !p.applied && p.effectTime <= t {
			if !stats.Approx(p.freqMHz, c.freq) {
				c.freq = p.freqMHz
				c.res.Switches++
			}
			c.view = c.e.viewAt(p.uncoreScale)
			p.applied = true
		}
	}
	for c.applyLo < c.dispatchHi && c.plan[c.applyLo].applied {
		c.applyLo++
	}
}

// integrate accrues energy and thermal state over dur at the current
// frequency/view (s == nil integrates an idle stall).
func (c *runCursor) integrate(s *op.Spec, dur float64) {
	if dur <= 0 {
		return
	}
	deltaT := float64(c.th.DeltaT())
	soc := c.view.ground.SoCPower(s, c.freq, deltaT)
	coreP := c.view.ground.AICorePower(s, c.freq, deltaT)
	c.res.EnergySoCJ += soc * dur * 1e-6
	c.res.EnergyCoreJ += coreP * dur * 1e-6
	c.th.Step(units.Micros(dur), units.Watt(soc))
}

// walk runs the cursor over the trace: dispatch, event-wait stalls,
// effect application and mid-op frequency splitting, exactly in the
// seed implementation's float op order (the reference oracle pins the
// output bit-for-bit).
//
//lint:hotpath
func (c *runCursor) walk(trace []op.Spec) {
	for i := range trace {
		s := &trace[i]
		// Dispatch SetFreq operators triggered by this op's start
		// (plan entries are ordered by trigger, so the cursor never
		// backtracks).
		for c.dispatchHi < len(c.plan) && c.plan[c.dispatchHi].triggerOp <= i {
			p := &c.plan[c.dispatchHi]
			p.dispatched = true
			p.effectTime = c.now + p.offsetMicros +
				c.opt.SetFreqLatencyMicros + c.opt.ExtraDelayMicros
			if c.jitter != nil {
				p.effectTime += c.jitter.Float64() * c.opt.DelayJitterMicros
			}
			c.dispatchHi++
		}
		// Event Wait: before the target op of a synchronized switch
		// starts, its frequency change must have completed. targetOps
		// are strictly ascending (validated), so a cursor finds the at
		// most one entry targeting this op.
		if c.opt.Sync {
			for c.syncCur < len(c.plan) && c.plan[c.syncCur].targetOp < i {
				c.syncCur++
			}
			if c.syncCur < len(c.plan) {
				p := &c.plan[c.syncCur]
				if p.targetOp == i && p.dispatched && !p.applied && p.effectTime > c.now {
					stall := p.effectTime - c.now
					c.integrate(nil, stall) // idle while stalled
					c.res.StallMicros += stall
					c.now = p.effectTime
				}
			}
		}
		c.applyEffects(c.now)

		// Execute the operator, splitting at any mid-op frequency
		// effect: the remaining work continues at the new frequency.
		remaining := 1.0
		for remaining > 1e-12 {
			dur := c.view.chip.Time(s, c.freq) * remaining
			if dur <= 0 {
				break
			}
			// Find the earliest pending effect inside (now, now+dur);
			// only the in-flight window can hold one.
			cut := c.now + dur
			found := false
			for j := c.applyLo; j < c.dispatchHi; j++ {
				p := &c.plan[j]
				if !p.applied && p.effectTime > c.now && p.effectTime < cut {
					cut = p.effectTime
					found = true
				}
			}
			seg := cut - c.now
			c.integrate(s, seg)
			remaining -= remaining * (seg / dur)
			c.now = cut
			if found {
				c.applyEffects(c.now)
			} else {
				break
			}
		}
	}
}

// FixedStrategy returns a strategy that pins the whole iteration to
// one frequency — the baseline configuration of the evaluation.
func FixedStrategy(f units.MHz) *core.Strategy {
	return &core.Strategy{
		BaselineMHz: f,
		Points:      []core.FreqPoint{{OpIndex: 0, FreqMHz: f}},
	}
}

// RunStable repeats the iteration until the die temperature stabilizes
// (like the paper's "collect once training is stable") and returns the
// last iteration's measurements.
func (e *Executor) RunStable(trace []op.Spec, strat *core.Strategy, th *thermal.State, opt Options, maxIters int, tolC float64) (*Result, error) {
	var last *Result
	for i := 0; i < maxIters; i++ {
		res, err := e.Run(trace, strat, th, opt)
		if err != nil {
			return nil, err
		}
		last = res
		if diff := float64(th.Equilibrium(units.Watt(res.MeanSoCW)) - th.TempC()); diff < tolC && diff > -tolC {
			break
		}
	}
	if last == nil {
		return nil, fmt.Errorf("executor: no iterations executed")
	}
	return last, nil
}
