package executor

import (
	"math/rand"
	"sort"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/op"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// This file carries a verbatim copy of the pre-optimization (seed)
// executor as a reference oracle. The production Run replaced three
// per-operator full-plan scans with monotone cursors; the rewrite is
// only correct if it is BIT-identical — every Result field compared
// with == — to the quadratic original on every trace, strategy and
// option variant. Keep this copy in sync with nothing: it is the
// frozen historical semantics.

func planSwitchesReference(e *Executor, trace []op.Spec, strat *core.Strategy, opt Options) []pendingSwitch {
	starts := make([]float64, len(trace))
	now := 0.0
	for i := range trace {
		starts[i] = now
		view := e.viewAt(strat.UncoreScaleAt(i))
		now += view.chip.Time(&trace[i], float64(strat.FreqAt(i)))
	}
	var plan []pendingSwitch
	for _, pt := range strat.Points {
		if pt.OpIndex == 0 {
			continue
		}
		anticipated := starts[pt.OpIndex] - opt.SetFreqLatencyMicros
		trigger := sort.Search(len(starts), func(i int) bool { return starts[i] > anticipated }) - 1
		if trigger < 0 {
			trigger = 0
		}
		if trigger >= pt.OpIndex {
			trigger = pt.OpIndex - 1
		}
		offset := anticipated - starts[trigger]
		if offset < 0 {
			offset = 0
		}
		plan = append(plan, pendingSwitch{
			triggerOp:    trigger,
			targetOp:     pt.OpIndex,
			offsetMicros: offset,
			freqMHz:      float64(pt.FreqMHz),
			uncoreScale:  pt.UncoreScale,
		})
	}
	return plan
}

func runReference(e *Executor, trace []op.Spec, strat *core.Strategy, th *thermal.State, opt Options) (*Result, error) {
	if err := validateStrategy(trace, strat); err != nil {
		return nil, err
	}
	var jitter *rand.Rand
	if opt.DelayJitterMicros > 0 {
		jitter = rand.New(rand.NewSource(opt.JitterSeed))
	}
	plan := planSwitchesReference(e, trace, strat, opt)
	freq := float64(strat.Points[0].FreqMHz)
	scale := strat.Points[0].UncoreScale
	if strat.Points[0].OpIndex != 0 {
		freq = float64(strat.BaselineMHz)
		scale = 0
	}
	view := e.viewAt(scale)

	res := &Result{}
	now := 0.0
	next := 0
	applyEffects := func(t float64) {
		for i := range plan {
			p := &plan[i]
			if p.dispatched && !p.applied && p.effectTime <= t {
				if !stats.Approx(p.freqMHz, freq) {
					freq = p.freqMHz
					res.Switches++
				}
				view = e.viewAt(p.uncoreScale)
				p.applied = true
			}
		}
	}
	integrate := func(s *op.Spec, dur float64) {
		if dur <= 0 {
			return
		}
		deltaT := float64(th.DeltaT())
		soc := view.ground.SoCPower(s, freq, deltaT)
		coreP := view.ground.AICorePower(s, freq, deltaT)
		res.EnergySoCJ += soc * dur * 1e-6
		res.EnergyCoreJ += coreP * dur * 1e-6
		th.Step(units.Micros(dur), units.Watt(soc))
	}

	for i := range trace {
		s := &trace[i]
		for j := next; j < len(plan); j++ {
			if plan[j].triggerOp > i {
				break
			}
			if plan[j].triggerOp == i && !plan[j].dispatched {
				plan[j].dispatched = true
				plan[j].effectTime = now + plan[j].offsetMicros +
					opt.SetFreqLatencyMicros + opt.ExtraDelayMicros
				if jitter != nil {
					plan[j].effectTime += jitter.Float64() * opt.DelayJitterMicros
				}
			}
		}
		if opt.Sync {
			for j := range plan {
				p := &plan[j]
				if p.targetOp == i && p.dispatched && !p.applied && p.effectTime > now {
					stall := p.effectTime - now
					integrate(nil, stall)
					res.StallMicros += stall
					now = p.effectTime
				}
			}
		}
		applyEffects(now)

		remaining := 1.0
		for remaining > 1e-12 {
			dur := view.chip.Time(s, freq) * remaining
			if dur <= 0 {
				break
			}
			cut := now + dur
			found := false
			for j := range plan {
				p := &plan[j]
				if p.dispatched && !p.applied && p.effectTime > now && p.effectTime < cut {
					cut = p.effectTime
					found = true
				}
			}
			seg := cut - now
			integrate(s, seg)
			remaining -= remaining * (seg / dur)
			now = cut
			if found {
				applyEffects(now)
			} else {
				break
			}
		}
		for next < len(plan) && plan[next].applied {
			next++
		}
	}
	res.TimeMicros = now
	if now > 0 {
		res.MeanSoCW = res.EnergySoCJ * 1e6 / now
		res.MeanCoreW = res.EnergyCoreJ * 1e6 / now
	}
	res.EndTempC = float64(th.TempC())
	return res, nil
}

// synthStrategy builds a strategy switching among grid frequencies
// (and occasionally uncore scales) every few operators, with switch
// times on the baseline timeline as core.Generate produces them.
func synthStrategy(e *Executor, trace []op.Spec, rng *rand.Rand, withScale bool) *core.Strategy {
	grid := e.Chip.Curve.Grid()
	strat := &core.Strategy{BaselineMHz: 1800}
	prev := units.MHz(-1)
	for opIdx := 0; opIdx < len(trace); opIdx += 1 + rng.Intn(45) {
		f := grid[rng.Intn(len(grid))]
		if f == prev {
			continue
		}
		start := 0.0
		for i := 0; i < opIdx; i++ {
			start += e.Chip.Time(&trace[i], 1800)
		}
		pt := core.FreqPoint{OpIndex: opIdx, TimeMicros: units.Micros(start), FreqMHz: f}
		if withScale && rng.Intn(3) == 0 {
			pt.UncoreScale = 0.8 + 0.1*float64(rng.Intn(3))
		}
		strat.Points = append(strat.Points, pt)
		prev = f
	}
	if len(strat.Points) == 0 {
		strat.Points = append(strat.Points, core.FreqPoint{OpIndex: 0, FreqMHz: 1800})
	}
	return strat
}

func compareRuns(t *testing.T, label string, e *Executor, trace []op.Spec, strat *core.Strategy, opt Options) {
	t.Helper()
	got, err := e.Run(trace, strat, th(), opt)
	if err != nil {
		t.Fatalf("%s: optimized Run: %v", label, err)
	}
	want, err := runReference(e, trace, strat, th(), opt)
	if err != nil {
		t.Fatalf("%s: reference Run: %v", label, err)
	}
	if *got != *want {
		t.Fatalf("%s: optimized Run diverged from the seed reference:\n got %+v\nwant %+v", label, *got, *want)
	}
}

// TestRunMatchesSeedReferenceBitIdentical sweeps the Table 3 workloads
// with randomized synthetic strategies under every option variant and
// requires the cursor-based Run to reproduce the seed executor's
// Result exactly (==, not approximately).
func TestRunMatchesSeedReferenceBitIdentical(t *testing.T) {
	e := testExec()
	workloads := []struct {
		name  string
		trace []op.Spec
	}{
		{"BERT", workload.BERT().Trace[:600]},
		{"ResNet50", workload.ResNet50().Trace[:600]},
		{"ResNet152", workload.ResNet152().Trace[:600]},
		{"GPT3", workload.GPT3().Trace[:600]},
	}
	opts := []struct {
		name string
		opt  Options
	}{
		{"sync", DefaultOptions()},
		{"nosync", Options{SetFreqLatencyMicros: 1000}},
		{"extra-delay", Options{SetFreqLatencyMicros: 1000, ExtraDelayMicros: 14000}},
		{"jitter", Options{SetFreqLatencyMicros: 1000, Sync: true, DelayJitterMicros: 500, JitterSeed: 9}},
		{"nosync-jitter", Options{SetFreqLatencyMicros: 1000, DelayJitterMicros: 2000, JitterSeed: 3}},
	}
	rng := rand.New(rand.NewSource(11))
	for _, w := range workloads {
		for trial := 0; trial < 4; trial++ {
			strat := synthStrategy(e, w.trace, rng, trial%2 == 1)
			for _, o := range opts {
				compareRuns(t, w.name+"/"+o.name, e, w.trace, strat, o.opt)
			}
		}
		// The degenerate single-point and fixed strategies too.
		compareRuns(t, w.name+"/fixed", e, w.trace, FixedStrategy(1000), DefaultOptions())
	}
}
