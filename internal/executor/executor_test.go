package executor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

func testExec() *Executor {
	chip := npu.Default()
	return New(chip, powersim.Default(chip))
}

func th() *thermal.State { return thermal.NewState(thermal.Default()) }

// flatTrace builds a trace of identical mid-size compute ops so switch
// timing is easy to reason about.
func flatTrace(n int) []op.Spec {
	reps := workload.RepresentativeOps()
	conv := reps[3] // Conv2D, ~270-480 µs, compute-bound
	trace := make([]op.Spec, n)
	for i := range trace {
		trace[i] = conv
	}
	return trace
}

func TestFixedStrategyMatchesChipTiming(t *testing.T) {
	e := testExec()
	trace := flatTrace(10)
	res, err := e.Run(trace, FixedStrategy(1800), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := range trace {
		want += e.Chip.Time(&trace[i], 1800)
	}
	if math.Abs(res.TimeMicros-want) > 1e-6 {
		t.Errorf("time = %g, want %g", res.TimeMicros, want)
	}
	if res.Switches != 0 {
		t.Errorf("fixed strategy produced %d switches", res.Switches)
	}
	if res.MeanSoCW <= res.MeanCoreW || res.MeanCoreW <= 0 {
		t.Errorf("powers implausible: soc=%g core=%g", res.MeanSoCW, res.MeanCoreW)
	}
}

func TestLowerFrequencyLongerAndCheaper(t *testing.T) {
	e := testExec()
	trace := flatTrace(20)
	hi, err := e.Run(trace, FixedStrategy(1800), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, err := e.Run(trace, FixedStrategy(1000), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lo.TimeMicros <= hi.TimeMicros {
		t.Errorf("compute-bound trace should slow at 1000 MHz: %g vs %g", lo.TimeMicros, hi.TimeMicros)
	}
	if lo.MeanCoreW >= hi.MeanCoreW {
		t.Errorf("AICore power should drop at 1000 MHz: %g vs %g", lo.MeanCoreW, hi.MeanCoreW)
	}
}

func TestMidTraceSwitchTakesEffect(t *testing.T) {
	e := testExec()
	trace := flatTrace(20)
	strat := &core.Strategy{
		BaselineMHz: 1800,
		Points: []core.FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 10, FreqMHz: 1000},
		},
	}
	// Fill in the baseline switch time for op 10.
	start := 0.0
	for i := 0; i < 10; i++ {
		start += e.Chip.Time(&trace[i], 1800)
	}
	strat.Points[1].TimeMicros = units.Micros(start)
	res, err := e.Run(trace, strat, th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 1 {
		t.Fatalf("switches = %d, want 1", res.Switches)
	}
	// Expected duration: 10 ops at 1800 plus 10 at 1000 (latency is
	// anticipated by trigger placement, so the landing is clean).
	want := 0.0
	for i := range trace {
		f := 1800.0
		if i >= 10 {
			f = 1000
		}
		want += e.Chip.Time(&trace[i], f)
	}
	if rel := math.Abs(res.TimeMicros-want) / want; rel > 0.02 {
		t.Errorf("time = %g, want ~%g (rel %g)", res.TimeMicros, want, rel)
	}
	if res.StallMicros > e.Chip.Time(&trace[0], 1800) {
		t.Errorf("stall %g µs unexpectedly large", res.StallMicros)
	}
}

func TestSyncStallsWhenLatencyCannotBeAnticipated(t *testing.T) {
	e := testExec()
	trace := flatTrace(4)
	opDur := e.Chip.Time(&trace[0], 1800)
	strat := &core.Strategy{
		BaselineMHz: 1800,
		Points: []core.FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 1, TimeMicros: units.Micros(opDur), FreqMHz: 1200},
		},
	}
	// Latency far exceeds one op duration: the trigger can only be op
	// 0, and the target op must stall until the change lands.
	opt := Options{SetFreqLatencyMicros: opDur * 3, Sync: true}
	res, err := e.Run(trace, strat, th(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallMicros < opDur {
		t.Errorf("stall = %g µs, expected at least one op duration (%g)", res.StallMicros, opDur)
	}
	if res.Switches != 1 {
		t.Errorf("switches = %d, want 1", res.Switches)
	}
}

func TestNoSyncLandsLate(t *testing.T) {
	e := testExec()
	trace := flatTrace(6)
	opDur := e.Chip.Time(&trace[0], 1800)
	strat := &core.Strategy{
		BaselineMHz: 1800,
		Points: []core.FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 1, TimeMicros: units.Micros(opDur), FreqMHz: 1000},
		},
	}
	opt := Options{SetFreqLatencyMicros: 1000, ExtraDelayMicros: opDur * 2, Sync: false}
	res, err := e.Run(trace, strat, th(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallMicros != 0 {
		t.Errorf("no-sync run stalled %g µs", res.StallMicros)
	}
	// The change still lands eventually, mid-trace.
	if res.Switches != 1 {
		t.Errorf("switches = %d, want 1", res.Switches)
	}
	// Duration must sit between all-1800 and the clean-switch ideal,
	// because some post-switch-point ops ran fast at 1800.
	clean := 0.0
	for i := range trace {
		f := 1800.0
		if i >= 1 {
			f = 1000
		}
		clean += e.Chip.Time(&trace[i], f)
	}
	all1800 := float64(len(trace)) * opDur
	if res.TimeMicros >= clean || res.TimeMicros <= all1800 {
		t.Errorf("late landing time %g not in (%g, %g)", res.TimeMicros, all1800, clean)
	}
}

func TestTemperatureRisesAcrossIterations(t *testing.T) {
	e := testExec()
	state := th()
	trace := flatTrace(30)
	first, err := e.Run(trace, FixedStrategy(1800), state, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := e.Run(trace, FixedStrategy(1800), state, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if float64(state.TempC()) <= first.EndTempC {
		t.Errorf("temperature did not keep rising: %g vs %g", state.TempC(), first.EndTempC)
	}
}

func TestRunStableApproachesEquilibrium(t *testing.T) {
	e := testExec()
	state := th()
	trace := flatTrace(200)
	res, err := e.RunStable(trace, FixedStrategy(1800), state, DefaultOptions(), 5000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(state.Equilibrium(units.Watt(res.MeanSoCW))-state.TempC())) > 1 {
		t.Errorf("not at equilibrium: T=%g, Teq=%g", state.TempC(), state.Equilibrium(units.Watt(res.MeanSoCW)))
	}
}

func TestRunValidation(t *testing.T) {
	e := testExec()
	trace := flatTrace(3)
	if _, err := e.Run(trace, nil, th(), DefaultOptions()); err == nil {
		t.Error("nil strategy: want error")
	}
	if _, err := e.Run(trace, FixedStrategy(1800), nil, DefaultOptions()); err == nil {
		t.Error("nil thermal: want error")
	}
	bad := DefaultOptions()
	bad.SetFreqLatencyMicros = -1
	if _, err := e.Run(trace, FixedStrategy(1800), th(), bad); err == nil {
		t.Error("negative latency: want error")
	}
	broken := &Executor{}
	if _, err := broken.Run(trace, FixedStrategy(1800), th(), DefaultOptions()); err == nil {
		t.Error("incomplete executor: want error")
	}
}

func TestEnergyConsistentWithMeanPower(t *testing.T) {
	e := testExec()
	trace := flatTrace(25)
	res, err := e.Run(trace, FixedStrategy(1500), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantJ := res.MeanSoCW * res.TimeMicros * 1e-6
	if math.Abs(res.EnergySoCJ-wantJ) > 1e-9*wantJ+1e-12 {
		t.Errorf("energy %g J inconsistent with mean power (%g J)", res.EnergySoCJ, wantJ)
	}
}

// Property: any strategy's measured iteration time lies between the
// all-max and all-min fixed runs, and its energy is consistent.
func TestQuickRandomStrategiesBounded(t *testing.T) {
	e := testExec()
	trace := workload.BERT().Trace[:400]
	fast, err := e.Run(trace, FixedStrategy(1800), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.Run(trace, FixedStrategy(1000), th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	grid := e.Chip.Curve.Grid()
	for trial := 0; trial < 25; trial++ {
		strat := &core.Strategy{BaselineMHz: 1800}
		prev := units.MHz(-1)
		for op := 0; op < len(trace); op += 1 + rng.Intn(60) {
			f := grid[rng.Intn(len(grid))]
			if f == prev {
				continue
			}
			start := 0.0
			for i := 0; i < op; i++ {
				start += e.Chip.Time(&trace[i], 1800)
			}
			strat.Points = append(strat.Points, core.FreqPoint{OpIndex: op, TimeMicros: units.Micros(start), FreqMHz: f})
			prev = f
		}
		if len(strat.Points) == 0 {
			strat.Points = append(strat.Points, core.FreqPoint{OpIndex: 0, FreqMHz: 1800})
		}
		res, err := e.Run(trace, strat, th(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.TimeMicros < fast.TimeMicros-1e-6 || res.TimeMicros > slow.TimeMicros+res.StallMicros+1e-6 {
			t.Fatalf("trial %d: time %.1f outside [%.1f, %.1f+stall]",
				trial, res.TimeMicros, fast.TimeMicros, slow.TimeMicros)
		}
		wantJ := res.MeanSoCW * res.TimeMicros * 1e-6
		if math.Abs(res.EnergySoCJ-wantJ) > 1e-6*wantJ {
			t.Fatalf("trial %d: energy inconsistent", trial)
		}
		if res.MeanCoreW <= 0 || res.MeanSoCW <= res.MeanCoreW {
			t.Fatalf("trial %d: implausible powers", trial)
		}
	}
}

// Uncore-scaled strategies must slow memory-heavy traces and reduce
// SoC power relative to the same core frequencies at stock uncore.
func TestUncoreScaledStrategy(t *testing.T) {
	e := testExec()
	m := workload.MicroOp(workload.TanhOp(), 60) // memory-bound
	stock := FixedStrategy(1800)
	scaled := &core.Strategy{
		BaselineMHz: 1800,
		Points:      []core.FreqPoint{{OpIndex: 0, FreqMHz: 1800, UncoreScale: 0.8}},
	}
	rs, err := e.Run(m.Trace, stock, th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := e.Run(m.Trace, scaled, th(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rc.TimeMicros <= rs.TimeMicros {
		t.Errorf("memory-bound trace should slow with 0.8x uncore: %.1f vs %.1f",
			rc.TimeMicros, rs.TimeMicros)
	}
	if rc.MeanSoCW >= rs.MeanSoCW {
		t.Errorf("scaled uncore should draw less SoC power: %.2f vs %.2f",
			rc.MeanSoCW, rs.MeanSoCW)
	}
}

func TestRunRejectsMalformedPoints(t *testing.T) {
	e := testExec()
	trace := flatTrace(5)
	cases := []struct {
		name   string
		points []core.FreqPoint
	}{
		{"out-of-range", []core.FreqPoint{{OpIndex: 0, FreqMHz: 1800}, {OpIndex: 5, FreqMHz: 1000}}},
		{"negative", []core.FreqPoint{{OpIndex: -1, FreqMHz: 1800}}},
		{"duplicate", []core.FreqPoint{{OpIndex: 2, FreqMHz: 1800}, {OpIndex: 2, FreqMHz: 1000}}},
		{"unsorted", []core.FreqPoint{{OpIndex: 3, FreqMHz: 1800}, {OpIndex: 1, FreqMHz: 1000}}},
	}
	for _, tc := range cases {
		strat := &core.Strategy{BaselineMHz: 1800, Points: tc.points}
		if _, err := e.Run(trace, strat, th(), DefaultOptions()); err == nil {
			t.Errorf("%s points: want error, got nil", tc.name)
		}
	}
}

// A shared Executor must tolerate concurrent Run calls that populate
// the scaled-view cache from many goroutines (run under -race). Every
// goroutine also checks its results against a serial golden run: the
// cache races only on construction, never on values.
func TestConcurrentRunSharedExecutor(t *testing.T) {
	e := testExec()
	trace := flatTrace(30)
	grid := e.Chip.Curve.Grid()
	scales := []float64{0, 0.8, 0.85, 0.9, 0.95, 1, 1.05}
	strategies := make([]*core.Strategy, 16)
	for k := range strategies {
		rng := rand.New(rand.NewSource(int64(40 + k)))
		strat := &core.Strategy{BaselineMHz: 1800}
		for opIdx := 0; opIdx < len(trace); opIdx += 1 + rng.Intn(6) {
			strat.Points = append(strat.Points, core.FreqPoint{
				OpIndex:     opIdx,
				FreqMHz:     grid[rng.Intn(len(grid))],
				UncoreScale: scales[rng.Intn(len(scales))],
			})
		}
		strategies[k] = strat
	}
	golden := make([]*Result, len(strategies))
	for k, strat := range strategies {
		res, err := e.Run(trace, strat, th(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		golden[k] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k, strat := range strategies {
				res, err := e.Run(trace, strat, th(), DefaultOptions())
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(res.EnergySoCJ-golden[k].EnergySoCJ) > 1e-12 ||
					math.Abs(res.TimeMicros-golden[k].TimeMicros) > 1e-9 {
					errs <- fmt.Errorf("strategy %d: concurrent result diverged from serial", k)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
