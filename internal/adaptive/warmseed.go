package adaptive

import (
	"context"
	"fmt"

	"npudvfs/internal/ga"
)

// Reoptimize runs a fresh GA search warm-seeded from a previous
// result's captured final population. The ratchet in Controller is
// the cheap correction — when drift persists (model error, thermal
// environment change) the right fix is a re-search, and seeding the
// islands with the previous population's survivors starts it from the
// converged region instead of from random vectors: generation 0 is
// already at least as good as the previous best.
//
// The returned result always carries its own final population
// (CapturePopulation is forced on), so repeated re-optimizations
// chain: each hands its survivors to the next. Warm vectors are dealt
// round-robin across the islands, so every island starts near the
// previous optimum while still diverging on its own RNG stream. A nil
// prev (or one captured without a population) degrades to a cold
// search.
func Reoptimize(ctx context.Context, p ga.Problem, cfg ga.Config, prev *ga.Result) (*ga.Result, error) {
	if p == nil {
		return nil, fmt.Errorf("adaptive: nil problem")
	}
	cfg.CapturePopulation = true
	if prev != nil {
		warm := make([][]int, 0, len(prev.Population)+1)
		if len(prev.Best) == p.Genes() {
			warm = append(warm, prev.Best)
		}
		for _, row := range prev.Population {
			warm = append(warm, row)
		}
		cfg.WarmStart = warm
	}
	return ga.RunContext(ctx, p, cfg)
}
