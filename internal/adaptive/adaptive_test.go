package adaptive

import (
	"context"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/powersim"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/vf"
	"npudvfs/internal/workload"
)

func aggressiveStrategy(chip *npu.Chip, trace int) *core.Strategy {
	// Alternate max and minimum frequency every few operators — an
	// over-aggressive policy that will overshoot a tight loss target
	// on a compute-heavy trace.
	s := &core.Strategy{BaselineMHz: chip.Curve.Max()}
	for i := 0; i < trace; i += 8 {
		f := chip.Curve.Min()
		if (i/8)%2 == 0 {
			f = chip.Curve.Max()
		}
		s.Points = append(s.Points, core.FreqPoint{OpIndex: i, FreqMHz: f})
	}
	return s
}

func TestNewValidation(t *testing.T) {
	curve := vf.Ascend()
	ok := executor.FixedStrategy(1800)
	if _, err := New(nil, ok, 100, 0.02); err == nil {
		t.Error("nil curve: want error")
	}
	if _, err := New(curve, nil, 100, 0.02); err == nil {
		t.Error("nil strategy: want error")
	}
	if _, err := New(curve, ok, 0, 0.02); err == nil {
		t.Error("zero baseline: want error")
	}
	if _, err := New(curve, ok, 100, 0); err == nil {
		t.Error("zero target: want error")
	}
}

func TestControllerCopiesStrategy(t *testing.T) {
	orig := executor.FixedStrategy(1000)
	c, err := New(vf.Ascend(), orig, 100, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(200) // 100% loss: raise
	if orig.Points[0].FreqMHz != 1000 {
		t.Error("controller mutated the caller's strategy")
	}
	if c.Strategy().Points[0].FreqMHz != 1100 {
		t.Errorf("controller strategy not raised: %g", c.Strategy().Points[0].FreqMHz)
	}
}

func TestObserveBands(t *testing.T) {
	c, err := New(vf.Ascend(), executor.FixedStrategy(1400), 1000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the band: no change.
	if adj := c.Observe(1015); adj != None {
		t.Errorf("loss 1.5%%: adjustment %v, want none", adj)
	}
	// Far below the band: step down (no violation yet).
	if adj := c.Observe(1002); adj != Lowered {
		t.Errorf("loss 0.2%%: adjustment %v, want lowered", adj)
	}
	if got := c.Strategy().Points[0].FreqMHz; got != 1300 {
		t.Errorf("frequency after lowering = %g, want 1300", got)
	}
	// Violation: raise and ratchet.
	if adj := c.Observe(1050); adj != Raised {
		t.Errorf("loss 5%%: adjustment %v, want raised", adj)
	}
	// After a violation, low readings no longer lower.
	if adj := c.Observe(1001); adj != None {
		t.Errorf("post-ratchet low loss: adjustment %v, want none", adj)
	}
}

func TestRaiseSaturatesAtMax(t *testing.T) {
	c, err := New(vf.Ascend(), executor.FixedStrategy(1700), 1000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if adj := c.Observe(1100); adj != Raised {
		t.Fatalf("first raise: got %v", adj)
	}
	// Already at max: further violations change nothing.
	if adj := c.Observe(1100); adj != None {
		t.Errorf("raise at max: got %v, want none", adj)
	}
	if got := c.Strategy().Points[0].FreqMHz; got != 1800 {
		t.Errorf("frequency = %g, want clamped 1800", got)
	}
}

// Closed loop against the simulator: an over-aggressive strategy on a
// compute-heavy trace must be ratcheted up until the measured loss
// falls under the target, and stay there.
func TestClosedLoopConvergesUnderTarget(t *testing.T) {
	chip := npu.Default()
	ground := powersim.Default(chip)
	ex := executor.New(chip, ground)
	reps := workload.RepresentativeOps()
	// A conv-heavy trace: compute-bound, so frequency errors show up
	// directly as loss.
	m := workload.MicroOp(reps[3], 160) // Conv2D x160
	th := thermal.NewState(thermal.Default())
	base, err := ex.RunStable(m.Trace, executor.FixedStrategy(1800), th, executor.DefaultOptions(), 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.02
	ctl, err := New(chip.Curve, aggressiveStrategy(chip, len(m.Trace)), units.Micros(base.TimeMicros), target)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	converged := false
	for iter := 0; iter < 30; iter++ {
		res, err := ex.Run(m.Trace, ctl.Strategy(), th, executor.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = res.TimeMicros/base.TimeMicros - 1
		if ctl.Observe(units.Micros(res.TimeMicros)) == None && lastLoss <= target {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("controller did not converge: last loss %.4f", lastLoss)
	}
	if ctl.Adjustments() == 0 {
		t.Error("expected at least one adjustment for an over-aggressive strategy")
	}
	// Stability: ten more iterations produce no further edits.
	edits := ctl.Adjustments()
	for iter := 0; iter < 10; iter++ {
		res, err := ex.Run(m.Trace, ctl.Strategy(), th, executor.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ctl.Observe(units.Micros(res.TimeMicros))
	}
	if ctl.Adjustments() != edits {
		t.Errorf("controller kept editing after convergence: %d -> %d", edits, ctl.Adjustments())
	}
}

func TestAdjustmentString(t *testing.T) {
	if None.String() != "none" || Raised.String() != "raised" || Lowered.String() != "lowered" {
		t.Error("adjustment names wrong")
	}
}

// seekProblem rewards matching a target vector — a stand-in for the
// DVFS assignment problem with a known optimum.
type seekProblem struct {
	target  []int
	alleles int
}

func (p *seekProblem) Genes() int     { return len(p.target) }
func (p *seekProblem) Alleles() int   { return p.alleles }
func (p *seekProblem) Seeds() [][]int { return nil }
func (p *seekProblem) Score(ind []int) float64 {
	s := 0.0
	for i, g := range ind {
		if g == p.target[i] {
			s++
		}
	}
	return s
}

func TestReoptimizeWarmSeedsFromPreviousPopulation(t *testing.T) {
	p := &seekProblem{target: []int{1, 3, 0, 2, 4, 1, 2, 0, 3, 4, 2, 1}, alleles: 5}
	cfg := ga.DefaultConfig()
	cfg.PopSize = 40
	cfg.Generations = 120
	cfg.Islands = 2

	first, err := Reoptimize(context.Background(), p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Population) != cfg.PopSize {
		t.Fatalf("cold Reoptimize captured %d individuals, want %d", len(first.Population), cfg.PopSize)
	}

	// The warm restart must start where the previous search ended: its
	// generation-0 best can never fall below the previous best score.
	cfg.Generations = 10
	second, err := Reoptimize(context.Background(), p, cfg, first)
	if err != nil {
		t.Fatal(err)
	}
	if second.History[0] < first.BestScore {
		t.Fatalf("warm restart History[0] = %v below previous best %v", second.History[0], first.BestScore)
	}
	if len(second.Population) != cfg.PopSize {
		t.Fatalf("warm Reoptimize captured %d individuals, want %d", len(second.Population), cfg.PopSize)
	}

	if _, err := Reoptimize(context.Background(), nil, cfg, first); err == nil {
		t.Fatal("nil problem accepted")
	}
}
