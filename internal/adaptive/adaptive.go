// Package adaptive closes the loop around a generated DVFS strategy in
// production: long-lived AI workloads repeat the same iteration, so a
// controller can compare each iteration's measured duration against
// the baseline and correct the strategy when model or actuation error
// pushes the realized loss past the target.
//
// The paper deploys strategies open-loop after validating them
// (Sect. 7.4); this package adds the guard a production deployment
// wants on top: if the measured loss exceeds the target, every
// below-maximum frequency in the strategy is raised one grid step
// (ratcheting toward the provably compliant all-max strategy); once a
// violation has been seen, the controller never lowers again, so it
// cannot oscillate.
package adaptive

import (
	"fmt"

	"npudvfs/internal/core"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
	"npudvfs/internal/vf"
)

// Adjustment reports what an Observe call did.
type Adjustment int

const (
	// None: the measured loss is inside the acceptance band.
	None Adjustment = iota
	// Raised: frequencies were stepped up to reduce loss.
	Raised
	// Lowered: frequencies were stepped down to reclaim savings
	// (only before the first violation).
	Lowered
)

func (a Adjustment) String() string {
	switch a {
	case None:
		return "none"
	case Raised:
		return "raised"
	case Lowered:
		return "lowered"
	}
	return fmt.Sprintf("Adjustment(%d)", int(a))
}

// Controller adapts a strategy from measured iteration durations.
type Controller struct {
	curve          *vf.Curve
	strategy       *core.Strategy
	baselineMicros units.Micros
	target         float64
	// lowBand is the fraction of the target below which the
	// controller may step down (before any violation).
	lowBand float64
	// ratcheted is set on the first violation; stepping down is then
	// disabled permanently.
	ratcheted bool
	// adjustments counts strategy edits.
	adjustments int
}

// New builds a controller around a generated strategy. baselineMicros
// is the measured baseline iteration duration at maximum frequency;
// target is the allowed relative loss (e.g. 0.02).
func New(curve *vf.Curve, strategy *core.Strategy, baselineMicros units.Micros, target float64) (*Controller, error) {
	switch {
	case curve == nil:
		return nil, fmt.Errorf("adaptive: nil curve")
	case strategy == nil || len(strategy.Points) == 0:
		return nil, fmt.Errorf("adaptive: empty strategy")
	case baselineMicros <= 0:
		return nil, fmt.Errorf("adaptive: baseline duration %g", float64(baselineMicros))
	case target <= 0:
		return nil, fmt.Errorf("adaptive: loss target %g", target)
	}
	// Work on a copy; callers keep their original.
	cp := &core.Strategy{BaselineMHz: strategy.BaselineMHz}
	cp.Points = append(cp.Points, strategy.Points...)
	return &Controller{
		curve:          curve,
		strategy:       cp,
		baselineMicros: baselineMicros,
		target:         target,
		lowBand:        0.5,
	}, nil
}

// Strategy returns the controller's current strategy. The returned
// value is shared; do not mutate.
func (c *Controller) Strategy() *core.Strategy { return c.strategy }

// Adjustments returns how many strategy edits have been applied.
func (c *Controller) Adjustments() int { return c.adjustments }

// Observe ingests one measured iteration duration and possibly adjusts
// the strategy.
func (c *Controller) Observe(iter units.Micros) Adjustment {
	if iter <= 0 {
		return None
	}
	loss := float64(iter/c.baselineMicros) - 1
	switch {
	case loss > c.target:
		c.ratcheted = true
		if c.step(+1) {
			c.adjustments++
			return Raised
		}
		return None
	case !c.ratcheted && loss < c.target*c.lowBand:
		if c.step(-1) {
			c.adjustments++
			return Lowered
		}
		return None
	default:
		return None
	}
}

// step moves every adjustable point by dir grid steps; returns whether
// anything changed. Raising skips points already at maximum; lowering
// skips points already at minimum.
func (c *Controller) step(dir int) bool {
	changed := false
	stepMHz := c.curve.Step() * units.MHz(dir)
	for i := range c.strategy.Points {
		p := &c.strategy.Points[i]
		next := c.curve.Nearest(p.FreqMHz + stepMHz)
		if !stats.Approx(next, p.FreqMHz) {
			p.FreqMHz = next
			changed = true
		}
	}
	return changed
}
