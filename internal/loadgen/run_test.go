package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"npudvfs/internal/experiments"
	"npudvfs/internal/server"
	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

// One bundle-warmed fixture per test binary; the lab's offline
// calibration is the expensive part.
var (
	fixOnce   sync.Once
	fixLab    *experiments.Lab
	fixBundle *traceio.ModelBundle
	fixErr    error
)

func fixture(t *testing.T) (*experiments.Lab, *traceio.ModelBundle) {
	t.Helper()
	fixOnce.Do(func() {
		fixLab = experiments.NewLab()
		m, err := workload.ByName("resnet50")
		if err != nil {
			fixErr = err
			return
		}
		ms, err := fixLab.BuildModels(m, true)
		if err != nil {
			fixErr = err
			return
		}
		b, err := ms.Bundle()
		if err != nil {
			fixErr = err
			return
		}
		var buf bytes.Buffer
		if err := traceio.WriteModels(&buf, b); err != nil {
			fixErr = err
			return
		}
		fixBundle, fixErr = traceio.ReadModels(&buf)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLab, fixBundle
}

// TestRunnerEndToEnd drives two seconds of mixed closed-loop load —
// cache-hot repeats, cache-cold searches and async submit-poll chains
// with mid-run /metrics scrapes — at an in-process daemon, then checks
// the measured Result's invariants:
//
//   - the run made progress (non-zero QPS, every class represented),
//   - nothing 5xx'd except deliberate 503 load shedding,
//   - percentiles are monotonic,
//   - the scraper produced a queue curve.
func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("2s live-load e2e; skipped in -short")
	}
	lab, bundle := fixture(t)
	s, err := server.New(server.Config{
		Workers:    2,
		QueueDepth: 16,
		Lab:        lab,
		Bundles:    map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	spec := Spec{
		Mix:      Mix{Name: "mixed", Hot: 5, Cold: 3, Async: 2},
		Mode:     ClosedLoop,
		Clients:  3,
		Duration: 2 * time.Second,
		Seed:     1,
		Poll:     2 * time.Millisecond,
		Scrape:   50 * time.Millisecond,
	}
	r := &Runner{Client: client.New(ts.URL), Spec: spec}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.QPS <= 0 || res.Overall.Completed == 0 {
		t.Fatalf("no progress: qps=%v completed=%d", res.QPS, res.Overall.Completed)
	}
	for _, class := range []string{"hot", "cold", "async"} {
		cs, ok := res.Classes[class]
		if !ok || cs.Requests == 0 {
			t.Errorf("class %q absent from a 2s mixed run: %+v", class, res.Classes)
		}
	}
	if res.Overall.Errors != 0 {
		t.Errorf("%d errors in a healthy run: %+v", res.Overall.Errors, res.Overall)
	}
	for code, n := range res.HTTP.ByCode {
		if strings.HasPrefix(code, "5") && code != "503" {
			t.Errorf("%d responses with status %s; only 503 load shedding is allowed", n, code)
		}
		if code == "transport" {
			t.Errorf("%d transport failures", n)
		}
	}
	for class, cs := range res.Classes {
		if cs.Completed == 0 {
			continue
		}
		if !(cs.P50Ms <= cs.P90Ms && cs.P90Ms <= cs.P99Ms && cs.P99Ms <= cs.MaxMs) {
			t.Errorf("class %q percentiles not monotonic: %+v", class, cs)
		}
	}
	if len(res.Queue) == 0 {
		t.Error("no queue-depth scrapes collected")
	}
	if res.ElapsedSeconds < 1.9 {
		t.Errorf("elapsed %.2fs, want >= the 2s offered window", res.ElapsedSeconds)
	}
}

// TestRunnerOpenLoopSaturation offers open-loop load far above a
// 1-worker daemon's capacity and checks the daemon sheds it as 503
// rejects (never errors) and the runner attributes them correctly.
func TestRunnerOpenLoopSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("live-load e2e; skipped in -short")
	}
	lab, bundle := fixture(t)
	s, err := server.New(server.Config{
		Workers:    1,
		QueueDepth: 1,
		Lab:        lab,
		Bundles:    map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	spec := Spec{
		Mix:      Mix{Name: "cold", Cold: 1},
		Mode:     OpenLoop,
		Rate:     400,
		Duration: time.Second,
		Seed:     1,
		// Heavier searches so the queue actually backs up on 1 worker.
		Search: traceio.SearchSpec{Pop: 64, Gens: 64, Seed: 1},
	}
	r := &Runner{Client: client.New(ts.URL), Spec: spec}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Errorf("saturation produced %d hard errors; overload must surface as 503 rejects", res.Overall.Errors)
	}
	if res.Overall.Completed+res.Overall.Rejects != res.Overall.Requests {
		t.Errorf("samples unaccounted: %+v", res.Overall)
	}
}
