// Package loadgen is the deterministic load generator behind
// cmd/dvfsload: it replays mixed request streams against a live dvfsd
// and measures QPS, latency percentiles, rejects and queue-depth
// curves (DESIGN.md §11). Every scaling PR is judged by the artifacts
// it emits.
//
// Determinism contract: the request schedule — arrival offsets,
// request classes, and the exact SearchSpec of every submission — is a
// pure function of the Spec (seed, mix, mode, rate, duration). Two
// runs with the same Spec issue byte-identical request streams, so
// QPS/latency deltas between builds measure the server, not the
// generator. What is NOT deterministic is the measured timings — that
// is the point.
package loadgen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
)

// Mode selects how load is offered.
type Mode string

const (
	// OpenLoop offers requests at a fixed arrival rate regardless of
	// how fast the daemon answers — the regime that exposes queue
	// growth and saturation (rejects) when offered load exceeds
	// capacity.
	OpenLoop Mode = "open"
	// ClosedLoop runs N concurrent clients, each submitting its next
	// request only after the previous one finished — throughput
	// self-limits to the daemon's capacity, exposing per-request
	// latency under steady concurrency.
	ClosedLoop Mode = "closed"
)

// Class is the traffic class of one request.
type Class string

const (
	// ClassHot resubmits the identical spec: after the first
	// completion every repeat is a strategy-cache hit.
	ClassHot Class = "hot"
	// ClassCold perturbs the GA seed per request, making every cache
	// key unique: each submission runs a full search.
	ClassCold Class = "cold"
	// ClassAsync is a cold submit followed by a poll chain until the
	// job reaches a terminal state — the 202+poll contract end to end.
	ClassAsync Class = "async"
)

// Mix is a workload composition: relative weights of the traffic
// classes in the request stream.
type Mix struct {
	Name  string `json:"name"`
	Hot   int    `json:"hot"`
	Cold  int    `json:"cold"`
	Async int    `json:"async"`
}

func (m Mix) total() int { return m.Hot + m.Cold + m.Async }

func (m Mix) validate() error {
	if m.Hot < 0 || m.Cold < 0 || m.Async < 0 || m.total() == 0 {
		return fmt.Errorf("loadgen: mix %q weights hot=%d cold=%d async=%d must be non-negative and not all zero",
			m.Name, m.Hot, m.Cold, m.Async)
	}
	return nil
}

// BuiltinMixes are the three canonical mixes every BENCH_6 artifact
// covers: pure cache-hot, pure cache-cold, and a mixed stream with
// async submit-then-poll chains.
func BuiltinMixes() []Mix {
	return []Mix{
		{Name: "hot", Hot: 1},
		{Name: "cold", Cold: 1},
		{Name: "mixed", Hot: 5, Cold: 3, Async: 2},
	}
}

// MixByName resolves a built-in mix.
func MixByName(name string) (Mix, error) {
	for _, m := range BuiltinMixes() {
		if m.Name == strings.ToLower(strings.TrimSpace(name)) {
			return m, nil
		}
	}
	names := make([]string, 0, 3)
	for _, m := range BuiltinMixes() {
		names = append(names, m.Name)
	}
	return Mix{}, fmt.Errorf("loadgen: unknown mix %q (available: %s)", name, strings.Join(names, ", "))
}

// Spec fully determines a load run's request schedule.
type Spec struct {
	Mix  Mix
	Mode Mode
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Clients is the closed-loop concurrency.
	Clients int
	// Duration bounds the offered load window.
	Duration time.Duration
	// Seed drives the class sequence; the request schedule is a pure
	// function of the Spec.
	Seed int64
	// Workload is the registry workload submitted.
	Workload string
	// Search is the base SearchSpec; hot requests submit it verbatim,
	// cold/async requests perturb only the GA seed.
	Search traceio.SearchSpec
	// Poll is the async-chain poll interval.
	Poll time.Duration
	// Scrape is the mid-run /metrics scrape interval for queue-depth
	// curves; 0 disables scraping.
	Scrape time.Duration
}

// withDefaults fills the knobs a zero Spec leaves open.
func (s Spec) withDefaults() Spec {
	if s.Mode == "" {
		s.Mode = OpenLoop
	}
	if s.Rate <= 0 {
		s.Rate = 20
	}
	if s.Clients < 1 {
		s.Clients = 4
	}
	if s.Duration <= 0 {
		s.Duration = 2 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workload == "" {
		s.Workload = "resnet50"
	}
	if s.Search.Pop == 0 {
		s.Search.Pop = 16
	}
	if s.Search.Gens == 0 {
		s.Search.Gens = 8
	}
	if s.Search.Seed == 0 {
		s.Search.Seed = 1
	}
	if s.Poll <= 0 {
		s.Poll = 5 * time.Millisecond
	}
	return s
}

func (s Spec) validate() error {
	if err := s.Mix.validate(); err != nil {
		return err
	}
	switch s.Mode {
	case OpenLoop, ClosedLoop:
	default:
		return fmt.Errorf("loadgen: unknown mode %q (open, closed)", s.Mode)
	}
	return nil
}

// Request is one scheduled submission.
type Request struct {
	// Index is the request's position in its stream.
	Index int
	// Client is the stream that issues it (0 in open-loop mode).
	Client int
	Class  Class
	// At is the arrival offset from run start (open-loop only).
	At time.Duration
	// Submit is the fully-resolved request body; cold/async carry
	// their unique perturbed seed.
	Submit *traceio.StrategyRequest
}

// Stream deterministically generates one client's request sequence.
type Stream struct {
	spec    Spec
	client  int
	builder client.Builder
	rng     *rand.Rand
	n       int
	cold    int
}

// Stream returns client c's request stream. Streams for different
// clients are independent and deterministic: stream c always issues
// the same sequence for the same Spec.
func (s Spec) Stream(c int) *Stream {
	sp := s.withDefaults()
	return &Stream{
		spec:    sp,
		client:  c,
		builder: client.NewBuilder(sp.Workload, sp.Search),
		// Per-client seeding keeps closed-loop schedules independent
		// of how many requests other clients manage to issue.
		rng: rand.New(rand.NewSource(sp.Seed + int64(c)*7919)),
	}
}

// Next returns the stream's next request. In open-loop mode arrivals
// are evenly spaced at the fixed rate.
func (st *Stream) Next() Request {
	i := st.n
	st.n++
	r := Request{
		Index:  i,
		Client: st.client,
		Class:  st.drawClass(),
	}
	if st.spec.Mode == OpenLoop {
		r.At = time.Duration(float64(i) * float64(time.Second) / st.spec.Rate)
	}
	switch r.Class {
	case ClassHot:
		r.Submit = st.builder.Request()
	default:
		// Unique GA seed per cold/async request: the seed enters the
		// canonical SearchSpec hash, so each submission is a distinct
		// cache key and forces a full search. The counter (not an rng
		// draw) makes uniqueness provable: client streams are spaced
		// a million seeds apart.
		st.cold++
		r.Submit = st.builder.WithSeed(st.spec.Search.Seed + int64(st.client+1)*1_000_000 + int64(st.cold))
	}
	return r
}

// drawClass picks the request class by mix weight.
func (st *Stream) drawClass() Class {
	m := st.spec.Mix
	v := st.rng.Intn(m.total())
	switch {
	case v < m.Hot:
		return ClassHot
	case v < m.Hot+m.Cold:
		return ClassCold
	default:
		return ClassAsync
	}
}

// Schedule expands the open-loop request schedule: every arrival the
// run will offer within Duration. It errors in closed-loop mode, where
// the issue count depends on measured completions (use Stream).
func (s Spec) Schedule() ([]Request, error) {
	sp := s.withDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}
	if sp.Mode != OpenLoop {
		return nil, fmt.Errorf("loadgen: Schedule is open-loop only; closed-loop streams are unbounded (use Stream)")
	}
	n := int(sp.Rate * sp.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	st := sp.Stream(0)
	out := make([]Request, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out, nil
}
