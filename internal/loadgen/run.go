package loadgen

import (
	"context"
	"errors"
	"sync"
	"time"

	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
)

// Runner replays one Spec against a live dvfsd and collects the
// measurements for a Result.
type Runner struct {
	// Client is the dvfsd client; the runner installs its own Trace
	// hook on a shallow copy, leaving the caller's client untouched.
	Client *client.Client
	Spec   Spec
	// Ring, when set, routes each request to the ring owner of its
	// strategy key — the same routing dvfsd itself performs — so the
	// generator measures owner-local latency instead of proxy hops.
	// Requests whose owner is unknown fall back to Client. The /metrics
	// scraper still targets Client only.
	Ring *ring.Ring
}

// route picks the client that should carry one request: the key
// owner's peer when a ring is configured, else the base client.
func route(base *client.Client, peers map[string]*client.Client, rg *ring.Ring, req *traceio.StrategyRequest) *client.Client {
	if rg == nil || req == nil {
		return base
	}
	key, err := req.Key()
	if err != nil {
		return base // the daemon will answer 4xx; let it attribute the error
	}
	if pc, ok := peers[rg.Owner(key).ID]; ok {
		return pc
	}
	return base
}

// sample is one finished logical request: for hot/cold the submit
// round trip, for async the whole submit→poll→terminal chain.
type sample struct {
	class   Class
	latency time.Duration
	// ok: the request completed its contract (2xx, and for async the
	// job reached "done"). reject: the daemon shed it with 503.
	// Anything else counts as an error.
	ok     bool
	reject bool
}

// Run offers the Spec's load and returns the measured Result. It
// blocks until the offered window has elapsed and every in-flight
// request has completed or ctx has been cancelled.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	spec := r.Spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	var (
		mu      sync.Mutex
		samples []sample
		http    = newHTTPTally()
	)
	// Shallow-copy the client so the Trace hook install is local to
	// this run.
	cl := *r.Client
	cl.Trace = func(ri client.RequestInfo) {
		mu.Lock()
		http.note(ri)
		mu.Unlock()
	}
	// Ring mode: one traced peer client per node, so each request can
	// be issued straight to its key's owner.
	peers := make(map[string]*client.Client)
	if r.Ring != nil {
		for _, n := range r.Ring.Nodes() {
			pc := cl
			pc.BaseURL = n.Addr
			peers[n.ID] = &pc
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()

	// Mid-run /metrics scraper: queue-depth and running-jobs curves
	// are how the artifact shows saturation building and draining. It
	// runs on its own WaitGroup: the runner waits for the request
	// goroutines first, then cancels runCtx to stop the scraper —
	// sharing wg would deadlock (the scraper only exits on the cancel
	// that waits for wg).
	var queue []QueueSample
	var scrapeWG sync.WaitGroup
	if spec.Scrape > 0 {
		// The scraper gets its own un-hooked client: scrapes are
		// control traffic, not offered load, and the final scrape is
		// routinely cancelled mid-flight when the run ends — neither
		// belongs in the HTTP round-trip stats.
		scl := *r.Client
		scl.Trace = nil
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			t := time.NewTicker(spec.Scrape)
			defer t.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-t.C:
				}
				text, err := scl.Metrics(runCtx)
				if err != nil {
					continue
				}
				qs := QueueSample{ElapsedMillis: millisSince(start)}
				if v, ok := parseGaugeInt(text, "dvfsd_queue_depth"); ok {
					qs.Depth = v
				}
				if v, ok := parseGaugeInt(text, "dvfsd_jobs_running"); ok {
					qs.Running = v
				}
				mu.Lock()
				queue = append(queue, qs)
				mu.Unlock()
			}
		}()
	}

	issue := func(req Request) {
		s := r.issue(runCtx, route(&cl, peers, r.Ring, req.Submit), spec, req)
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	switch spec.Mode {
	case OpenLoop:
		sched, err := spec.Schedule()
		if err != nil {
			return nil, err
		}
	dispatch:
		for _, req := range sched {
			if d := req.At - time.Since(start); d > 0 {
				select {
				case <-runCtx.Done():
					break dispatch
				case <-time.After(d):
				}
			}
			if runCtx.Err() != nil {
				break dispatch
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				issue(req)
			}(req)
		}
	case ClosedLoop:
		deadline := start.Add(spec.Duration)
		for c := 0; c < spec.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				st := spec.Stream(c)
				for time.Now().Before(deadline) && runCtx.Err() == nil {
					issue(st.Next())
				}
			}(c)
		}
	}

	// Wait for in-flight chains, then stop the scraper.
	done := make(chan struct{})
	go func() {
		// This waiter goroutine exits once wg drains; on ctx cancel the
		// issue goroutines unwind promptly and wg still reaches zero.
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		cancel()
		<-done
	}
	cancel()
	scrapeWG.Wait()
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	res := buildResult(spec, samples, http, queue, elapsed)
	return res, ctx.Err()
}

// issue executes one logical request and classifies its outcome.
func (r *Runner) issue(ctx context.Context, cl *client.Client, spec Spec, req Request) sample {
	s := sample{class: req.Class}
	start := time.Now()
	st, err := cl.Submit(ctx, req.Submit)
	if err != nil {
		s.latency = time.Since(start)
		var se *client.StatusError
		if errors.As(err, &se) && se.Code == 503 {
			s.reject = true
		}
		return s
	}
	if req.Class == ClassAsync && !traceio.IsTerminal(st.State) {
		// Chain the poll loop; latency covers submit→terminal.
		st, err = cl.Wait(ctx, st.ID, spec.Poll)
		if err != nil {
			s.latency = time.Since(start)
			return s
		}
	}
	s.latency = time.Since(start)
	// Hot/cold accept either the 202 ack or a 200 cache hit; async
	// additionally requires the chain to converge on success.
	s.ok = req.Class != ClassAsync || st.State == traceio.JobDone
	return s
}
