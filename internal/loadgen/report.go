package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"npudvfs/internal/server/client"
	"npudvfs/internal/units"
)

// ClassStats summarizes the finished logical requests of one traffic
// class (or the whole run). Latencies are end-to-end: for async
// chains they span submit through the terminal poll.
type ClassStats struct {
	Requests  int          `json:"requests"`
	Completed int          `json:"completed"`
	Rejects   int          `json:"rejects"`
	Errors    int          `json:"errors"`
	MeanMs    units.Millis `json:"mean_ms"`
	P50Ms     units.Millis `json:"p50_ms"`
	P90Ms     units.Millis `json:"p90_ms"`
	P99Ms     units.Millis `json:"p99_ms"`
	MaxMs     units.Millis `json:"max_ms"`
}

// QueueSample is one mid-run /metrics scrape.
type QueueSample struct {
	ElapsedMillis units.Millis `json:"t_ms"`
	Depth         int          `json:"queue_depth"`
	Running       int          `json:"running"`
}

// HTTPStats is the transport-level view from the client Trace hook:
// every round trip, including each poll inside an async chain.
type HTTPStats struct {
	RoundTrips int `json:"round_trips"`
	// ByCode counts responses per HTTP status; key "transport" counts
	// requests that failed before a status arrived.
	ByCode map[string]int `json:"by_code"`
}

// httpTally accumulates HTTPStats under the runner's mutex.
type httpTally struct{ stats HTTPStats }

func newHTTPTally() *httpTally {
	return &httpTally{stats: HTTPStats{ByCode: map[string]int{}}}
}

func (t *httpTally) note(ri client.RequestInfo) {
	t.stats.RoundTrips++
	key := "transport"
	if ri.Code != 0 {
		key = strconv.Itoa(ri.Code)
	}
	t.stats.ByCode[key]++
}

// Result is the measured outcome of one load run.
type Result struct {
	Mix     string  `json:"mix"`
	Mode    string  `json:"mode"`
	Rate    float64 `json:"rate_rps,omitempty"`
	Clients int     `json:"clients,omitempty"`
	// ElapsedSeconds is the measured wall time from first offered
	// request to last completion.
	ElapsedSeconds float64 `json:"elapsed_s"`
	// QPS is completed logical requests per elapsed second.
	QPS     float64               `json:"qps"`
	Overall ClassStats            `json:"overall"`
	Classes map[string]ClassStats `json:"classes"`
	HTTP    HTTPStats             `json:"http"`
	// MaxQueueDepth is the deepest scraped backlog; Queue is the full
	// saturation curve.
	MaxQueueDepth int           `json:"max_queue_depth"`
	Queue         []QueueSample `json:"queue,omitempty"`
	// QPSVsSeed / P99VsSeed compare against the frozen-seed baseline
	// (>1 means better than the baseline on both axes); zero until
	// ApplyBaseline.
	QPSVsSeed float64 `json:"qps_vs_seed,omitempty"`
	P99VsSeed float64 `json:"p99_vs_seed,omitempty"`
}

// buildResult folds samples into a Result. Called with the runner's
// mutex held.
func buildResult(spec Spec, samples []sample, http *httpTally, queue []QueueSample, elapsed time.Duration) *Result {
	res := &Result{
		Mix:            spec.Mix.Name,
		Mode:           string(spec.Mode),
		ElapsedSeconds: elapsed.Seconds(),
		Classes:        map[string]ClassStats{},
		HTTP:           http.stats,
		Queue:          queue,
	}
	if spec.Mode == OpenLoop {
		res.Rate = spec.Rate
	} else {
		res.Clients = spec.Clients
	}
	byClass := map[Class][]sample{}
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s)
	}
	for c, ss := range byClass {
		res.Classes[string(c)] = foldClass(ss)
	}
	res.Overall = foldClass(samples)
	if elapsed > 0 {
		res.QPS = float64(res.Overall.Completed) / elapsed.Seconds()
	}
	for _, q := range queue {
		if q.Depth > res.MaxQueueDepth {
			res.MaxQueueDepth = q.Depth
		}
	}
	return res
}

func foldClass(ss []sample) ClassStats {
	st := ClassStats{Requests: len(ss)}
	lat := make([]time.Duration, 0, len(ss))
	var sum time.Duration
	for _, s := range ss {
		switch {
		case s.ok:
			st.Completed++
			lat = append(lat, s.latency)
			sum += s.latency
		case s.reject:
			st.Rejects++
		default:
			st.Errors++
		}
	}
	if len(lat) == 0 {
		return st
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	st.MeanMs = toMillis(sum / time.Duration(len(lat)))
	st.P50Ms = toMillis(quantile(lat, 0.50))
	st.P90Ms = toMillis(quantile(lat, 0.90))
	st.P99Ms = toMillis(quantile(lat, 0.99))
	st.MaxMs = toMillis(lat[len(lat)-1])
	return st
}

// quantile picks the nearest-rank quantile from a sorted slice; by
// construction quantile(q1) <= quantile(q2) for q1 <= q2.
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func toMillis(d time.Duration) units.Millis {
	return units.Millis(float64(d) / float64(time.Millisecond))
}

func millisSince(start time.Time) units.Millis {
	return toMillis(time.Since(start))
}

// parseGaugeInt extracts an unlabelled integer gauge from Prometheus
// exposition text.
func parseGaugeInt(text, name string) (int, bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, false
		}
		return int(v), true
	}
	return 0, false
}

// Artifact is the on-disk BENCH_6 schema: one run per mix plus the
// shared configuration, mirroring the scripts/bench.sh artifacts.
type Artifact struct {
	BenchID     string         `json:"bench_id"`
	GeneratedAt string         `json:"generated_at"`
	Config      ArtifactConfig `json:"config"`
	Runs        []*Result      `json:"runs"`
}

// ArtifactConfig records the knobs shared by every run in the
// artifact.
type ArtifactConfig struct {
	Workload string  `json:"workload"`
	Seed     int64   `json:"seed"`
	Mode     string  `json:"mode"`
	Rate     float64 `json:"rate_rps,omitempty"`
	Clients  int     `json:"clients,omitempty"`
	Duration string  `json:"duration"`
	Pop      int     `json:"pop"`
	Gens     int     `json:"gens"`
	// Workers/QueueDepth describe the self-served daemon; zero when
	// the run targeted an external daemon at Addr.
	Workers    int    `json:"workers,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	Addr       string `json:"addr,omitempty"`
}

// ApplyBaseline fills each run's *_vs_seed ratios from the matching
// mix in the frozen-seed baseline artifact. QPS ratio is current/base
// and p99 ratio is base/current so >1 is an improvement on both.
func (a *Artifact) ApplyBaseline(base *Artifact) {
	byMix := map[string]*Result{}
	for _, r := range base.Runs {
		byMix[r.Mix] = r
	}
	for _, r := range a.Runs {
		b, ok := byMix[r.Mix]
		if !ok {
			continue
		}
		if b.QPS > 0 {
			r.QPSVsSeed = r.QPS / b.QPS
		}
		if r.Overall.P99Ms > 0 {
			r.P99VsSeed = float64(b.Overall.P99Ms) / float64(r.Overall.P99Ms)
		}
	}
}

// LoadArtifact reads a BENCH_6-schema artifact.
func LoadArtifact(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &a, nil
}

// WriteArtifact writes the artifact as indented JSON, creating parent
// directories as needed.
func (a *Artifact) WriteArtifact(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
