package loadgen

import (
	"testing"

	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
)

func TestRouteFollowsRingOwner(t *testing.T) {
	rg, err := ring.New([]ring.Node{
		{ID: "n1", Addr: "http://127.0.0.1:7071"},
		{ID: "n2", Addr: "http://127.0.0.1:7072"},
	}, ring.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	base := client.New("http://base")
	peers := map[string]*client.Client{
		"n1": client.New("http://127.0.0.1:7071"),
		"n2": client.New("http://127.0.0.1:7072"),
	}
	req := &traceio.StrategyRequest{
		Workload: "resnet50",
		Search:   traceio.SearchSpec{Pop: 16, Gens: 8, Seed: 1},
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	want := rg.Owner(key).ID
	got := route(base, peers, rg, req)
	if got != peers[want] {
		t.Errorf("route picked %s, want owner %s (%s)", got.BaseURL, want, peers[want].BaseURL)
	}
	// No ring: base client, untouched.
	if route(base, peers, nil, req) != base {
		t.Error("route without a ring must return the base client")
	}
	// Unresolvable request: base client (the daemon attributes the 4xx).
	bad := &traceio.StrategyRequest{}
	if route(base, peers, rg, bad) != base {
		t.Error("route with an unresolvable request must fall back to the base client")
	}
	// Owner missing from the peer set: base client.
	if route(base, map[string]*client.Client{}, rg, req) != base {
		t.Error("route with no peer for the owner must fall back to the base client")
	}
}
