package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the generator's core contract: the
// full open-loop schedule — arrival offsets, class sequence, and every
// submitted SearchSpec — is a pure function of the Spec.
func TestScheduleDeterministic(t *testing.T) {
	spec := Spec{
		Mix:      Mix{Name: "mixed", Hot: 5, Cold: 3, Async: 2},
		Mode:     OpenLoop,
		Rate:     50,
		Duration: 2 * time.Second,
		Seed:     42,
	}
	a, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 {
		t.Fatalf("schedule length %d, want rate*duration = 100", len(a))
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same spec produced different schedules:\n%s\n%s", ja, jb)
	}

	// A different seed must actually change the stream (class order).
	spec2 := spec
	spec2.Seed = 43
	c, err := spec2.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestStreamSeedsUnique proves the cache-cold guarantee: every
// cold/async request across every client stream carries a distinct GA
// seed, and none collides with the hot (base) seed.
func TestStreamSeedsUnique(t *testing.T) {
	spec := Spec{
		Mix:  Mix{Name: "mixed", Hot: 1, Cold: 1, Async: 1},
		Mode: ClosedLoop,
		Seed: 7,
	}
	seen := map[int64]bool{1: true} // base seed (withDefaults)
	for c := 0; c < 8; c++ {
		st := spec.Stream(c)
		for i := 0; i < 500; i++ {
			r := st.Next()
			if r.Class == ClassHot {
				if r.Submit.Search.Seed != 1 {
					t.Fatalf("hot request carries perturbed seed %d", r.Submit.Search.Seed)
				}
				continue
			}
			s := r.Submit.Search.Seed
			if seen[s] {
				t.Fatalf("client %d request %d: duplicate cold seed %d", c, i, s)
			}
			seen[s] = true
		}
	}
}

// TestMixWeights checks the class draw respects degenerate mixes and
// that pure mixes emit only their class.
func TestMixWeights(t *testing.T) {
	for _, tc := range []struct {
		mix  Mix
		want Class
	}{
		{Mix{Name: "hot", Hot: 1}, ClassHot},
		{Mix{Name: "cold", Cold: 1}, ClassCold},
		{Mix{Name: "async", Async: 1}, ClassAsync},
	} {
		st := Spec{Mix: tc.mix, Seed: 3}.Stream(0)
		for i := 0; i < 50; i++ {
			if got := st.Next().Class; got != tc.want {
				t.Fatalf("mix %q emitted class %q", tc.mix.Name, got)
			}
		}
	}
}

func TestMixByName(t *testing.T) {
	m, err := MixByName(" Mixed ")
	if err != nil || m.Name != "mixed" {
		t.Fatalf("MixByName(mixed) = %+v, %v", m, err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestScheduleRejectsClosedLoop(t *testing.T) {
	_, err := Spec{Mix: Mix{Name: "hot", Hot: 1}, Mode: ClosedLoop}.Schedule()
	if err == nil {
		t.Fatal("closed-loop Schedule should error")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	lat := []time.Duration{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	ss := make([]sample, len(lat))
	for i, d := range lat {
		ss[i] = sample{class: ClassHot, ok: true, latency: d * time.Millisecond}
	}
	st := foldClass(ss)
	if !(st.P50Ms <= st.P90Ms && st.P90Ms <= st.P99Ms && st.P99Ms <= st.MaxMs) {
		t.Fatalf("percentiles not monotonic: %+v", st)
	}
	if st.P50Ms < 4 || st.P50Ms > 6 {
		t.Fatalf("p50 %v outside [4,6]ms for 1..10ms", st.P50Ms)
	}
	if st.MaxMs < 10 {
		t.Fatalf("max %v < 10ms", st.MaxMs)
	}
}

func TestParseGaugeInt(t *testing.T) {
	text := "# HELP dvfsd_queue_depth Jobs waiting.\n# TYPE dvfsd_queue_depth gauge\ndvfsd_queue_depth 7\ndvfsd_jobs_running 2\n"
	if v, ok := parseGaugeInt(text, "dvfsd_queue_depth"); !ok || v != 7 {
		t.Fatalf("queue_depth = %d, %v", v, ok)
	}
	if v, ok := parseGaugeInt(text, "dvfsd_jobs_running"); !ok || v != 2 {
		t.Fatalf("running = %d, %v", v, ok)
	}
	if _, ok := parseGaugeInt(text, "missing"); ok {
		t.Fatal("missing gauge parsed")
	}
}

// TestApplyBaseline checks the vs-seed ratio orientation: faster QPS
// and lower p99 both land above 1.
func TestApplyBaseline(t *testing.T) {
	cur := &Artifact{Runs: []*Result{{Mix: "hot", QPS: 200, Overall: ClassStats{P99Ms: 5}}}}
	base := &Artifact{Runs: []*Result{{Mix: "hot", QPS: 100, Overall: ClassStats{P99Ms: 10}}}}
	cur.ApplyBaseline(base)
	r := cur.Runs[0]
	if r.QPSVsSeed < 1.99 || r.QPSVsSeed > 2.01 {
		t.Fatalf("qps_vs_seed = %v, want 2", r.QPSVsSeed)
	}
	if r.P99VsSeed < 1.99 || r.P99VsSeed > 2.01 {
		t.Fatalf("p99_vs_seed = %v, want 2", r.P99VsSeed)
	}
}
