package ga

import (
	"context"
	"fmt"
	"testing"
)

// sameResult asserts two results are byte-identical in every field the
// determinism contract covers (DESIGN.md §13): not just the winning
// individual but the whole observable outcome, including the
// deterministically aggregated cache and migration counters.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if fmt.Sprint(a.Best) != fmt.Sprint(b.Best) || a.BestScore != b.BestScore {
		t.Fatalf("%s: best diverged: %v (%v) vs %v (%v)", label, a.Best, a.BestScore, b.Best, b.BestScore)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(a.History), len(b.History))
	}
	for g := range a.History {
		if a.History[g] != b.History[g] {
			t.Fatalf("%s gen %d: history %v vs %v", label, g, a.History[g], b.History[g])
		}
	}
	if a.Evaluations != b.Evaluations || a.Generations != b.Generations {
		t.Fatalf("%s: evals/gens differ: %d/%d vs %d/%d", label, a.Evaluations, a.Generations, b.Evaluations, b.Generations)
	}
	if a.CacheHits != b.CacheHits || a.CacheEvictions != b.CacheEvictions {
		t.Fatalf("%s: cache stats differ: hits %d/evict %d vs hits %d/evict %d",
			label, a.CacheHits, a.CacheEvictions, b.CacheHits, b.CacheEvictions)
	}
	if a.Islands != b.Islands || a.Migrations != b.Migrations {
		t.Fatalf("%s: islands/migrations differ: %d/%d vs %d/%d", label, a.Islands, a.Migrations, b.Islands, b.Migrations)
	}
	if fmt.Sprint(a.IslandEvaluations) != fmt.Sprint(b.IslandEvaluations) {
		t.Fatalf("%s: per-island evaluations differ: %v vs %v", label, a.IslandEvaluations, b.IslandEvaluations)
	}
}

// TestIslandWorkerCountInvariance is the central determinism claim of
// the island engine: at every island count, the full Result is
// byte-identical whether the islands run on one worker or eight. Both
// scoring paths are covered — the memo-cache cohort path (plain
// Problem) and the incremental partial-sum path.
func TestIslandWorkerCountInvariance(t *testing.T) {
	problems := map[string]Problem{
		"cohort":      &matchProblem{target: target(16, 5), alleles: 5},
		"incremental": newIntSumProblem(24, 8),
	}
	for name, p := range problems {
		for _, islands := range []int{1, 2, 4} {
			cfg := DefaultConfig()
			cfg.PopSize = 60
			cfg.Generations = 100
			cfg.Islands = islands
			cfg.Workers = 1
			ref, err := Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Islands != islands {
				t.Fatalf("%s islands=%d: Result.Islands = %d", name, islands, ref.Islands)
			}
			cfg.Workers = 8
			got, err := Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("%s islands=%d workers 1 vs 8", name, islands), ref, got)
		}
	}
}

// TestIslandCountsChangeTrajectoriesNotValidity: different island
// counts are different (equally valid) searches; each must still
// satisfy the structural invariants.
func TestIslandCountsChangeTrajectoriesNotValidity(t *testing.T) {
	p := &matchProblem{target: target(16, 5), alleles: 5}
	for _, islands := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.PopSize = 60
		cfg.Generations = 100
		cfg.Islands = islands
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IslandEvaluations) != islands {
			t.Fatalf("islands=%d: len(IslandEvaluations) = %d", islands, len(res.IslandEvaluations))
		}
		sum := 0
		for _, v := range res.IslandEvaluations {
			sum += v
		}
		if sum != res.Evaluations {
			t.Fatalf("islands=%d: per-island evals sum %d != total %d", islands, sum, res.Evaluations)
		}
		wantMig := 0
		if islands > 1 {
			wantMig = len(migrationGens(cfg.Generations, DefaultMigrationEvery)) * islands * DefaultMigrants
		}
		if res.Migrations != wantMig {
			t.Fatalf("islands=%d: Migrations = %d, want %d", islands, res.Migrations, wantMig)
		}
	}
}

// TestGoldenMigrationSchedule pins the migration schedule itself: the
// exact generations at which the ring exchange fires for the paper's
// production search shape (600 generations, cadence 16). A change
// here silently changes every multi-island trajectory.
func TestGoldenMigrationSchedule(t *testing.T) {
	got := migrationGens(600, 16)
	if len(got) != 37 {
		t.Fatalf("len(migrationGens(600,16)) = %d, want 37", len(got))
	}
	for i, g := range got {
		if g != 16*(i+1) {
			t.Fatalf("migrationGens(600,16)[%d] = %d, want %d", i, g, 16*(i+1))
		}
	}
	if last := got[len(got)-1]; last != 592 {
		t.Fatalf("last migration at generation %d, want 592", last)
	}
	// The final generation never migrates: nothing breeds from it.
	if gens := migrationGens(32, 16); len(gens) != 1 || gens[0] != 16 {
		t.Fatalf("migrationGens(32,16) = %v, want [16]", gens)
	}
}

// TestRingMigrationTopology drives migrate directly: after one
// exchange, island (i+1) mod N holds island i's pre-migration elites
// in place of its own worst individuals.
func TestRingMigrationTopology(t *testing.T) {
	p := newIntSumProblem(12, 6)
	cfg := DefaultConfig()
	cfg.PopSize = 30
	cfg.Generations = 10
	cfg.Islands = 3
	e, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.islands {
		isl := &e.islands[i]
		isl.reset(e)
		isl.fillRandom(e)
		isl.scoreInitial(e)
		isl.rank()
	}
	m := e.migrants
	if m != DefaultMigrants {
		t.Fatalf("migrants = %d, want %d", m, DefaultMigrants)
	}
	top := make([][][]int, len(e.islands))
	for i := range e.islands {
		isl := &e.islands[i]
		for j := 0; j < m; j++ {
			g := append([]int(nil), isl.pop[isl.perm[j]].genes...)
			top[i] = append(top[i], g)
		}
	}
	e.migrate()
	for i := range e.islands {
		dst := &e.islands[(i+1)%len(e.islands)]
		for j := 0; j < m; j++ {
			found := false
			for r := 0; r < dst.size && !found; r++ {
				found = fmt.Sprint(dst.pop[r].genes) == fmt.Sprint(top[i][j])
			}
			if !found {
				t.Fatalf("island %d's elite %d missing from ring successor %d after migrate", i, j, (i+1)%len(e.islands))
			}
		}
	}
	if e.migrations != len(e.islands)*m {
		t.Fatalf("migrations counter = %d, want %d", e.migrations, len(e.islands)*m)
	}
}

// TestEngineReuseByteIdentical: repeat Run calls on one Engine must
// reproduce the first run exactly — RNG streams re-seed, caches clear,
// populations rebuild. This is the zero-alloc serving-path shape.
func TestEngineReuseByteIdentical(t *testing.T) {
	problems := map[string]Problem{
		"cohort":      &matchProblem{target: target(14, 5), alleles: 5},
		"incremental": newIntSumProblem(20, 7),
	}
	for name, p := range problems {
		cfg := DefaultConfig()
		cfg.PopSize = 48
		cfg.Generations = 80
		cfg.Islands = 2
		e, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		first, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ref := first.Clone()
		again, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, name+" engine reuse", ref, again)
	}
}

// TestWarmStartSeedsPopulation: a warm-start vector enters the initial
// population, so planting the optimum makes generation 0 perfect.
func TestWarmStartSeedsPopulation(t *testing.T) {
	tgt := target(18, 5)
	p := &matchProblem{target: tgt, alleles: 5}
	cfg := DefaultConfig()
	cfg.PopSize = 40
	cfg.Generations = 5
	cfg.Islands = 2
	cfg.WarmStart = [][]int{append([]int(nil), tgt...)}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0] != float64(len(tgt)) {
		t.Fatalf("warm-started History[0] = %v, want %v", res.History[0], float64(len(tgt)))
	}
	if res.BestScore != float64(len(tgt)) {
		t.Fatalf("warm-started BestScore = %v, want %v", res.BestScore, float64(len(tgt)))
	}

	cfg.WarmStart = [][]int{make([]int, 3)}
	if _, err := Run(p, cfg); err == nil {
		t.Fatal("wrong-length warm-start vector accepted")
	}
}

// TestCapturePopulation: the final population comes back with the
// requested shape, contains the winner, and package-level Run hands
// the caller an independent copy.
func TestCapturePopulation(t *testing.T) {
	p := &matchProblem{target: target(12, 4), alleles: 4}
	cfg := DefaultConfig()
	cfg.PopSize = 36
	cfg.Generations = 40
	cfg.Islands = 3
	cfg.CapturePopulation = true
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != cfg.PopSize {
		t.Fatalf("len(Population) = %d, want %d", len(res.Population), cfg.PopSize)
	}
	foundBest := false
	for _, row := range res.Population {
		if len(row) != 12 {
			t.Fatalf("population row of length %d, want 12", len(row))
		}
		if fmt.Sprint(row) == fmt.Sprint(res.Best) {
			foundBest = true
		}
	}
	if !foundBest {
		t.Fatal("Best individual missing from captured population")
	}
	// Defensive copy: corrupting the returned rows must not leak into a
	// fresh identical run.
	for _, row := range res.Population {
		for i := range row {
			row[i] = -1
		}
	}
	again, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range again.Population {
		for _, g := range row {
			if g < 0 || g >= 4 {
				t.Fatalf("fresh run returned corrupted population gene %d", g)
			}
		}
	}

	cfg.CapturePopulation = false
	bare, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Population != nil {
		t.Fatal("Population captured without CapturePopulation")
	}
}

// TestIslandConfigValidation covers the island-specific New errors and
// the never-failing defaults.
func TestIslandConfigValidation(t *testing.T) {
	p := &matchProblem{target: target(8, 3), alleles: 3}
	cfg := DefaultConfig()
	cfg.PopSize = 20

	cfg.Islands = -1
	if _, err := New(p, cfg); err == nil {
		t.Error("negative island count accepted")
	}
	cfg.Islands = 11 // > PopSize/2
	if _, err := New(p, cfg); err == nil {
		t.Error("islands > PopSize/2 accepted")
	}
	cfg.Islands = 4
	cfg.Elitism = 5 // == island size
	if _, err := New(p, cfg); err == nil {
		t.Error("elitism >= island size accepted")
	}
	// Defaulted island count must shrink itself into validity for any
	// population the single-population engine accepted.
	cfg.Islands = 0
	for _, pop := range []int{2, 3, 5, 8, 33, 200} {
		cfg.PopSize = pop
		cfg.Elitism = 1
		if _, err := New(p, cfg); err != nil {
			t.Errorf("defaulted islands rejected PopSize=%d: %v", pop, err)
		}
	}
}

// TestMigrationDisabled: negative cadence or migrant count turns the
// exchange off while keeping the islands evolving independently.
func TestMigrationDisabled(t *testing.T) {
	p := newIntSumProblem(16, 6)
	cfg := DefaultConfig()
	cfg.PopSize = 40
	cfg.Generations = 60
	cfg.Islands = 4
	cfg.MigrationEvery = -1
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("Migrations = %d with migration disabled", res.Migrations)
	}
	cfg.MigrationEvery = 0
	cfg.Migrants = -1
	res, err = Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("Migrations = %d with migrants disabled", res.Migrations)
	}
}
