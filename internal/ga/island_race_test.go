//go:build race

package ga

import (
	"fmt"
	"testing"
)

// TestIslandStressUnderRace exists for the race detector: the widest
// island/worker fan-out the engine supports, on both scoring paths,
// long enough to cross several migration barriers. Any cross-island
// access outside the segment barriers (islands are supposed to share
// nothing mid-segment) shows up here as a data race; the outcome is
// additionally checked against a single-worker run, so a silent
// ordering dependency fails even if it never trips the detector.
func TestIslandStressUnderRace(t *testing.T) {
	problems := map[string]Problem{
		"cohort":      &matchProblem{target: target(16, 5), alleles: 5},
		"incremental": newIntSumProblem(24, 8),
	}
	for name, p := range problems {
		cfg := DefaultConfig()
		cfg.PopSize = 64
		cfg.Generations = 80
		cfg.Islands = 8
		cfg.Workers = 8
		wide, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 1
		ref, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("%s race stress", name), ref, wide)
	}
}
