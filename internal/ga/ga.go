// Package ga implements the genetic-algorithm search used for DVFS
// strategy generation (Sect. 6.3): individuals are integer gene
// vectors (one frequency index per candidate stage), selection is
// score-proportional, crossover swaps the last k genes of two parents,
// and mutation rewrites a random gene with a random allele.
//
// Scoring is parallelized across a worker pool, mirroring the paper's
// use of multiprocessing to evaluate tens of thousands of strategies
// in minutes (Sect. 8.1). Problem implementations must therefore be
// safe for concurrent Score calls.
package ga

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Problem defines the search space and objective.
type Problem interface {
	// Genes returns the individual length (number of stages).
	Genes() int
	// Alleles returns the number of values a gene can take (number of
	// supported frequency points).
	Alleles() int
	// Score returns the fitness of an individual; higher is better.
	// Must be safe for concurrent calls. A NaN score is treated as
	// -Inf fitness (worst), so infeasible individuals may signal
	// themselves with NaN without corrupting selection. Unless
	// Config.NoScoreCache is set, Score must also be a pure function
	// of the gene vector: repeated individuals are served from a
	// memoized cache and never re-scored.
	Score(individual []int) float64
	// Seeds returns individuals to include in the first generation
	// (the paper seeds the baseline all-max-frequency individual and
	// a prior LFC/HFC individual). May be nil.
	Seeds() [][]int
}

// Selection picks the parent-selection scheme. All schemes are
// score-based (selection likelihood increases with score, Sect. 6.3.3);
// they differ in how much pressure they apply when score differences
// are small.
type Selection int

const (
	// RankSelection weights parents quadratically by rank. It is the
	// default: the power-minimization objective leaves compliant
	// individuals within fractions of a percent of each other, where
	// raw proportional selection has almost no pressure.
	RankSelection Selection = iota
	// RouletteSelection weights parents proportionally to their
	// (shifted) scores.
	RouletteSelection
	// TournamentSelection picks the best of three uniformly drawn
	// candidates.
	TournamentSelection
)

// Config tunes the search. The paper's production settings are
// PopSize 200, Generations 600, MutationRate 0.15.
type Config struct {
	PopSize       int
	Generations   int
	MutationRate  float64
	CrossoverRate float64
	// Elitism is how many of the best individuals survive unchanged
	// into the next generation, making the best score monotone.
	Elitism int
	// Seed drives all stochastic choices; equal seeds reproduce runs.
	Seed int64
	// Workers bounds scoring concurrency; 0 means GOMAXPROCS.
	Workers int
	// Selection picks the parent-selection scheme.
	Selection Selection
	// StaleLimit, when positive, stops the search early after this
	// many consecutive generations without best-score improvement.
	StaleLimit int
	// NoScoreCache disables the gene-vector score memoization. The
	// cache is correct whenever Score is a pure function of the gene
	// vector (true for the model-based evaluator); disable it for
	// problems whose Score has observable side effects — e.g. the
	// hardware-in-the-loop search, where every evaluation must spend
	// real hardware time to keep the budget accounting honest.
	NoScoreCache bool
}

// DefaultConfig returns the paper's search settings.
func DefaultConfig() Config {
	return Config{
		PopSize:       200,
		Generations:   600,
		MutationRate:  0.15,
		CrossoverRate: 0.7,
		Elitism:       2,
		Seed:          1,
	}
}

// Result reports the outcome of a search. Best and History are
// defensive copies owned by the caller; mutating them cannot corrupt
// any state the search (or a Problem retaining individuals) still
// references.
type Result struct {
	// Best is the fittest individual found.
	Best []int
	// BestScore is its fitness.
	BestScore float64
	// History records the best score after each generation — the
	// convergence series of Fig. 17.
	History []float64
	// Evaluations counts individuals evaluated (including cache hits),
	// the paper's "strategies assessed" number.
	Evaluations int
	// CacheHits counts evaluations served from the memoized score
	// cache; Evaluations-CacheHits is the number of actual Score
	// calls. CacheHits/Evaluations is the cache hit rate.
	CacheHits int
}

type scored struct {
	genes []int
	score float64
}

// Run executes the genetic search to completion. It is RunContext
// without a cancellation point.
func Run(p Problem, cfg Config) (*Result, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use RunContext
	return RunContext(context.Background(), p, cfg)
}

// RunContext executes the genetic search under a context. Cancellation
// is checked at generation boundaries — a generation is hundreds of
// microsecond-scale Score calls, so the check granularity is
// milliseconds. A cancelled search returns an error wrapping ctx.Err()
// (so errors.Is against context.Canceled / context.DeadlineExceeded
// works) and no Result: partial populations are not exposed because
// callers treat Best as a complete search product.
func RunContext(ctx context.Context, p Problem, cfg Config) (*Result, error) {
	n, alleles := p.Genes(), p.Alleles()
	if n <= 0 {
		return nil, fmt.Errorf("ga: problem has %d genes", n)
	}
	if alleles <= 0 {
		return nil, fmt.Errorf("ga: problem has %d alleles", alleles)
	}
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("ga: population size %d too small", cfg.PopSize)
	}
	if cfg.Generations <= 0 {
		return nil, fmt.Errorf("ga: %d generations", cfg.Generations)
	}
	if cfg.Elitism < 0 || cfg.Elitism >= cfg.PopSize {
		return nil, fmt.Errorf("ga: elitism %d incompatible with population %d", cfg.Elitism, cfg.PopSize)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// First generation: seeds plus random individuals.
	pop := make([]scored, 0, cfg.PopSize)
	for _, s := range p.Seeds() {
		if len(s) != n {
			return nil, fmt.Errorf("ga: seed of length %d, want %d", len(s), n)
		}
		pop = append(pop, scored{genes: append([]int(nil), s...)})
		if len(pop) == cfg.PopSize {
			break
		}
	}
	for len(pop) < cfg.PopSize {
		g := make([]int, n)
		for i := range g {
			g[i] = rng.Intn(alleles)
		}
		pop = append(pop, scored{genes: g})
	}

	var cache scoreCache
	if !cfg.NoScoreCache {
		cache = make(scoreCache)
	}
	res := &Result{}
	res.CacheHits += scoreAll(p, pop, workers, cache)
	res.Evaluations += len(pop)

	stale := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ga: search cancelled at generation %d/%d: %w", gen, cfg.Generations, err)
		}
		sortByScore(pop)
		res.History = append(res.History, pop[0].score)
		if cfg.StaleLimit > 0 && gen > 0 {
			if pop[0].score <= res.History[len(res.History)-2] {
				stale++
				if stale >= cfg.StaleLimit {
					break
				}
			} else {
				stale = 0
			}
		}

		next := make([]scored, 0, cfg.PopSize)
		for i := 0; i < cfg.Elitism; i++ {
			next = append(next, scored{genes: append([]int(nil), pop[i].genes...), score: pop[i].score})
		}
		prefix := buildPrefix(pop, cfg.Selection)
		for len(next) < cfg.PopSize {
			a := pick(pop, prefix, cfg.Selection, rng)
			b := pick(pop, prefix, cfg.Selection, rng)
			childA := append([]int(nil), a.genes...)
			childB := append([]int(nil), b.genes...)
			if rng.Float64() < cfg.CrossoverRate && n > 1 {
				// Swap the last k genes (Sect. 6.3.3).
				k := 1 + rng.Intn(n-1)
				for i := n - k; i < n; i++ {
					childA[i], childB[i] = childB[i], childA[i]
				}
			}
			for _, child := range [][]int{childA, childB} {
				if rng.Float64() < cfg.MutationRate {
					// Rewrite a small burst of random genes; single-gene
					// steps converge too slowly on thousand-stage
					// problems.
					burst := 1 + rng.Intn(3)
					for m := 0; m < burst; m++ {
						child[rng.Intn(n)] = rng.Intn(alleles)
					}
				}
				if len(next) < cfg.PopSize {
					next = append(next, scored{genes: child})
				}
			}
		}
		// Elites keep their scores; score the rest.
		res.CacheHits += scoreAll(p, next[cfg.Elitism:], workers, cache)
		res.Evaluations += len(next) - cfg.Elitism
		pop = next
	}
	sortByScore(pop)
	res.History = append(res.History, pop[0].score)
	res.Best = append([]int(nil), pop[0].genes...)
	res.BestScore = pop[0].score
	res.History = append([]float64(nil), res.History...)
	return res, nil
}

// scoreCache memoizes sanitized fitness values by gene vector, so
// individuals recurring across generations (elites' children, converged
// populations) skip re-simulation. Accessed only from the generation
// loop's goroutine; workers never touch it.
type scoreCache map[string]float64

// geneKey encodes a gene vector as a compact byte string for cache
// lookup.
func geneKey(genes []int) string {
	buf := make([]byte, 0, len(genes)*2)
	var tmp [binary.MaxVarintLen64]byte
	for _, g := range genes {
		n := binary.PutUvarint(tmp[:], uint64(g))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// sanitize maps NaN fitness to -Inf. A NaN score (e.g. an infeasible
// individual whose predicted time divides by zero) would otherwise
// poison the selection prefix sums: every comparison against NaN is
// false, so the binary search in pick degenerates to a single index
// and the population collapses onto it. -Inf orders correctly (worst)
// under sort and all selection schemes.
func sanitize(score float64) float64 {
	if math.IsNaN(score) {
		return math.Inf(-1)
	}
	return score
}

// scoreAll evaluates fitness concurrently, memoizing through cache
// (nil disables memoization), and reports how many individuals were
// served without a Score call. Within one batch, duplicate gene
// vectors are scored once; across batches the cache carries scores
// between generations.
func scoreAll(p Problem, pop []scored, workers int, cache scoreCache) (hits int) {
	if cache == nil {
		scoreBatch(p, pop, indices(len(pop)), workers)
		return 0
	}
	// Partition into cache hits, one representative per novel gene
	// vector, and duplicates of a representative.
	reps := make([]int, 0, len(pop))
	repByKey := make(map[string]int)
	keys := make([]string, len(pop))
	for i := range pop {
		k := geneKey(pop[i].genes)
		keys[i] = k
		if s, ok := cache[k]; ok {
			pop[i].score = s
			hits++
			continue
		}
		if _, ok := repByKey[k]; !ok {
			repByKey[k] = i
			reps = append(reps, i)
		}
	}
	scoreBatch(p, pop, reps, workers)
	for _, i := range reps {
		cache[keys[i]] = pop[i].score
	}
	// Fill duplicates from the representatives just scored.
	for i := range pop {
		rep, ok := repByKey[keys[i]]
		if ok && rep != i {
			pop[i].score = pop[rep].score
			hits++
		}
	}
	return hits
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// scoreBatch runs Score for the given population indices across the
// worker pool. Each worker only writes the scored entries it drew from
// the channel, so no two goroutines touch the same element.
func scoreBatch(p Problem, pop []scored, todo []int, workers int) {
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			pop[i].score = sanitize(p.Score(pop[i].genes))
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(todo))
	for _, i := range todo {
		ch <- i
	}
	close(ch)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				pop[i].score = sanitize(p.Score(pop[i].genes))
			}
		}()
	}
	wg.Wait()
}

func sortByScore(pop []scored) {
	// Insertion sort on mostly-sorted small populations outperforms
	// the generic sort here and keeps determinism trivially.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].score > pop[j-1].score; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// buildPrefix precomputes cumulative selection weights for the chosen
// scheme. pop is sorted descending by score when this is called.
// RankSelection weights fall quadratically with rank, which keeps
// pressure even when compliant individuals' raw scores differ by
// fractions of a percent — the steady state of the power-minimization
// objective. RouletteSelection shifts scores to be non-negative and
// weights proportionally. TournamentSelection needs no prefix.
func buildPrefix(pop []scored, sel Selection) []float64 {
	n := len(pop)
	switch sel {
	case RouletteSelection:
		// The shift baseline is the worst finite score: sanitized
		// (NaN → -Inf) individuals get weight 0 rather than dragging
		// the baseline to -Inf and turning every weight into Inf/NaN.
		minScore := math.Inf(1)
		for _, s := range pop {
			if !math.IsInf(s.score, 0) && s.score < minScore {
				minScore = s.score
			}
		}
		if math.IsInf(minScore, 1) {
			minScore = 0 // no finite scores at all
		}
		prefix := make([]float64, n)
		sum := 0.0
		for i, s := range pop {
			if !math.IsInf(s.score, -1) {
				sum += s.score - minScore + 1e-12
			}
			prefix[i] = sum
		}
		return prefix
	case TournamentSelection:
		return nil
	default: // RankSelection
		prefix := make([]float64, n)
		sum := 0.0
		for i := range pop {
			w := float64(n-i) * float64(n-i)
			sum += w
			prefix[i] = sum
		}
		return prefix
	}
}

// pick selects a parent under the chosen scheme.
func pick(pop []scored, prefix []float64, sel Selection, rng *rand.Rand) *scored {
	if sel == TournamentSelection {
		best := rng.Intn(len(pop))
		for i := 0; i < 2; i++ {
			if c := rng.Intn(len(pop)); pop[c].score > pop[best].score {
				best = c
			}
		}
		return &pop[best]
	}
	total := prefix[len(prefix)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if prefix[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &pop[lo]
}
