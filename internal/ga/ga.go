// Package ga implements the genetic-algorithm search used for DVFS
// strategy generation (Sect. 6.3): individuals are integer gene
// vectors (one frequency index per candidate stage), selection is
// score-proportional, crossover swaps the last k genes of two parents,
// and mutation rewrites a random gene with a random allele.
//
// Scoring is parallelized across a worker pool, mirroring the paper's
// use of multiprocessing to evaluate tens of thousands of strategies
// in minutes (Sect. 8.1). Problem implementations must therefore be
// safe for concurrent Score calls.
//
// The engine is allocation-free in steady state: the two generations
// live in preallocated double buffers whose gene (and partial-sum)
// slices are recycled, and the selection prefix and cache-key scratch
// buffers are reused across generations. Problems implementing
// PartialScorer additionally get incremental (delta) scoring — a child
// produced by tail-swap crossover or a mutation burst inherits its
// parent's partial sums and applies O(changed genes) updates instead
// of an O(genes) re-walk (Config.ExactRescore restores full
// re-scoring). Neither engine choice changes the stochastic
// trajectory: the RNG draw sequence is identical across scoring modes
// and worker counts, so equal seeds reproduce runs.
package ga

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Problem defines the search space and objective.
type Problem interface {
	// Genes returns the individual length (number of stages).
	Genes() int
	// Alleles returns the number of values a gene can take (number of
	// supported frequency points).
	Alleles() int
	// Score returns the fitness of an individual; higher is better.
	// Must be safe for concurrent calls. A NaN score is treated as
	// -Inf fitness (worst), so infeasible individuals may signal
	// themselves with NaN without corrupting selection. Unless
	// Config.NoScoreCache is set, Score must also be a pure function
	// of the gene vector: repeated individuals are served from a
	// memoized cache and never re-scored.
	Score(individual []int) float64
	// Seeds returns individuals to include in the first generation
	// (the paper seeds the baseline all-max-frequency individual and
	// a prior LFC/HFC individual). May be nil.
	Seeds() [][]int
}

// PartialScorer is an optional Problem extension enabling incremental
// (delta) scoring. A conforming problem's fitness must be a pure
// function of a fixed-size vector of running sums over the gene
// vector: InitSums fills the vector with a full walk in ascending
// gene order, UpdateSums adjusts it for one gene change in O(1), and
// ScoreSums maps it to the fitness, with ScoreSums∘InitSums ≡ Score
// bit-identically. The engine then scores a child by copying its
// parent's sums and applying one delta per changed gene; the result
// may differ from a full re-walk by floating-point reassociation
// only, and the engine re-walks every individual at a fixed
// generation cadence to keep the drift bounded (well under 1e-9
// relative; see the equivalence tests). All methods must be safe for
// concurrent calls, like Score. Incremental scoring bypasses the
// memoized score cache — duplicate detection would cost the O(genes)
// key build the delta path exists to avoid.
type PartialScorer interface {
	Problem
	// SumCount returns the length of the partial-sum vector.
	SumCount() int
	// InitSums fills sums (length SumCount) from a full walk of ind.
	InitSums(ind []int, sums []float64)
	// UpdateSums applies the delta of rewriting one gene from
	// oldAllele to newAllele.
	UpdateSums(sums []float64, gene, oldAllele, newAllele int)
	// ScoreSums maps accumulated sums to the fitness.
	ScoreSums(sums []float64) float64
}

// Selection picks the parent-selection scheme. All schemes are
// score-based (selection likelihood increases with score, Sect. 6.3.3);
// they differ in how much pressure they apply when score differences
// are small.
type Selection int

const (
	// RankSelection weights parents quadratically by rank. It is the
	// default: the power-minimization objective leaves compliant
	// individuals within fractions of a percent of each other, where
	// raw proportional selection has almost no pressure.
	RankSelection Selection = iota
	// RouletteSelection weights parents proportionally to their
	// (shifted) scores.
	RouletteSelection
	// TournamentSelection picks the best of three uniformly drawn
	// candidates.
	TournamentSelection
)

// Config tunes the search. The paper's production settings are
// PopSize 200, Generations 600, MutationRate 0.15.
type Config struct {
	PopSize       int
	Generations   int
	MutationRate  float64
	CrossoverRate float64
	// Elitism is how many of the best individuals survive unchanged
	// into the next generation, making the best score monotone.
	Elitism int
	// Seed drives all stochastic choices; equal seeds reproduce runs.
	Seed int64
	// Workers bounds scoring concurrency; 0 means GOMAXPROCS.
	Workers int
	// Selection picks the parent-selection scheme.
	Selection Selection
	// StaleLimit, when positive, stops the search early after this
	// many consecutive generations without best-score improvement.
	StaleLimit int
	// NoScoreCache disables the gene-vector score memoization. The
	// cache is correct whenever Score is a pure function of the gene
	// vector (true for the model-based evaluator); disable it for
	// problems whose Score has observable side effects — e.g. the
	// hardware-in-the-loop search, where every evaluation must spend
	// real hardware time to keep the budget accounting honest.
	NoScoreCache bool
	// ExactRescore disables incremental (delta) scoring for
	// PartialScorer problems, forcing a full Score per individual —
	// the escape hatch for validating the delta path and for problems
	// whose sums drift faster than the engine's refresh cadence.
	ExactRescore bool
	// ScoreCacheCap bounds the memoized score cache: 0 means
	// DefaultScoreCacheCap, a negative value means unbounded, and a
	// positive value is the entry cap. Long dvfsd-hosted searches on
	// thousand-stage traces would otherwise grow the memoization map
	// without limit.
	ScoreCacheCap int
}

// DefaultScoreCacheCap is the score-cache entry bound when
// Config.ScoreCacheCap is zero. At the paper's production settings a
// search evaluates 200 + 600·198 ≈ 120k individuals; 16k entries keep
// the recent generations (where nearly all repeats come from, via
// elites and converged populations) while capping worst-case cache
// memory on thousand-gene problems at tens of megabytes.
const DefaultScoreCacheCap = 1 << 14

// DefaultConfig returns the paper's search settings.
func DefaultConfig() Config {
	return Config{
		PopSize:       200,
		Generations:   600,
		MutationRate:  0.15,
		CrossoverRate: 0.7,
		Elitism:       2,
		Seed:          1,
	}
}

// Result reports the outcome of a search. Best and History are
// defensive copies owned by the caller; mutating them cannot corrupt
// any state the search (or a Problem retaining individuals) still
// references.
type Result struct {
	// Best is the fittest individual found.
	Best []int
	// BestScore is its fitness.
	BestScore float64
	// History records the best score after each generation — the
	// convergence series of Fig. 17.
	History []float64
	// Evaluations counts individuals evaluated (including cache hits),
	// the paper's "strategies assessed" number.
	Evaluations int
	// Generations counts generations actually run (equal to
	// Config.Generations unless StaleLimit stopped the search early).
	Generations int
	// CacheHits counts evaluations served from the memoized score
	// cache; Evaluations-CacheHits is the number of actual Score
	// calls. CacheHits/Evaluations is the cache hit rate. Always zero
	// under incremental scoring, which bypasses the cache.
	CacheHits int
	// CacheCap is the entry bound the score cache ran under; 0 when
	// the cache was disabled (NoScoreCache), bypassed (incremental
	// scoring) or unbounded (negative ScoreCacheCap).
	CacheCap int
	// CacheEvictions counts entries dropped by the generation-stamped
	// eviction policy to hold CacheCap.
	CacheEvictions int
}

// scored is one population slot. genes and sums point into the
// engine's preallocated double buffers and are recycled every
// generation; resync marks a slot whose sums must be rebuilt by a
// full InitSums walk before scoring (set when a crossover rewrote
// more than half the genes, where deltas cost more than a re-walk).
type scored struct {
	genes  []int
	score  float64
	sums   []float64
	resync bool
}

// sumRefreshEvery is the generation cadence at which incremental
// scoring re-walks every child's sums from scratch. Delta updates
// differ from a re-walk by floating-point reassociation only
// (~1 ulp per touched gene); refreshing every 64 generations bounds
// the accumulated drift orders of magnitude below the 1e-9
// equivalence budget while costing under 2% extra walks.
const sumRefreshEvery = 64

// Run executes the genetic search to completion. It is RunContext
// without a cancellation point.
func Run(p Problem, cfg Config) (*Result, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use RunContext
	return RunContext(context.Background(), p, cfg)
}

// RunContext executes the genetic search under a context. Cancellation
// is checked at generation boundaries — a generation is hundreds of
// microsecond-scale Score calls, so the check granularity is
// milliseconds. A cancelled search returns an error wrapping ctx.Err()
// (so errors.Is against context.Canceled / context.DeadlineExceeded
// works) and no Result: partial populations are not exposed because
// callers treat Best as a complete search product.
func RunContext(ctx context.Context, p Problem, cfg Config) (*Result, error) {
	n, alleles := p.Genes(), p.Alleles()
	if n <= 0 {
		return nil, fmt.Errorf("ga: problem has %d genes", n)
	}
	if alleles <= 0 {
		return nil, fmt.Errorf("ga: problem has %d alleles", alleles)
	}
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("ga: population size %d too small", cfg.PopSize)
	}
	if cfg.Generations <= 0 {
		return nil, fmt.Errorf("ga: %d generations", cfg.Generations)
	}
	if cfg.Elitism < 0 || cfg.Elitism >= cfg.PopSize {
		return nil, fmt.Errorf("ga: elitism %d incompatible with population %d", cfg.Elitism, cfg.PopSize)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := &runState{
		p:       p,
		cfg:     cfg,
		n:       n,
		alleles: alleles,
		workers: workers,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if ps, ok := p.(PartialScorer); ok && !cfg.ExactRescore && ps.SumCount() > 0 {
		r.ps = ps
		r.inc = true
	}

	// Double-buffered population: parent and child generations live in
	// two slab-backed slot arrays whose gene (and partial-sum) slices
	// are recycled every generation, so breeding allocates nothing in
	// steady state. The one spare slot absorbs the discarded second
	// child of the final pair when PopSize-Elitism is odd — it is bred
	// and mutated like any child so the RNG draw sequence matches the
	// historical implementation, then dropped unscored.
	sumN := 0
	if r.inc {
		sumN = r.ps.SumCount()
	}
	slots := 2*cfg.PopSize + 1
	geneBlock := make([]int, slots*n)
	var sumBlock []float64
	if r.inc {
		sumBlock = make([]float64, slots*sumN)
	}
	buf := make([]scored, slots)
	for i := range buf {
		buf[i].genes = geneBlock[i*n : (i+1)*n : (i+1)*n]
		if r.inc {
			buf[i].sums = sumBlock[i*sumN : (i+1)*sumN : (i+1)*sumN]
		}
	}
	pop, next, spare := buf[:cfg.PopSize], buf[cfg.PopSize:2*cfg.PopSize], &buf[2*cfg.PopSize]

	// First generation: seeds plus random individuals.
	filled := 0
	for _, s := range p.Seeds() {
		if len(s) != n {
			return nil, fmt.Errorf("ga: seed of length %d, want %d", len(s), n)
		}
		copy(pop[filled].genes, s)
		filled++
		if filled == cfg.PopSize {
			break
		}
	}
	for ; filled < cfg.PopSize; filled++ {
		g := pop[filled].genes
		for i := range g {
			g[i] = r.rng.Intn(alleles)
		}
	}

	if !cfg.NoScoreCache && !r.inc {
		r.cache = newScoreCache(cfg.ScoreCacheCap)
		r.repByKey = make(map[string]int)
		r.keys = make([][]byte, cfg.PopSize)
	}

	res := &Result{History: make([]float64, 0, cfg.Generations+1)}
	if r.inc {
		r.scoreIncremental(pop, true)
	} else {
		res.CacheHits += r.scoreAll(pop, 0)
	}
	res.Evaluations += len(pop)

	stale := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ga: search cancelled at generation %d/%d: %w", gen, cfg.Generations, err)
		}
		r.sortByScore(pop)
		res.History = append(res.History, pop[0].score)
		if cfg.StaleLimit > 0 && gen > 0 {
			if pop[0].score <= res.History[len(res.History)-2] {
				stale++
				if stale >= cfg.StaleLimit {
					break
				}
			} else {
				stale = 0
			}
		}

		r.breed(pop, next, spare)
		// Elites keep their scores; score the rest.
		children := next[cfg.Elitism:]
		if r.inc {
			r.scoreIncremental(children, (gen+1)%sumRefreshEvery == 0)
		} else {
			res.CacheHits += r.scoreAll(children, gen+1)
		}
		res.Evaluations += len(children)
		pop, next = next, pop
	}
	r.sortByScore(pop)
	res.History = append(res.History, pop[0].score)
	res.Best = append([]int(nil), pop[0].genes...)
	res.BestScore = pop[0].score
	res.History = append([]float64(nil), res.History...)
	res.Generations = len(res.History) - 1
	if r.cache != nil {
		res.CacheCap = r.cache.cap
		res.CacheEvictions = r.cache.evictions
	}
	return res, nil
}

// runState bundles the engine's per-run scratch so the generation loop
// reuses every buffer: the selection prefix, the cache-key bytes, the
// representative index sets and the worker todo list.
type runState struct {
	p       Problem
	ps      PartialScorer
	inc     bool // incremental scoring active
	cfg     Config
	n       int
	alleles int
	workers int
	rng     *rand.Rand

	cache    *scoreCache
	keys     [][]byte
	reps     []int
	todo     []int
	repByKey map[string]int
	prefix   []float64
	perm     []int32  // sortByScore: index permutation
	permTmp  []int32  // sortByScore: merge scratch
	slotTmp  []scored // sortByScore: permutation-apply scratch
}

// breed fills next from pop: elites first, then score-selected pairs
// recombined by tail-swap crossover and burst mutation. The RNG draw
// order (pick a, pick b, crossover roll, k, then per child the
// mutation roll and burst draws) is fixed — tests pin same-seed
// trajectories to it.
//
//lint:hotpath
func (r *runState) breed(pop, next []scored, spare *scored) {
	for i := 0; i < r.cfg.Elitism; i++ {
		dst := &next[i]
		copy(dst.genes, pop[i].genes)
		dst.score = pop[i].score
		if r.inc {
			copy(dst.sums, pop[i].sums)
			dst.resync = false
		}
	}
	r.prefix = buildPrefixInto(r.prefix, pop, r.cfg.Selection)
	for made := r.cfg.Elitism; made < len(next); made += 2 {
		a := pick(pop, r.prefix, r.cfg.Selection, r.rng)
		b := pick(pop, r.prefix, r.cfg.Selection, r.rng)
		childA := &next[made]
		childB := spare
		if made+1 < len(next) {
			childB = &next[made+1]
		}
		r.beginChild(childA, a)
		r.beginChild(childB, b)
		if r.rng.Float64() < r.cfg.CrossoverRate && r.n > 1 {
			// Swap the last k genes (Sect. 6.3.3).
			k := 1 + r.rng.Intn(r.n-1)
			r.crossTail(childA, childB, k)
		}
		r.mutate(childA)
		r.mutate(childB)
	}
}

// beginChild initializes a child slot as a copy of its parent.
func (r *runState) beginChild(dst, parent *scored) {
	copy(dst.genes, parent.genes)
	if r.inc {
		copy(dst.sums, parent.sums)
		dst.resync = false
	}
}

// crossTail swaps the last k genes of two children (each initialized
// to one parent), applying partial-sum deltas per differing gene when
// incremental scoring is on. When the tail covers more than half the
// genes, deltas cost more than a fresh walk, so the children are
// marked for resync instead.
func (r *runState) crossTail(a, b *scored, k int) {
	useDelta := r.inc && 2*k <= r.n
	if r.inc && !useDelta {
		a.resync, b.resync = true, true
	}
	for i := r.n - k; i < r.n; i++ {
		ga, gb := a.genes[i], b.genes[i]
		if ga != gb && useDelta {
			r.ps.UpdateSums(a.sums, i, ga, gb)
			r.ps.UpdateSums(b.sums, i, gb, ga)
		}
		a.genes[i], b.genes[i] = gb, ga
	}
}

// mutate rewrites a small burst of random genes; single-gene steps
// converge too slowly on thousand-stage problems.
func (r *runState) mutate(c *scored) {
	if r.rng.Float64() >= r.cfg.MutationRate {
		return
	}
	burst := 1 + r.rng.Intn(3)
	for m := 0; m < burst; m++ {
		idx := r.rng.Intn(r.n)
		val := r.rng.Intn(r.alleles)
		if r.inc && !c.resync && c.genes[idx] != val {
			r.ps.UpdateSums(c.sums, idx, c.genes[idx], val)
		}
		c.genes[idx] = val
	}
}

// scoreIncremental scores slots from their partial sums, rebuilding
// the sums with a full InitSums walk where marked (or for every slot
// when refresh is set — the periodic drift-bounding re-walk). Runs
// serially on the generation-loop goroutine: a delta score is tens of
// nanoseconds, far below fan-out cost, and serial execution keeps the
// result trivially independent of Config.Workers.
//
//lint:hotpath
func (r *runState) scoreIncremental(slots []scored, refresh bool) {
	for i := range slots {
		c := &slots[i]
		if refresh || c.resync {
			r.ps.InitSums(c.genes, c.sums)
			c.resync = false
		}
		c.score = sanitize(r.ps.ScoreSums(c.sums))
	}
}

// scoreCache memoizes sanitized fitness values by gene vector, so
// individuals recurring across generations (elites' children,
// converged populations) skip re-simulation. Accessed only from the
// generation loop's goroutine; workers never touch it. Entries carry
// the generation that last used them; when the map exceeds cap,
// whole generation cohorts are evicted oldest-first (see maybeEvict).
type scoreCache struct {
	m         map[string]*cacheEntry
	cap       int // entry bound; 0 = unbounded
	evictions int
}

type cacheEntry struct {
	score float64
	gen   int // generation that last hit or inserted this entry
}

func newScoreCache(capCfg int) *scoreCache {
	c := &scoreCache{m: make(map[string]*cacheEntry)}
	switch {
	case capCfg == 0:
		c.cap = DefaultScoreCacheCap
	case capCfg > 0:
		c.cap = capCfg
	}
	return c
}

// maybeEvict drops the oldest generation cohorts once the map exceeds
// cap, keeping the most recently used generations intact — entries
// touched in the current generation always survive, so the cap is
// soft by at most one generation's novel vectors. The outcome depends
// only on the generation stamps, never on map iteration order, so
// same-seed runs evict identically.
func (c *scoreCache) maybeEvict(gen int) {
	if c.cap <= 0 || len(c.m) <= c.cap {
		return
	}
	counts := make([]int, gen+1)
	for _, e := range c.m {
		counts[e.gen]++
	}
	kept := counts[gen]
	cutoff := gen
	for g := gen - 1; g >= 0; g-- {
		if kept+counts[g] > c.cap {
			break
		}
		kept += counts[g]
		cutoff = g
	}
	for k, e := range c.m {
		if e.gen < cutoff {
			delete(c.m, k)
			c.evictions++
		}
	}
}

// appendGeneKey encodes a gene vector as compact varint bytes into
// dst for cache lookup, reusing dst's capacity.
func appendGeneKey(dst []byte, genes []int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, g := range genes {
		n := binary.PutUvarint(tmp[:], uint64(g))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// sanitize maps NaN fitness to -Inf. A NaN score (e.g. an infeasible
// individual whose predicted time divides by zero) would otherwise
// poison the selection prefix sums: every comparison against NaN is
// false, so the binary search in pick degenerates to a single index
// and the population collapses onto it. -Inf orders correctly (worst)
// under sort and all selection schemes.
func sanitize(score float64) float64 {
	if math.IsNaN(score) {
		return math.Inf(-1)
	}
	return score
}

// scoreAll evaluates fitness concurrently, memoizing through the
// cache (nil disables memoization), and reports how many individuals
// were served without a Score call. Within one batch, duplicate gene
// vectors are scored once; across batches the cache carries scores
// between generations. gen stamps touched entries for eviction.
func (r *runState) scoreAll(pop []scored, gen int) (hits int) {
	if r.cache == nil {
		r.todo = r.todo[:0]
		for i := range pop {
			r.todo = append(r.todo, i)
		}
		scoreBatch(r.p, pop, r.todo, r.workers)
		return 0
	}
	// Partition into cache hits, one representative per novel gene
	// vector, and duplicates of a representative. Lookups through
	// m[string(bytes)] compile to zero-copy map probes; a key string
	// is only materialized once per novel vector.
	keys := r.keys[:len(pop)]
	r.reps = r.reps[:0]
	clear(r.repByKey)
	for i := range pop {
		keys[i] = appendGeneKey(keys[i][:0], pop[i].genes)
		if e, ok := r.cache.m[string(keys[i])]; ok {
			pop[i].score = e.score
			e.gen = gen // refresh the stamp so hot entries survive eviction
			hits++
			continue
		}
		if _, ok := r.repByKey[string(keys[i])]; !ok {
			r.repByKey[string(keys[i])] = i
			r.reps = append(r.reps, i)
		}
	}
	scoreBatch(r.p, pop, r.reps, r.workers)
	// Insert the representatives, reusing the interned map keys; the
	// cache contents are independent of this map's iteration order.
	for k, i := range r.repByKey {
		r.cache.m[k] = &cacheEntry{score: pop[i].score, gen: gen}
	}
	// Fill duplicates from the representatives just scored.
	for i := range pop {
		rep, ok := r.repByKey[string(keys[i])]
		if ok && rep != i {
			pop[i].score = pop[rep].score
			hits++
		}
	}
	r.cache.maybeEvict(gen)
	return hits
}

// scoreBatch runs Score for the given population indices across the
// worker pool. Each worker only writes the scored entries it drew from
// the channel, so no two goroutines touch the same element.
func scoreBatch(p Problem, pop []scored, todo []int, workers int) {
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			pop[i].score = sanitize(p.Score(pop[i].genes))
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(todo))
	for _, i := range todo {
		ch <- i
	}
	close(ch)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				pop[i].score = sanitize(p.Score(pop[i].genes))
			}
		}()
	}
	wg.Wait()
}

// sortByScore orders pop descending by score, stably (equal scores
// keep their prior relative order — the exact permutation the
// historical insertion sort produced, which same-seed trajectory
// tests pin). It merge-sorts an index permutation and applies it with
// one pass of struct moves: freshly scored children are in random
// score order, where an in-place insertion sort degenerates to O(n²)
// moves of the wide population slots. All scratch is reused across
// generations.
//
//lint:hotpath
func (r *runState) sortByScore(pop []scored) {
	n := len(pop)
	if cap(r.perm) < n {
		//lint:allow allocfree grow-once scratch: sized to the population on first use, reused every generation after
		r.perm = make([]int32, n)
		//lint:allow allocfree grow-once scratch: sized to the population on first use, reused every generation after
		r.permTmp = make([]int32, n)
		//lint:allow allocfree grow-once scratch: sized to the population on first use, reused every generation after
		r.slotTmp = make([]scored, n)
	}
	perm, tmp := r.perm[:n], r.permTmp[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	// Bottom-up stable merge: on equal scores the left run wins,
	// preserving original order.
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if pop[perm[j]].score > pop[perm[i]].score {
					tmp[k] = perm[j]
					j++
				} else {
					tmp[k] = perm[i]
					i++
				}
				k++
			}
			copy(tmp[k:hi], perm[i:mid])
			copy(tmp[k+mid-i:hi], perm[j:hi])
			copy(perm[lo:hi], tmp[lo:hi])
		}
	}
	slots := r.slotTmp[:n]
	for i, p := range perm {
		slots[i] = pop[p]
	}
	copy(pop, slots)
}

// buildPrefixInto computes cumulative selection weights for the chosen
// scheme into prefix's storage (grown once, reused every generation).
// pop is sorted descending by score when this is called.
// RankSelection weights fall quadratically with rank, which keeps
// pressure even when compliant individuals' raw scores differ by
// fractions of a percent — the steady state of the power-minimization
// objective. RouletteSelection shifts scores to be non-negative and
// weights proportionally. TournamentSelection needs no prefix.
func buildPrefixInto(prefix []float64, pop []scored, sel Selection) []float64 {
	n := len(pop)
	if cap(prefix) < n {
		//lint:allow allocfree grow-once scratch: the caller hands back the same prefix slice every generation
		prefix = make([]float64, n)
	}
	prefix = prefix[:n]
	switch sel {
	case RouletteSelection:
		// The shift baseline is the worst finite score: sanitized
		// (NaN → -Inf) individuals get weight 0 rather than dragging
		// the baseline to -Inf and turning every weight into Inf/NaN.
		minScore := math.Inf(1)
		for _, s := range pop {
			if !math.IsInf(s.score, 0) && s.score < minScore {
				minScore = s.score
			}
		}
		if math.IsInf(minScore, 1) {
			minScore = 0 // no finite scores at all
		}
		sum := 0.0
		for i, s := range pop {
			if !math.IsInf(s.score, -1) {
				sum += s.score - minScore + 1e-12
			}
			prefix[i] = sum
		}
		return prefix
	case TournamentSelection:
		return prefix[:0]
	default: // RankSelection
		sum := 0.0
		for i := range pop {
			w := float64(n-i) * float64(n-i)
			sum += w
			prefix[i] = sum
		}
		return prefix
	}
}

// pick selects a parent under the chosen scheme.
func pick(pop []scored, prefix []float64, sel Selection, rng *rand.Rand) *scored {
	if sel == TournamentSelection {
		best := rng.Intn(len(pop))
		for i := 0; i < 2; i++ {
			if c := rng.Intn(len(pop)); pop[c].score > pop[best].score {
				best = c
			}
		}
		return &pop[best]
	}
	total := prefix[len(prefix)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if prefix[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &pop[lo]
}
