// Package ga implements the genetic-algorithm search used for DVFS
// strategy generation (Sect. 6.3): individuals are integer gene
// vectors (one frequency index per candidate stage), selection is
// score-based, crossover swaps the last k genes of two parents, and
// mutation rewrites a random burst of genes.
//
// The engine is an island model: the population is partitioned into N
// islands (Config.Islands), each with its own RNG stream, score cache
// and recycled gene/partial-sum slabs, so islands share no mutable
// state on the hot path and run on the worker pool without locks.
// Islands exchange their elite individuals over a fixed ring topology
// at a fixed generation cadence (Config.MigrationEvery), so the whole
// trajectory — including every migration — is a pure function of the
// config and the problem, byte-identical at any worker count (the
// determinism contract; see DESIGN.md §13).
//
// Scoring is batched per cohort: problems implementing BatchScorer
// (the evaltab-backed evaluators) score a whole slice of candidates in
// gene-major sweeps over the SoA table instead of per-candidate
// pointer chases. Problems implementing PartialScorer additionally get
// incremental (delta) scoring — a child produced by crossover or a
// mutation burst inherits a parent's partial sums and applies
// O(changed genes) updates instead of an O(genes) re-walk
// (Config.ExactRescore restores full re-scoring). Neither engine
// choice changes the stochastic trajectory: the RNG draw sequence is
// identical across scoring modes and worker counts, so equal seeds
// reproduce runs.
//
// Run and RunContext are one-shot conveniences; callers re-searching
// the same problem shape (the dvfsd serving path, the adaptive
// re-optimizer) should hold an Engine, whose Run reuses every slab
// across searches and allocates nothing in steady state.
package ga

import (
	"context"
	"math"
)

// Problem defines the search space and objective.
type Problem interface {
	// Genes returns the individual length (number of stages).
	Genes() int
	// Alleles returns the number of values a gene can take (number of
	// supported frequency points).
	Alleles() int
	// Score returns the fitness of an individual; higher is better.
	// Must be safe for concurrent calls. A NaN score is treated as
	// -Inf fitness (worst), so infeasible individuals may signal
	// themselves with NaN without corrupting selection. Unless
	// Config.NoScoreCache is set, Score must also be a pure function
	// of the gene vector: repeated individuals are served from a
	// memoized cache and never re-scored.
	Score(individual []int) float64
	// Seeds returns individuals to include in the first generation
	// (the paper seeds the baseline all-max-frequency individual and
	// a prior LFC/HFC individual). May be nil. The engine copies the
	// vectors, so implementations may return shared storage.
	Seeds() [][]int
}

// PartialScorer is an optional Problem extension enabling incremental
// (delta) scoring. A conforming problem's fitness must be a pure
// function of a fixed-size vector of running sums over the gene
// vector: InitSums fills the vector with a full walk in ascending
// gene order, UpdateSums adjusts it for one gene change in O(1), and
// ScoreSums maps it to the fitness, with ScoreSums∘InitSums ≡ Score
// bit-identically. The engine then scores a child by copying a
// parent's sums and applying one delta per changed gene; the result
// may differ from a full re-walk by floating-point reassociation
// only, and the engine re-walks every individual at a fixed
// generation cadence to keep the drift bounded (well under 1e-9
// relative; see the equivalence tests). All methods must be safe for
// concurrent calls, like Score. Incremental scoring bypasses the
// memoized score cache — duplicate detection would cost the O(genes)
// key build the delta path exists to avoid.
type PartialScorer interface {
	Problem
	// SumCount returns the length of the partial-sum vector.
	SumCount() int
	// InitSums fills sums (length SumCount) from a full walk of ind.
	InitSums(ind []int, sums []float64)
	// UpdateSums applies the delta of rewriting one gene from
	// oldAllele to newAllele.
	UpdateSums(sums []float64, gene, oldAllele, newAllele int)
	// ScoreSums maps accumulated sums to the fitness.
	ScoreSums(sums []float64) float64
}

// BatchScorer is an optional Problem extension for cohort scoring:
// ScoreBatch evaluates count candidates stored back to back in genes
// (candidate c occupies genes[c*Genes() : (c+1)*Genes()]) and writes
// their fitnesses to scores[:count]. Each score must be bit-identical
// to Score of the same vector — the engine mixes the two paths freely
// (cache representatives go through ScoreBatch, and the equivalence
// tests diff them). The evaltab-backed problems implement this with
// gene-major sweeps over the SoA table, amortizing each table row
// across the whole cohort.
type BatchScorer interface {
	Problem
	ScoreBatch(genes []int, count int, scores []float64)
}

// BatchPartialScorer is the batch form of PartialScorer.InitSums:
// InitSumsBatch fills count partial-sum vectors (candidate c's sums
// occupy sums[c*SumCount() : (c+1)*SumCount()]) from full walks of
// count candidates stored back to back in genes. Results must be
// bit-identical to per-candidate InitSums — the engine uses it for
// the periodic drift-bounding re-walks of whole cohorts.
type BatchPartialScorer interface {
	PartialScorer
	InitSumsBatch(genes []int, count int, sums []float64)
}

// Selection picks the parent-selection scheme. All schemes are
// score-based (selection likelihood increases with score, Sect. 6.3.3);
// they differ in how much pressure they apply when score differences
// are small.
type Selection int

const (
	// RankSelection weights parents quadratically by rank. It is the
	// default: the power-minimization objective leaves compliant
	// individuals within fractions of a percent of each other, where
	// raw proportional selection has almost no pressure.
	RankSelection Selection = iota
	// RouletteSelection weights parents proportionally to their
	// (shifted) scores.
	RouletteSelection
	// TournamentSelection picks the best of three uniformly drawn
	// candidates.
	TournamentSelection
)

// Config tunes the search. The paper's production settings are
// PopSize 200, Generations 600, MutationRate 0.15.
type Config struct {
	PopSize       int
	Generations   int
	MutationRate  float64
	CrossoverRate float64
	// Elitism is how many of the best individuals survive unchanged
	// into the next generation of each island, making each island's
	// best score (and hence the global History) monotone.
	Elitism int
	// Seed drives all stochastic choices; equal seeds reproduce runs.
	Seed int64
	// Workers bounds scoring/breeding concurrency; 0 means GOMAXPROCS.
	// The worker count never changes results — only wall-clock.
	Workers int
	// Selection picks the parent-selection scheme.
	Selection Selection
	// StaleLimit, when positive, stops the search early after this
	// many consecutive generations without best-score improvement.
	// With more than one island, staleness is evaluated at migration
	// barriers, so the search may overrun the limit by up to
	// MigrationEvery-1 generations before stopping.
	StaleLimit int
	// NoScoreCache disables the gene-vector score memoization. The
	// cache is correct whenever Score is a pure function of the gene
	// vector (true for the model-based evaluator); disable it for
	// problems whose Score has observable side effects — e.g. the
	// hardware-in-the-loop search, where every evaluation must spend
	// real hardware time to keep the budget accounting honest.
	NoScoreCache bool
	// ExactRescore disables incremental (delta) scoring for
	// PartialScorer problems, forcing a full Score per individual —
	// the escape hatch for validating the delta path and for problems
	// whose sums drift faster than the engine's refresh cadence.
	ExactRescore bool
	// ScoreCacheCap bounds each island's memoized score cache: 0 means
	// DefaultScoreCacheCap, a negative value means unbounded, and a
	// positive value is the per-island entry cap. Long dvfsd-hosted
	// searches on thousand-stage traces would otherwise grow the
	// memoization maps without limit.
	ScoreCacheCap int
	// Islands is the number of islands the population is partitioned
	// into. 0 derives a default from GOMAXPROCS and PopSize (see
	// DefaultIslands) — deliberately never from Workers, so changing
	// the worker count alone can never change the trajectory. Fixing
	// Islands explicitly makes results machine-independent as well.
	Islands int
	// MigrationEvery is the fixed generation cadence at which islands
	// exchange elites (and the barrier cadence for history/staleness
	// aggregation). 0 means DefaultMigrationEvery; negative disables
	// migration. Irrelevant with one island.
	MigrationEvery int
	// Migrants is how many elite individuals each island sends to its
	// ring successor per migration. 0 means DefaultMigrants; negative
	// disables migration. Clamped to half the smallest island.
	Migrants int
	// WarmStart seeds the first generation with previous-search
	// individuals (e.g. Result.Population from a prior run),
	// distributed round-robin across islands after Problem.Seeds().
	// The engine copies the vectors. Length-validated like seeds.
	WarmStart [][]int
	// CapturePopulation asks the engine to return the final population
	// (island-major, best-first per island) in Result.Population, for
	// warm-starting a later search.
	CapturePopulation bool
}

// DefaultScoreCacheCap is the per-island score-cache entry bound when
// Config.ScoreCacheCap is zero. At the paper's production settings a
// search evaluates 200 + 600·198 ≈ 120k individuals; 16k entries keep
// the recent generations (where nearly all repeats come from, via
// elites and converged populations) while capping worst-case cache
// memory on thousand-gene problems at tens of megabytes.
const DefaultScoreCacheCap = 1 << 14

// DefaultConfig returns the paper's search settings.
func DefaultConfig() Config {
	return Config{
		PopSize:       200,
		Generations:   600,
		MutationRate:  0.15,
		CrossoverRate: 0.7,
		Elitism:       2,
		Seed:          1,
	}
}

// Result reports the outcome of a search. Results returned by Run and
// RunContext are defensive copies owned by the caller; results
// returned by Engine.Run alias engine-owned storage (see Engine.Run).
type Result struct {
	// Best is the fittest individual found across all islands.
	Best []int
	// BestScore is its fitness.
	BestScore float64
	// History records the best score across islands after each
	// generation — the convergence series of Fig. 17.
	History []float64
	// Evaluations counts individuals evaluated (including cache hits),
	// the paper's "strategies assessed" number, summed over islands in
	// island order.
	Evaluations int
	// Generations counts generations actually run (equal to
	// Config.Generations unless StaleLimit stopped the search early).
	Generations int
	// CacheHits counts evaluations served from the memoized score
	// caches, summed over islands in island order (a deterministic
	// reduction: each island's count is exact regardless of worker
	// scheduling). Evaluations-CacheHits is the number of actual Score
	// calls. Always zero under incremental scoring, which bypasses the
	// cache.
	CacheHits int
	// CacheCap is the per-island entry bound the score caches ran
	// under; 0 when the cache was disabled (NoScoreCache), bypassed
	// (incremental scoring) or unbounded (negative ScoreCacheCap).
	CacheCap int
	// CacheEvictions counts entries dropped by the generation-stamped
	// eviction policy to hold CacheCap, summed in island order.
	CacheEvictions int
	// Islands is the island count the search ran with.
	Islands int
	// Migrations counts individuals transferred between islands.
	Migrations int
	// IslandEvaluations is Evaluations split per island.
	IslandEvaluations []int
	// Population is the final population (island-major, best-first
	// per island), only when Config.CapturePopulation is set — the
	// warm-start input for a follow-up search.
	Population [][]int
}

// Clone returns a deep copy of the result, sharing no storage.
func (r *Result) Clone() *Result {
	c := *r
	c.Best = append([]int(nil), r.Best...)
	c.History = append([]float64(nil), r.History...)
	c.IslandEvaluations = append([]int(nil), r.IslandEvaluations...)
	if r.Population != nil {
		c.Population = make([][]int, len(r.Population))
		for i, ind := range r.Population {
			c.Population[i] = append([]int(nil), ind...)
		}
	}
	return &c
}

// sumRefreshEvery is the generation cadence at which incremental
// scoring re-walks every child's sums from scratch. Delta updates
// differ from a re-walk by floating-point reassociation only
// (~1 ulp per touched gene); refreshing every 64 generations bounds
// the accumulated drift orders of magnitude below the 1e-9
// equivalence budget while costing under 2% extra walks.
const sumRefreshEvery = 64

// Run executes the genetic search to completion. It is RunContext
// without a cancellation point.
func Run(p Problem, cfg Config) (*Result, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use RunContext
	return RunContext(context.Background(), p, cfg)
}

// RunContext executes the genetic search under a context. Cancellation
// is checked at generation boundaries — a generation is hundreds of
// microsecond-scale Score calls, so the check granularity is
// milliseconds. A cancelled search returns an error wrapping ctx.Err()
// (so errors.Is against context.Canceled / context.DeadlineExceeded
// works) and no Result: partial populations are not exposed because
// callers treat Best as a complete search product.
//
// RunContext builds a fresh Engine per call and deep-copies the
// result, so the returned Result is caller-owned. Repeat searchers
// should hold an Engine instead.
func RunContext(ctx context.Context, p Problem, cfg Config) (*Result, error) {
	e, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(ctx)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// sanitize maps NaN fitness to -Inf. A NaN score (e.g. an infeasible
// individual whose predicted time divides by zero) would otherwise
// poison the selection prefix sums: every comparison against NaN is
// false, so the selection search degenerates to a single index and
// the population collapses onto it. -Inf orders correctly (worst)
// under ranking and all selection schemes.
func sanitize(score float64) float64 {
	if math.IsNaN(score) {
		return math.Inf(-1)
	}
	return score
}

// Compile-time relationships between the optional Problem extensions.
var (
	_ Problem       = PartialScorer(nil)
	_ Problem       = BatchScorer(nil)
	_ PartialScorer = BatchPartialScorer(nil)
)
