// Package ga implements the genetic-algorithm search used for DVFS
// strategy generation (Sect. 6.3): individuals are integer gene
// vectors (one frequency index per candidate stage), selection is
// score-proportional, crossover swaps the last k genes of two parents,
// and mutation rewrites a random gene with a random allele.
//
// Scoring is parallelized across a worker pool, mirroring the paper's
// use of multiprocessing to evaluate tens of thousands of strategies
// in minutes (Sect. 8.1). Problem implementations must therefore be
// safe for concurrent Score calls.
package ga

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Problem defines the search space and objective.
type Problem interface {
	// Genes returns the individual length (number of stages).
	Genes() int
	// Alleles returns the number of values a gene can take (number of
	// supported frequency points).
	Alleles() int
	// Score returns the fitness of an individual; higher is better.
	// Must be safe for concurrent calls.
	Score(individual []int) float64
	// Seeds returns individuals to include in the first generation
	// (the paper seeds the baseline all-max-frequency individual and
	// a prior LFC/HFC individual). May be nil.
	Seeds() [][]int
}

// Selection picks the parent-selection scheme. All schemes are
// score-based (selection likelihood increases with score, Sect. 6.3.3);
// they differ in how much pressure they apply when score differences
// are small.
type Selection int

const (
	// RankSelection weights parents quadratically by rank. It is the
	// default: the power-minimization objective leaves compliant
	// individuals within fractions of a percent of each other, where
	// raw proportional selection has almost no pressure.
	RankSelection Selection = iota
	// RouletteSelection weights parents proportionally to their
	// (shifted) scores.
	RouletteSelection
	// TournamentSelection picks the best of three uniformly drawn
	// candidates.
	TournamentSelection
)

// Config tunes the search. The paper's production settings are
// PopSize 200, Generations 600, MutationRate 0.15.
type Config struct {
	PopSize       int
	Generations   int
	MutationRate  float64
	CrossoverRate float64
	// Elitism is how many of the best individuals survive unchanged
	// into the next generation, making the best score monotone.
	Elitism int
	// Seed drives all stochastic choices; equal seeds reproduce runs.
	Seed int64
	// Workers bounds scoring concurrency; 0 means GOMAXPROCS.
	Workers int
	// Selection picks the parent-selection scheme.
	Selection Selection
	// StaleLimit, when positive, stops the search early after this
	// many consecutive generations without best-score improvement.
	StaleLimit int
}

// DefaultConfig returns the paper's search settings.
func DefaultConfig() Config {
	return Config{
		PopSize:       200,
		Generations:   600,
		MutationRate:  0.15,
		CrossoverRate: 0.7,
		Elitism:       2,
		Seed:          1,
	}
}

// Result reports the outcome of a search.
type Result struct {
	// Best is the fittest individual found.
	Best []int
	// BestScore is its fitness.
	BestScore float64
	// History records the best score after each generation — the
	// convergence series of Fig. 17.
	History []float64
	// Evaluations counts Score calls.
	Evaluations int
}

type scored struct {
	genes []int
	score float64
}

// Run executes the genetic search.
func Run(p Problem, cfg Config) (*Result, error) {
	n, alleles := p.Genes(), p.Alleles()
	if n <= 0 {
		return nil, fmt.Errorf("ga: problem has %d genes", n)
	}
	if alleles <= 0 {
		return nil, fmt.Errorf("ga: problem has %d alleles", alleles)
	}
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("ga: population size %d too small", cfg.PopSize)
	}
	if cfg.Generations <= 0 {
		return nil, fmt.Errorf("ga: %d generations", cfg.Generations)
	}
	if cfg.Elitism < 0 || cfg.Elitism >= cfg.PopSize {
		return nil, fmt.Errorf("ga: elitism %d incompatible with population %d", cfg.Elitism, cfg.PopSize)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// First generation: seeds plus random individuals.
	pop := make([]scored, 0, cfg.PopSize)
	for _, s := range p.Seeds() {
		if len(s) != n {
			return nil, fmt.Errorf("ga: seed of length %d, want %d", len(s), n)
		}
		pop = append(pop, scored{genes: append([]int(nil), s...)})
		if len(pop) == cfg.PopSize {
			break
		}
	}
	for len(pop) < cfg.PopSize {
		g := make([]int, n)
		for i := range g {
			g[i] = rng.Intn(alleles)
		}
		pop = append(pop, scored{genes: g})
	}

	res := &Result{}
	scoreAll(p, pop, workers)
	res.Evaluations += len(pop)

	stale := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		sortByScore(pop)
		res.History = append(res.History, pop[0].score)
		if cfg.StaleLimit > 0 && gen > 0 {
			if pop[0].score <= res.History[len(res.History)-2] {
				stale++
				if stale >= cfg.StaleLimit {
					break
				}
			} else {
				stale = 0
			}
		}

		next := make([]scored, 0, cfg.PopSize)
		for i := 0; i < cfg.Elitism; i++ {
			next = append(next, scored{genes: append([]int(nil), pop[i].genes...), score: pop[i].score})
		}
		prefix := buildPrefix(pop, cfg.Selection)
		for len(next) < cfg.PopSize {
			a := pick(pop, prefix, cfg.Selection, rng)
			b := pick(pop, prefix, cfg.Selection, rng)
			childA := append([]int(nil), a.genes...)
			childB := append([]int(nil), b.genes...)
			if rng.Float64() < cfg.CrossoverRate && n > 1 {
				// Swap the last k genes (Sect. 6.3.3).
				k := 1 + rng.Intn(n-1)
				for i := n - k; i < n; i++ {
					childA[i], childB[i] = childB[i], childA[i]
				}
			}
			for _, child := range [][]int{childA, childB} {
				if rng.Float64() < cfg.MutationRate {
					// Rewrite a small burst of random genes; single-gene
					// steps converge too slowly on thousand-stage
					// problems.
					burst := 1 + rng.Intn(3)
					for m := 0; m < burst; m++ {
						child[rng.Intn(n)] = rng.Intn(alleles)
					}
				}
				if len(next) < cfg.PopSize {
					next = append(next, scored{genes: child})
				}
			}
		}
		// Elites keep their scores; score the rest.
		scoreAll(p, next[cfg.Elitism:], workers)
		res.Evaluations += len(next) - cfg.Elitism
		pop = next
	}
	sortByScore(pop)
	res.History = append(res.History, pop[0].score)
	res.Best = pop[0].genes
	res.BestScore = pop[0].score
	return res, nil
}

// scoreAll evaluates fitness concurrently.
func scoreAll(p Problem, pop []scored, workers int) {
	if workers > len(pop) {
		workers = len(pop)
	}
	if workers <= 1 {
		for i := range pop {
			pop[i].score = p.Score(pop[i].genes)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(pop))
	for i := range pop {
		ch <- i
	}
	close(ch)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				pop[i].score = p.Score(pop[i].genes)
			}
		}()
	}
	wg.Wait()
}

func sortByScore(pop []scored) {
	// Insertion sort on mostly-sorted small populations outperforms
	// the generic sort here and keeps determinism trivially.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].score > pop[j-1].score; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// buildPrefix precomputes cumulative selection weights for the chosen
// scheme. pop is sorted descending by score when this is called.
// RankSelection weights fall quadratically with rank, which keeps
// pressure even when compliant individuals' raw scores differ by
// fractions of a percent — the steady state of the power-minimization
// objective. RouletteSelection shifts scores to be non-negative and
// weights proportionally. TournamentSelection needs no prefix.
func buildPrefix(pop []scored, sel Selection) []float64 {
	n := len(pop)
	switch sel {
	case RouletteSelection:
		minScore := pop[0].score
		for _, s := range pop {
			if s.score < minScore {
				minScore = s.score
			}
		}
		prefix := make([]float64, n)
		sum := 0.0
		for i, s := range pop {
			sum += s.score - minScore + 1e-12
			prefix[i] = sum
		}
		return prefix
	case TournamentSelection:
		return nil
	default: // RankSelection
		prefix := make([]float64, n)
		sum := 0.0
		for i := range pop {
			w := float64(n-i) * float64(n-i)
			sum += w
			prefix[i] = sum
		}
		return prefix
	}
}

// pick selects a parent under the chosen scheme.
func pick(pop []scored, prefix []float64, sel Selection, rng *rand.Rand) *scored {
	if sel == TournamentSelection {
		best := rng.Intn(len(pop))
		for i := 0; i < 2; i++ {
			if c := rng.Intn(len(pop)); pop[c].score > pop[best].score {
				best = c
			}
		}
		return &pop[best]
	}
	total := prefix[len(prefix)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if prefix[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &pop[lo]
}
