package ga

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Island-model defaults: migration runs every DefaultMigrationEvery
// generations, each island sending its DefaultMigrants best
// individuals to its ring successor. The cadence is coarse enough
// that islands diverge usefully between exchanges (the whole point of
// the model) and fine enough that a breakthrough on one island
// reaches all of them within a small fraction of a 600-generation
// search.
const (
	DefaultMigrationEvery = 16
	DefaultMigrants       = 2
)

// maxDefaultIslands caps the GOMAXPROCS-derived default island count:
// past ~8 islands the paper-scale population (200) splits thin enough
// that per-island selection pressure starts to degrade convergence.
const maxDefaultIslands = 8

// minDefaultIslandPop is the smallest per-island population the
// default will create; below ~32 individuals an island's rank
// selection has too few distinct ranks to search usefully.
const minDefaultIslandPop = 32

// DefaultIslands returns the island count used when Config.Islands is
// zero: one island per core up to maxDefaultIslands, but never so
// many that islands fall under minDefaultIslandPop individuals. The
// default deliberately derives from GOMAXPROCS, never from
// Config.Workers — worker count must not change trajectories (the
// determinism contract), while GOMAXPROCS only changes them across
// machines, where fixing Config.Islands explicitly restores full
// portability.
func DefaultIslands(popSize int) int {
	n := runtime.GOMAXPROCS(0)
	if n > maxDefaultIslands {
		n = maxDefaultIslands
	}
	if c := popSize / minDefaultIslandPop; c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Engine is a reusable search instance: one validated (Problem,
// Config) pair with every island slab, scratch buffer and cache
// preallocated. Run may be called repeatedly — each call re-seeds and
// reproduces byte-identical results — and allocates nothing in steady
// state on the incremental path, which is what makes per-request
// re-searches on the dvfsd serving path cheap. An Engine is not safe
// for concurrent Run calls.
type Engine struct {
	p   Problem
	ps  PartialScorer
	bs  BatchScorer
	bps BatchPartialScorer
	inc bool
	cfg Config

	n       int
	alleles int
	sumN    int
	workers int
	// fanout: single-island searches over problems without a batch
	// entry point score cohorts across the worker pool; multi-island
	// searches parallelize across islands instead.
	fanout bool
	// segEvery is the barrier cadence: islands run independently for
	// segEvery generations, then synchronize for history aggregation,
	// staleness and migration.
	segEvery int
	migrants int

	islands     []island
	history     []float64
	best        []int
	islandEvals []int
	migrations  int

	// Migration staging: gather-then-scatter through these slabs so
	// the exchange is simultaneous (no island sees a half-migrated
	// neighbor).
	migGenes  []int
	migScores []float64
	migSums   []float64

	// Final-population capture (Config.CapturePopulation).
	popRows  [][]int
	popGenes []int

	res Result
}

// New validates the configuration and builds a reusable Engine.
func New(p Problem, cfg Config) (*Engine, error) {
	n, alleles := p.Genes(), p.Alleles()
	if n <= 0 {
		return nil, fmt.Errorf("ga: problem has %d genes", n)
	}
	if alleles <= 0 {
		return nil, fmt.Errorf("ga: problem has %d alleles", alleles)
	}
	if cfg.PopSize < 2 {
		return nil, fmt.Errorf("ga: population size %d too small", cfg.PopSize)
	}
	if cfg.Generations <= 0 {
		return nil, fmt.Errorf("ga: %d generations", cfg.Generations)
	}
	if cfg.Elitism < 0 || cfg.Elitism >= cfg.PopSize {
		return nil, fmt.Errorf("ga: elitism %d incompatible with population %d", cfg.Elitism, cfg.PopSize)
	}
	for _, w := range cfg.WarmStart {
		if len(w) != n {
			return nil, fmt.Errorf("ga: warm-start individual of length %d, want %d", len(w), n)
		}
	}

	nIsl := cfg.Islands
	switch {
	case nIsl < 0:
		return nil, fmt.Errorf("ga: island count %d", cfg.Islands)
	case nIsl == 0:
		nIsl = DefaultIslands(cfg.PopSize)
		// The default never errors: shrink until every island can hold
		// its elites plus at least one bred pair.
		for nIsl > 1 && cfg.PopSize/nIsl <= cfg.Elitism+1 {
			nIsl--
		}
	case nIsl > cfg.PopSize/2:
		return nil, fmt.Errorf("ga: %d islands cannot split population %d (2 individuals per island minimum)", nIsl, cfg.PopSize)
	}
	minSize := cfg.PopSize / nIsl
	if nIsl > 1 && cfg.Elitism >= minSize {
		return nil, fmt.Errorf("ga: elitism %d incompatible with island size %d", cfg.Elitism, minSize)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	e := &Engine{
		p:       p,
		cfg:     cfg,
		n:       n,
		alleles: alleles,
		workers: workers,
	}
	if ps, ok := p.(PartialScorer); ok && !cfg.ExactRescore && ps.SumCount() > 0 {
		e.ps = ps
		e.inc = true
		e.sumN = ps.SumCount()
		if bps, ok := p.(BatchPartialScorer); ok {
			e.bps = bps
		}
	}
	if bs, ok := p.(BatchScorer); ok {
		e.bs = bs
	}
	e.fanout = nIsl == 1 && workers > 1 && e.bs == nil

	segEvery := cfg.MigrationEvery
	switch {
	case segEvery == 0:
		segEvery = DefaultMigrationEvery
	case segEvery < 0:
		segEvery = DefaultMigrationEvery // barriers still run; migration is disabled below
	}
	e.segEvery = segEvery
	migrants := cfg.Migrants
	if migrants == 0 {
		migrants = DefaultMigrants
	}
	if m := minSize / 2; migrants > m {
		migrants = m
	}
	if migrants < 0 || cfg.MigrationEvery < 0 || nIsl == 1 {
		migrants = 0
	}
	e.migrants = migrants

	e.islands = make([]island, nIsl)
	rem := cfg.PopSize % nIsl
	for i := range e.islands {
		size := cfg.PopSize / nIsl
		if i < rem {
			size++
		}
		e.islands[i].init(e, i, size)
	}
	e.history = make([]float64, 0, cfg.Generations+1)
	e.best = make([]int, n)
	e.islandEvals = make([]int, nIsl)
	if migrants > 0 {
		e.migGenes = make([]int, nIsl*migrants*n)
		e.migScores = make([]float64, nIsl*migrants)
		if e.inc {
			e.migSums = make([]float64, nIsl*migrants*e.sumN)
		}
	}
	if cfg.CapturePopulation {
		e.popRows = make([][]int, cfg.PopSize)
		e.popGenes = make([]int, cfg.PopSize*n)
	}
	return e, nil
}

// Run executes the search under ctx and returns the engine-owned
// result: Best, History, IslandEvaluations and Population alias
// engine slabs, valid until the next Run call. Callers that need a
// caller-owned result use Result.Clone (RunContext does). Repeat
// calls reproduce byte-identical results: the RNG streams re-seed,
// the caches clear, and the populations re-initialize from scratch.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	gens := e.cfg.Generations
	nIsl := len(e.islands)
	for i := range e.islands {
		e.islands[i].reset(e)
	}
	e.history = e.history[:0]
	e.migrations = 0

	// Initial population: problem seeds then warm-start vectors,
	// dealt round-robin across islands (overflowing to the next
	// island with space, dropped once all are full — the single-
	// population engine truncated at PopSize the same way), then each
	// island fills its remainder from its own RNG stream.
	idx := 0
	for _, s := range e.p.Seeds() {
		if len(s) != e.n {
			return nil, fmt.Errorf("ga: seed of length %d, want %d", len(s), e.n)
		}
		e.place(idx, s)
		idx++
	}
	for _, w := range e.cfg.WarmStart {
		e.place(idx, w) // length-validated in New
		idx++
	}
	for i := range e.islands {
		isl := &e.islands[i]
		isl.fillRandom(e)
		isl.scoreInitial(e)
		isl.evals += isl.size
		isl.rank()
		isl.hist[0] = isl.sc[isl.perm[0]]
	}
	e.history = append(e.history, e.globalBest(0))

	stale, stopped := 0, false
	done := 0
	for done < gens && !stopped {
		segEnd := done + 1
		if nIsl > 1 {
			segEnd = done + e.segEvery - done%e.segEvery
			if segEnd > gens {
				segEnd = gens
			}
		}
		if err := e.runSegment(ctx, done+1, segEnd); err != nil {
			return nil, err
		}
		// Barrier: aggregate the per-island convergence series in
		// fixed island order and evaluate staleness. With one island
		// the segment is one generation, preserving exact per-
		// generation StaleLimit semantics; with several, a mid-
		// segment trigger stops at the segment end (the bred
		// generations stay in History).
		for g := done + 1; g <= segEnd; g++ {
			b := e.globalBest(g)
			e.history = append(e.history, b)
			if e.cfg.StaleLimit > 0 && !stopped {
				if b <= e.history[len(e.history)-2] {
					stale++
					if stale >= e.cfg.StaleLimit {
						stopped = true
					}
				} else {
					stale = 0
				}
			}
		}
		done = segEnd
		if !stopped && done < gens && e.migrants > 0 && done%e.segEvery == 0 {
			e.migrate()
		}
	}
	return e.assemble(), nil
}

// place copies one initial individual into the population,
// round-robin by arrival index across islands.
func (e *Engine) place(idx int, vec []int) {
	nIsl := len(e.islands)
	for probe := 0; probe < nIsl; probe++ {
		isl := &e.islands[(idx+probe)%nIsl]
		if isl.filled < isl.size {
			copy(isl.pop[isl.filled].genes, vec)
			isl.filled++
			return
		}
	}
}

// runSegment advances every island through generations (from..to],
// fanning islands over the worker pool. Islands never touch shared
// state mid-segment, so the fan-out is lock-free and scheduling-
// independent; with one worker (or one island) it degenerates to an
// inline loop with zero goroutine overhead.
func (e *Engine) runSegment(ctx context.Context, from, to int) error {
	w := e.workers
	if w > len(e.islands) {
		w = len(e.islands)
	}
	if w <= 1 {
		for i := range e.islands {
			e.islands[i].runGens(ctx, e, from, to)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.islands) {
						return
					}
					e.islands[i].runGens(ctx, e, from, to)
				}
			}()
		}
		wg.Wait()
	}
	for i := range e.islands {
		if err := e.islands[i].err; err != nil {
			return err
		}
	}
	return nil
}

// migrate exchanges elites over the fixed ring topology: island i's
// top-migrants individuals replace the worst slots of island
// (i+1) mod N. Gather-then-scatter through the staging slabs makes
// the exchange simultaneous and order-free; re-ranking afterwards
// restores every island's permutation. Runs on the coordinator
// between segments — the only cross-island data motion in a search.
//
//lint:hotpath
func (e *Engine) migrate() {
	n, m, sumN := e.n, e.migrants, e.sumN
	nIsl := len(e.islands)
	for i := range e.islands {
		isl := &e.islands[i]
		for j := 0; j < m; j++ {
			src := &isl.pop[isl.perm[j]]
			copy(e.migGenes[(i*m+j)*n:(i*m+j+1)*n], src.genes)
			e.migScores[i*m+j] = src.score
			if e.inc {
				copy(e.migSums[(i*m+j)*sumN:(i*m+j+1)*sumN], src.sums)
			}
		}
	}
	for i := range e.islands {
		dst := &e.islands[(i+1)%nIsl]
		for j := 0; j < m; j++ {
			slot := &dst.pop[dst.perm[dst.size-m+j]]
			copy(slot.genes, e.migGenes[(i*m+j)*n:(i*m+j+1)*n])
			slot.score = e.migScores[i*m+j]
			if e.inc {
				copy(slot.sums, e.migSums[(i*m+j)*sumN:(i*m+j+1)*sumN])
			}
		}
	}
	e.migrations += nIsl * m
	for i := range e.islands {
		e.islands[i].rank()
	}
}

// globalBest returns the best score across islands after generation g
// (a fixed-order reduction; ties keep the first island).
func (e *Engine) globalBest(g int) float64 {
	b := e.islands[0].hist[g]
	for i := 1; i < len(e.islands); i++ {
		if e.islands[i].hist[g] > b {
			b = e.islands[i].hist[g]
		}
	}
	return b
}

// assemble builds the engine-owned Result from the final island
// states; every reduction runs in ascending island order with
// first-island-wins ties, so the outcome is independent of worker
// scheduling.
func (e *Engine) assemble() *Result {
	win := 0
	bestScore := e.islands[0].sc[e.islands[0].perm[0]]
	for i := 1; i < len(e.islands); i++ {
		if s := e.islands[i].sc[e.islands[i].perm[0]]; s > bestScore {
			win, bestScore = i, s
		}
	}
	wisl := &e.islands[win]
	copy(e.best, wisl.pop[wisl.perm[0]].genes)

	evals, hits, evict := 0, 0, 0
	for i := range e.islands {
		isl := &e.islands[i]
		e.islandEvals[i] = isl.evals
		evals += isl.evals
		hits += isl.hits
		if isl.cache != nil {
			evict += isl.cache.evictions
		}
	}
	cacheCap := 0
	if e.islands[0].cache != nil {
		cacheCap = e.islands[0].cache.cap
	}
	e.res = Result{
		Best:              e.best,
		BestScore:         bestScore,
		History:           e.history,
		Evaluations:       evals,
		Generations:       len(e.history) - 1,
		CacheHits:         hits,
		CacheCap:          cacheCap,
		CacheEvictions:    evict,
		Islands:           len(e.islands),
		Migrations:        e.migrations,
		IslandEvaluations: e.islandEvals,
	}
	if e.cfg.CapturePopulation {
		k := 0
		for i := range e.islands {
			isl := &e.islands[i]
			for r := 0; r < isl.size; r++ {
				row := e.popGenes[k*e.n : (k+1)*e.n : (k+1)*e.n]
				copy(row, isl.pop[isl.perm[r]].genes)
				e.popRows[k] = row
				k++
			}
		}
		e.res.Population = e.popRows
	}
	return &e.res
}

// migrationGens returns the generations at which migration fires for
// a search of gens generations at cadence every — the fixed schedule
// the golden determinism test pins. Migration never fires at the
// final generation (there is nothing left to breed from it).
func migrationGens(gens, every int) []int {
	var out []int
	for g := every; g < gens; g += every {
		out = append(out, g)
	}
	return out
}
