package ga

import "math/bits"

// splitmix is a tiny allocation-free PRNG (splitmix64, Steele et al.,
// OOPSLA 2014). The engine runs one independent instance per island,
// seeded from (Config.Seed, island id), so islands draw from
// decorrelated streams with no shared state and the whole trajectory
// is a pure function of the config. It replaces math/rand on the
// breeding hot path: next() is five arithmetic ops with no interface
// dispatch, several times cheaper per draw than rand.Rand.
type splitmix struct{ s uint64 }

// newSplitmix seeds the stream for one island. Seed and island id are
// folded through the two odd splitmix64 constants with different
// roles (increment vs mixer), so adjacent seeds and adjacent island
// ids still land in unrelated stream positions.
func newSplitmix(seed int64, island int) splitmix {
	return splitmix{s: (uint64(seed)+1)*0x9E3779B97F4A7C15 ^ (uint64(island)+1)*0xBF58476D1CE4E5B9}
}

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1): the top 53 bits scaled
// by 2^-53, the same construction math/rand/v2 uses.
func (r *splitmix) Float64() float64 {
	return float64(r.next()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n) via Lemire's multiply-shift
// bounded reduction. The bias is at most n/2^64 — for the engine's
// draws (n ≤ population size or allele count, well under 2^20) that
// is below 2^-44, unobservable to a stochastic search — and skipping
// the rejection loop keeps the draw branch-free on the hottest path
// in the package.
func (r *splitmix) Intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}
