package ga

import (
	"fmt"
	"testing"
)

// intSumProblem is a PartialScorer whose partial sums are small
// integers stored in float64. Every sum stays far below 2^53, so delta
// updates are exact (no reassociation error): an incremental run and an
// ExactRescore run must produce byte-identical trajectories, which is
// the strongest possible check of the delta bookkeeping (resync marks,
// tail-swap deltas, periodic re-walks, the spare-slot child).
type intSumProblem struct {
	weights [][]float64 // weights[gene][allele], small integers
	alleles int
}

func newIntSumProblem(genes, alleles int) *intSumProblem {
	w := make([][]float64, genes)
	for g := range w {
		w[g] = make([]float64, alleles)
		for a := range w[g] {
			w[g][a] = float64((g*31 + a*17 + 5) % 97)
		}
	}
	return &intSumProblem{weights: w, alleles: alleles}
}

func (p *intSumProblem) Genes() int     { return len(p.weights) }
func (p *intSumProblem) Alleles() int   { return p.alleles }
func (p *intSumProblem) Seeds() [][]int { return nil }
func (p *intSumProblem) Score(ind []int) float64 {
	sums := make([]float64, 2)
	p.InitSums(ind, sums)
	return p.ScoreSums(sums)
}
func (p *intSumProblem) SumCount() int { return 2 }
func (p *intSumProblem) InitSums(ind []int, sums []float64) {
	var s0, s1 float64
	for g, a := range ind {
		s0 += p.weights[g][a]
		s1 += p.weights[g][a] * p.weights[g][a]
	}
	sums[0], sums[1] = s0, s1
}
func (p *intSumProblem) UpdateSums(sums []float64, gene, oldAllele, newAllele int) {
	o, n := p.weights[gene][oldAllele], p.weights[gene][newAllele]
	sums[0] += n - o
	sums[1] += n*n - o*o
}
func (p *intSumProblem) ScoreSums(sums []float64) float64 {
	// Reward large linear sum, penalize spread; integer-valued inputs
	// keep the arithmetic exact through the division.
	return sums[0] - sums[1]/1024
}

func runPair(t *testing.T, cfg Config) (inc, exact *Result) {
	t.Helper()
	p := newIntSumProblem(24, 8)
	cfg.ExactRescore = false
	ri, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExactRescore = true
	re, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ri, re
}

func TestIncrementalMatchesExactRescoreBitwise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopSize = 50
	cfg.Generations = 200 // crosses several sumRefreshEvery boundaries
	for _, sel := range []Selection{RankSelection, RouletteSelection, TournamentSelection} {
		cfg.Selection = sel
		inc, exact := runPair(t, cfg)
		if len(inc.History) != len(exact.History) {
			t.Fatalf("sel %v: history lengths differ: %d vs %d", sel, len(inc.History), len(exact.History))
		}
		for i := range inc.History {
			if inc.History[i] != exact.History[i] {
				t.Fatalf("sel %v gen %d: incremental history %v differs from exact %v", sel, i, inc.History[i], exact.History[i])
			}
		}
		if fmt.Sprint(inc.Best) != fmt.Sprint(exact.Best) || inc.BestScore != exact.BestScore {
			t.Fatalf("sel %v: best diverged: %v (%v) vs %v (%v)", sel, inc.Best, inc.BestScore, exact.Best, exact.BestScore)
		}
	}
}

func TestIncrementalWorkerCountInvariance(t *testing.T) {
	// Same seed must yield a byte-identical strategy regardless of the
	// worker count — incremental scoring is serial by construction, and
	// the exact-rescore batches are order-independent.
	p := newIntSumProblem(24, 8)
	cfg := DefaultConfig()
	cfg.PopSize = 50
	cfg.Generations = 120
	var ref *Result
	for i, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if fmt.Sprint(res.Best) != fmt.Sprint(ref.Best) || res.BestScore != ref.BestScore {
			t.Fatalf("workers=%d: best %v (%v) differs from workers=1 best %v (%v)",
				workers, res.Best, res.BestScore, ref.Best, ref.BestScore)
		}
		for g := range ref.History {
			if res.History[g] != ref.History[g] {
				t.Fatalf("workers=%d gen %d: history %v vs %v", workers, g, res.History[g], ref.History[g])
			}
		}
	}
}

func TestIncrementalSkipsScoreCache(t *testing.T) {
	p := newIntSumProblem(16, 6)
	cfg := DefaultConfig()
	cfg.PopSize = 40
	cfg.Generations = 60
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheCap != 0 || res.CacheEvictions != 0 {
		t.Errorf("incremental run reported cache activity: hits=%d cap=%d evictions=%d, want all zero",
			res.CacheHits, res.CacheCap, res.CacheEvictions)
	}
	if res.Generations != len(res.History)-1 {
		t.Errorf("Generations = %d, want %d", res.Generations, len(res.History)-1)
	}
}

func TestScoreCacheCapBoundsAndReports(t *testing.T) {
	// A non-PartialScorer problem exercises the memo cache. A tiny cap
	// must force evictions, report the cap, and leave the trajectory
	// identical to an unbounded run — eviction only forgets scores, it
	// never changes them.
	p := &matchProblem{target: target(14, 5), alleles: 5}
	cfg := smallConfig()

	cfg.ScoreCacheCap = 32
	capped, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ScoreCacheCap = -1
	unbounded, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if capped.CacheCap != 32 {
		t.Errorf("CacheCap = %d, want 32", capped.CacheCap)
	}
	if capped.CacheEvictions == 0 {
		t.Error("tiny cache cap produced zero evictions")
	}
	if unbounded.CacheCap != 0 || unbounded.CacheEvictions != 0 {
		t.Errorf("unbounded run reported cap=%d evictions=%d, want zero", unbounded.CacheCap, unbounded.CacheEvictions)
	}
	if capped.BestScore != unbounded.BestScore || fmt.Sprint(capped.Best) != fmt.Sprint(unbounded.Best) {
		t.Errorf("capped cache changed the outcome: %v (%v) vs %v (%v)",
			capped.Best, capped.BestScore, unbounded.Best, unbounded.BestScore)
	}
	for g := range capped.History {
		if capped.History[g] != unbounded.History[g] {
			t.Fatalf("gen %d: capped history %v vs unbounded %v", g, capped.History[g], unbounded.History[g])
		}
	}
	if capped.CacheHits > unbounded.CacheHits {
		t.Errorf("capped cache hit more than unbounded: %d vs %d", capped.CacheHits, unbounded.CacheHits)
	}
}

func TestDefaultScoreCacheCapApplied(t *testing.T) {
	p := &matchProblem{target: target(10, 4), alleles: 4}
	cfg := smallConfig()
	cfg.ScoreCacheCap = 0
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheCap != DefaultScoreCacheCap {
		t.Errorf("CacheCap = %d, want DefaultScoreCacheCap (%d)", res.CacheCap, DefaultScoreCacheCap)
	}
}
