package ga

import (
	"encoding/binary"
	"sync"
)

// scoreCache memoizes sanitized fitness values by gene vector, so
// individuals recurring across generations (elites' children,
// converged populations) skip re-simulation. Each island owns one
// cache, accessed only from that island's goroutine — cache
// contention is fixed by construction, not by locking. Entries carry
// the generation that last used them; when the map exceeds cap,
// whole generation cohorts are evicted oldest-first (see maybeEvict).
type scoreCache struct {
	m         map[string]*cacheEntry
	cap       int // entry bound; 0 = unbounded
	evictions int
}

type cacheEntry struct {
	score float64
	gen   int // generation that last hit or inserted this entry
}

func newScoreCache(capCfg int) *scoreCache {
	c := &scoreCache{m: make(map[string]*cacheEntry)}
	switch {
	case capCfg == 0:
		c.cap = DefaultScoreCacheCap
	case capCfg > 0:
		c.cap = capCfg
	}
	return c
}

// maybeEvict drops the oldest generation cohorts once the map exceeds
// cap, keeping the most recently used generations intact — entries
// touched in the current generation always survive, so the cap is
// soft by at most one generation's novel vectors. The outcome depends
// only on the generation stamps, never on map iteration order, so
// same-seed runs evict identically.
func (c *scoreCache) maybeEvict(gen int) {
	if c.cap <= 0 || len(c.m) <= c.cap {
		return
	}
	counts := make([]int, gen+1)
	for _, e := range c.m {
		counts[e.gen]++
	}
	kept := counts[gen]
	cutoff := gen
	for g := gen - 1; g >= 0; g-- {
		if kept+counts[g] > c.cap {
			break
		}
		kept += counts[g]
		cutoff = g
	}
	for k, e := range c.m {
		if e.gen < cutoff {
			delete(c.m, k)
			c.evictions++
		}
	}
}

// appendGeneKey encodes a gene vector as compact varint bytes into
// dst for cache lookup, reusing dst's capacity.
func appendGeneKey(dst []byte, genes []int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, g := range genes {
		n := binary.PutUvarint(tmp[:], uint64(g))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// scoreBatch runs Score for the given cohort indices across a worker
// pool — the scoring path for single-island searches over problems
// without a batch entry point. Each worker only writes the entries it
// drew from the channel, so no two goroutines touch the same element
// and results are independent of scheduling.
func scoreBatch(p Problem, cohort []scored, todo []int, workers int) {
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			cohort[i].score = sanitize(p.Score(cohort[i].genes))
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(todo))
	for _, i := range todo {
		ch <- i
	}
	close(ch)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				cohort[i].score = sanitize(p.Score(cohort[i].genes))
			}
		}()
	}
	wg.Wait()
}
