package ga

import (
	"context"
	"fmt"
	"math"
)

// scored is one population slot. genes and sums point into the
// island's preallocated double buffers and are recycled every
// generation; row is the slot's fixed slab row index, which never
// changes because ranking permutes an index array instead of moving
// slots — that is what keeps each generation's children a contiguous
// slab range the batch scorers can sweep.
type scored struct {
	genes []int
	score float64
	sums  []float64
	row   int32
}

// rankInvQ is the resolution of the rank-selection inverse-CDF hint
// table: the unit interval is split into rankInvQ buckets, each
// holding the first rank whose cumulative weight reaches the bucket
// boundary, so a pick is one table load plus an expected
// size/rankInvQ-step linear advance instead of a binary search.
const rankInvQ = 1024

// island is one independent sub-population. Everything an island
// touches while breeding and scoring — populations, RNG, score cache,
// scratch — is island-owned, so islands run concurrently with no
// locks and no false sharing, and results cannot depend on worker
// scheduling. Only migration (on the coordinator, between segments)
// reaches across islands.
type island struct {
	id    int
	size  int
	elite int
	rng   splitmix

	// buf backs both generations plus the spare slot: pop and next
	// are its halves (swapped every generation), spare is the last
	// slot. The spare absorbs the discarded second child of the final
	// pair when size-elite is odd — bred and mutated like any child
	// so the RNG draw sequence is independent of parity, then dropped
	// unscored.
	buf   []scored
	pop   []scored
	next  []scored
	spare *scored

	geneBlock []int
	sumBlock  []float64

	// perm is the ranking permutation: perm[r] is the pop slot of the
	// rank-r individual (descending score, ties to the lower slot).
	// sc is a flat copy of the slot scores (indexed by slot); key,
	// keyTmp and radixHist are the radix sort's slabs — see rank.
	perm      []int32
	permTmp   []int32
	sc        []float64
	key       []uint64
	keyTmp    []uint64
	radixHist []int32

	// Rank selection's quadratic weights depend only on rank, so the
	// prefix sums and the inverse-CDF hint table are built once.
	// Roulette weights depend on scores; prefix is its per-generation
	// scratch, in ranked order.
	rankPrefix []float64
	rankTotal  float64
	rankInv    []int32
	prefix     []float64

	// Cohort-scoring scratch (non-incremental path): the memo cache
	// partition buffers and the gather matrix batch scoring reads
	// cache representatives through.
	cache    *scoreCache
	keys     [][]byte
	reps     []int
	todo     []int
	repByKey map[string]int
	gather   []int
	bscores  []float64

	hist   []float64 // best score after each generation, indexed by generation
	filled int       // initial-population slots filled so far
	evals  int
	hits   int
	err    error
}

// init allocates the island's slabs and scratch for its share of the
// population. Called once per Engine; Run-to-Run state is restored by
// reset.
func (isl *island) init(e *Engine, id, size int) {
	isl.id, isl.size, isl.elite = id, size, e.cfg.Elitism
	n := e.n
	slots := 2*size + 1
	isl.geneBlock = make([]int, slots*n)
	if e.inc {
		isl.sumBlock = make([]float64, slots*e.sumN)
	}
	isl.buf = make([]scored, slots)
	for i := range isl.buf {
		isl.buf[i].genes = isl.geneBlock[i*n : (i+1)*n : (i+1)*n]
		if e.inc {
			isl.buf[i].sums = isl.sumBlock[i*e.sumN : (i+1)*e.sumN : (i+1)*e.sumN]
		}
		isl.buf[i].row = int32(i)
	}
	isl.perm = make([]int32, size)
	isl.permTmp = make([]int32, size)
	isl.sc = make([]float64, size)
	isl.key = make([]uint64, size)
	isl.keyTmp = make([]uint64, size)
	isl.radixHist = make([]int32, 256)
	isl.hist = make([]float64, e.cfg.Generations+1)

	switch e.cfg.Selection {
	case RouletteSelection:
		isl.prefix = make([]float64, size)
	case TournamentSelection:
		// Tournament compares sc directly; no prefix needed.
	default: // RankSelection
		isl.rankPrefix = make([]float64, size)
		sum := 0.0
		for i := 0; i < size; i++ {
			w := float64(size-i) * float64(size-i)
			sum += w
			isl.rankPrefix[i] = sum
		}
		isl.rankTotal = sum
		// rankInv[q] is the smallest rank whose cumulative weight
		// reaches q/rankInvQ of the total — a lower bound for the
		// answer of any pick landing in bucket q.
		isl.rankInv = make([]int32, rankInvQ)
		q := 0
		for r := 0; r < size; r++ {
			for q < rankInvQ && float64(q)*sum/rankInvQ <= isl.rankPrefix[r] {
				isl.rankInv[q] = int32(r)
				q++
			}
		}
		for ; q < rankInvQ; q++ {
			isl.rankInv[q] = int32(size - 1)
		}
	}

	if !e.inc {
		if !e.cfg.NoScoreCache {
			isl.cache = newScoreCache(e.cfg.ScoreCacheCap)
			isl.repByKey = make(map[string]int)
			isl.keys = make([][]byte, size)
		}
		isl.todo = make([]int, 0, size)
		isl.reps = make([]int, 0, size)
		if e.bs != nil {
			isl.gather = make([]int, size*n)
			isl.bscores = make([]float64, size)
		}
	}
}

// reset restores the island to its pre-search state so Engine.Run
// reproduces byte-identical results on reuse: RNG re-seeded, buffers
// re-oriented, caches and counters cleared.
func (isl *island) reset(e *Engine) {
	isl.rng = newSplitmix(e.cfg.Seed, isl.id)
	isl.pop, isl.next = isl.buf[:isl.size], isl.buf[isl.size:2*isl.size]
	isl.spare = &isl.buf[2*isl.size]
	isl.filled = 0
	isl.evals = 0
	isl.hits = 0
	isl.err = nil
	if isl.cache != nil {
		clear(isl.cache.m)
		isl.cache.evictions = 0
	}
}

// fillRandom completes the initial population with uniform random
// individuals after seeds and warm-start vectors were placed.
func (isl *island) fillRandom(e *Engine) {
	for ; isl.filled < isl.size; isl.filled++ {
		g := isl.pop[isl.filled].genes
		for i := range g {
			g[i] = isl.rng.Intn(e.alleles)
		}
	}
}

// scoreInitial scores generation zero.
func (isl *island) scoreInitial(e *Engine) {
	if e.inc {
		isl.scoreIncremental(e, isl.pop, true)
		return
	}
	isl.hits += isl.scoreCohort(e, isl.pop, 0)
}

// runGens advances the island through breeding steps (from..to]. On
// context cancellation it records the error and stops; the coordinator
// surfaces it after the segment barrier.
func (isl *island) runGens(ctx context.Context, e *Engine, from, to int) {
	for g := from; g <= to; g++ {
		if err := ctx.Err(); err != nil {
			isl.err = fmt.Errorf("ga: search cancelled at generation %d/%d: %w", g-1, e.cfg.Generations, err)
			return
		}
		isl.breed(e)
		children := isl.next[isl.elite:]
		if e.inc {
			isl.scoreIncremental(e, children, g%sumRefreshEvery == 0)
		} else {
			isl.hits += isl.scoreCohort(e, children, g)
		}
		isl.evals += len(children)
		isl.pop, isl.next = isl.next, isl.pop
		isl.rank()
		isl.hist[g] = isl.sc[isl.perm[0]]
	}
}

// breed fills next from pop: elites first, then score-selected pairs
// recombined by tail-swap crossover and burst mutation. The RNG draw
// order (pick a, pick b, crossover roll, k, then per child the
// mutation roll and burst draws) is fixed — tests pin same-seed
// trajectories to it. Crossover children are assembled gene-by-gene
// from their two parents (head from one, tail from the other) with
// the shorter segment treated as replaced: the incremental path
// starts from the longer parent's sums and applies at most genes/2
// deltas per child, never a full re-walk.
//
//lint:hotpath
func (isl *island) breed(e *Engine) {
	n := e.n
	for i := 0; i < isl.elite; i++ {
		isl.copySlot(e, &isl.next[i], &isl.pop[isl.perm[i]])
	}
	if e.cfg.Selection == RouletteSelection {
		isl.buildRoulettePrefix()
	}
	for made := isl.elite; made < isl.size; made += 2 {
		pa := isl.pickParent(e)
		pb := isl.pickParent(e)
		childA := &isl.next[made]
		childB := isl.spare
		if made+1 < isl.size {
			childB = &isl.next[made+1]
		}
		k := 0
		if isl.rng.Float64() < e.cfg.CrossoverRate && n > 1 {
			// Swap the last k genes (Sect. 6.3.3).
			k = 1 + isl.rng.Intn(n-1)
		}
		if 2*k <= n {
			isl.makeChild(e, childA, pa, pb, n-k, n)
			isl.makeChild(e, childB, pb, pa, n-k, n)
		} else {
			isl.makeChild(e, childA, pb, pa, 0, n-k)
			isl.makeChild(e, childB, pa, pb, 0, n-k)
		}
		isl.mutate(e, childA)
		isl.mutate(e, childB)
	}
}

// copySlot initializes dst as a copy of src (genes, score, sums).
func (isl *island) copySlot(e *Engine, dst, src *scored) {
	copy(dst.genes, src.genes)
	dst.score = src.score
	if e.inc {
		copy(dst.sums, src.sums)
	}
}

// makeChild builds dst as base with genes [lo, hi) replaced from
// other, writing every child gene exactly once (no copy-then-swap
// traffic). Under incremental scoring dst's sums start from base's
// and take one delta per differing gene in ascending order — callers
// pick base so that hi-lo is the short side, bounding the deltas at
// n/2 per child. dst.score is left stale: children are always
// rescored after breeding.
func (isl *island) makeChild(e *Engine, dst, base, other *scored, lo, hi int) {
	copy(dst.genes[:lo], base.genes[:lo])
	copy(dst.genes[hi:], base.genes[hi:])
	if !e.inc {
		copy(dst.genes[lo:hi], other.genes[lo:hi])
		return
	}
	if ds, bs := dst.sums, base.sums; len(ds) == 4 && len(bs) == 4 {
		// The evaltab quadruple: an inline copy dodges a memmove call
		// per child on the dominant problem shape.
		ds[0], ds[1], ds[2], ds[3] = bs[0], bs[1], bs[2], bs[3]
	} else {
		copy(ds, bs)
	}
	for i := lo; i < hi; i++ {
		g := other.genes[i]
		dst.genes[i] = g
		if bg := base.genes[i]; bg != g {
			e.ps.UpdateSums(dst.sums, i, bg, g)
		}
	}
}

// mutate rewrites a small burst of random genes; single-gene steps
// converge too slowly on thousand-stage problems.
func (isl *island) mutate(e *Engine, c *scored) {
	if isl.rng.Float64() >= e.cfg.MutationRate {
		return
	}
	burst := 1 + isl.rng.Intn(3)
	for m := 0; m < burst; m++ {
		idx := isl.rng.Intn(e.n)
		val := isl.rng.Intn(e.alleles)
		if e.inc && c.genes[idx] != val {
			e.ps.UpdateSums(c.sums, idx, c.genes[idx], val)
		}
		c.genes[idx] = val
	}
}

// rank rebuilds the ranking permutation over pop: perm[r] becomes the
// slot of the rank-r individual, descending by score with ties to the
// lower slot index. It is an LSD radix sort: each score is mapped to
// a uint64 key whose ascending order is descending score order
// (sign-aware monotone float bits, complemented), the key-building
// sweep also ORs up a difference mask, and any pass whose byte is
// constant across the population — most of the high bytes, since
// fitness values share sign and exponent — is skipped outright. A
// comparison sort loses here because fitness order is essentially
// random, so about half its compares mispredict; radix scatter has no
// data-dependent branches at all. The sort is stable (equal scores
// keep ascending slot order) and no slot is physically moved — the
// slab rows, and with them the batch-scoring contiguity, are
// permanent.
//
//lint:hotpath
func (isl *island) rank() {
	n := isl.size
	pop, sc, hist := isl.pop, isl.sc, isl.radixHist
	key, keyAlt := isl.key, isl.keyTmp
	perm, permAlt := isl.perm, isl.permTmp
	var k0, diff uint64
	for i := 0; i < n; i++ {
		s := pop[i].score
		sc[i] = s
		b := math.Float64bits(s)
		k := ^(b ^ (uint64(int64(b)>>63) | 1<<63))
		key[i] = k
		perm[i] = int32(i)
		if i == 0 {
			k0 = k
		}
		diff |= k ^ k0
	}
	h := hist[:256:256]
	for d := 0; d < 8; d++ {
		shift := uint(d * 8)
		if diff>>shift&0xff == 0 {
			continue // every key shares this byte
		}
		clear(h)
		for i := 0; i < n; i++ {
			h[int(key[i]>>shift&0xff)]++
		}
		ofs := int32(0)
		for b := range h {
			c := h[b]
			h[b] = ofs
			ofs += c
		}
		for i := 0; i < n; i++ {
			k := key[i]
			slot := &h[int(k>>shift&0xff)]
			j := *slot
			*slot = j + 1
			keyAlt[j] = k
			permAlt[j] = perm[i]
		}
		key, keyAlt = keyAlt, key
		perm, permAlt = permAlt, perm
	}
	if &perm[0] != &isl.perm[0] {
		copy(isl.perm, perm)
	}
}

// buildRoulettePrefix computes cumulative proportional weights in
// ranked order. The shift baseline is the worst finite score:
// sanitized (NaN → -Inf) individuals get weight 0 rather than
// dragging the baseline to -Inf and turning every weight into
// Inf/NaN.
func (isl *island) buildRoulettePrefix() {
	minScore := math.Inf(1)
	for _, s := range isl.sc {
		if !math.IsInf(s, 0) && s < minScore {
			minScore = s
		}
	}
	if math.IsInf(minScore, 1) {
		minScore = 0 // no finite scores at all
	}
	sum := 0.0
	for i := 0; i < isl.size; i++ {
		s := isl.sc[isl.perm[i]]
		if !math.IsInf(s, -1) {
			sum += s - minScore + 1e-12
		}
		isl.prefix[i] = sum
	}
}

// pickParent selects a parent under the configured scheme. Rank
// selection is O(1): one inverse-CDF table load plus a short linear
// advance (the table entry is a provable lower bound for the target
// rank), replacing the per-pick binary search.
func (isl *island) pickParent(e *Engine) *scored {
	switch e.cfg.Selection {
	case TournamentSelection:
		best := isl.rng.Intn(isl.size)
		for i := 0; i < 2; i++ {
			if c := isl.rng.Intn(isl.size); isl.sc[c] > isl.sc[best] {
				best = c
			}
		}
		return &isl.pop[best]
	case RouletteSelection:
		total := isl.prefix[isl.size-1]
		x := isl.rng.Float64() * total
		lo, hi := 0, isl.size-1
		for lo < hi {
			mid := (lo + hi) / 2
			if isl.prefix[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return &isl.pop[isl.perm[lo]]
	default: // RankSelection
		u := isl.rng.Float64()
		x := u * isl.rankTotal
		r := int(isl.rankInv[int(u*rankInvQ)])
		for r < isl.size-1 && isl.rankPrefix[r] < x {
			r++
		}
		return &isl.pop[isl.perm[r]]
	}
}

// scoreIncremental scores slots from their partial sums. When refresh
// is set (generation zero and every sumRefreshEvery generations
// after), the sums are rebuilt by full walks first — through the
// batch kernel when the problem provides one, sweeping the cohort's
// contiguous slab rows gene-major — bounding the delta path's
// floating-point drift. Runs on the island's goroutine; a delta score
// is tens of nanoseconds, far below fan-out cost.
//
//lint:hotpath
func (isl *island) scoreIncremental(e *Engine, cohort []scored, refresh bool) {
	if refresh {
		if e.bps != nil {
			base, cnt := int(cohort[0].row), len(cohort)
			e.bps.InitSumsBatch(
				isl.geneBlock[base*e.n:(base+cnt)*e.n],
				cnt,
				isl.sumBlock[base*e.sumN:(base+cnt)*e.sumN])
		} else {
			for i := range cohort {
				e.ps.InitSums(cohort[i].genes, cohort[i].sums)
			}
		}
	}
	for i := range cohort {
		cohort[i].score = sanitize(e.ps.ScoreSums(cohort[i].sums))
	}
}

// scoreCohort evaluates fitness for a cohort through the island's
// memo cache (when enabled), reporting how many individuals were
// served without a Score call. Within one cohort, duplicate gene
// vectors are scored once; across generations the cache carries
// scores. gen stamps touched entries for eviction.
func (isl *island) scoreCohort(e *Engine, cohort []scored, gen int) (hits int) {
	if isl.cache == nil {
		isl.todo = isl.todo[:0]
		for i := range cohort {
			isl.todo = append(isl.todo, i)
		}
		isl.scoreSlots(e, cohort, isl.todo)
		return 0
	}
	// Partition into cache hits, one representative per novel gene
	// vector, and duplicates of a representative. Lookups through
	// m[string(bytes)] compile to zero-copy map probes; a key string
	// is only materialized once per novel vector.
	keys := isl.keys[:len(cohort)]
	isl.reps = isl.reps[:0]
	clear(isl.repByKey)
	for i := range cohort {
		keys[i] = appendGeneKey(keys[i][:0], cohort[i].genes)
		if ent, ok := isl.cache.m[string(keys[i])]; ok {
			cohort[i].score = ent.score
			ent.gen = gen // refresh the stamp so hot entries survive eviction
			hits++
			continue
		}
		if _, ok := isl.repByKey[string(keys[i])]; !ok {
			isl.repByKey[string(keys[i])] = i
			isl.reps = append(isl.reps, i)
		}
	}
	isl.scoreSlots(e, cohort, isl.reps)
	// Insert the representatives, reusing the interned map keys; the
	// cache contents are independent of this map's iteration order.
	for k, i := range isl.repByKey {
		isl.cache.m[k] = &cacheEntry{score: cohort[i].score, gen: gen}
	}
	// Fill duplicates from the representatives just scored.
	for i := range cohort {
		rep, ok := isl.repByKey[string(keys[i])]
		if ok && rep != i {
			cohort[i].score = cohort[rep].score
			hits++
		}
	}
	isl.cache.maybeEvict(gen)
	return hits
}

// scoreSlots scores the given cohort indices: through the problem's
// batch entry point when it has one (gathering the indices into one
// contiguous matrix), else per-candidate Score calls — fanned out
// over the worker pool when this island is the whole population,
// serial otherwise (multi-island runs parallelize across islands
// instead).
func (isl *island) scoreSlots(e *Engine, cohort []scored, todo []int) {
	if len(todo) == 0 {
		return
	}
	if e.bs != nil {
		g := isl.gather[:len(todo)*e.n]
		for j, i := range todo {
			copy(g[j*e.n:(j+1)*e.n], cohort[i].genes)
		}
		sc := isl.bscores[:len(todo)]
		e.bs.ScoreBatch(g, len(todo), sc)
		for j, i := range todo {
			cohort[i].score = sanitize(sc[j])
		}
		return
	}
	if e.fanout {
		scoreBatch(e.p, cohort, todo, e.workers)
		return
	}
	for _, i := range todo {
		cohort[i].score = sanitize(e.p.Score(cohort[i].genes))
	}
}
