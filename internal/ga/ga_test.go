package ga

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// matchProblem rewards matching a hidden target vector: a smooth,
// separable landscape the GA must solve easily.
type matchProblem struct {
	target  []int
	alleles int
	seeds   [][]int
}

func (m *matchProblem) Genes() int   { return len(m.target) }
func (m *matchProblem) Alleles() int { return m.alleles }
func (m *matchProblem) Seeds() [][]int {
	return m.seeds
}
func (m *matchProblem) Score(ind []int) float64 {
	s := 0.0
	for i, g := range ind {
		if g == m.target[i] {
			s++
		}
	}
	return s
}

func target(n, alleles int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = (i*7 + 3) % alleles
	}
	return t
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 60
	cfg.Generations = 150
	return cfg
}

func TestConvergesToTarget(t *testing.T) {
	p := &matchProblem{target: target(20, 5), alleles: 5}
	res, err := Run(p, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 18 {
		t.Errorf("best score = %g / 20, expected near-perfect convergence", res.BestScore)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := &matchProblem{target: target(12, 4), alleles: 4}
	cfg := smallConfig()
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore {
		t.Errorf("same-seed runs diverged: %g vs %g", a.BestScore, b.BestScore)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("same-seed best individuals differ at gene %d", i)
		}
	}
}

func TestHistoryMonotoneWithElitism(t *testing.T) {
	p := &matchProblem{target: target(15, 6), alleles: 6}
	cfg := smallConfig()
	cfg.Elitism = 2
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Generations+1 {
		t.Fatalf("history length = %d, want %d", len(res.History), cfg.Generations+1)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best score regressed at generation %d: %g < %g",
				i, res.History[i], res.History[i-1])
		}
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	// Seed the exact target: the best score must be perfect from
	// generation zero.
	tgt := target(10, 3)
	p := &matchProblem{target: tgt, alleles: 3, seeds: [][]int{tgt}}
	cfg := smallConfig()
	cfg.Generations = 1
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0] != float64(len(tgt)) {
		t.Errorf("seeded optimum not present in generation 0: best = %g", res.History[0])
	}
}

func TestSeedLengthValidation(t *testing.T) {
	p := &matchProblem{target: target(10, 3), alleles: 3, seeds: [][]int{{1, 2}}}
	if _, err := Run(p, smallConfig()); err == nil {
		t.Error("short seed: want error")
	}
}

func TestConfigValidation(t *testing.T) {
	p := &matchProblem{target: target(5, 3), alleles: 3}
	bad := []Config{
		{PopSize: 1, Generations: 10},
		{PopSize: 10, Generations: 0},
		{PopSize: 10, Generations: 5, Elitism: 10},
		{PopSize: 10, Generations: 5, Elitism: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(p, cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
	empty := &matchProblem{target: nil, alleles: 3}
	if _, err := Run(empty, smallConfig()); err == nil {
		t.Error("zero genes: want error")
	}
	zeroAlleles := &matchProblem{target: target(5, 3), alleles: 0}
	if _, err := Run(zeroAlleles, smallConfig()); err == nil {
		t.Error("zero alleles: want error")
	}
}

func TestParallelScoringMatchesSerial(t *testing.T) {
	p := &matchProblem{target: target(16, 4), alleles: 4}
	cfg := smallConfig()
	cfg.Workers = 1
	serial, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scoring is deterministic per individual and selection draws are
	// made on a single rng, so worker count must not change results.
	if serial.BestScore != parallel.BestScore {
		t.Errorf("worker count changed outcome: %g vs %g", serial.BestScore, parallel.BestScore)
	}
	for i := range serial.History {
		if serial.History[i] != parallel.History[i] {
			t.Fatalf("histories diverge at generation %d", i)
		}
	}
}

func TestEvaluationsAccounted(t *testing.T) {
	p := &matchProblem{target: target(8, 3), alleles: 3}
	cfg := smallConfig()
	cfg.Generations = 10
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PopSize + cfg.Generations*(cfg.PopSize-cfg.Elitism)
	if res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestSingleGeneCrossoverSafe(t *testing.T) {
	// n == 1 must not panic in the tail-swap (k in [1, n-1] is empty).
	p := &matchProblem{target: []int{2}, alleles: 4}
	res, err := Run(p, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 1 {
		t.Errorf("single-gene problem not solved: %g", res.BestScore)
	}
}

func TestAllSelectionSchemesConverge(t *testing.T) {
	for _, sel := range []Selection{RankSelection, RouletteSelection, TournamentSelection} {
		p := &matchProblem{target: target(15, 4), alleles: 4}
		cfg := smallConfig()
		cfg.Selection = sel
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if res.BestScore < 13 {
			t.Errorf("selection %d: best %g / 15", sel, res.BestScore)
		}
	}
}

func TestStaleLimitStopsEarly(t *testing.T) {
	// Seed the optimum: every generation is stale, so the search must
	// stop after StaleLimit generations.
	tgt := target(10, 3)
	p := &matchProblem{target: tgt, alleles: 3, seeds: [][]int{tgt}}
	cfg := smallConfig()
	cfg.Generations = 500
	cfg.StaleLimit = 5
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) > 10 {
		t.Errorf("history length %d; stale limit should stop within ~6 generations", len(res.History))
	}
	if res.BestScore != float64(len(tgt)) {
		t.Errorf("best score %g, want optimum", res.BestScore)
	}
}

// Property: crossover and mutation never produce out-of-range alleles.
func TestQuickGeneValidity(t *testing.T) {
	p := &validityProblem{genes: 12, alleles: 5}
	cfg := smallConfig()
	cfg.Generations = 50
	if _, err := Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	if p.violations > 0 {
		t.Errorf("%d individuals carried out-of-range alleles", p.violations)
	}
}

type validityProblem struct {
	genes, alleles int
	violations     int
	mu             sync.Mutex
}

func (v *validityProblem) Genes() int     { return v.genes }
func (v *validityProblem) Alleles() int   { return v.alleles }
func (v *validityProblem) Seeds() [][]int { return nil }
func (v *validityProblem) Score(ind []int) float64 {
	s := 0.0
	for _, g := range ind {
		if g < 0 || g >= v.alleles {
			v.mu.Lock()
			v.violations++
			v.mu.Unlock()
		}
		s += float64(g)
	}
	return s
}

// infeasibleProblem returns NaN for any individual containing allele 0
// — the shape of a constraint-violating strategy whose predicted time
// divides by zero. The GA must treat those as worst-fitness rather
// than letting NaN poison the selection prefix sums.
type infeasibleProblem struct {
	genes, alleles int
}

func (p *infeasibleProblem) Genes() int     { return p.genes }
func (p *infeasibleProblem) Alleles() int   { return p.alleles }
func (p *infeasibleProblem) Seeds() [][]int { return nil }
func (p *infeasibleProblem) Score(ind []int) float64 {
	s := 0.0
	for _, g := range ind {
		if g == 0 {
			return math.NaN()
		}
		s += float64(g)
	}
	return s
}

func TestNaNScoresTreatedAsWorst(t *testing.T) {
	for _, sel := range []Selection{RankSelection, RouletteSelection, TournamentSelection} {
		p := &infeasibleProblem{genes: 10, alleles: 4}
		cfg := smallConfig()
		cfg.Selection = sel
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if math.IsNaN(res.BestScore) || math.IsInf(res.BestScore, 0) {
			t.Fatalf("selection %d: best score %g; NaN/Inf must never win", sel, res.BestScore)
		}
		// Every gene at its maximum is the optimum; with NaN handled as
		// -Inf the search must still find a near-optimal feasible point.
		if res.BestScore < float64(10*(4-1))-4 {
			t.Errorf("selection %d: best %g, want near %d despite infeasible region",
				sel, res.BestScore, 10*3)
		}
		for _, g := range res.Best {
			if g == 0 {
				t.Errorf("selection %d: best individual is infeasible", sel)
			}
		}
	}
}

func TestAllNaNPopulationDoesNotPanic(t *testing.T) {
	// Every individual is infeasible: selection must still make
	// (deterministic) picks without panicking or dividing by zero.
	p := &infeasibleProblem{genes: 1, alleles: 1} // allele 0 only -> all NaN
	cfg := smallConfig()
	cfg.Generations = 5
	for _, sel := range []Selection{RankSelection, RouletteSelection, TournamentSelection} {
		cfg.Selection = sel
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if !math.IsInf(res.BestScore, -1) {
			t.Errorf("selection %d: all-NaN population best = %g, want -Inf", sel, res.BestScore)
		}
	}
}

func TestResultIsDefensiveCopy(t *testing.T) {
	tgt := target(10, 3)
	p := &matchProblem{target: tgt, alleles: 3, seeds: [][]int{tgt}}
	cfg := smallConfig()
	cfg.Generations = 3
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the returned slices; a second identical run must be
	// unaffected (no aliasing into live GA state or shared seeds).
	for i := range res.Best {
		res.Best[i] = -99
	}
	for i := range res.History {
		res.History[i] = -99
	}
	res2, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BestScore != float64(len(tgt)) {
		t.Errorf("second run best %g; mutating the first result corrupted state", res2.BestScore)
	}
	for i, g := range res2.Best {
		if g != tgt[i] {
			t.Fatalf("second run best individual corrupted at gene %d: %d", i, g)
		}
	}
}

// countingProblem counts actual Score invocations.
type countingProblem struct {
	matchProblem
	calls atomic.Int64
}

func (c *countingProblem) Score(ind []int) float64 {
	c.calls.Add(1)
	return c.matchProblem.Score(ind)
}

func TestScoreCacheSkipsRepeats(t *testing.T) {
	mk := func() *countingProblem {
		return &countingProblem{matchProblem: matchProblem{target: target(6, 2), alleles: 2}}
	}
	cfg := smallConfig()
	cfg.Generations = 60

	cached := mk()
	withCache, err := Run(cached, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoScoreCache = true
	uncached := mk()
	noCache, err := Run(uncached, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The tiny 2^6 space forces massive repetition: the cache must
	// absorb most evaluations without changing any outcome.
	if withCache.CacheHits == 0 {
		t.Error("no cache hits on a 64-point space over 60 generations")
	}
	if noCache.CacheHits != 0 {
		t.Errorf("NoScoreCache run reported %d hits", noCache.CacheHits)
	}
	if got, want := cached.calls.Load(), int64(withCache.Evaluations-withCache.CacheHits); got != want {
		t.Errorf("Score called %d times, want Evaluations-CacheHits = %d", got, want)
	}
	if got, want := uncached.calls.Load(), int64(noCache.Evaluations); got != want {
		t.Errorf("uncached Score called %d times, want Evaluations = %d", got, want)
	}
	if withCache.BestScore != noCache.BestScore {
		t.Errorf("cache changed the outcome: %g vs %g", withCache.BestScore, noCache.BestScore)
	}
	for i := range withCache.History {
		if withCache.History[i] != noCache.History[i] {
			t.Fatalf("cache changed history at generation %d", i)
		}
	}
	if withCache.Evaluations != noCache.Evaluations {
		t.Errorf("Evaluations semantics changed with cache: %d vs %d",
			withCache.Evaluations, noCache.Evaluations)
	}
}

func TestScoreCacheParallelDeterminism(t *testing.T) {
	p := &matchProblem{target: target(8, 2), alleles: 2}
	cfg := smallConfig()
	cfg.Generations = 40
	cfg.Workers = 1
	serial, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.BestScore != parallel.BestScore || serial.CacheHits != parallel.CacheHits {
		t.Errorf("worker count changed cached outcome: score %g/%g hits %d/%d",
			serial.BestScore, parallel.BestScore, serial.CacheHits, parallel.CacheHits)
	}
}
