package ga

import (
	"sync"
	"testing"
)

// matchProblem rewards matching a hidden target vector: a smooth,
// separable landscape the GA must solve easily.
type matchProblem struct {
	target  []int
	alleles int
	seeds   [][]int
}

func (m *matchProblem) Genes() int   { return len(m.target) }
func (m *matchProblem) Alleles() int { return m.alleles }
func (m *matchProblem) Seeds() [][]int {
	return m.seeds
}
func (m *matchProblem) Score(ind []int) float64 {
	s := 0.0
	for i, g := range ind {
		if g == m.target[i] {
			s++
		}
	}
	return s
}

func target(n, alleles int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = (i*7 + 3) % alleles
	}
	return t
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 60
	cfg.Generations = 150
	return cfg
}

func TestConvergesToTarget(t *testing.T) {
	p := &matchProblem{target: target(20, 5), alleles: 5}
	res, err := Run(p, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 18 {
		t.Errorf("best score = %g / 20, expected near-perfect convergence", res.BestScore)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := &matchProblem{target: target(12, 4), alleles: 4}
	cfg := smallConfig()
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore {
		t.Errorf("same-seed runs diverged: %g vs %g", a.BestScore, b.BestScore)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("same-seed best individuals differ at gene %d", i)
		}
	}
}

func TestHistoryMonotoneWithElitism(t *testing.T) {
	p := &matchProblem{target: target(15, 6), alleles: 6}
	cfg := smallConfig()
	cfg.Elitism = 2
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Generations+1 {
		t.Fatalf("history length = %d, want %d", len(res.History), cfg.Generations+1)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best score regressed at generation %d: %g < %g",
				i, res.History[i], res.History[i-1])
		}
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	// Seed the exact target: the best score must be perfect from
	// generation zero.
	tgt := target(10, 3)
	p := &matchProblem{target: tgt, alleles: 3, seeds: [][]int{tgt}}
	cfg := smallConfig()
	cfg.Generations = 1
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0] != float64(len(tgt)) {
		t.Errorf("seeded optimum not present in generation 0: best = %g", res.History[0])
	}
}

func TestSeedLengthValidation(t *testing.T) {
	p := &matchProblem{target: target(10, 3), alleles: 3, seeds: [][]int{{1, 2}}}
	if _, err := Run(p, smallConfig()); err == nil {
		t.Error("short seed: want error")
	}
}

func TestConfigValidation(t *testing.T) {
	p := &matchProblem{target: target(5, 3), alleles: 3}
	bad := []Config{
		{PopSize: 1, Generations: 10},
		{PopSize: 10, Generations: 0},
		{PopSize: 10, Generations: 5, Elitism: 10},
		{PopSize: 10, Generations: 5, Elitism: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(p, cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
	empty := &matchProblem{target: nil, alleles: 3}
	if _, err := Run(empty, smallConfig()); err == nil {
		t.Error("zero genes: want error")
	}
	zeroAlleles := &matchProblem{target: target(5, 3), alleles: 0}
	if _, err := Run(zeroAlleles, smallConfig()); err == nil {
		t.Error("zero alleles: want error")
	}
}

func TestParallelScoringMatchesSerial(t *testing.T) {
	p := &matchProblem{target: target(16, 4), alleles: 4}
	cfg := smallConfig()
	cfg.Workers = 1
	serial, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scoring is deterministic per individual and selection draws are
	// made on a single rng, so worker count must not change results.
	if serial.BestScore != parallel.BestScore {
		t.Errorf("worker count changed outcome: %g vs %g", serial.BestScore, parallel.BestScore)
	}
	for i := range serial.History {
		if serial.History[i] != parallel.History[i] {
			t.Fatalf("histories diverge at generation %d", i)
		}
	}
}

func TestEvaluationsAccounted(t *testing.T) {
	p := &matchProblem{target: target(8, 3), alleles: 3}
	cfg := smallConfig()
	cfg.Generations = 10
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PopSize + cfg.Generations*(cfg.PopSize-cfg.Elitism)
	if res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestSingleGeneCrossoverSafe(t *testing.T) {
	// n == 1 must not panic in the tail-swap (k in [1, n-1] is empty).
	p := &matchProblem{target: []int{2}, alleles: 4}
	res, err := Run(p, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 1 {
		t.Errorf("single-gene problem not solved: %g", res.BestScore)
	}
}

func TestAllSelectionSchemesConverge(t *testing.T) {
	for _, sel := range []Selection{RankSelection, RouletteSelection, TournamentSelection} {
		p := &matchProblem{target: target(15, 4), alleles: 4}
		cfg := smallConfig()
		cfg.Selection = sel
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if res.BestScore < 13 {
			t.Errorf("selection %d: best %g / 15", sel, res.BestScore)
		}
	}
}

func TestStaleLimitStopsEarly(t *testing.T) {
	// Seed the optimum: every generation is stale, so the search must
	// stop after StaleLimit generations.
	tgt := target(10, 3)
	p := &matchProblem{target: tgt, alleles: 3, seeds: [][]int{tgt}}
	cfg := smallConfig()
	cfg.Generations = 500
	cfg.StaleLimit = 5
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) > 10 {
		t.Errorf("history length %d; stale limit should stop within ~6 generations", len(res.History))
	}
	if res.BestScore != float64(len(tgt)) {
		t.Errorf("best score %g, want optimum", res.BestScore)
	}
}

// Property: crossover and mutation never produce out-of-range alleles.
func TestQuickGeneValidity(t *testing.T) {
	p := &validityProblem{genes: 12, alleles: 5}
	cfg := smallConfig()
	cfg.Generations = 50
	if _, err := Run(p, cfg); err != nil {
		t.Fatal(err)
	}
	if p.violations > 0 {
		t.Errorf("%d individuals carried out-of-range alleles", p.violations)
	}
}

type validityProblem struct {
	genes, alleles int
	violations     int
	mu             sync.Mutex
}

func (v *validityProblem) Genes() int     { return v.genes }
func (v *validityProblem) Alleles() int   { return v.alleles }
func (v *validityProblem) Seeds() [][]int { return nil }
func (v *validityProblem) Score(ind []int) float64 {
	s := 0.0
	for _, g := range ind {
		if g < 0 || g >= v.alleles {
			v.mu.Lock()
			v.violations++
			v.mu.Unlock()
		}
		s += float64(g)
	}
	return s
}
