package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RespClose enforces the forwarding-path resource contract: every
// *http.Response obtained in internal/server (the proxy path) and
// internal/server/client must have its Body closed on all control-flow
// paths, or be explicitly handed off (returned, stored, or passed to a
// helper the fact store summarizes as closing it). A leaked body pins
// a connection and, under the cluster's forwarding fan-out, exhausts
// the transport pool long before a stress test notices.
//
// The analysis is per-function and intentionally conservative about
// ownership: a response that escapes (assigned into a struct, sent on
// a channel, returned) is assumed tracked elsewhere; error-guard
// branches between the call and the close are recognized and skipped.
var RespClose = &Analyzer{
	Name: "respclose",
	Doc:  "every *http.Response in server/client must reach Body.Close (or a summarized closer) on all paths",
	Run:  runRespClose,
}

var respClosePkgs = map[string]bool{
	"server": true,
	"client": true,
}

func runRespClose(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isInternalPkg(p.ImportPath) || !respClosePkgs[pkgBase(p.ImportPath)] {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			respCloseScopes(p, fd.Body, report)
		}
	}
}

// respCloseScopes analyzes body and every function literal inside it as
// independent scopes (a closure owns the responses it binds).
func respCloseScopes(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	respCloseBlocks(p, body, report)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			respCloseBlocks(p, lit.Body, report)
		}
		return true
	})
}

// respCloseBlocks walks every statement list in the scope (without
// crossing into nested function literals) looking for response
// bindings, and checks each binding against the statements that follow
// it in its own block.
func respCloseBlocks(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	var walk func(b *ast.BlockStmt)
	seen := map[*ast.BlockStmt]bool{}
	walk = func(b *ast.BlockStmt) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for i, stmt := range b.List {
			if as, ok := stmt.(*ast.AssignStmt); ok {
				checkRespBinding(p, as, b.List[i+1:], report)
			}
			// Recurse into nested blocks of this statement, skipping
			// function literals (separate scopes).
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.BlockStmt:
					walk(x)
					return false
				}
				return true
			})
		}
	}
	walk(body)
}

// checkRespBinding inspects one assignment; when it binds a
// *http.Response from a call, the remainder of the block must
// discharge the close obligation.
func checkRespBinding(p *Package, as *ast.AssignStmt, rest []ast.Stmt, report func(pos token.Pos, format string, args ...any)) {
	call, ok := singleCallRHS(as)
	if !ok {
		return
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if len(as.Lhs) != sig.Results().Len() {
		return
	}
	var respObj, errObj types.Object
	for i := 0; i < sig.Results().Len(); i++ {
		rt := sig.Results().At(i).Type()
		id, isIdent := as.Lhs[i].(*ast.Ident)
		if isHTTPResponsePtr(rt) {
			if !isIdent {
				return // bound into a field: tracked elsewhere
			}
			if id.Name == "_" {
				report(as.Pos(), "*http.Response from %s discarded as _ — its Body is never closed", calleeLabel(fn))
				return
			}
			respObj = identObj(p, id)
		} else if types.Identical(rt, errorType) && isIdent && id.Name != "_" {
			errObj = identObj(p, id)
		}
	}
	if respObj == nil {
		return
	}

	satisfied, reported := false, false
	for _, stmt := range rest {
		if stmtDischargesResp(p, stmt, respObj) {
			satisfied = true
			break
		}
		if isErrGuard(p, stmt, respObj, errObj) {
			continue
		}
		for _, ret := range deepReturns(stmt) {
			report(ret.Pos(), "return leaves %s without Body.Close on this path", respObj.Name())
			reported = true
		}
		if _, isRet := stmt.(*ast.ReturnStmt); isRet {
			break // statements past a top-level return are unreachable
		}
	}
	if !satisfied && !reported {
		report(as.Pos(), "*http.Response %s from %s is never closed in this function", respObj.Name(), calleeLabel(fn))
	}
}

func identObj(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// isBareObj reports whether e is (modulo parens) an identifier
// resolving to obj.
func isBareObj(p *Package, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && identObj(p, id) == obj
}

// stmtDischargesResp reports whether stmt (deeply, including closures —
// a close inside a defer or goroutine still closes) discharges the
// obligation for respObj: a direct resp.Body.Close(), a call to a
// function summarized as closing it, a return of the bare response, or
// an ownership escape (assignment, composite literal, channel send).
func stmtDischargesResp(p *Package, stmt ast.Stmt, respObj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if callClosesResp(p, x, respObj) {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if isBareObj(p, res, respObj) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if isBareObj(p, rhs, respObj) {
					found = true // resp aliased/stored: ownership moved
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isBareObj(p, e, respObj) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if isBareObj(p, x.Value, respObj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callClosesResp reports whether the call closes respObj's body:
// resp.Body.Close() itself, a method on resp with a ClosesBody
// receiver fact, resp passed at a ClosesBody parameter, or resp.Body
// passed at a ClosesCloser parameter.
func callClosesResp(p *Package, call *ast.CallExpr, respObj types.Object) bool {
	// resp.Body.Close()
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" && isBareObj(p, inner.X, respObj) {
			return true
		}
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	fact := p.Facts.Lookup(fn)
	if fact.ClosesBody == nil && fact.ClosesCloser == nil {
		return false
	}
	if fact.ClosesBody[-1] {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isBareObj(p, sel.X, respObj) {
			return true
		}
	}
	for i, arg := range call.Args {
		if fact.ClosesBody[i] && isBareObj(p, arg, respObj) {
			return true
		}
		if fact.ClosesCloser[i] {
			if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok && sel.Sel.Name == "Body" && isBareObj(p, sel.X, respObj) {
				return true
			}
		}
	}
	return false
}

// isErrGuard recognizes the idiomatic error check between a call and
// the deferred close: an if statement whose condition reads the error
// bound alongside the response and whose body never touches the
// response.
func isErrGuard(p *Package, stmt ast.Stmt, respObj, errObj types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || errObj == nil {
		return false
	}
	condUsesErr, bodyUsesResp := false, false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(p, id) == errObj {
			condUsesErr = true
		}
		return true
	})
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(p, id) == respObj {
			bodyUsesResp = true
		}
		return true
	})
	return condUsesErr && !bodyUsesResp
}

// deepReturns collects the return statements inside stmt, not crossing
// into function literals.
func deepReturns(stmt ast.Stmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, x)
		}
		return true
	})
	return out
}
