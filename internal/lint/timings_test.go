package lint

import (
	"testing"
	"time"
)

// TestTimingsCollected: running the full suite with an accumulator
// attached produces a bucket for every analyzer (possibly zero — an
// analyzer that bails on scope still gets charged its check), and
// Run's nil path stays clock-free.
func TestTimingsCollected(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/server", "tm.go", `package server

func tick() int { return 1 }
`)
	tm := NewTimings()
	runTimed(p, Analyzers(), tm)
	ns := tm.NanosByRule()
	for _, a := range Analyzers() {
		if _, ok := ns[a.Name]; !ok {
			t.Errorf("no timing bucket for analyzer %q", a.Name)
		}
	}
	if len(ns) != len(Analyzers()) {
		t.Errorf("got %d buckets, want %d", len(ns), len(Analyzers()))
	}
}

func TestTimingsAccumulate(t *testing.T) {
	tm := NewTimings()
	tm.Add("detrand", 2*time.Millisecond)
	tm.Add("detrand", 3*time.Millisecond)
	if got := tm.NanosByRule()["detrand"]; got != int64(5*time.Millisecond) {
		t.Errorf("detrand bucket = %dns, want %dns", got, int64(5*time.Millisecond))
	}
	// The snapshot is a copy: mutating it must not leak back.
	snap := tm.NanosByRule()
	snap["detrand"] = 0
	if got := tm.NanosByRule()["detrand"]; got != int64(5*time.Millisecond) {
		t.Errorf("snapshot mutation leaked into the accumulator: %d", got)
	}
}
