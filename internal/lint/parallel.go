package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
)

// This file is the parallel whole-module driver behind RunAll. The
// sequential loader spent most of a `make lint` run type-checking the
// module's packages one after another; here the packages are scheduled
// onto a bounded worker pool along the module's import DAG, so
// independent subtrees (cmd/*, examples/*, the leaf internal packages)
// type-check and analyze concurrently while dependents wait only for
// their own imports. Determinism is preserved by construction: results
// are collected per package index and flattened in sorted import-path
// order, so the output is byte-identical to a sequential run at any
// worker count.

// pkgNode is one module package in the driver's dependency graph.
type pkgNode struct {
	importPath string
	dir        string
	files      []*ast.File
	dependents []int // packages importing this one
	deps       []int // packages this one imports
	blocking   int   // unfinished module-internal imports
	skip       bool  // a dependency failed; don't attempt this package

	key        string       // content-hash cache key ("" when caching is off)
	cached     []Diagnostic // cache-hit diagnostics
	hit        bool         // cached is valid
	analyze    bool         // run analyzers on this package
	typeNeeded bool         // type-check (for facts/types) even without analyzing
	selected   bool         // this package's diagnostics belong in the output
}

// Options configures a whole-module lint run.
type Options struct {
	// Workers bounds the pool; <= 0 selects min(GOMAXPROCS, 8).
	Workers int
	// CacheDir enables the content-hash result cache (see cache.go);
	// "" runs cold.
	CacheDir string
	// OnlyDirs restricts analysis and output to the packages rooted at
	// these directories (absolute or module-root-relative); nil means
	// the whole module. Out-of-scope dependencies are still
	// type-checked when an in-scope package needs their facts.
	OnlyDirs []string
	// Timings, when non-nil, accumulates per-analyzer wall-clock time
	// across every analyzed package (cache hits charge nothing).
	Timings *Timings
}

// defaultLintWorkers bounds the pool when the caller passes 0.
func defaultLintWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunAllWorkers is RunAll with an explicit worker-pool bound;
// workers <= 0 selects min(GOMAXPROCS, 8).
func RunAllWorkers(root string, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	return RunAllOpts(root, analyzers, Options{Workers: workers})
}

// RunAllOpts runs the analyzers over the module with caching and
// directory scoping (see Options). Output is byte-identical to a cold
// sequential run over the same scope at any worker count: the cache
// stores final per-package diagnostics keyed by a content hash that
// covers every input that could change them.
func RunAllOpts(root string, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	ld, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.moduleDirs()
	if err != nil {
		return nil, err
	}
	// Parse everything up front: the import graph comes from the ASTs,
	// and the type-check workers reuse them without re-reading disk.
	nodes := make([]pkgNode, len(dirs))
	index := map[string]int{}
	for i, dir := range dirs {
		files, err := parseDir(dir)
		if err != nil {
			return nil, err
		}
		nodes[i] = pkgNode{importPath: ld.dirImportPath(dir), dir: dir, files: files}
		index[nodes[i].importPath] = i
	}
	for i := range nodes {
		for _, dep := range moduleImports(ld.Module, nodes[i].files) {
			if j, ok := index[dep]; ok && j != i {
				nodes[j].dependents = append(nodes[j].dependents, i)
				nodes[i].deps = append(nodes[i].deps, j)
				nodes[i].blocking++
			}
		}
	}
	if err := checkAcyclic(nodes); err != nil {
		return nil, err
	}
	if err := planNodes(ld, nodes, analyzers, opts); err != nil {
		return nil, err
	}

	// Every node is enqueued exactly once, when its last dependency
	// completes; the buffer therefore never fills and sends never
	// block. The final completion closes the channel.
	ready := make(chan int, len(nodes))
	var (
		mu   sync.Mutex
		done int
	)
	results := make([][]Diagnostic, len(nodes))
	errs := make([]error, len(nodes))
	for i := range nodes {
		if nodes[i].blocking == 0 {
			ready <- i
		}
	}
	if len(nodes) == 0 {
		close(ready)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultLintWorkers()
	}
	if workers > len(nodes) && len(nodes) > 0 {
		workers = len(nodes)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ready {
				n := &nodes[idx]
				var diags []Diagnostic
				var err error
				// skip is written before this node's enqueue (under mu)
				// and read after the channel receive, so no lock needed.
				switch {
				case n.skip:
				case n.analyze, n.typeNeeded:
					// Analyzing, or an in-scope dependent needs this
					// package's types and facts recomputed.
					p, e := ld.loadParsed(n.importPath, n.dir, n.files)
					switch {
					case e != nil:
						err = e
					case n.analyze:
						diags = runTimed(p, analyzers, opts.Timings)
						cachePut(opts.CacheDir, n.key, diags)
					case n.selected && n.hit:
						diags = n.cached
					}
				case n.selected && n.hit:
					diags = n.cached
				}
				mu.Lock()
				results[idx] = diags
				errs[idx] = err
				failed := err != nil || n.skip
				for _, d := range n.dependents {
					if failed {
						nodes[d].skip = true
					}
					nodes[d].blocking--
					if nodes[d].blocking == 0 {
						ready <- d
					}
				}
				done++
				if done == len(nodes) {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// First error in import-path order, independent of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// planNodes decides, per package, whether to analyze, serve from
// cache, or merely type-check: cache keys are computed in dependency
// order (a package's key folds in its deps' keys, so an edited helper
// invalidates exactly its dependents), hits are looked up, OnlyDirs
// scoping is applied, and typeNeeded is propagated from every package
// that will analyze down through its transitive dependencies — a
// cache hit skips analysis, but a stale dependent still needs the
// dependency's types and facts recomputed.
func planNodes(ld *Loader, nodes []pkgNode, analyzers []*Analyzer, opts Options) error {
	only, err := resolveOnlyDirs(ld.Root, opts.OnlyDirs)
	if err != nil {
		return err
	}
	for i := range nodes {
		nodes[i].selected = only == nil || only[filepath.Clean(nodes[i].dir)]
	}
	order := topoOrder(nodes)
	if opts.CacheDir != "" {
		ruleNames := make([]string, len(analyzers))
		for i, a := range analyzers {
			ruleNames[i] = a.Name
		}
		for _, i := range order {
			n := &nodes[i]
			depKeys := make([]string, 0, len(n.deps))
			usable := true
			for _, d := range n.deps {
				if nodes[d].key == "" {
					usable = false // dep unhashable: don't trust this entry
					break
				}
				depKeys = append(depKeys, nodes[d].key)
			}
			if !usable {
				continue
			}
			files, err := listGoFiles(n.dir)
			if err != nil {
				continue
			}
			if key, err := cacheKey(ld.Root, n.importPath, ruleNames, files, depKeys); err == nil {
				n.key = key
			}
		}
	}
	for i := range nodes {
		n := &nodes[i]
		if n.key != "" {
			n.cached, n.hit = cacheGet(opts.CacheDir, n.key)
		}
		n.analyze = n.selected && !n.hit
	}
	// Reverse dependency order: every dependent is visited before its
	// deps, so one pass reaches the transitive closure.
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if nodes[i].analyze || nodes[i].typeNeeded {
			for _, d := range nodes[i].deps {
				nodes[d].typeNeeded = true
			}
		}
	}
	return nil
}

// resolveOnlyDirs normalizes the OnlyDirs filter to cleaned absolute
// paths (entries may be absolute or module-root-relative); nil input
// means no filter. Entries that match no package are ignored — callers
// feed raw `git diff` directories here.
func resolveOnlyDirs(root string, dirs []string) (map[string]bool, error) {
	if dirs == nil {
		return nil, nil
	}
	out := map[string]bool{}
	for _, d := range dirs {
		if d == "" {
			continue
		}
		if !filepath.IsAbs(d) {
			d = filepath.Join(root, d)
		}
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		out[filepath.Clean(abs)] = true
	}
	return out, nil
}

// topoOrder returns the node indices in dependency order (every
// package after all of its imports). The graph is acyclic by the time
// this runs (checkAcyclic); ties are broken by index, which is sorted
// import-path order, so the result is deterministic.
func topoOrder(nodes []pkgNode) []int {
	blocking := make([]int, len(nodes))
	var queue []int
	for i := range nodes {
		blocking[i] = len(nodes[i].deps)
		if blocking[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, d := range nodes[i].dependents {
			if blocking[d]--; blocking[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return order
}

// moduleImports extracts the module-internal import paths of a
// package's files (the module root package counts).
func moduleImports(module string, files []*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == module || (len(path) > len(module) && path[:len(module)+1] == module+"/") {
				out = append(out, path)
			}
		}
	}
	return out
}

// checkAcyclic verifies the import graph terminates: Go forbids import
// cycles, but a malformed tree must fail loudly here rather than
// deadlock the ready queue.
func checkAcyclic(nodes []pkgNode) error {
	blocking := make([]int, len(nodes))
	var queue []int
	for i := range nodes {
		blocking[i] = nodes[i].blocking
		if blocking[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range nodes[i].dependents {
			if blocking[d]--; blocking[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(nodes) {
		var stuck []string
		for i := range nodes {
			if blocking[i] > 0 {
				stuck = append(stuck, nodes[i].importPath)
			}
		}
		return fmt.Errorf("lint: import cycle among %v", stuck)
	}
	return nil
}
