package lint

import (
	"fmt"
	"go/ast"
	"runtime"
	"strconv"
	"sync"
)

// This file is the parallel whole-module driver behind RunAll. The
// sequential loader spent most of a `make lint` run type-checking the
// module's packages one after another; here the packages are scheduled
// onto a bounded worker pool along the module's import DAG, so
// independent subtrees (cmd/*, examples/*, the leaf internal packages)
// type-check and analyze concurrently while dependents wait only for
// their own imports. Determinism is preserved by construction: results
// are collected per package index and flattened in sorted import-path
// order, so the output is byte-identical to a sequential run at any
// worker count.

// pkgNode is one module package in the driver's dependency graph.
type pkgNode struct {
	importPath string
	dir        string
	files      []*ast.File
	dependents []int // packages importing this one
	blocking   int   // unfinished module-internal imports
	skip       bool  // a dependency failed; don't attempt this package
}

// defaultLintWorkers bounds the pool when the caller passes 0.
func defaultLintWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunAllWorkers is RunAll with an explicit worker-pool bound;
// workers <= 0 selects min(GOMAXPROCS, 8).
func RunAllWorkers(root string, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	ld, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.moduleDirs()
	if err != nil {
		return nil, err
	}
	// Parse everything up front: the import graph comes from the ASTs,
	// and the type-check workers reuse them without re-reading disk.
	nodes := make([]pkgNode, len(dirs))
	index := map[string]int{}
	for i, dir := range dirs {
		files, err := parseDir(dir)
		if err != nil {
			return nil, err
		}
		nodes[i] = pkgNode{importPath: ld.dirImportPath(dir), dir: dir, files: files}
		index[nodes[i].importPath] = i
	}
	for i := range nodes {
		for _, dep := range moduleImports(ld.Module, nodes[i].files) {
			if j, ok := index[dep]; ok && j != i {
				nodes[j].dependents = append(nodes[j].dependents, i)
				nodes[i].blocking++
			}
		}
	}
	if err := checkAcyclic(nodes); err != nil {
		return nil, err
	}

	// Every node is enqueued exactly once, when its last dependency
	// completes; the buffer therefore never fills and sends never
	// block. The final completion closes the channel.
	ready := make(chan int, len(nodes))
	var (
		mu   sync.Mutex
		done int
	)
	results := make([][]Diagnostic, len(nodes))
	errs := make([]error, len(nodes))
	for i := range nodes {
		if nodes[i].blocking == 0 {
			ready <- i
		}
	}
	if len(nodes) == 0 {
		close(ready)
	}
	if workers <= 0 {
		workers = defaultLintWorkers()
	}
	if workers > len(nodes) && len(nodes) > 0 {
		workers = len(nodes)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ready {
				n := &nodes[idx]
				var diags []Diagnostic
				var err error
				// skip is written before this node's enqueue (under mu)
				// and read after the channel receive, so no lock needed.
				if !n.skip {
					p, e := ld.loadParsed(n.importPath, n.dir, n.files)
					if e != nil {
						err = e
					} else {
						diags = Run(p, analyzers)
					}
				}
				mu.Lock()
				results[idx] = diags
				errs[idx] = err
				failed := err != nil || n.skip
				for _, d := range n.dependents {
					if failed {
						nodes[d].skip = true
					}
					nodes[d].blocking--
					if nodes[d].blocking == 0 {
						ready <- d
					}
				}
				done++
				if done == len(nodes) {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// First error in import-path order, independent of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// moduleImports extracts the module-internal import paths of a
// package's files (the module root package counts).
func moduleImports(module string, files []*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == module || (len(path) > len(module) && path[:len(module)+1] == module+"/") {
				out = append(out, path)
			}
		}
	}
	return out
}

// checkAcyclic verifies the import graph terminates: Go forbids import
// cycles, but a malformed tree must fail loudly here rather than
// deadlock the ready queue.
func checkAcyclic(nodes []pkgNode) error {
	blocking := make([]int, len(nodes))
	var queue []int
	for i := range nodes {
		blocking[i] = nodes[i].blocking
		if blocking[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range nodes[i].dependents {
			if blocking[d]--; blocking[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(nodes) {
		var stuck []string
		for i := range nodes {
			if blocking[i] > 0 {
				stuck = append(stuck, nodes[i].importPath)
			}
		}
		return fmt.Errorf("lint: import cycle among %v", stuck)
	}
	return nil
}
