package lint

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRepoLintClean is the gate the Makefile's lint target mirrors: the
// full analyzer suite over the whole module must produce zero
// unsuppressed diagnostics. Any new violation either gets fixed or gets
// an in-tree //lint:allow justification — never merged silently.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	diags, err := RunAll(root, Analyzers())
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRunAllWorkersDeterministic: the parallel driver must produce
// byte-identical output at any worker count — results are collected per
// package index and flattened in sorted import-path order, so the
// schedule cannot leak into the report.
func TestRunAllWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	seq, err := RunAllWorkers(root, Analyzers(), 1)
	if err != nil {
		t.Fatalf("RunAllWorkers(1): %v", err)
	}
	par, err := RunAllWorkers(root, Analyzers(), 8)
	if err != nil {
		t.Fatalf("RunAllWorkers(8): %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel output diverged from sequential:\nseq: %v\npar: %v", seq, par)
	}
	// The machine-readable encodings must be byte-identical too — CI
	// uploads the SARIF, so a schedule-dependent byte would churn every
	// artifact diff.
	var seqJSON, parJSON, seqSARIF, parSARIF bytes.Buffer
	if err := EncodeJSON(&seqJSON, seq); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if err := EncodeJSON(&parJSON, par); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Fatalf("JSON output diverged between -j 1 and -j 8")
	}
	if err := EncodeSARIF(&seqSARIF, Analyzers(), seq); err != nil {
		t.Fatalf("EncodeSARIF: %v", err)
	}
	if err := EncodeSARIF(&parSARIF, Analyzers(), par); err != nil {
		t.Fatalf("EncodeSARIF: %v", err)
	}
	if !bytes.Equal(seqSARIF.Bytes(), parSARIF.Bytes()) {
		t.Fatalf("SARIF output diverged between -j 1 and -j 8")
	}
}
