package lint

import "testing"

// TestRepoLintClean is the gate the Makefile's lint target mirrors: the
// full analyzer suite over the whole module must produce zero
// unsuppressed diagnostics. Any new violation either gets fixed or gets
// an in-tree //lint:allow justification — never merged silently.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	diags, err := RunAll(root, Analyzers())
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
