package lint

import (
	"go/ast"
	"go/token"
)

// toleranceHelperPkg is the one package allowed to compare floats with
// ==/!=: it is where the approved tolerance helpers (stats.AlmostEqual,
// stats.Approx) and the numerical kernels that need exact sentinel
// arithmetic live.
const toleranceHelperPkg = "npudvfs/internal/stats"

// FloatEq flags == and != where either operand is float-typed, outside
// internal/stats. Exact float equality on a compute path is how two
// byte-identical runs diverge after an innocuous refactor reorders an
// addition; route comparisons through stats.AlmostEqual/stats.Approx,
// or annotate genuinely-exact sentinel checks (x == 0 guards, NaN
// self-comparison) with //lint:allow floateq <reason>.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag float ==/!= outside the internal/stats tolerance helpers",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		if p.ImportPath == toleranceHelperPkg || pkgBase(p.ImportPath) == "stats" {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt := p.Info.TypeOf(be.X)
				yt := p.Info.TypeOf(be.Y)
				if isFloat(xt) || isFloat(yt) {
					report(be.OpPos, "float comparison %s %s %s; use stats.AlmostEqual/stats.Approx, or annotate an exact sentinel check with %s floateq <reason>",
						renderExpr(p, be.X), be.Op, renderExpr(p, be.Y), allowPrefix)
				}
				return true
			})
		}
	},
}
