package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// AllocFree proves allocation-freedom for the scoring hot path. A
// function annotated //lint:hotpath (on the line above its declaration,
// conventionally the last line of its doc comment) becomes a root: the
// analyzer walks every module-internal callee reachable from it through
// the Callees fact edges and reports each allocation site — composite
// literals escaping to the heap, make/new, append growth, map writes,
// string concatenation/conversion, value-to-interface boxing, closure
// captures, defer in loops, go statements, and forbidden callees
// (fmt.*, log.*, time.Now). Sites in the package under analysis are
// reported in place; an allocating callee in another package is
// reported once at the call edge, with the first allocation it reaches
// named so the finding is actionable. Cold-prologue escapes are audited
// with //lint:allow allocfree <reason>, same as every other rule.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "functions marked //lint:hotpath must not allocate, transitively through every module-internal callee",
	Run:  runAllocFree,
}

const hotpathDirective = "//lint:hotpath"

// hotpathRoots returns the functions annotated //lint:hotpath in file
// order, and reports directives that are malformed or not attached to a
// function declaration.
func hotpathRoots(p *Package, report func(pos token.Pos, format string, args ...any)) []declFn {
	var roots []declFn
	for _, f := range p.Files {
		// Collect the file's directive lines, then match them against
		// its function declarations.
		type directive struct {
			pos  token.Pos
			line int
			used bool
		}
		var dirs []*directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, hotpathDirective)
				if !ok {
					continue
				}
				if strings.TrimSpace(rest) != "" {
					report(c.Pos(), "malformed directive %q: want exactly %s on the line above a function declaration", c.Text, hotpathDirective)
					continue
				}
				dirs = append(dirs, &directive{pos: c.Pos(), line: p.Fset.Position(c.Pos()).Line})
			}
		}
		if len(dirs) == 0 {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			declLine := p.Fset.Position(fd.Name.Pos()).Line
			for _, dir := range dirs {
				if dir.line == declLine || dir.line == declLine-1 {
					dir.used = true
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						roots = append(roots, declFn{fn: fn, decl: fd})
					}
				}
			}
		}
		for _, dir := range dirs {
			if !dir.used {
				report(dir.pos, "%s directive is not attached to a function declaration (it must sit on the line above one)", hotpathDirective)
			}
		}
	}
	return roots
}

func runAllocFree(p *Package, report func(pos token.Pos, format string, args ...any)) {
	roots := hotpathRoots(p, report)
	if len(roots) == 0 {
		return
	}
	store := p.Facts
	visited := map[*types.Func]bool{}
	type siteKey struct {
		pos  token.Pos
		what string
	}
	reported := map[siteKey]bool{}
	var walk func(fn *types.Func, root string)
	walk = func(fn *types.Func, root string) {
		if fn == nil || visited[fn] {
			return
		}
		visited[fn] = true
		fact := store.Lookup(fn)
		local := fn.Pkg() == p.Pkg
		for _, site := range fact.AllocSites {
			if !local {
				continue
			}
			key := siteKey{site.Pos, site.What}
			if reported[key] {
				continue
			}
			reported[key] = true
			report(site.Pos, "%s on the //lint:hotpath path rooted at %s", site.What, root)
		}
		for _, c := range fact.Callees {
			cf := store.Lookup(c.Fn)
			if c.Fn.Pkg() == p.Pkg {
				walk(c.Fn, root)
				continue
			}
			// Cross-package edge: report at the call site (which is in
			// this package, so the finding is suppressible here), once.
			if !cf.Allocates {
				continue
			}
			if !local {
				// The edge position belongs to another package's file;
				// the allocation will have been reported when that
				// package was analyzed. Still mark visited above so the
				// walk terminates.
				continue
			}
			key := siteKey{c.Pos, c.Fn.FullName()}
			if reported[key] {
				continue
			}
			reported[key] = true
			report(c.Pos, "hot path rooted at %s calls %s, which allocates (%s)",
				root, calleeDisplay(c.Fn), allocReason(p, c.Fn, store, map[*types.Func]bool{}))
		}
	}
	for _, r := range roots {
		walk(r.fn, r.fn.Name())
	}
}

// calleeDisplay renders a callee as pkg.Func or pkg.Type.Method.
func calleeDisplay(fn *types.Func) string {
	name := fn.Name()
	if named := recvNamed(fn); named != nil {
		name = named.Obj().Name() + "." + name
	}
	if fn.Pkg() != nil {
		return pkgBase(fn.Pkg().Path()) + "." + name
	}
	return name
}

// allocReason names the first allocation a function reaches, as a
// breadcrumb for cross-package findings: either one of its own sites
// ("make allocates at fs.go:42") or a further call chain.
func allocReason(p *Package, fn *types.Func, store *Facts, seen map[*types.Func]bool) string {
	if seen[fn] || len(seen) > 4 {
		return "allocation via recursion"
	}
	seen[fn] = true
	fact := store.Lookup(fn)
	if len(fact.AllocSites) > 0 {
		s := fact.AllocSites[0]
		pos := p.Fset.Position(s.Pos)
		return s.What + " at " + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
	}
	for _, c := range fact.Callees {
		if store.Lookup(c.Fn).Allocates {
			return "calls " + calleeDisplay(c.Fn) + ": " + allocReason(p, c.Fn, store, seen)
		}
	}
	return "allocation site not localized"
}
