package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// unitcheck is the dimensional-safety analyzer. internal/units gives
// every physical quantity of the paper's equations a defined type
// (units.MHz, units.Micros, units.Watt, ...), which makes cross-unit
// slips a compile error at package boundaries — but defined float64
// types convert freely to float64, so a value laundered through
// float64() silently sheds its dimension. unitcheck closes the three
// gaps the type system leaves open:
//
//	(a) raw float64 parameters, struct fields, and named results whose
//	    identifiers name a physical quantity (freq, mhz, volt, watt,
//	    power, temp, energy, micros, ...) inside the packages that were
//	    moved to units types. A `freqsMHz []float64` parameter is a
//	    unit regression waiting to happen; declare it []units.MHz.
//	(b) additive arithmetic and comparisons whose operands carry
//	    different unit provenance. Provenance survives float64()
//	    conversions and flows through local float64 variables
//	    (intraprocedurally), so `float64(f) + float64(t)` with f MHz
//	    and t Micros is flagged even though both operands type-check
//	    as float64. Multiplication and division drop provenance: they
//	    legitimately change dimension (f·t = cycles, P·t = energy).
//	(c) bare frequency literals materializing as units.MHz outside
//	    internal/vf (the V-F table) and internal/units. Operating
//	    points come from a vf.Curve (Grid/Min/Max/Clamp); a literal
//	    1500 elsewhere either duplicates the table or invents a point
//	    off it. The sentinels 0 and ±1 are exempt.

// unitsPkgPath is the package defining the typed physical quantities.
const unitsPkgPath = "npudvfs/internal/units"

// unitTypedPkgs are the packages whose APIs carry units types; rule (a)
// polices only these — packages outside the list (npu, powersim,
// profiler, stats, ga, ...) deliberately keep raw-float64 numeric
// kernels and convert at their boundaries.
var unitTypedPkgs = map[string]bool{
	"npudvfs":                     true,
	"npudvfs/internal/units":      true,
	"npudvfs/internal/vf":         true,
	"npudvfs/internal/thermal":    true,
	"npudvfs/internal/perfmodel":  true,
	"npudvfs/internal/powermodel": true,
	"npudvfs/internal/core":       true,
	"npudvfs/internal/dualdvfs":   true,
	"npudvfs/internal/traceio":    true,
}

// freqLiteralExemptPkgs may spell frequencies as literals: vf owns the
// V-F table, and units documents the quantity types themselves.
var freqLiteralExemptPkgs = map[string]bool{
	unitsPkgPath:          true,
	"npudvfs/internal/vf": true,
}

// unitLexicon maps identifier fragments to the units type a raw
// float64 bearing that name should have been.
var unitLexicon = []struct{ word, unit string }{
	{"freq", "MHz"}, {"mhz", "MHz"}, {"ghz", "MHz"},
	{"volt", "Volt"},
	{"watt", "Watt"}, {"power", "Watt"},
	{"celsius", "Celsius"}, {"temp", "Celsius"},
	{"energy", "Millijoule"}, {"joule", "Millijoule"},
	{"micros", "Micros"}, {"millis", "Millis"},
}

// UnitCheck enforces dimensional safety on top of internal/units: no
// lexicon-named raw float64 in typed package signatures, no cross-unit
// arithmetic laundered through float64, no bare frequency literals
// outside internal/vf.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "flag raw-float64 physical quantities, cross-unit arithmetic, and bare frequency literals",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		for _, f := range p.Files {
			if unitTypedPkgs[p.ImportPath] {
				checkUnitSignatures(p, f, report)
			}
			prov := collectUnitProvenance(p, f)
			checkUnitArithmetic(p, f, prov, report)
			if !freqLiteralExemptPkgs[p.ImportPath] {
				checkFreqLiterals(p, f, report)
			}
		}
	},
}

// unitName returns the units type name ("MHz") when t is a defined
// type of internal/units, and "" otherwise.
func unitName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return ""
	}
	return obj.Name()
}

// rawFloat64ish reports whether t is the predeclared float64 or a
// slice of it — the shapes rule (a) flags. Defined types (including
// the units types themselves) are not "raw".
func rawFloat64ish(t types.Type) (string, bool) {
	switch t := types.Unalias(t).(type) {
	case *types.Basic:
		if t.Kind() == types.Float64 {
			return "float64", true
		}
	case *types.Slice:
		if b, ok := types.Unalias(t.Elem()).(*types.Basic); ok && b.Kind() == types.Float64 {
			return "[]float64", true
		}
	}
	return "", false
}

// lexiconUnit returns the units type suggested by the identifier's
// name, or "" when the name carries no physical-quantity fragment.
func lexiconUnit(name string) string {
	lower := strings.ToLower(name)
	for _, e := range unitLexicon {
		if strings.Contains(lower, e.word) {
			return e.unit
		}
	}
	return ""
}

// checkUnitSignatures is rule (a): walk every function signature
// (declarations, literals, interface methods) and struct definition,
// flagging float64-typed names that read like physical quantities.
func checkUnitSignatures(p *Package, f *ast.File, report func(pos token.Pos, format string, args ...any)) {
	checkFields := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			shape, ok := rawFloat64ish(p.Info.TypeOf(field.Type))
			if !ok {
				continue
			}
			for _, name := range field.Names {
				unit := lexiconUnit(name.Name)
				if unit == "" {
					continue
				}
				report(name.Pos(), "raw %s %s %q names a physical quantity; declare it with units.%s so cross-unit slips fail to compile",
					shape, role, name.Name, unit)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncType:
			checkFields(n.Params, "parameter")
			checkFields(n.Results, "result")
		case *ast.StructType:
			checkFields(n.Fields, "field")
		}
		return true
	})
}

// collectUnitProvenance is the dataflow half of rule (b): a forward
// pass over the file recording, for each plain-float64 local, the unit
// it was laundered from (x := float64(f) gives x provenance MHz).
// Conflicting reassignments demote the variable to "no provenance" —
// the analysis stays conservative rather than flow-sensitive.
func collectUnitProvenance(p *Package, f *ast.File) map[types.Object]string {
	prov := map[types.Object]string{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		// Only plain float64 locals need tracking; typed variables
		// already carry their unit in the type system.
		if b, ok := types.Unalias(obj.Type()).(*types.Basic); !ok || b.Kind() != types.Float64 {
			return
		}
		u := unitOf(p, prov, rhs)
		if old, seen := prov[obj]; seen && old != u {
			u = ""
		}
		prov[obj] = u
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if (n.Tok == token.DEFINE || n.Tok == token.ASSIGN) && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return prov
}

// unitOf computes the unit provenance of an expression: the defined
// units type it carries, survives float64() conversions and +/- with
// unitless offsets, and is dropped by * and / (dimension changes).
func unitOf(p *Package, prov map[types.Object]string, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit:
		// Literals are unitless offsets even when the checker has
		// materialized them at a unit type.
		return ""
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil {
			if u, ok := prov[obj]; ok {
				return u
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return unitOf(p, prov, x.X)
		}
		return ""
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB:
			lu, ru := unitOf(p, prov, x.X), unitOf(p, prov, x.Y)
			switch {
			case lu == ru:
				return lu
			case lu == "":
				return ru
			case ru == "":
				return lu
			}
			return "" // mixed; the flagging pass reports at the operator
		default:
			return "" // *, /, %, shifts: dimension changes hands
		}
	case *ast.CallExpr:
		if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() {
			// A conversion: to a units type, the target IS the unit;
			// to a float, provenance tunnels through (the laundering
			// rule (b) exists for).
			if u := unitName(p.Info.TypeOf(x)); u != "" {
				return u
			}
			if b, ok := types.Unalias(p.Info.TypeOf(x)).(*types.Basic); ok &&
				b.Info()&types.IsFloat != 0 && len(x.Args) == 1 {
				return unitOf(p, prov, x.Args[0])
			}
			return ""
		}
	}
	// Everything else — typed variables, selectors, method results like
	// t.Micros() — answers through its static type.
	return unitName(p.Info.TypeOf(e))
}

// checkUnitArithmetic is the flagging half of rule (b): additive
// operators and comparisons whose operands resolve to two different
// units are dimensional errors regardless of their float64 spelling.
func checkUnitArithmetic(p *Package, f *ast.File, prov map[types.Object]string, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				lu, ru := unitOf(p, prov, n.X), unitOf(p, prov, n.Y)
				if lu != "" && ru != "" && lu != ru {
					report(n.OpPos, "unit mismatch: %s (units.%s) %s %s (units.%s); laundering through float64 does not change the dimension — convert through a units helper",
						renderExpr(p, n.X), lu, n.Op, renderExpr(p, n.Y), ru)
				}
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				lu, ru := unitOf(p, prov, n.Lhs[0]), unitOf(p, prov, n.Rhs[0])
				if lu != "" && ru != "" && lu != ru {
					report(n.TokPos, "unit mismatch: %s (units.%s) %s %s (units.%s)",
						renderExpr(p, n.Lhs[0]), lu, n.Tok, renderExpr(p, n.Rhs[0]), ru)
				}
			}
		}
		return true
	})
}

// litFloatValue extracts the constant value of a basic literal.
func litFloatValue(p *Package, lit *ast.BasicLit) (float64, bool) {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return v, true
}

// checkFreqLiterals is rule (c): every syntactic route by which an
// untyped numeric literal can materialize as units.MHz — conversions,
// composite literals, keyed struct fields, assignments, declarations,
// call arguments, comparisons — is flagged outside the exempt
// packages. 0 and ±1 pass: they are sentinels, not operating points.
func checkFreqLiterals(p *Package, f *ast.File, report func(pos token.Pos, format string, args ...any)) {
	seen := map[token.Pos]bool{}
	flag := func(e ast.Expr, context string) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
			e = ast.Unparen(u.X)
		}
		lit, ok := e.(*ast.BasicLit)
		if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) || seen[lit.Pos()] {
			return
		}
		//lint:allow floateq exact sentinel: 0 and ±1 are the zero-value and unset-marker exemptions, compared as exact constants
		if v, ok := litFloatValue(p, lit); ok && (v == 0 || v == 1) {
			return
		}
		seen[lit.Pos()] = true
		report(lit.Pos(), "bare frequency literal %s %s; operating points come from the V-F curve (vf.Curve Grid/Min/Max), or annotate a protocol constant with %s unitcheck <reason>",
			lit.Value, context, allowPrefix)
	}
	isMHz := func(t types.Type) bool { return unitName(t) == "MHz" }
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
				if isMHz(p.Info.TypeOf(n)) && len(n.Args) == 1 {
					flag(n.Args[0], "converted to units.MHz")
				}
				return true
			}
			if sig, ok := types.Unalias(p.Info.TypeOf(n.Fun)).(*types.Signature); ok {
				for i, arg := range n.Args {
					if pt := paramTypeAt(sig, i); pt != nil && isMHz(pt) {
						flag(arg, "passed as a units.MHz argument")
					}
				}
			}
		case *ast.CompositeLit:
			switch t := types.Unalias(p.Info.TypeOf(n)).Underlying().(type) {
			case *types.Slice:
				if isMHz(t.Elem()) {
					for _, elt := range n.Elts {
						flag(elt, "in a []units.MHz literal")
					}
				}
			case *types.Array:
				if isMHz(t.Elem()) {
					for _, elt := range n.Elts {
						flag(elt, "in a units.MHz array literal")
					}
				}
			case *types.Map:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if isMHz(t.Key()) {
							flag(kv.Key, "as a units.MHz map key")
						}
						if isMHz(t.Elem()) {
							flag(kv.Value, "as a units.MHz map value")
						}
					}
				}
			case *types.Struct:
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && isMHz(p.Info.TypeOf(id)) {
							flag(kv.Value, "assigned to a units.MHz field")
						}
						continue
					}
					if i < t.NumFields() && isMHz(t.Field(i).Type()) {
						flag(elt, "assigned to a units.MHz field")
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if isMHz(p.Info.TypeOf(n.Lhs[i])) {
						flag(n.Rhs[i], "assigned to a units.MHz variable")
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && isMHz(p.Info.TypeOf(n.Type)) {
				for _, v := range n.Values {
					flag(v, "declared as units.MHz")
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if isMHz(p.Info.TypeOf(n.X)) {
					flag(n.Y, "compared against a units.MHz value")
				}
				if isMHz(p.Info.TypeOf(n.Y)) {
					flag(n.X, "compared against a units.MHz value")
				}
			}
		}
		return true
	})
}

// paramTypeAt resolves the type of the i-th argument's parameter,
// unrolling the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if s, ok := types.Unalias(params.At(params.Len() - 1).Type()).(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}
