package lint

import (
	"strings"
	"testing"
)

// Tests for the performance-contract analyzers (allocfree, lockorder):
// golden fixtures per allocation class and blocking kind, cross-package
// fact propagation (allocating callees, two-package lock cycles,
// held-callback edges), directive handling, and package scoping.

func TestAllocFreeGolden(t *testing.T) {
	p := loadTestPkg(t, "allocfree", "npudvfs/internal/hot")
	checkGolden(t, p, []*Analyzer{AllocFree})
}

// TestAllocFreeNoRoots: without a //lint:hotpath directive the analyzer
// is silent, whatever the package allocates.
func TestAllocFreeNoRoots(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/server", "cold.go", `package server

func cold() []int {
	return make([]int, 100)
}
`)
	if diags := Run(p, []*Analyzer{AllocFree}); len(diags) != 0 {
		t.Fatalf("allocfree fired without a hotpath root: %v", diags)
	}
}

// TestHotpathDirectiveErrors: a directive with trailing text and a
// directive not sitting above a function declaration are findings, not
// silent no-ops — and neither turns its neighbor into a root.
func TestHotpathDirectiveErrors(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/server", "dir.go", `package server

//lint:hotpath with trailing words
func a() []int { return make([]int, 1) }

//lint:hotpath
var hooks []func()
`)
	diags := Run(p, []*Analyzer{AllocFree})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed directive") {
		t.Errorf("first diagnostic %q does not flag the malformed directive", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "not attached to a function declaration") {
		t.Errorf("second diagnostic %q does not flag the dangling directive", diags[1].Message)
	}
}

// TestAllocFreeCrossPackage: an allocating callee in another package is
// reported at the call edge with a breadcrumb naming the allocation,
// and an allocation-free cross-package callee is not reported.
func TestAllocFreeCrossPackage(t *testing.T) {
	p := loadTestPkgWithDeps(t, map[string]string{
		"hotpathdep": "npudvfs/internal/coldtab",
		"hotpathx":   "npudvfs/internal/evalx",
	}, "npudvfs/internal/evalx")
	checkGolden(t, p, []*Analyzer{AllocFree})
}

func TestLockOrderGolden(t *testing.T) {
	p := loadTestPkg(t, "lockorder", "npudvfs/internal/server")
	checkGolden(t, p, []*Analyzer{LockOrder})
}

// TestLockOrderScoped: the same file outside the serving/search
// packages produces no lockorder findings (its allow directive
// correctly surfaces as unused there).
func TestLockOrderScoped(t *testing.T) {
	p := loadTestPkg(t, "lockorder", "npudvfs/internal/telemetry")
	for _, d := range Run(p, []*Analyzer{LockOrder}) {
		if d.Rule == "lockorder" {
			t.Errorf("lockorder fired outside its scoped packages: %s", d)
		} else if d.Rule != "directive" || !strings.Contains(d.Message, "unused directive") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestLockOrderCrossPackage: a two-package lock-order cycle closed
// through a held-callback edge, a callback self-deadlock, and a held
// channel send, all resolved through the fact store.
func TestLockOrderCrossPackage(t *testing.T) {
	p := loadTestPkgWithDeps(t, map[string]string{
		"lockorderdep": "npudvfs/internal/cluster/ring",
		"lockorderx":   "npudvfs/internal/pool",
	}, "npudvfs/internal/pool")
	checkGolden(t, p, []*Analyzer{LockOrder})
}
