// Golden input for the metricflow analyzer (mounted as
// npudvfs/internal/server): rendered metrics need writers and vice
// versa, HELP/TYPE/emit lines pair up, and label values come from the
// declared package-level sets.
package server

import (
	"fmt"
	"io"
	"sync"
)

var reqTotalLabels = []string{"get", "post"}

type metrics struct {
	mu       sync.Mutex
	served   uint64
	orphan   uint64 // want metricflow `written but never rendered`
	ghost    uint64 // want metricflow `rendered but has no writer`
	reqTotal map[string]uint64
	byKind   map[string]uint64 // want metricflow `label values for byKind`
}

func (m *metrics) bump() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.served++
}

func (m *metrics) stray() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.orphan++
}

// hit keys reqTotal by its parameter: the LabelKeyField fact makes
// every call site's constant argument checkable against the set.
func (m *metrics) hit(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqTotal[method]++
}

func (m *metrics) oops() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqTotal["oops"]++ // want metricflow `not in the declared reqTotalLabels set`
}

// kindConst writes a constant key into byKind, which has no declared
// label set — reported once at the field declaration above.
func (m *metrics) kindConst() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byKind["x"]++
}

func record(m *metrics) {
	m.hit("get")
	m.hit("bogus") // want metricflow `not in the declared reqTotalLabels set`
}

func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP srv_served_total Requests served.")
	fmt.Fprintln(w, "# TYPE srv_served_total counter")
	fmt.Fprintf(w, "srv_served_total %d\n", m.served)

	fmt.Fprintln(w, "# HELP srv_ghost_total Declared and rendered but never written.")
	fmt.Fprintln(w, "# TYPE srv_ghost_total counter")
	fmt.Fprintf(w, "srv_ghost_total %d\n", m.ghost)

	fmt.Fprintln(w, "# HELP srv_req_total Requests by method.")
	fmt.Fprintln(w, "# TYPE srv_req_total counter")
	for k, v := range m.reqTotal {
		fmt.Fprintf(w, "srv_req_total{method=%q} %d\n", k, v)
	}

	for k, v := range m.byKind {
		fmt.Fprintf(w, "srv_by_kind_total{kind=%q} %d\n", k, v) // want metricflow `without a # TYPE declaration`
	}

	fmt.Fprintln(w, "# TYPE srv_dead_total counter") // want metricflow `no HELP line` metricflow `no series line is ever emitted`
}
