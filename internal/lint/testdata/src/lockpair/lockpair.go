// Package lockpair is dvfslint golden-test input for the lockpair
// analyzer.
package lockpair

import "sync"

// Store fakes the repo's locked caches.
type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Leak locks and never unlocks: flagged.
func (s *Store) Leak(k string, v int) {
	s.mu.Lock() // want lockpair `s.mu.Lock() has no matching s.mu.Unlock()`
	s.data[k] = v
}

// WrongRelease pairs a read lock with the write release: flagged.
func (s *Store) WrongRelease(k string) int {
	s.rw.RLock() // want lockpair `s.rw.RLock() has no matching s.rw.RUnlock()`
	defer s.rw.Unlock()
	return s.data[k]
}

// Get is the canonical deferred pairing: clean.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// Swap releases inside a deferred closure: clean.
func (s *Store) Swap(k string, v int) int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	old := s.data[k]
	s.data[k] = v
	return old
}

// Len pairs RLock with RUnlock: clean.
func (s *Store) Len() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.data)
}

// Acquire shows an in-tree justified suppression: a lock handed to the
// caller.
func (s *Store) Acquire() {
	//lint:allow lockpair lock handed to the caller; Release unlocks it
	s.mu.Lock()
}

// Release completes Acquire's hand-off.
func (s *Store) Release() {
	s.mu.Unlock()
}
