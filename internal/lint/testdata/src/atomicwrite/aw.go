// Golden input for the atomicwrite analyzer (mounted as
// npudvfs/internal/cluster/jobstore): every create/write to a final
// path must go through the tmp→rename sequence.
package jobstore

import (
	"os"
	"path/filepath"
)

// persistGood is the audited sequence: stage to ".tmp", rename onto
// the final name.
func persistGood(path string, raw []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// persistJoin stages via filepath.Join with a .tmp final element.
func persistJoin(dir, name string, raw []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name))
}

func persistBad(path string, raw []byte) error {
	return os.WriteFile(path, raw, 0o644) // want atomicwrite `writes final path path directly`
}

func renameBad(src, dst string) error {
	return os.Rename(src, dst) // want atomicwrite `source src is not a .tmp staging path`
}

func createBad(path string) (*os.File, error) {
	return os.Create(path) // want atomicwrite `writes final path path directly`
}

func openWriteBad(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want atomicwrite `writes final path path directly`
}

// openRead never writes; read-only opens are out of scope.
func openRead(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

// readBack and cleanup use primitives outside the write set.
func readBack(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func allowedDirect(path string, raw []byte) error {
	//lint:allow atomicwrite audited non-record sidecar file; torn writes are tolerated by its reader
	return os.WriteFile(path, raw, 0o644)
}
