// Dependency package for the cross-package atomicwrite golden test
// (mounted as npudvfs/internal/rawwrite): Dump writes a final path
// directly, so the fact store summarizes it as WritesFinalPath.
package rawwrite

import "os"

// Dump writes raw bytes straight to path, non-atomically.
func Dump(path string, raw []byte) error {
	return os.WriteFile(path, raw, 0o644)
}
