// Package stats is dvfslint golden-test input: mounted as
// npudvfs/internal/stats, the approved tolerance-helper package where
// exact float comparison is the whole point. No findings expected.
package stats

// AlmostEqual is a stand-in for the real helper; the exact comparisons
// below must not be flagged here.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
