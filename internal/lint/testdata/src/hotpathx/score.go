// Cross-package golden input for allocfree (mounted as
// npudvfs/internal/evalx, importing the coldtab test package): an
// allocating callee in another package is reported once at the call
// edge, with the first allocation it reaches named; an allocation-free
// cross-package callee is not.
package evalx

import "npudvfs/internal/coldtab"

//lint:hotpath
func Score(xs []float64) float64 {
	xs = coldtab.Grow(xs) // want allocfree `calls coldtab.Grow, which allocates`
	return coldtab.Sum(xs)
}
