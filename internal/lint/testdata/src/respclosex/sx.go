// Cross-package golden input for respclose (mounted as
// npudvfs/internal/server, importing the httpx test package): the
// ClosesBody fact of httpx.Discard crosses the package boundary.
package server

import (
	"net/http"

	"npudvfs/internal/httpx"
)

func okCrossClose(c *http.Client, u string) (int, error) {
	resp, err := httpx.Fetch(c, u)
	if err != nil {
		return 0, err
	}
	code := resp.StatusCode
	httpx.Discard(resp)
	return code, nil
}

func leakCross(c *http.Client, u string) {
	resp, err := httpx.Fetch(c, u) // want respclose `never closed in this function`
	if err != nil {
		return
	}
	_ = resp.StatusCode
}
