// Package ctxflow is dvfslint golden-test input for the ctxflow
// analyzer. The test mounts it as npudvfs/internal/ctxflow.
package ctxflow

import "context"

// Searcher fakes the repo's long-running search shapes.
type Searcher struct{ generations int }

// Background mints a root context mid-stack: flagged.
func (s *Searcher) Background() context.Context {
	return context.Background() // want ctxflow `context.Background() mints a root context`
}

func todo() context.Context {
	return context.TODO() // want ctxflow `context.TODO() mints a root context`
}

// Search is an exported spec loop with no ctx parameter: flagged.
func (s *Searcher) Search(specs []int) int { // want ctxflow `loops over generations/specs but has no context.Context parameter`
	total := 0
	for _, spec := range specs {
		total += spec
	}
	return total
}

// Evolve is an exported generation loop with no ctx parameter: flagged.
func Evolve(generations int) int { // want ctxflow `loops over generations/specs but has no context.Context parameter`
	sum := 0
	for gen := 0; gen < generations; gen++ {
		sum += gen
	}
	return sum
}

// SearchContext is the approved shape: the loop can observe ctx.
func (s *Searcher) SearchContext(ctx context.Context, specs []int) int {
	total := 0
	for _, spec := range specs {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += spec
	}
	return total
}

// evolve is unexported: callers inside the package are expected to
// hold a ctx already, so it is not flagged.
func evolve(generations int) int {
	sum := 0
	for gen := 0; gen < generations; gen++ {
		sum += gen
	}
	return sum
}

// Run shows an in-tree justified suppression of the root-context rule.
func Run(s *Searcher) int {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use SearchContext
	return s.SearchContext(context.Background(), []int{1, 2, 3})
}
