// Cross-package golden input for lockorder (mounted as
// npudvfs/internal/pool, importing the ring test package): grab
// establishes pool.Pool.mu → ring.Table.mu in the module-wide graph,
// broadcast's callback closes the cycle in the other direction through
// ring.Each's held-callback fact, and reEach self-deadlocks by
// re-entering the table lock from inside the callback.
package pool

import (
	"sync"

	"npudvfs/internal/cluster/ring"
)

type Pool struct {
	mu  sync.Mutex
	tab *ring.Table
	q   chan int
}

// grab nests the table lock inside the pool lock: the graph edge the
// broadcast callback below turns into a cycle.
func (p *Pool) grab() {
	p.mu.Lock()
	p.tab.Observe()
	p.mu.Unlock()
}

func (p *Pool) notify() {
	p.mu.Lock()
	p.q <- 1 // want lockorder `channel send while holding pool.Pool.mu`
	p.mu.Unlock()
}

// broadcast passes Each a callback that takes the pool lock; Each
// invokes it holding ring.Table.mu, the reverse of grab's order.
func (p *Pool) broadcast() {
	p.tab.Each(func(int) { // want lockorder `forms a lock-order cycle`
		p.mu.Lock()
		p.mu.Unlock()
	})
}

// reEach re-acquires the table lock from inside the callback.
func (p *Pool) reEach() {
	p.tab.Each(func(int) { // want lockorder `which ring.Table.Each holds when invoking it — self-deadlock`
		p.tab.Observe()
	})
}
