// Dependency package for the cross-package errsink golden test
// (mounted as npudvfs/internal/fsio): Commit wraps os.Rename, so the
// fact store summarizes it as DerivesIOError and dependents that
// discard its error are flagged.
package fsio

import "os"

// Commit atomically publishes a staged file.
func Commit(src, dst string) error {
	return os.Rename(src, dst)
}
