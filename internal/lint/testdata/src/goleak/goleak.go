// Package goleak is dvfslint golden-test input for the goleak
// analyzer.
package goleak

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"npudvfs/internal/pool"
)

// FireAndForget launches a goroutine nothing can join: flagged.
func FireAndForget(work func()) {
	go work() // want goleak `untracked goroutine`
}

// spin is a same-package helper that tracks nothing.
func spin() {
	for i := 0; i < 1000; i++ {
		_ = i
	}
}

// Launch follows the go statement into spin's body: flagged.
func Launch() {
	go spin() // want goleak `untracked goroutine`
}

// Tracked joins its goroutines through a WaitGroup: clean.
func Tracked(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Result makes the goroutine joinable through a result channel: clean.
func Result() int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	return <-ch
}

// Pooled delegates to internal/pool, whose Each joins its workers:
// clean.
func Pooled(ctx context.Context) {
	go func() {
		_ = pool.Each(ctx, 1, 4, 2, func(int, *rand.Rand) error { return nil })
	}()
}

// External targets another package: its body is out of view, so it is
// assumed managed.
func External(d time.Duration) {
	go time.Sleep(d)
}

// Daemon shows an in-tree justified suppression.
func Daemon() {
	//lint:allow goleak process-lifetime daemon; exits with the process
	go func() {
		for {
			_ = struct{}{}
		}
	}()
}
