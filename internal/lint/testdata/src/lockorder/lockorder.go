// Golden input for lockorder (mounted as npudvfs/internal/server):
// every blocking-op kind while holding a serving mutex, a self-
// deadlock, a same-package lock-order cycle, the early-exit-release
// shape (the region continues past an if that unlocks and returns),
// and the clean patterns the sweep must not flag — select with
// default, goroutine bodies, double RLock, audited allows.
package server

import (
	"net"
	"os"
	"sync"
	"time"
)

type Server struct {
	mu  sync.Mutex
	emu sync.Mutex
	q   chan int
	wg  sync.WaitGroup
	n   int
}

func (s *Server) send() {
	s.mu.Lock()
	s.q <- 1 // want lockorder `channel send while holding server.Server.mu`
	s.mu.Unlock()
}

func (s *Server) recv() {
	s.mu.Lock()
	<-s.q // want lockorder `channel receive while holding server.Server.mu`
	s.mu.Unlock()
}

func (s *Server) wait() {
	s.mu.Lock()
	s.wg.Wait() // want lockorder `sync Wait while holding server.Server.mu`
	s.mu.Unlock()
}

func (s *Server) nap() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockorder `time.Sleep while holding server.Server.mu`
	s.mu.Unlock()
}

func (s *Server) probe(addr string) {
	s.mu.Lock()
	c, err := net.Dial("tcp", addr) // want lockorder `network call to net.Dial while holding server.Server.mu`
	s.mu.Unlock()
	if err == nil {
		_ = c.Close()
	}
}

func (s *Server) pick() {
	s.mu.Lock()
	select { // want lockorder `blocking select while holding server.Server.mu`
	case <-s.q:
	case s.q <- 1:
	}
	s.mu.Unlock()
}

// poll is clean: a select with a default never blocks.
func (s *Server) poll() {
	s.mu.Lock()
	select {
	case <-s.q:
	default:
	}
	s.mu.Unlock()
}

// submit pins the early-exit-release shape: the unlock inside the
// terminating if branch ends only that branch's region, so the write
// below still happens under the lock.
func (s *Server) submit(rec []byte) {
	s.mu.Lock()
	if len(rec) == 0 {
		s.mu.Unlock()
		return
	}
	_ = os.WriteFile("rec.json", rec, 0o644) // want lockorder `file I/O (os.WriteFile) while holding server.Server.mu`
	s.mu.Unlock()
}

// persist blocks on disk but holds nothing itself; checkpoint reaches
// it with the mutex held, so the finding lands on the call edge.
func (s *Server) persist() {
	_ = os.WriteFile("state.json", nil, 0o644)
}

func (s *Server) checkpoint() {
	s.mu.Lock()
	s.persist() // want lockorder `call to server.Server.persist may perform file I/O (os.WriteFile) while holding server.Server.mu`
	s.mu.Unlock()
}

func (s *Server) relock() {
	s.mu.Lock()
	s.mu.Lock() // want lockorder `server.Server.mu acquired while already held — self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// cycleAB and cycleBA disagree on acquisition order: each side of the
// cycle is reported where the second lock is taken.
func (s *Server) cycleAB() {
	s.mu.Lock()
	s.emu.Lock() // want lockorder `forms a lock-order cycle`
	s.n++
	s.emu.Unlock()
	s.mu.Unlock()
}

func (s *Server) cycleBA() {
	s.emu.Lock()
	s.mu.Lock() // want lockorder `forms a lock-order cycle`
	s.n++
	s.mu.Unlock()
	s.emu.Unlock()
}

// spawn is clean: the goroutine body runs after Unlock may already
// have happened; it is not part of the held region.
func (s *Server) spawn() {
	s.mu.Lock()
	go func() {
		s.q <- 1
	}()
	s.mu.Unlock()
}

// auditedFlush carries a reviewed exemption.
func (s *Server) auditedFlush() {
	s.mu.Lock()
	//lint:allow lockorder boot-time flush: nothing contends for the lock yet
	_ = os.Remove("state.json")
	s.mu.Unlock()
}

type stats struct {
	rmu sync.RWMutex
	n   int
}

// read is clean: a second RLock of the same RWMutex is legal.
func (t *stats) read() int {
	t.rmu.RLock()
	a := t.n
	t.rmu.RLock()
	b := t.n
	t.rmu.RUnlock()
	t.rmu.RUnlock()
	return a + b
}
