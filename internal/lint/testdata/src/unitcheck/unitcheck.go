// Package unitcheck exercises the dimensional-safety analyzer: rule
// (a) raw lexicon-named float64 signatures, rule (b) cross-unit
// arithmetic laundered through float64, rule (c) bare frequency
// literals materializing as units.MHz. The golden test mounts this
// file as npudvfs/internal/perfmodel, a units-typed package, so all
// three rules are in force.
package unitcheck

import "npudvfs/internal/units"

// --- rule (a): raw float64 physical quantities in signatures ---

type opSpec struct {
	FreqMHz float64 // want unitcheck `raw float64 field "FreqMHz"`
	Cycles  float64 // a count, not a physical quantity: silent
	PowerW  float64 // want unitcheck `raw float64 field "PowerW"`
}

func scaleAll(freqsMHz []float64, k float64) []float64 { // want unitcheck `raw []float64 parameter "freqsMHz"`
	out := make([]float64, len(freqsMHz))
	for i, f := range freqsMHz {
		out[i] = f * k
	}
	return out
}

func hottest() (tempC float64) { // want unitcheck `raw float64 result "tempC"`
	return 85
}

// typed signatures are the fix, not a finding
func clamped(f units.MHz, lo units.MHz) units.MHz {
	if f < lo {
		return lo
	}
	return f
}

// --- rule (b): cross-unit arithmetic laundered through float64 ---

func mixedLocals(f units.MHz, t units.Micros) float64 {
	x := float64(f)
	y := float64(t)
	return x + y // want unitcheck `unit mismatch: x (units.MHz) + y (units.Micros)`
}

func mixedDirect(f units.MHz, t units.Micros) bool {
	return float64(f) > float64(t) // want unitcheck `unit mismatch`
}

func mixedAccum(f units.MHz, t units.Micros) float64 {
	acc := float64(f)
	acc += float64(t) // want unitcheck `unit mismatch`
	return acc
}

func sameUnit(a, b units.MHz) float64 {
	return float64(a) - float64(b) // same dimension: silent
}

func dimensionChange(f units.MHz, t units.Micros) float64 {
	return float64(f) * float64(t) // multiplication changes dimension: silent
}

func unitlessOffset(f units.MHz) float64 {
	return float64(f) + 0.5 // literal offsets carry no unit: silent
}

// --- rule (c): bare frequency literals outside internal/vf ---

const probeFreq = units.MHz(1500) // want unitcheck `bare frequency literal 1500 converted to units.MHz`

var sparseGrid = []units.MHz{1000, 1800} // want unitcheck `1000` unitcheck `1800`

var declaredFreq units.MHz = 1450 // want unitcheck `declared as units.MHz`

var unsetFreq = units.MHz(-1) // sentinel ±1: silent

type point struct {
	F units.MHz
	V units.Volt
}

func mkPoint() point {
	return point{F: 1200, V: 0.75} // want unitcheck `assigned to a units.MHz field`
}

func reassign(f units.MHz) units.MHz {
	f = 1350 // want unitcheck `assigned to a units.MHz variable`
	return f
}

func takeFreq(f units.MHz) units.MHz { return f }

func callSite() units.MHz {
	return takeFreq(1550) // want unitcheck `passed as a units.MHz argument`
}

func threshold(f units.MHz) bool {
	if f > 1700 { // want unitcheck `compared against a units.MHz value`
		return true
	}
	return f != 0 // sentinel zero: silent
}
