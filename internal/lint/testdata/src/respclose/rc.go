// Golden input for the respclose analyzer (mounted as
// npudvfs/internal/server/client): every *http.Response must reach
// Body.Close — or an explicit handoff — on all control-flow paths.
package client

import (
	"errors"
	"io"
	"net/http"
)

// drain closes its argument; callers handing a body to it are covered
// by the ClosesCloser fact.
func drain(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	rc.Close()
}

// finish closes the response's body; callers passing a response are
// covered by the ClosesBody fact.
func finish(resp *http.Response) {
	resp.Body.Close()
}

func record(int) {}

func leakNoClose(u string) (int, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil // want respclose `return leaves resp without Body.Close`
}

// leakEndOfFunc drops the response on the floor with no return at all.
func leakEndOfFunc(u string) {
	resp, err := http.Get(u) // want respclose `never closed in this function`
	if err != nil {
		return
	}
	record(resp.StatusCode)
}

func leakEarlyReturn(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errors.New("unexpected status") // want respclose `return leaves resp without Body.Close`
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func okDefer(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func okDirectClose(u string) (int, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, err
	}
	code := resp.StatusCode
	resp.Body.Close()
	return code, nil
}

// okReturned transfers ownership to the caller.
func okReturned(u string) (*http.Response, error) {
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// okHandoff stores the response; whoever owns the struct owns the
// close obligation.
type pending struct {
	resp *http.Response
}

func okHandoff(u string) (*pending, error) {
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	return &pending{resp: resp}, nil
}

// okDrainHelper discharges through the in-package ClosesCloser fact.
func okDrainHelper(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	drain(resp.Body)
	return nil
}

// okFinishHelper discharges through the in-package ClosesBody fact.
func okFinishHelper(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	finish(resp)
	return nil
}

func blankResp(u string) error {
	_, err := http.Get(u) // want respclose `discarded as _`
	return err
}

func allowedLeak(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 500 {
		//lint:allow respclose audited: the connection is abandoned deliberately so the transport drops it
		return errors.New("server error")
	}
	defer resp.Body.Close()
	return nil
}
