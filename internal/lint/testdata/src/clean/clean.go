// Package clean is dvfslint golden-test input: mounted as
// npudvfs/internal/core (a deterministic package), it follows every
// contract and must produce zero findings under the full suite.
package clean

import (
	"context"
	"math/rand"
	"sync"
)

// Pipeline is a contract-respecting miniature of the repo's shapes.
type Pipeline struct {
	mu    sync.Mutex
	cache map[int]float64
}

// RunContext seeds its own RNG, observes ctx, and pairs its locks.
func (p *Pipeline) RunContext(ctx context.Context, seed int64, n int) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += p.score(i, rng.Float64())
	}
	return total, nil
}

func (p *Pipeline) score(i int, draw float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.cache[i]; ok {
		return v
	}
	if p.cache == nil {
		p.cache = map[int]float64{}
	}
	p.cache[i] = draw
	return draw
}

// Fan joins its goroutines through a WaitGroup.
func Fan(workers int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	wg.Wait()
}
