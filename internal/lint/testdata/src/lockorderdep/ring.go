// Cross-package dependency for the lockorder golden test (mounted as
// npudvfs/internal/cluster/ring): Observe acquires the table mutex,
// and Each invokes its callback parameter while holding it — the
// LockParamCalls fact the importing package's cycle check consumes.
package ring

import "sync"

type Table struct {
	mu sync.Mutex
	n  int
}

// Observe acquires ring.Table.mu.
func (t *Table) Observe() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

// Each invokes fn for every slot while holding ring.Table.mu.
func (t *Table) Each(fn func(int)) {
	t.mu.Lock()
	for i := 0; i < t.n; i++ {
		fn(i)
	}
	t.mu.Unlock()
}
