// Cross-package golden input for errsink (mounted as
// npudvfs/internal/cluster/jobstore, importing the fsio test package):
// the I/O provenance of fsio.Commit crosses the package boundary
// through the fact store.
package jobstore

import "npudvfs/internal/fsio"

func publish(src, dst string) {
	_ = fsio.Commit(src, dst) // want errsink `error from fsio.Commit discarded as _`
}

func publishChecked(src, dst string) error {
	return fsio.Commit(src, dst)
}
