// Golden input for allocfree: one //lint:hotpath root exercising every
// allocation class the scanner knows, a helper whose sites are
// attributed to the root through the callee walk, an audited
// cold-prologue escape, a panic-argument guard (terminal path, never
// flagged), and a cold function free to allocate because no root
// reaches it.
package hot

import "fmt"

type view struct{ scale float64 }

func box(v any) bool { return v != nil }

// helper is reachable from the root: its sites are reported in place.
func helper(m map[string]int) {
	m["hit"]++ // want allocfree `map write may allocate`
}

// recur pins walk termination on recursive callee edges.
func recur(n int) int {
	if n <= 0 {
		return 0
	}
	return recur(n - 1)
}

//lint:hotpath
func root(xs []int, m map[string]int, s string) float64 {
	if s == "" {
		panic(fmt.Sprintf("empty input %d", len(xs))) // terminal path: not flagged
	}
	//lint:allow allocfree cold warm-up table, built on the first call only
	warm := make([]float64, 4)
	v := &view{scale: warm[0]}         // want allocfree `composite literal escapes to the heap`
	xs = append(xs, 1)                 // want allocfree `append may grow its backing array`
	tmp := make([]int, 8)              // want allocfree `make allocates`
	q := new(view)                     // want allocfree `new allocates`
	s += "suffix"                      // want allocfree `string concatenation allocates`
	raw := []byte(s)                   // want allocfree `string conversion allocates`
	ys := []int{len(raw)}              // want allocfree `slice literal allocates`
	mm := map[string]int{}             // want allocfree `map literal allocates`
	f := func() int { return len(xs) } // want allocfree `function literal captures xs (closure allocates)`
	g := func() int { return 1 }       // want allocfree `function literal allocates`
	go recur(1)                        // want allocfree `go statement spawns a goroutine`
	for i := 0; i < len(ys); i++ {
		defer recur(0) // want allocfree `defer inside a loop allocates per iteration`
	}
	_ = fmt.Sprint(s) // want allocfree `call to fmt.Sprint is forbidden on the hot path` allocfree `value of type string boxed into interface parameter`
	if box(len(mm)) { // want allocfree `value of type int boxed into interface parameter`
		helper(m)
	}
	return v.scale + q.scale + float64(tmp[0]+ys[0]+f()+g())
}

// coldSetup allocates freely: no //lint:hotpath root reaches it.
func coldSetup() []view {
	vs := make([]view, 0, 8)
	vs = append(vs, view{scale: 1})
	return vs
}
