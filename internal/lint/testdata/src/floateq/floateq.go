// Package floateq is dvfslint golden-test input for the floateq
// analyzer. The test mounts it as npudvfs/internal/floateq.
package floateq

// compare mixes float and integer comparisons: only the float ones are
// findings.
func compare(a, b float64, n, m int) bool {
	if a == b { // want floateq `float comparison a == b`
		return true
	}
	if n == m { // integers: exact equality is fine
		return false
	}
	return a != 0 // want floateq `float comparison a != 0`
}

// mixed flags a comparison where only one operand is float-typed.
func mixed(x float64) bool {
	return x == 3 // want floateq `float comparison x == 3`
}

// isNaN shows an in-tree justified suppression: NaN self-comparison is
// exact by design.
func isNaN(x float64) bool {
	//lint:allow floateq exact NaN self-comparison
	return x != x
}
