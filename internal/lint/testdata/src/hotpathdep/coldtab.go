// Cross-package dependency for the allocfree golden test (mounted as
// npudvfs/internal/coldtab): Grow allocates, Sum does not. The facts
// propagate to the importing package's hot-path walk.
package coldtab

// Grow appends, which may reallocate the backing array.
func Grow(xs []float64) []float64 {
	return append(xs, 0)
}

// Sum is allocation-free: calling it from a hot path is fine.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
