// Dependency package for the cross-package respclose golden test
// (mounted as npudvfs/internal/httpx): Discard carries a ClosesBody
// fact that dependents' call sites consume; Fetch returns an open
// response whose close obligation transfers to the caller.
package httpx

import (
	"io"
	"net/http"
)

// Discard drains and closes the response body so the connection can be
// reused.
func Discard(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Fetch returns the open response; the caller owns Body.Close.
func Fetch(c *http.Client, u string) (*http.Response, error) {
	return c.Get(u)
}
