// Package ga is dvfslint golden-test input for the detrand analyzer.
// The test mounts it as npudvfs/internal/ga, one of the deterministic
// packages.
package ga

import (
	"math/rand"
	"time"
)

// globalRand exercises the forbidden process-global RNG entry points.
func globalRand() int {
	n := rand.Intn(10)                 // want detrand `math/rand.Intn uses the process-global RNG`
	f := rand.Float64()                // want detrand `math/rand.Float64 uses the process-global RNG`
	rand.Shuffle(n, func(i, j int) {}) // want detrand `math/rand.Shuffle uses the process-global RNG`
	_ = f
	return n
}

// seededRand is the approved shape: an explicit, seedable source.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// wallClock exercises the forbidden wall-clock reads.
func wallClock() time.Duration {
	start := time.Now()      // want detrand `time.Now reads the wall clock`
	return time.Since(start) // want detrand `time.Since reads the wall clock`
}

// timedDiagnostics shows an in-tree justified suppression.
func timedDiagnostics() time.Time {
	//lint:allow detrand wall-clock timing only: feeds a duration field excluded from reports
	return time.Now()
}
