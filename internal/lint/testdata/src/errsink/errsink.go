// Golden input for the errsink analyzer (mounted as
// npudvfs/internal/server): errors with os/io/net provenance may not
// be discarded by bare call, blank assignment, or dead store —
// including through in-package helpers that wrap the I/O call.
package server

import (
	"io"
	"os"
)

// renameInto wraps an os call: the fixpoint marks it DerivesIOError,
// so discarding its result is as bad as discarding os.Rename's.
func renameInto(src, dst string) error {
	return os.Rename(src, dst)
}

func bareDrop(path string) {
	os.Remove(path) // want errsink `error from os.Remove discarded by bare call`
}

func blankDrop(dst io.Writer, src io.Reader) {
	_, _ = io.Copy(dst, src) // want errsink `error from io.Copy discarded as _`
}

func helperDrop(a, b string) {
	_ = renameInto(a, b) // want errsink `error from server.renameInto discarded as _`
}

func deadAssign(path string) error {
	err := os.Remove(path)
	if err != nil {
		return err
	}
	err = os.Remove(path + "2") // want errsink `assigned to err but never read`
	return nil
}

// namedResult publishes the error through a bare return: assigning a
// named result is not a dead store.
func namedResult(path string) (err error) {
	err = os.Remove(path)
	return
}

func allowedDrop(path string) {
	//lint:allow errsink audited best-effort cleanup; nothing to do on failure
	_ = os.Remove(path)
}

func handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

// deferredClose is the idiomatic cleanup: defers are exempt by
// construction.
func deferredClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
