// Cross-package golden input for atomicwrite (mounted as
// npudvfs/internal/cluster/jobstore): delegating a record write to a
// helper outside the package moves the persistence audit out of
// jobstore, which the WritesFinalPath fact makes visible here.
package jobstore

import "npudvfs/internal/rawwrite"

func persistVia(path string, raw []byte) error {
	return rawwrite.Dump(path, raw) // want atomicwrite `final-path write outside jobstore`
}
