package lint

import (
	"go/ast"
	"go/token"
)

// LockPair flags a mu.Lock()/mu.RLock() call with no matching
// mu.Unlock()/mu.RUnlock() anywhere in the same function body (direct
// or deferred, including inside deferred closures). It is a
// shape check, not a path-sensitive prover: a lock whose unlock lives
// in a different function is almost always either a bug or a design
// worth an explicit //lint:allow lockpair <reason>.
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "every mutex Lock/RLock must pair with an Unlock/RUnlock in the same function",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkLockPairs(p, fn.Body, report)
					}
				case *ast.FuncLit:
					checkLockPairs(p, fn.Body, report)
				}
				return true
			})
		}
	},
}

// lockKinds maps an acquire method to its required release.
var lockKinds = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

// checkLockPairs inspects one function body. Acquire calls are
// attributed to the innermost function literal that contains them
// (nested literals are visited separately by the analyzer), while
// release calls anywhere in the subtree count — `defer func() {
// mu.Unlock() }()` is a legitimate pairing.
func checkLockPairs(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	type acquire struct {
		pos  token.Pos
		recv string // rendered receiver expression, e.g. "s.mu"
		kind string // "Lock" or "RLock"
	}
	var acquires []acquire
	released := map[string]bool{} // recv + "." + release method

	walk := func(n ast.Node, topLevel bool) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		release := name == "Unlock" || name == "RUnlock"
		_, isAcquire := lockKinds[name]
		if !release && !isAcquire {
			return true
		}
		if fn := calleeFunc(p, call); !isSyncMethod(fn, name) {
			return true
		}
		recv := renderExpr(p, sel.X)
		if release {
			released[recv+"."+name] = true
		} else if topLevel {
			acquires = append(acquires, acquire{pos: call.Pos(), recv: recv, kind: name})
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// Releases inside nested literals still count; acquires do
			// not — the literal gets its own checkLockPairs visit from
			// the analyzer's file walk.
			ast.Inspect(n, func(m ast.Node) bool { return walk(m, false) })
			return false
		}
		return walk(n, true)
	})
	for _, a := range acquires {
		want := lockKinds[a.kind]
		if !released[a.recv+"."+want] {
			report(a.pos, "%s.%s() has no matching %s.%s() in this function; release on every path (usually defer %s.%s()) or justify with %s lockpair <reason>",
				a.recv, a.kind, a.recv, want, a.recv, want, allowPrefix)
		}
	}
}
