package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrSink flags discarded errors whose provenance reaches an os/io/net
// operation — directly, or interprocedurally through module-internal
// helpers summarized as DerivesIOError in the fact store. A dropped
// I/O error hides a failed write, a failed rename, or a broken socket;
// in the serving layer (see CHANGES.md PR 6) exactly this class of
// silent failure has produced bugs a stress run had to find. Defers are
// exempt by construction: `defer f.Close()` on a read path is the
// idiomatic cleanup and has no caller to report to.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "no discarded errors with os/io/net provenance in the serving/cluster packages (interprocedural through helpers)",
	Run:  runErrSink,
}

// errSinkPkgs are the package basenames in scope: the serving and
// cluster layers, where a dropped I/O error means silent data loss.
var errSinkPkgs = map[string]bool{
	"server":   true,
	"client":   true,
	"jobstore": true,
	"ring":     true,
}

func runErrSink(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isInternalPkg(p.ImportPath) || !errSinkPkgs[pkgBase(p.ImportPath)] {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrSinks(p, fd, report)
		}
	}
}

// checkErrSinks walks one function body for the three discard shapes:
// a bare statement call, a blank-identifier assignment, and a dead
// assignment (error stored but never read again).
func checkErrSinks(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	named := namedResults(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if fn, ok := ioErrCall(p, call); ok {
					report(call.Pos(), "error from %s discarded by bare call — handle it or annotate with //lint:allow errsink", calleeLabel(fn))
				}
			}
		case *ast.AssignStmt:
			checkErrAssign(p, fd, s, named, report)
		}
		return true
	})
}

// checkErrAssign flags blank discards and dead stores of I/O-derived
// errors in one assignment.
func checkErrAssign(p *Package, fd *ast.FuncDecl, s *ast.AssignStmt, named map[types.Object]bool, report func(pos token.Pos, format string, args ...any)) {
	call, ok := singleCallRHS(s)
	if !ok {
		return
	}
	fn, ok := ioErrCall(p, call)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	// Map result positions to LHS expressions; with one RHS call the
	// arities match (or it's `x := f()` destructuring).
	if len(s.Lhs) != sig.Results().Len() && sig.Results().Len() > 1 {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !types.Identical(sig.Results().At(i).Type(), errorType) {
			continue
		}
		var lhs ast.Expr
		if len(s.Lhs) == sig.Results().Len() {
			lhs = s.Lhs[i]
		} else {
			lhs = s.Lhs[0]
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // stored into a field/index: assume live
		}
		if id.Name == "_" {
			report(s.Pos(), "error from %s discarded as _ — handle it or annotate with //lint:allow errsink", calleeLabel(fn))
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil || named[obj] {
			return // named results flow out through bare returns
		}
		if !usedAfter(p, fd.Body, s, obj) {
			report(s.Pos(), "error from %s assigned to %s but never read — dead store hides the failure", calleeLabel(fn), id.Name)
		}
		return
	}
}

// ioErrCall resolves call to its callee when that callee returns an
// error with I/O provenance.
func ioErrCall(p *Package, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	if _, hasErr := hasErrorResult(sig); !hasErr {
		return nil, false
	}
	if !ioErrorSource(fn, p.Facts) {
		return nil, false
	}
	return fn, true
}

// calleeLabel renders a callee for messages as "pkg.Func" or
// "pkg.Type.Method".
func calleeLabel(fn *types.Func) string {
	base := pkgBase(funcPkgPath(fn))
	if named := recvNamed(fn); named != nil {
		return base + "." + named.Obj().Name() + "." + fn.Name()
	}
	if base == "" {
		return fn.Name()
	}
	return base + "." + fn.Name()
}

// namedResults collects the named result objects of fd (and nothing
// else): assigning an error into a named result is publication, not a
// dead store, because a bare `return` carries it out with no Uses
// entry for the flow scan to see.
func namedResults(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results == nil {
		return out
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// usedAfter reports whether obj is read anywhere in body after the
// assignment stmt (position-ordered: any Uses occurrence past the
// statement's end, including inside closures declared later).
func usedAfter(p *Package, body *ast.BlockStmt, stmt ast.Stmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= stmt.End() {
			return true
		}
		if p.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
