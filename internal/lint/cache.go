package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// This file is the per-package result cache behind `make lint`'s warm
// path. A package's cache key is a content hash over everything that
// can change its diagnostics: the engine version, the module root (the
// cached positions are absolute paths), the selected rule set, the
// package's own source bytes, and — because analysis is
// interprocedural — the keys of every module-internal dependency, so
// editing a helper in one package invalidates exactly its dependents
// and nothing else. A hit skips the analysis pass only: stale
// dependents still need the package's types and facts, which the
// driver recomputes on demand (stdlib go/types has no export-data
// serialization worth hand-rolling here).
//
// Cache failures of any kind (unreadable dir, torn file, version skew)
// degrade silently to a cold run — the cache can never change output,
// only skip work.

// cacheVersion invalidates every entry when the engine or an analyzer
// changes behavior. Bump it in any PR that touches analyzer logic.
const cacheVersion = "dvfslint-v3"

// cacheKey computes the content hash for one package. depKeys must
// hold the keys of the package's module-internal imports (any order;
// they are sorted here).
func cacheKey(root, importPath string, ruleNames []string, goFiles []string, depKeys []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", cacheVersion, root, importPath)
	rules := append([]string(nil), ruleNames...)
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(h, "rule:%s\x00", r)
	}
	for _, f := range goFiles {
		fh, err := hashFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file:%s:%s\x00", filepath.Base(f), fh)
	}
	deps := append([]string(nil), depKeys...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep:%s\x00", d)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// listGoFiles returns the sorted non-test .go files of dir (the same
// set parseDir loads).
func listGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && filepath.Ext(name) == ".go" && !isTestFile(name) {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// cacheGet loads the cached diagnostics for key; ok is false on any
// miss or read/decode failure.
func cacheGet(dir, key string) ([]Diagnostic, bool) {
	if dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var diags []Diagnostic
	if err := json.Unmarshal(raw, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// cachePut stores diags under key, best-effort: errors are dropped (a
// cache that can't be written is just a cache that never warms).
func cachePut(dir, key string, diags []Diagnostic) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	raw, err := json.Marshal(diags)
	if err != nil {
		return
	}
	path := filepath.Join(dir, key+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	// Best-effort commit: a failed rename just leaves the entry cold.
	_ = os.Rename(tmp, path)
}
