package lint

import (
	"bytes"
	"go/token"
	"testing"
)

// TestEncodeGitHubGolden pins the workflow-command rendering byte for
// byte: one ::error line per finding, data escaping (%, CR, LF) on the
// message, and the stricter property escaping (plus ',' and ':') on
// the file path, so a hostile or merely unusual path cannot inject
// extra properties into the command.
func TestEncodeGitHubGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:     token.Position{Filename: "internal/ga/ga.go", Line: 12, Column: 3},
			Rule:    "detrand",
			Message: "global rand.Float64 in a deterministic package",
		},
		{
			Pos:     token.Position{Filename: "odd,name:v2.go", Line: 7, Column: 1},
			Rule:    "floateq",
			Message: "x == y is 100% exact\r\nuse stats.Approx instead",
		},
	}
	var b bytes.Buffer
	if err := EncodeGitHub(&b, diags); err != nil {
		t.Fatalf("EncodeGitHub: %v", err)
	}
	want := "::error file=internal/ga/ga.go,line=12,col=3,title=dvfslint [detrand]::global rand.Float64 in a deterministic package\n" +
		"::error file=odd%2Cname%3Av2.go,line=7,col=1,title=dvfslint [floateq]::x == y is 100%25 exact%0D%0Ause stats.Approx instead\n"
	if got := b.String(); got != want {
		t.Errorf("EncodeGitHub output:\n%q\nwant:\n%q", got, want)
	}
}

// TestEncodeGitHubEmpty: no findings means no output at all — an empty
// annotation stream, not an empty command.
func TestEncodeGitHubEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := EncodeGitHub(&b, nil); err != nil {
		t.Fatalf("EncodeGitHub: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("EncodeGitHub(nil) wrote %q, want nothing", b.String())
	}
}
