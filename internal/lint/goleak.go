package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// trackedPoolPkg is the worker-pool package whose use counts as
// goroutine tracking: pool.Each joins all its workers before
// returning.
const trackedPoolPkg = "npudvfs/internal/pool"

// GoLeak is a lightweight, static version of the goroutine-leak checks
// the PR 2 shutdown tests chase dynamically. A `go` statement is
// flagged unless the goroutine's body (its closure, or the same-package
// function it calls) shows one of the accepted tracking shapes:
//
//   - it touches a sync.WaitGroup (Done/Add/Wait or any reference),
//   - it communicates on a channel (send, receive, select, or close),
//     making it joinable by a reader, or
//   - it delegates to internal/pool, whose Each joins its workers.
//
// Goroutines launched through a function in another package are not
// flagged (their body is out of view); everything else that runs
// untracked can outlive shutdown and is exactly what the dvfsd drain
// tests exist to catch.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "go statements must be tracked by a WaitGroup, a channel, or internal/pool",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		decls := packageFuncDecls(p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				// The statement's own expressions (the closure body,
				// the call arguments) are always in view.
				if nodeTracksGoroutine(p, g.Call) {
					return true
				}
				// go pkgLocalFunc(...): follow into the body.
				if fn := calleeFunc(p, g.Call); fn != nil {
					if fn.Pkg() != nil && fn.Pkg().Path() != p.ImportPath {
						return true // out-of-package target: body not in view
					}
					if decl := decls[fn]; decl != nil && decl.Body != nil && nodeTracksGoroutine(p, decl.Body) {
						return true
					}
				}
				report(g.Pos(), "untracked goroutine: references no sync.WaitGroup, channel, or internal/pool, so nothing can join it at shutdown; track it or justify with %s goleak <reason>", allowPrefix)
				return true
			})
		}
	},
}

// packageFuncDecls maps each function object to its declaration so the
// analyzer can follow `go f()` into same-package bodies.
func packageFuncDecls(p *Package) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// nodeTracksGoroutine reports whether the subtree shows one of the
// accepted tracking shapes.
func nodeTracksGoroutine(p *Package, root ast.Node) bool {
	tracked := false
	ast.Inspect(root, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			tracked = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tracked = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tracked = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					tracked = true
				}
			}
			if fn := calleeFunc(p, n); fn != nil && funcPkgPath(fn) == trackedPoolPkg {
				tracked = true
			}
		case *ast.Ident:
			if isWaitGroupObj(p.Info.Uses[n]) {
				tracked = true
			}
		case *ast.SelectorExpr:
			if isWaitGroupObj(p.Info.Uses[n.Sel]) {
				tracked = true
			}
		}
		return !tracked
	})
	return tracked
}

// isWaitGroupObj reports whether obj is (or dereferences to) a
// sync.WaitGroup variable or field.
func isWaitGroupObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "WaitGroup" && o.Pkg() != nil && o.Pkg().Path() == "sync"
}
