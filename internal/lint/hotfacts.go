package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes the performance-contract facts behind allocfree
// and lockorder: per-function allocation summaries (which allocation
// classes a function performs, and which module-internal callees it
// reaches) and lock summaries (which locks it acquires, what it does
// while holding them, and whether it can block). Like the PR 8 facts
// they are computed eagerly at load time inside computePackageFacts, so
// the import-DAG scheduling of the parallel driver doubles as the
// bottom-up propagation order and an intra-package fixpoint handles
// mutual recursion.

// AllocSite is one direct allocation (or forbidden call) in a function
// body, classified by allocfree's hot-path allocation classes.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// CalleeRef is one module-internal callee edge: a static call, or a
// dynamic call through an unexported func-typed struct field, resolved
// against the functions assigned to that field in its declaring
// package. Pos is the first call site.
type CalleeRef struct {
	Fn  *types.Func
	Pos token.Pos
}

// HeldCallee records a module-internal call made while a lock is held,
// position-free (positions only matter in the package under analysis;
// dependency facts contribute graph edges, not diagnostics).
type HeldCallee struct {
	Held   string
	Callee *types.Func
}

// fieldFuncKey identifies an unexported func-typed struct field by
// "<pkgpath>.<Type>.<field>". Unexported fields can only be assigned
// from their declaring package, so by the time a dependent package
// consults the mapping it is complete — and because assignment sites
// live in exactly one package, the mapping is schedule-independent.
func fieldFuncKey(named *types.Named, f *types.Var) string {
	return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
}

func (fs *Facts) addFieldFunc(key string, fn *types.Func) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, have := range fs.fields[key] {
		if have == fn {
			return
		}
	}
	fs.fields[key] = append(fs.fields[key], fn)
}

// fieldFuncs returns the functions assigned to the field key, in
// assignment-site order (deterministic: one declaring package, files in
// sorted order).
func (fs *Facts) fieldFuncs(key string) []*types.Func {
	if fs == nil {
		return nil
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.fields[key]
}

// isModuleFunc reports whether fn is declared inside the module being
// analyzed (facts exist only for those).
func isModuleFunc(p *Package, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || p.Module == "" {
		return false
	}
	path := fn.Pkg().Path()
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}

// fieldOwner resolves a field selection to the named type that declares
// the field, walking the embedding chain, so a promoted access like
// f.mu on FS{*Memory} attributes to Memory. Returns (nil, nil) for
// non-field selections.
func fieldOwner(p *Package, x *ast.SelectorExpr) (*types.Named, *types.Var) {
	sel, ok := p.Info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, nil
	}
	t := sel.Recv()
	idx := sel.Index()
	for k, i := range idx {
		st, ok := derefStruct(t)
		if !ok {
			return nil, nil
		}
		if i >= st.NumFields() {
			return nil, nil
		}
		f := st.Field(i)
		if k == len(idx)-1 {
			named := derefNamed(t)
			if named == nil || f.Pkg() == nil {
				return nil, nil
			}
			return named, f
		}
		t = f.Type()
	}
	return nil, nil
}

func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	st, ok := u.(*types.Struct)
	return st, ok
}

// lockID names a mutex for the global lock graph: struct fields as
// "<pkg>.<Type>.<field>" (identity by declaring type, so every access
// path to the same field agrees) and package-level vars as
// "<pkg>.<var>". Function-local mutexes return "" and are ignored — a
// local lock cannot participate in a cross-function cycle.
func lockID(p *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return pkgBase(v.Pkg().Path()) + "." + v.Name()
	case *ast.SelectorExpr:
		if named, f := fieldOwner(p, x); named != nil {
			return pkgBase(f.Pkg().Path()) + "." + named.Obj().Name() + "." + f.Name()
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					return pkgBase(v.Pkg().Path()) + "." + v.Name()
				}
			}
		}
	}
	return ""
}

// recordFieldFuncs scans one function for assignments of function
// references to unexported func-typed struct fields (the jobstore
// persist/unlink hook pattern) and records them in the store, so
// dynamic calls through those fields resolve to concrete callees.
func recordFieldFuncs(p *Package, decl *ast.FuncDecl, store *Facts) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			named, f := fieldOwner(p, sel)
			if named == nil || f.Exported() {
				continue
			}
			if _, isFunc := f.Type().Underlying().(*types.Signature); !isFunc {
				continue
			}
			var id *ast.Ident
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.Ident:
				id = rhs
			case *ast.SelectorExpr:
				id = rhs.Sel
			default:
				continue
			}
			if fn, ok := p.Info.Uses[id].(*types.Func); ok {
				store.addFieldFunc(fieldFuncKey(named, f), fn)
			}
		}
		return true
	})
}

// resolveCallees returns the module-internal functions a call can reach
// statically: the resolved callee, or — for a dynamic call through an
// unexported func-typed struct field — every function assigned to that
// field in its declaring package.
func resolveCallees(p *Package, call *ast.CallExpr, store *Facts) []*types.Func {
	if fn := calleeFunc(p, call); fn != nil {
		if isModuleFunc(p, fn) {
			return []*types.Func{fn}
		}
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	named, f := fieldOwner(p, sel)
	if named == nil || f.Exported() {
		return nil
	}
	if _, isFunc := f.Type().Underlying().(*types.Signature); !isFunc {
		return nil
	}
	return store.fieldFuncs(fieldFuncKey(named, f))
}

// --- allocation scan --------------------------------------------------

// forbiddenCallee classifies calls that are banned outright on the hot
// path, independent of whether this particular call allocates.
func forbiddenCallee(fn *types.Func) string {
	switch path := funcPkgPath(fn); {
	case path == "fmt" || path == "log":
		return "call to " + path + "." + fn.Name() + " is forbidden on the hot path"
	case isPkgFunc(fn, "time", "Now"):
		return "call to time.Now is forbidden on the hot path"
	}
	return ""
}

// allocScan walks one function body and returns its direct allocation
// sites (the hot-path allocation classes) plus its module-internal
// callee edges. FuncLit bodies contribute only a closure-capture site —
// if the literal is ever invoked on the hot path that happens through
// an opaque function value, which allocfree reports at the capture.
func allocScan(p *Package, decl *ast.FuncDecl, store *Facts) (sites []AllocSite, callees []CalleeRef) {
	seenCallee := map[*types.Func]bool{}
	addCallee := func(fn *types.Func, pos token.Pos) {
		if fn == nil || seenCallee[fn] {
			return
		}
		seenCallee[fn] = true
		callees = append(callees, CalleeRef{Fn: fn, Pos: pos})
	}
	addSite := func(pos token.Pos, what string) {
		sites = append(sites, AllocSite{Pos: pos, What: what})
	}
	// addrTaken marks composite literals already reported through an
	// enclosing &T{...}, so the literal itself is not double-counted.
	addrTaken := map[ast.Expr]bool{}
	var stack []ast.Node
	inLoop := func() bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		return false
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			if name := capturedLocal(p, x); name != "" {
				addSite(x.Pos(), "function literal captures "+name+" (closure allocates)")
			} else {
				addSite(x.Pos(), "function literal allocates")
			}
			stack = stack[:len(stack)-1]
			return false
		case *ast.GoStmt:
			addSite(x.Pos(), "go statement spawns a goroutine")
			stack = stack[:len(stack)-1]
			return false
		case *ast.DeferStmt:
			if inLoop() {
				addSite(x.Pos(), "defer inside a loop allocates per iteration")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addrTaken[cl] = true
					addSite(x.Pos(), "composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if addrTaken[x] {
				break
			}
			if tv, ok := p.Info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					addSite(x.Pos(), "slice literal allocates")
				case *types.Map:
					addSite(x.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(p.Info.Types[x].Type) {
				addSite(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(p.Info.Types[x.Lhs[0]].Type) {
				addSite(x.TokPos, "string concatenation allocates")
			}
			for _, lhs := range x.Lhs {
				if pos, ok := mapIndexWrite(p, lhs); ok {
					addSite(pos, "map write may allocate")
				}
			}
		case *ast.IncDecStmt:
			if pos, ok := mapIndexWrite(p, x.X); ok {
				addSite(pos, "map write may allocate")
			}
		case *ast.CallExpr:
			// Arguments of a direct panic(...) are terminal-path only:
			// the allocation happens once, while dying. Skipping them
			// keeps guard clauses like panic(fmt.Sprintf(...)) from
			// poisoning every hot caller of an otherwise clean function.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					stack = stack[:len(stack)-1]
					return false
				}
			}
			scanCallAlloc(p, x, store, addSite, addCallee)
		}
		return true
	})
	return sites, callees
}

// scanCallAlloc classifies one call expression for the allocation scan:
// conversions, allocating builtins, forbidden callees, interface boxing
// at argument positions, and module-internal callee edges.
func scanCallAlloc(p *Package, call *ast.CallExpr, store *Facts, addSite func(token.Pos, string), addCallee func(*types.Func, token.Pos)) {
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringBytesConv(tv.Type, p.Info.Types[call.Args[0]].Type) {
			addSite(call.Pos(), "string conversion allocates")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				addSite(call.Pos(), "make allocates")
			case "new":
				addSite(call.Pos(), "new allocates")
			case "append":
				addSite(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	fn := calleeFunc(p, call)
	if what := forbiddenCallee(fn); what != "" {
		addSite(call.Pos(), what)
	}
	for _, callee := range resolveCallees(p, call, store) {
		addCallee(callee, call.Pos())
	}
	// Boxing: a concrete non-pointer value passed where an interface is
	// expected forces a heap allocation at the call site.
	sig, ok := p.Info.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := p.Info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		at := atv.Type
		if types.IsInterface(at) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if _, isSig := at.Underlying().(*types.Signature); isSig {
			continue
		}
		addSite(arg.Pos(), "value of type "+types.TypeString(at, types.RelativeTo(p.Pkg))+" boxed into interface parameter")
	}
}

// mapIndexWrite reports whether lhs is an index expression into a map.
func mapIndexWrite(p *Package, lhs ast.Expr) (token.Pos, bool) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return token.NoPos, false
	}
	tv, ok := p.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return token.NoPos, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return token.NoPos, false
	}
	return ix.Pos(), true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringBytesConv reports a string <-> []byte/[]rune conversion,
// which copies the data into a fresh allocation.
func isStringBytesConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturedLocal returns the name of the first function-local variable
// (or parameter/receiver) of the enclosing function that lit captures,
// or "" when the literal only touches its own locals and package state.
func capturedLocal(p *Package, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// --- lock sweep -------------------------------------------------------

// heldLock is one entry of the sweep's held-lock stack.
type heldLock struct {
	id    string
	rlock bool
}

// lockEvent kinds. Every event carries a snapshot of the locks held at
// the operation.
const (
	evAcquire     = iota // a lock acquisition (acq/acqR set)
	evBlock              // a potentially blocking operation (what set)
	evCall               // a module-internal call (callee set)
	evParamInvoke        // the function invokes its own func parameter (paramIdx set)
	evPassFunc           // a func value passed to a module-internal callee (callee, argIdx, arg set)
)

type lockEvent struct {
	kind     int
	held     []heldLock
	acq      string
	acqR     bool
	what     string
	callee   *types.Func
	paramIdx int
	argIdx   int
	arg      ast.Expr
	pos      token.Pos
}

// lockSweeper walks one function body in source order maintaining the
// set of held locks. It is deliberately a linear positional
// approximation, not a CFG: a release inside an early-exit branch (one
// whose statement list ends in return/branch/panic) is scoped to that
// branch, everything else ends the region for the code that follows.
// FuncLit bodies, go statements and deferred calls run asynchronously
// relative to the sweep and are excluded; a defer'd Unlock therefore
// simply leaves the lock held to the end of the function, which is
// exactly its semantics.
type lockSweeper struct {
	p      *Package
	store  *Facts
	params map[types.Object]int
	held   []heldLock
	emit   func(lockEvent)
}

func sweepLocks(p *Package, decl *ast.FuncDecl, store *Facts, emit func(lockEvent)) {
	w := &lockSweeper{p: p, store: store, params: funcValueParams(p, decl), emit: emit}
	w.stmtList(decl.Body.List)
}

// funcValueParams maps fn's func-typed parameter objects to their
// indices, for evParamInvoke detection.
func funcValueParams(p *Package, decl *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	for obj, idx := range paramObjects(p, decl) {
		if idx < 0 {
			continue
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); ok {
			out[obj] = idx
		}
	}
	return out
}

func (w *lockSweeper) event(ev lockEvent) {
	ev.held = append([]heldLock(nil), w.held...)
	w.emit(ev)
}

func (w *lockSweeper) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

// nested processes a subordinate statement list. Lists that end on an
// early exit get a copy of the held state (their releases are scoped to
// the abandoned path); fall-through lists mutate the outer state.
func (w *lockSweeper) nested(stmts []ast.Stmt) {
	if terminates(stmts) {
		saved := append([]heldLock(nil), w.held...)
		w.stmtList(stmts)
		w.held = saved
		return
	}
	w.stmtList(stmts)
}

// terminates reports whether the statement list cannot fall through:
// its last statement is a return, a branch, or a panic call.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockSweeper) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.expr(x.X)
	case *ast.SendStmt:
		w.expr(x.Chan)
		w.expr(x.Value)
		w.event(lockEvent{kind: evBlock, what: "channel send", pos: x.Arrow})
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.expr(e)
		}
		for _, e := range x.Lhs {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.expr(x.Cond)
		w.nested(x.Body.List)
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			w.nested(e.List)
		case *ast.IfStmt:
			w.stmt(e)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Cond != nil {
			w.expr(x.Cond)
		}
		w.nested(x.Body.List)
		if x.Post != nil {
			w.stmt(x.Post)
		}
	case *ast.RangeStmt:
		w.expr(x.X)
		if tv, ok := w.p.Info.Types[x.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.event(lockEvent{kind: evBlock, what: "channel receive", pos: x.For})
			}
		}
		w.nested(x.Body.List)
	case *ast.BlockStmt:
		w.nested(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Tag != nil {
			w.expr(x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.nested(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.nested(cc.Body)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.event(lockEvent{kind: evBlock, what: "blocking select", pos: x.Select})
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.nested(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.GoStmt, *ast.DeferStmt:
		// Asynchronous relative to this sweep; a deferred Unlock keeps
		// the lock held to the end, which skipping models exactly.
	}
}

func (w *lockSweeper) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.CallExpr:
		w.call(x)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.event(lockEvent{kind: evBlock, what: "channel receive", pos: x.OpPos})
		}
		w.expr(x.X)
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.SelectorExpr:
		w.expr(x.X)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.expr(x.X)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			w.expr(elt)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value)
	}
}

// blockingCallee classifies stdlib calls that can block or perform I/O
// while a lock is held.
func blockingCallee(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := funcPkgPath(fn)
	switch {
	case path == "sync" && fn.Name() == "Wait":
		return "sync Wait"
	case isPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep"
	case path == "net" || strings.HasPrefix(path, "net/"):
		return "network call to " + pkgBase(path) + "." + fn.Name()
	case path == "os" && osFileOps[fn.Name()]:
		return "file I/O (os." + fn.Name() + ")"
	}
	return ""
}

// osFileOps are the package-os functions and *os.File methods treated
// as store I/O by lockorder.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "MkdirAll": true, "Mkdir": true, "ReadDir": true,
	"Stat": true, "Read": true, "Write": true, "WriteString": true,
	"Sync": true, "Close": true, "Seek": true, "Truncate": true,
}

func (w *lockSweeper) call(c *ast.CallExpr) {
	for _, a := range c.Args {
		w.expr(a)
	}
	fun := ast.Unparen(c.Fun)
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		w.expr(f.X)
	case *ast.Ident:
	default:
		w.expr(fun)
	}
	fn := calleeFunc(w.p, c)
	switch {
	case isSyncMethod(fn, "Lock") || isSyncMethod(fn, "RLock"):
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if id := lockID(w.p, sel.X); id != "" {
				r := fn.Name() == "RLock"
				w.event(lockEvent{kind: evAcquire, acq: id, acqR: r, pos: c.Pos()})
				w.held = append(w.held, heldLock{id: id, rlock: r})
			}
		}
		return
	case isSyncMethod(fn, "Unlock") || isSyncMethod(fn, "RUnlock"):
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if id := lockID(w.p, sel.X); id != "" {
				w.release(id)
			}
		}
		return
	case fn != nil:
		if what := blockingCallee(fn); what != "" {
			w.event(lockEvent{kind: evBlock, what: what, pos: c.Pos()})
			return
		}
	default:
		if id, ok := fun.(*ast.Ident); ok {
			if idx, isParam := w.params[w.p.Info.Uses[id]]; isParam {
				w.event(lockEvent{kind: evParamInvoke, paramIdx: idx, pos: c.Pos()})
				return
			}
		}
	}
	for _, callee := range resolveCallees(w.p, c, w.store) {
		w.event(lockEvent{kind: evCall, callee: callee, pos: c.Pos()})
	}
	if fn != nil && isModuleFunc(w.p, fn) {
		for i, a := range c.Args {
			if isFuncValueArg(w.p, a) {
				w.event(lockEvent{kind: evPassFunc, callee: fn, argIdx: i, arg: a, pos: a.Pos()})
			}
		}
	}
}

// isFuncValueArg reports whether the argument is a function literal or
// a direct function reference (the shapes funcValueAcquires can see
// through).
func isFuncValueArg(p *Package, a ast.Expr) bool {
	switch x := ast.Unparen(a).(type) {
	case *ast.FuncLit:
		return true
	case *ast.Ident:
		_, ok := p.Info.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := p.Info.Uses[x.Sel].(*types.Func)
		return ok
	}
	return false
}

// release pops the most recent matching lock from the held stack.
func (w *lockSweeper) release(id string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].id == id {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// --- fact assembly ----------------------------------------------------

// lockFactSummary is what one function's sweep contributes to the fact
// store.
type lockFactSummary struct {
	acquires    []string
	blocks      []string
	heldEdges   [][2]string
	heldCallees []HeldCallee
	paramCalls  map[int][]string
}

func sweepLockFacts(p *Package, decl *ast.FuncDecl, store *Facts) lockFactSummary {
	var sum lockFactSummary
	edgeSeen := map[[2]string]bool{}
	calleeSeen := map[HeldCallee]bool{}
	sweepLocks(p, decl, store, func(ev lockEvent) {
		switch ev.kind {
		case evAcquire:
			sum.acquires = addString(sum.acquires, ev.acq)
			for _, h := range ev.held {
				if h.id == ev.acq {
					continue
				}
				e := [2]string{h.id, ev.acq}
				if !edgeSeen[e] {
					edgeSeen[e] = true
					sum.heldEdges = append(sum.heldEdges, e)
				}
			}
		case evBlock:
			sum.blocks = addString(sum.blocks, ev.what)
		case evCall:
			for _, h := range ev.held {
				hc := HeldCallee{Held: h.id, Callee: ev.callee}
				if !calleeSeen[hc] {
					calleeSeen[hc] = true
					sum.heldCallees = append(sum.heldCallees, hc)
				}
			}
		case evParamInvoke:
			if len(ev.held) == 0 {
				break
			}
			if sum.paramCalls == nil {
				sum.paramCalls = map[int][]string{}
			}
			for _, h := range ev.held {
				sum.paramCalls[ev.paramIdx] = addString(sum.paramCalls[ev.paramIdx], h.id)
			}
		}
	})
	return sum
}

// addString inserts s into the sorted set.
func addString(set []string, s string) []string {
	i := sort.SearchStrings(set, s)
	if i < len(set) && set[i] == s {
		return set
	}
	set = append(set, "")
	copy(set[i+1:], set[i:])
	set[i] = s
	return set
}

// unionStrings merges src into the sorted set dst, reporting growth.
func unionStrings(dst, src []string) ([]string, bool) {
	grew := false
	for _, s := range src {
		if n := addString(dst, s); len(n) != len(dst) {
			dst, grew = n, true
		}
	}
	return dst, grew
}

// computeHotFacts fills the allocfree/lockorder facts for one package:
// field-func assignments first (dynamic field calls resolve against
// them), then per-function one-shot scans, then a shared fixpoint for
// the propagation facts (Allocates, AllAcquires, Blocks), then the
// interface-method union so calls through module-internal interfaces
// (jobstore.Store) see the union of their in-package implementations.
func computeHotFacts(p *Package, fns []declFn, store *Facts) {
	for _, df := range fns {
		recordFieldFuncs(p, df.decl, store)
	}
	for _, df := range fns {
		fact := store.Lookup(df.fn)
		fact.AllocSites, fact.Callees = allocScan(p, df.decl, store)
		sum := sweepLockFacts(p, df.decl, store)
		fact.Acquires = sum.acquires
		fact.AllAcquires = append([]string(nil), sum.acquires...)
		fact.Blocks = sum.blocks
		fact.HeldEdges = sum.heldEdges
		fact.HeldCallees = sum.heldCallees
		fact.LockParamCalls = sum.paramCalls
		store.put(df.fn, fact)
	}
	for changed := true; changed; {
		changed = false
		for _, df := range fns {
			fact := store.Lookup(df.fn)
			updated := false
			if !fact.Allocates && len(fact.AllocSites) > 0 {
				fact.Allocates = true
				updated = true
			}
			for _, c := range fact.Callees {
				cf := store.Lookup(c.Fn)
				if !fact.Allocates && cf.Allocates {
					fact.Allocates = true
					updated = true
				}
				if acq, grew := unionStrings(fact.AllAcquires, cf.AllAcquires); grew {
					fact.AllAcquires = acq
					updated = true
				}
				if bl, grew := unionStrings(fact.Blocks, cf.Blocks); grew {
					fact.Blocks = bl
					updated = true
				}
			}
			if updated {
				store.put(df.fn, fact)
				changed = true
			}
		}
	}
	unionInterfaceFacts(p, store)
}

// unionInterfaceFacts publishes, for every interface declared in p, the
// union of the lock/alloc facts of its in-package implementations onto
// the interface's own method objects. A call through jobstore.Store.Add
// then sees what Memory.Add (and FS via embedding) actually does.
// Restricting to implementations declared in the same package keeps the
// result schedule-independent: the set never depends on which other
// packages happen to be loaded.
func unionInterfaceFacts(p *Package, store *Facts) {
	scope := p.Pkg.Scope()
	names := scope.Names()
	var ifaces []*types.Named
	var impls []types.Type
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			ifaces = append(ifaces, named)
		} else {
			impls = append(impls, named, types.NewPointer(named))
		}
	}
	for _, named := range ifaces {
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			fact := store.Lookup(m)
			updated := false
			seenImpl := map[*types.Func]bool{}
			seenHeld := map[HeldCallee]bool{}
			for _, hc := range fact.HeldCallees {
				seenHeld[hc] = true
			}
			seenCallee := map[*types.Func]bool{}
			for _, c := range fact.Callees {
				seenCallee[c.Fn] = true
			}
			for _, impl := range impls {
				if !types.Implements(impl, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, p.Pkg, m.Name())
				implFn, ok := obj.(*types.Func)
				if !ok || seenImpl[implFn] {
					continue
				}
				seenImpl[implFn] = true
				implFact := store.Lookup(implFn)
				if implFact.Allocates && !fact.Allocates {
					fact.Allocates = true
					updated = true
				}
				if acq, grew := unionStrings(fact.AllAcquires, implFact.AllAcquires); grew {
					fact.AllAcquires = acq
					updated = true
				}
				if bl, grew := unionStrings(fact.Blocks, implFact.Blocks); grew {
					fact.Blocks = bl
					updated = true
				}
				for _, hc := range implFact.HeldCallees {
					if !seenHeld[hc] {
						seenHeld[hc] = true
						fact.HeldCallees = append(fact.HeldCallees, hc)
						updated = true
					}
				}
				for _, c := range implFact.Callees {
					if !seenCallee[c.Fn] {
						seenCallee[c.Fn] = true
						fact.Callees = append(fact.Callees, c)
						updated = true
					}
				}
			}
			if updated {
				store.put(m, fact)
			}
		}
	}
}
