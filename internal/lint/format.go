package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file renders diagnostics machine-readably: plain JSON for
// scripting, SARIF 2.1.0 for code-scanning upload, and GitHub workflow
// commands for inline PR annotations. All three are pure functions of
// the (already sorted) diagnostic slice, so output is byte-identical
// across worker counts by construction.

// jsonDiagnostic is the -format=json element: the Diagnostic fields
// flattened to stable lowercase keys.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// EncodeJSON writes diags as an indented JSON array (always an array,
// never null, so consumers can index unconditionally).
func EncodeJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column, Rule: d.Rule, Message: d.Message}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 minimal schema: one run, one tool, rules from the
// analyzer registry, one result per diagnostic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF writes diags as a SARIF 2.1.0 log. The rule table covers
// the analyzers that ran (plus the engine's "directive" pseudo-rule)
// so viewers can show rule docs next to findings.
func EncodeSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "directive", ShortDescription: sarifMessage{Text: "malformed or unused //lint:allow directive"}})
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dvfslint", InformationURI: "npudvfs/DESIGN.md#9", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// EncodeGitHub writes diags as GitHub Actions workflow commands, one
// ::error per finding, so a plain CI run annotates the PR inline with
// no upload step.
func EncodeGitHub(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=dvfslint [%s]::%s\n",
			githubEscapeProp(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			githubEscapeProp(d.Rule), githubEscape(d.Message))
		if err != nil {
			return err
		}
	}
	return nil
}

// githubEscape applies the workflow-command data escaping rules.
func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// githubEscapeProp applies the stricter property escaping rules:
// property values additionally escape the ',' and ':' delimiters, so a
// comma in a file path cannot smuggle an extra key=value pair into the
// command.
func githubEscapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}
