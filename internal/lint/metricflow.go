package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MetricFlow keeps the hand-rolled Prometheus exposition in
// internal/server/metrics.go and its writers consistent: every series
// the render method emits must have a writer, every written field must
// reach a render line, every `# TYPE` must pair with a `# HELP` and at
// least one emit line, and the label values written into a map-backed
// family (jobs_total{state=…}) must come from one declared package
// -level set (`var <field>Labels = []string{…}`) so a typo'd label
// can't silently fork a series. Label values are resolved
// interprocedurally: a writer method that keys a map field by a
// parameter carries a LabelKeyField fact, and its call sites'
// constant arguments are checked against the declared set.
var MetricFlow = &Analyzer{
	Name: "metricflow",
	Doc:  "rendered metrics need writers (and vice versa); HELP/TYPE/emit lines pair up; label values come from a declared set",
	Run:  runMetricFlow,
}

func runMetricFlow(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isInternalPkg(p.ImportPath) || pkgBase(p.ImportPath) != "server" {
		return
	}
	st, render := findMetricsStruct(p)
	if st == nil || render == nil {
		return
	}
	checkExposition(p, render, report)
	checkFieldFlow(p, st, render, report)
	checkLabelSets(p, st, report)
}

// findMetricsStruct locates the `metrics` struct declaration and its
// render method in the package.
func findMetricsStruct(p *Package) (*ast.StructType, *ast.FuncDecl) {
	var st *ast.StructType
	var render *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "metrics" {
						continue
					}
					if s, ok := ts.Type.(*ast.StructType); ok {
						st = s
					}
				}
			case *ast.FuncDecl:
				if decl.Name.Name == "render" && decl.Recv != nil && decl.Body != nil {
					if named := recvNamed(declFuncObj(p, decl)); named != nil && named.Obj().Name() == "metrics" {
						render = decl
					}
				}
			}
		}
	}
	return st, render
}

func declFuncObj(p *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// expoLine is one recognized string literal in render: a HELP/TYPE
// header or a series emit.
type expoLine struct {
	name string
	kind string // TYPE only: counter/gauge/histogram
	pos  token.Pos
}

// checkExposition parses render's string literals into HELP/TYPE/emit
// sets and cross-checks them: a TYPE without HELP or without any emit
// line is a dead declaration, an emit without TYPE is an undeclared
// series (histogram families may emit _bucket/_sum/_count under the
// declared base name).
func checkExposition(p *Package, render *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	helps := map[string]token.Pos{}
	var typeLines []expoLine
	var emits []expoLine
	ast.Inspect(render.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		tv, ok := p.Info.Types[lit]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		s := constant.StringVal(tv.Value)
		switch {
		case strings.HasPrefix(s, "# HELP "):
			if name, _, ok := strings.Cut(strings.TrimPrefix(s, "# HELP "), " "); ok && name != "" {
				helps[name] = lit.Pos()
			}
		case strings.HasPrefix(s, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(s, "# TYPE "))
			if len(fields) == 2 {
				typeLines = append(typeLines, expoLine{name: fields[0], kind: fields[1], pos: lit.Pos()})
			}
		default:
			if name, ok := emitSeriesName(s); ok {
				emits = append(emits, expoLine{name: name, pos: lit.Pos()})
			}
		}
		return true
	})
	kinds := map[string]string{}
	for _, t := range typeLines {
		kinds[t.name] = t.kind
	}
	emitted := map[string]bool{}
	for _, e := range emits {
		emitted[baseSeriesName(e.name, kinds)] = true
	}
	for _, t := range typeLines {
		if _, ok := helps[t.name]; !ok {
			report(t.pos, "metric %s has a TYPE line but no HELP line", t.name)
		}
		if !emitted[t.name] {
			report(t.pos, "metric %s is declared (# TYPE) but no series line is ever emitted", t.name)
		}
	}
	for _, e := range emits {
		if _, ok := kinds[baseSeriesName(e.name, kinds)]; !ok {
			report(e.pos, "series %s is emitted without a # TYPE declaration", e.name)
		}
	}
}

// emitSeriesName extracts the metric name from an emit format string
// ("dvfsd_jobs_total{state=%q} %d\n" → dvfsd_jobs_total). Only
// prometheus-shaped names (snake_case identifier followed by a label
// block or a space) qualify, so unrelated literals in render are
// ignored.
func emitSeriesName(s string) (string, bool) {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	name := s[:i]
	if i == 0 || !strings.Contains(name, "_") {
		return "", false
	}
	if i >= len(s) || (s[i] != '{' && s[i] != ' ') {
		return "", false
	}
	return name, true
}

// baseSeriesName folds histogram family suffixes back onto the
// declared base name.
func baseSeriesName(name string, kinds map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && kinds[base] == "histogram" {
			return base
		}
	}
	return name
}

// checkFieldFlow verifies every metric-bearing field of the metrics
// struct is written somewhere outside render and read inside it.
func checkFieldFlow(p *Package, st *ast.StructType, render *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	fields := map[types.Object]*ast.Ident{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			obj := p.Info.Defs[name]
			if obj == nil || isSyncType(obj.Type()) {
				continue
			}
			fields[obj] = name
		}
	}
	readInRender := map[types.Object]bool{}
	ast.Inspect(render.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if obj := p.Info.Uses[sel.Sel]; obj != nil {
				readInRender[obj] = true
			}
		}
		return true
	})
	written := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				if s == render {
					return false
				}
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if obj := writtenField(p, lhs); obj != nil {
						written[obj] = true
					}
				}
			case *ast.IncDecStmt:
				if obj := writtenField(p, s.X); obj != nil {
					written[obj] = true
				}
			}
			return true
		})
	}
	names := make([]string, 0, len(fields))
	byName := map[string]types.Object{}
	for obj := range fields {
		names = append(names, obj.Name())
		byName[obj.Name()] = obj
	}
	sort.Strings(names)
	for _, name := range names {
		obj := byName[name]
		id := fields[obj]
		if written[obj] && !readInRender[obj] {
			report(id.Pos(), "metrics field %s is written but never rendered — the series is invisible", name)
		}
		if !written[obj] && readInRender[obj] {
			report(id.Pos(), "metrics field %s is rendered but has no writer — the series is forever zero", name)
		}
	}
}

// writtenField resolves an assignment/incdec target to the metrics
// struct field it mutates: `m.field`, `m.field[k]`.
func writtenField(p *Package, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// labelObservation is one statically resolvable label value written
// into a map-backed metric field.
type labelObservation struct {
	field string
	value string
	pos   token.Pos
}

// checkLabelSets collects every constant label value flowing into the
// metrics struct's map fields — direct `m.field["x"]++` writes plus,
// via LabelKeyField facts, constant arguments at call sites of writer
// methods — and checks them against the declared package-level
// `var <field>Labels = []string{…}` set.
func checkLabelSets(p *Package, st *ast.StructType, report func(pos token.Pos, format string, args ...any)) {
	mapFields := map[string]bool{}
	fieldPos := map[string]token.Pos{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Map); ok {
				mapFields[name.Name] = true
				fieldPos[name.Name] = name.Pos()
			}
		}
	}
	if len(mapFields) == 0 {
		return
	}
	var obs []labelObservation
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IndexExpr:
				// Direct keyed write/read on a metrics map field with a
				// constant key.
				if obj := writtenField(p, x); obj != nil && mapFields[obj.Name()] {
					if v, ok := constString(p, x.Index); ok {
						obs = append(obs, labelObservation{field: obj.Name(), value: v, pos: x.Index.Pos()})
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(p, x)
				if fn == nil {
					return true
				}
				for idx, field := range p.Facts.Lookup(fn).LabelKeyField {
					if !mapFields[field] || idx < 0 || idx >= len(x.Args) {
						continue
					}
					if v, ok := constString(p, x.Args[idx]); ok {
						obs = append(obs, labelObservation{field: field, value: v, pos: x.Args[idx].Pos()})
					}
				}
			}
			return true
		})
	}
	declared := declaredLabelSets(p)
	seenMissing := map[string]bool{}
	for _, o := range obs {
		set, ok := declared[o.field]
		if !ok {
			if !seenMissing[o.field] {
				seenMissing[o.field] = true
				report(fieldPos[o.field], "label values for %s are written (e.g. %q) but no declared set `var %sLabels = []string{…}` exists", o.field, o.value, o.field)
			}
			continue
		}
		if !set[o.value] {
			report(o.pos, "label value %q for %s is not in the declared %sLabels set", o.value, o.field, o.field)
		}
	}
}

// constString resolves e to a constant string value when possible.
func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// declaredLabelSets finds package-level `var <field>Labels =
// []string{…}` declarations and returns field → allowed values.
func declaredLabelSets(p *Package) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					field, ok := strings.CutSuffix(name.Name, "Labels")
					if !ok || i >= len(vs.Values) {
						continue
					}
					cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					set := map[string]bool{}
					for _, el := range cl.Elts {
						if v, ok := constString(p, el); ok {
							set[v] = true
						}
					}
					out[field] = set
				}
			}
		}
	}
	return out
}
