package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder is the interprocedural successor to lockpair's pairing
// check: instead of asking "is every Lock matched", it asks "can the
// locks this module takes ever deadlock". Two rules, both over the fact
// store:
//
//  1. Lock-order cycles. Every function's sweep contributes
//     held→acquired edges (directly, through module-internal callees
//     via their AllAcquires closure, and through callbacks via the
//     callee's LockParamCalls fact) to a global lock-acquisition graph,
//     with lock identity the declaring struct field path
//     ("server.Server.mu"). An edge whose reverse is reachable in the
//     graph is a potential deadlock, reported at the acquisition site
//     in the package under analysis.
//
//  2. Blocking while holding. A channel send/receive, blocking select,
//     Wait, sleep, network call, or file/store I/O — direct or through
//     any reachable callee — while a mutex is held stalls every other
//     goroutine contending for that lock. By-design sites (jobstore's
//     persist-under-lock contract) carry //lint:allow lockorder audits.
//
// The rule runs over the packages whose locks actually guard shared
// serving state: server, cluster/jobstore, cluster/ring, pool, ga.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no lock-order cycles across the module, no blocking ops while holding a serving-path mutex",
	Run:  runLockOrder,
}

// lockOrderPkgs are the package basenames in scope: the ones holding
// locks that guard shared serving/search state.
var lockOrderPkgs = map[string]bool{
	"server":   true,
	"jobstore": true,
	"ring":     true,
	"pool":     true,
	"ga":       true,
}

func runLockOrder(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isInternalPkg(p.ImportPath) || !lockOrderPkgs[pkgBase(p.ImportPath)] {
		return
	}
	store := p.Facts
	graph := lockGraph(p, store)

	// posEdge is one lock-order edge observed at a position in this
	// package; cycle findings anchor to these.
	type posEdge struct {
		held, acq string
		via       string // "" for a direct acquisition
		pos       token.Pos
	}
	var edges []posEdge
	type dedupKey struct {
		pos  token.Pos
		a, b string
	}
	seen := map[dedupKey]bool{}
	addEdge := func(held, acq, via string, pos token.Pos) {
		k := dedupKey{pos, held, acq}
		if seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, posEdge{held: held, acq: acq, via: via, pos: pos})
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sweepLocks(p, fd, store, func(ev lockEvent) {
				switch ev.kind {
				case evAcquire:
					for _, h := range ev.held {
						if h.id == ev.acq {
							if h.rlock && ev.acqR {
								continue // RLock twice is legal (though fragile)
							}
							report(ev.pos, "%s acquired while already held — self-deadlock", ev.acq)
							continue
						}
						addEdge(h.id, ev.acq, "", ev.pos)
					}
				case evBlock:
					for _, h := range ev.held {
						report(ev.pos, "%s while holding %s — the critical section can stall every contender; shrink it or audit with //lint:allow lockorder", ev.what, h.id)
					}
				case evCall:
					if len(ev.held) == 0 {
						return
					}
					cf := store.Lookup(ev.callee)
					name := calleeDisplay(ev.callee)
					for _, h := range ev.held {
						for _, acq := range cf.AllAcquires {
							if acq == h.id {
								report(ev.pos, "call to %s may acquire %s, which is already held — self-deadlock", name, acq)
								continue
							}
							addEdge(h.id, acq, name, ev.pos)
						}
						if len(cf.Blocks) > 0 {
							what := strings.Join(cf.Blocks, ", ")
							k := dedupKey{ev.pos, h.id, what}
							if !seen[k] {
								seen[k] = true
								report(ev.pos, "call to %s may perform %s while holding %s; move it out of the critical section or audit with //lint:allow lockorder", name, what, h.id)
							}
						}
					}
				case evPassFunc:
					cf := store.Lookup(ev.callee)
					heldIDs := cf.LockParamCalls[ev.argIdx]
					if len(heldIDs) == 0 {
						return
					}
					acqs := funcValueAcquires(p, ev.arg, store)
					for _, h := range heldIDs {
						for _, acq := range acqs {
							if acq == h {
								report(ev.pos, "callback passed to %s acquires %s, which %s holds when invoking it — self-deadlock", calleeDisplay(ev.callee), acq, calleeDisplay(ev.callee))
								continue
							}
							addEdge(h, acq, calleeDisplay(ev.callee)+" callback", ev.pos)
						}
					}
				}
			})
		}
	}

	for _, e := range edges {
		if !lockReachable(graph, e.acq, e.held) {
			continue
		}
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		report(e.pos, "acquiring %s while holding %s%s forms a lock-order cycle: elsewhere in the module %s is held when %s is acquired — potential deadlock",
			e.acq, e.held, via, e.acq, e.held)
	}
}

// lockGraph assembles the module-wide lock-acquisition graph from the
// facts of this package and every transitive module-internal
// dependency. Enumeration goes through the type-checker's import graph
// and sorted package scopes — never the shared fact store, whose
// contents depend on the parallel driver's schedule.
func lockGraph(p *Package, store *Facts) map[string]map[string]bool {
	graph := map[string]map[string]bool{}
	add := func(u, v string) {
		if u == v {
			return
		}
		m := graph[u]
		if m == nil {
			m = map[string]bool{}
			graph[u] = m
		}
		m[v] = true
	}
	for _, fn := range moduleFuncs(p) {
		fact := store.Lookup(fn)
		for _, e := range fact.HeldEdges {
			add(e[0], e[1])
		}
		for _, hc := range fact.HeldCallees {
			for _, acq := range store.Lookup(hc.Callee).AllAcquires {
				add(hc.Held, acq)
			}
		}
	}
	return graph
}

// lockReachable reports whether `to` is reachable from `from` in the
// lock graph.
func lockReachable(graph map[string]map[string]bool, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range graph[u] {
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// moduleFuncs enumerates the functions of p's package and every
// transitive module-internal import, deterministically: packages in
// import-DAG discovery order over sorted Imports(), names in sorted
// scope order, methods in declaration order.
func moduleFuncs(p *Package) []*types.Func {
	var pkgs []*types.Package
	seen := map[*types.Package]bool{}
	var visit func(tp *types.Package)
	visit = func(tp *types.Package) {
		if tp == nil || seen[tp] {
			return
		}
		path := tp.Path()
		if path != p.Module && !strings.HasPrefix(path, p.Module+"/") {
			return
		}
		seen[tp] = true
		pkgs = append(pkgs, tp)
		imps := tp.Imports()
		for _, im := range imps {
			visit(im)
		}
	}
	visit(p.Pkg)
	var out []*types.Func
	for _, tp := range pkgs {
		scope := tp.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Func:
				out = append(out, obj)
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for i := 0; i < named.NumMethods(); i++ {
					out = append(out, named.Method(i))
				}
			}
		}
	}
	return out
}

// funcValueAcquires returns the lock IDs a function-valued argument can
// acquire: for a function literal, its direct acquisitions plus the
// AllAcquires of module-internal functions it calls; for a function
// reference, the referent's AllAcquires fact.
func funcValueAcquires(p *Package, arg ast.Expr, store *Facts) []string {
	switch x := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		var out []string
		ast.Inspect(x.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if isSyncMethod(fn, "Lock") || isSyncMethod(fn, "RLock") {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id := lockID(p, sel.X); id != "" {
						out = addString(out, id)
					}
				}
				return true
			}
			if fn != nil && isModuleFunc(p, fn) {
				for _, acq := range store.Lookup(fn).AllAcquires {
					out = addString(out, acq)
				}
			}
			return true
		})
		return out
	case *ast.Ident:
		if fn, ok := p.Info.Uses[x].(*types.Func); ok {
			return store.Lookup(fn).AllAcquires
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
			return store.Lookup(fn).AllAcquires
		}
	}
	return nil
}
