package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the stdlib-only package loader behind dvfslint. It
// walks the module, parses every non-test file with go/parser, and
// type-checks with go/types. Imports inside the module are resolved by
// the loader itself (recursively, with a cache); everything else is
// delegated to the compiler's source importer, so the tool needs no
// third-party machinery and works offline.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path ("npudvfs/internal/ga").
	ImportPath string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Fset maps AST positions back to file:line.
	Fset *token.FileSet
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's fact tables for the files.
	Info *types.Info
	// Module is the module path of the owning Loader, so analyzers can
	// distinguish module-internal callees without a Loader handle.
	Module string
	// Facts is the Loader-wide interprocedural fact store (see
	// facts.go); summaries of this package's functions and of every
	// dependency are present by the time analyzers run.
	Facts *Facts
}

// sharedFset and stdImporter are process-wide so repeated Loader
// instances (golden tests + the repo gate in one test binary) reuse the
// source importer's type-checked stdlib instead of re-checking it.
var (
	sharedFset  = token.NewFileSet()
	stdOnce     sync.Once
	stdImporter types.ImporterFrom
)

func sourceImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		stdImporter = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImporter
}

// Loader loads and type-checks packages of a single module.
type Loader struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string

	mu    sync.Mutex
	pkgs  map[string]*Package // by import path
	facts *Facts              // interprocedural summaries, filled at load time
	// extra maps import paths to directories outside the normal
	// module layout (used by tests to mount testdata packages under
	// synthetic import paths).
	extra map[string]string
}

// NewLoader returns a Loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{Root: root, Module: mod, pkgs: map[string]*Package{}, extra: map[string]string{}, facts: NewFacts()}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Mount registers dir as the source directory for importPath, letting
// tests load testdata packages under synthetic module-internal paths.
func (l *Loader) Mount(importPath, dir string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.extra[importPath] = dir
}

// LoadAll loads every package under the module root, skipping testdata
// and hidden directories, and returns them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.Load(l.dirImportPath(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// moduleDirs returns every package directory under the module root,
// sorted, skipping testdata and hidden directories.
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirImportPath maps a directory under the module root to its import
// path.
func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load loads (or returns the cached) package for an import path inside
// the module or mounted via Mount.
func (l *Loader) Load(importPath string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[importPath]; ok {
		l.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle or failed load for %s", importPath)
		}
		return p, nil
	}
	l.pkgs[importPath] = nil // cycle guard
	dir, mounted := l.extra[importPath]
	l.mu.Unlock()

	if !mounted {
		if importPath == l.Module {
			dir = l.Root
		} else if rest, ok := strings.CutPrefix(importPath, l.Module+"/"); ok {
			dir = filepath.Join(l.Root, filepath.FromSlash(rest))
		} else {
			return nil, fmt.Errorf("lint: %s is not inside module %s", importPath, l.Module)
		}
	}
	p, err := l.check(importPath, dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[importPath] = p
	l.mu.Unlock()
	return p, nil
}

// loadParsed type-checks pre-parsed files and publishes the package in
// the cache. It is the parallel driver's entry point: the driver's
// import-DAG scheduling guarantees every module-internal dependency is
// already cached, so the type-checker's importer callbacks are pure
// cache hits and never re-enter a concurrent load.
func (l *Loader) loadParsed(importPath, dir string, files []*ast.File) (*Package, error) {
	p, err := l.checkParsed(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[importPath] = p
	l.mu.Unlock()
	return p, nil
}

// parseDir parses the non-test files of one directory into the shared
// FileSet (which is safe for concurrent use).
func parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	return files, nil
}

// check parses and type-checks the non-test files of one directory.
func (l *Loader) check(importPath, dir string) (*Package, error) {
	files, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(importPath, dir, files)
}

// checkParsed type-checks pre-parsed files as one package.
func (l *Loader) checkParsed(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: &loaderImporter{l},
		Error:    func(error) {}, // collect the first hard error below
	}
	pkg, err := conf.Check(importPath, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	p := &Package{ImportPath: importPath, Dir: dir, Files: files, Fset: sharedFset, Pkg: pkg, Info: info, Module: l.Module, Facts: l.facts}
	// Summarize this package's functions immediately: type-checking a
	// package forces its module-internal imports through the Loader
	// first (and the parallel driver schedules along the import DAG),
	// so facts flow bottom-up and are complete before any dependent —
	// or this package's own analyzers — consume them.
	computePackageFacts(p, l.facts)
	return p, nil
}

// loaderImporter routes module-internal imports back through the
// Loader and everything else to the compiler's source importer.
type loaderImporter struct{ l *Loader }

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.l.Root, 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == li.l.Module || strings.HasPrefix(path, li.l.Module+"/") {
		p, err := li.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	li.l.mu.Lock()
	if mounted, ok := li.l.extra[path]; ok {
		li.l.mu.Unlock()
		_ = mounted
		p, err := li.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	li.l.mu.Unlock()
	// The compiler's source importer is not safe for concurrent use;
	// serialize stdlib imports across the parallel driver's workers
	// (it caches internally, so contention is a first-touch cost).
	srcImportMu.Lock()
	defer srcImportMu.Unlock()
	return sourceImporter().ImportFrom(path, dir, mode)
}

// srcImportMu serializes calls into the shared source importer.
var srcImportMu sync.Mutex
