package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose outputs feed the
// byte-identity and cache-key guarantees (DESIGN.md §8): everything on
// a compute path must derive randomness from an explicit seeded source
// and must not read the wall clock. experiments is included because
// its reports must be byte-identical at any worker count; its few
// legitimate wall-clock duration fields carry //lint:allow directives.
// ring and jobstore join the list for DESIGN.md §12: ring files and
// stored records must be byte-identical across peers and restarts (the
// one audited wall-clock field, SavedUnixNano, carries its allow).
var deterministicPkgs = map[string]bool{
	"core":        true,
	"ga":          true,
	"perfmodel":   true,
	"powermodel":  true,
	"npu":         true,
	"executor":    true,
	"powersim":    true,
	"preprocess":  true,
	"classify":    true,
	"thermal":     true,
	"vf":          true,
	"experiments": true,
	"ring":        true,
	"jobstore":    true,
}

// randConstructors are the package-level math/rand functions that are
// fine in deterministic code: they build explicit, seedable sources
// instead of touching the process-global RNG.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// wallClockFns are the time package functions that read the wall
// clock. time.Sleep is deliberately excluded: sleeping is a scheduling
// concern, not a value-producing read.
var wallClockFns = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DetRand forbids the process-global math/rand entry points and
// wall-clock reads inside deterministic packages. The global RNG is
// shared mutable state: a single rand.Intn on a compute path makes
// strategies depend on goroutine interleaving and breaks the
// byte-identical-at-any-worker-count contract.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and wall-clock reads in deterministic packages",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		if !isInternalPkg(p.ImportPath) || !deterministicPkgs[pkgBase(p.ImportPath)] {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil {
					return true
				}
				switch pkg := funcPkgPath(fn); pkg {
				case "math/rand", "math/rand/v2":
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
						report(call.Pos(), "%s.%s uses the process-global RNG; use rand.New(rand.NewSource(seed)) so results are schedule-independent", pkg, fn.Name())
					}
				case "time":
					if wallClockFns[fn.Name()] {
						report(call.Pos(), "time.%s reads the wall clock in deterministic package %s; timing must not influence strategies or reports", fn.Name(), pkgBase(p.ImportPath))
					}
				}
				return true
			})
		}
	},
}
