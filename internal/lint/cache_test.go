package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Cache tests run against a small synthetic module so entries can be
// invalidated by editing files without touching the real tree. The
// module has one interprocedural errsink finding: internal/server
// discards the error of internal/fsio.Commit, which wraps os.Rename.

const cacheTestGoMod = "module tmpmod\n\ngo 1.22\n"

const cacheTestFsio = `package fsio

import "os"

func Commit(src, dst string) error {
	return os.Rename(src, dst)
}
`

const cacheTestServer = `package server

import "tmpmod/internal/fsio"

func publish(a, b string) {
	_ = fsio.Commit(a, b)
}
`

func writeCacheTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod":                cacheTestGoMod,
		"internal/fsio/fsio.go": cacheTestFsio,
		"internal/server/s.go":  cacheTestServer,
	}
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return root
}

// TestCacheWarmRunIdentical: a warm run must reproduce the cold run's
// diagnostics exactly, and must actually populate the cache directory.
func TestCacheWarmRunIdentical(t *testing.T) {
	root := writeCacheTestModule(t)
	cacheDir := filepath.Join(root, ".cache")
	opts := Options{CacheDir: cacheDir}
	cold, err := RunAllOpts(root, []*Analyzer{ErrSink}, opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold) != 1 || cold[0].Rule != "errsink" || !strings.Contains(cold[0].Message, "fsio.Commit") {
		t.Fatalf("cold run = %v, want one interprocedural errsink finding", cold)
	}
	ents, err := os.ReadDir(cacheDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated: %v entries, err %v", len(ents), err)
	}
	warm, err := RunAllOpts(root, []*Analyzer{ErrSink}, opts)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm run diverged:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// TestCacheInvalidatesDependents: editing a dependency must invalidate
// its dependents' entries — the dep's key feeds into theirs — and the
// dependents must re-analyze against fresh facts. Here the edit makes
// fsio.Commit stop wrapping an os call, so the server package's
// discard stops being a finding.
func TestCacheInvalidatesDependents(t *testing.T) {
	root := writeCacheTestModule(t)
	opts := Options{CacheDir: filepath.Join(root, ".cache")}
	cold, err := RunAllOpts(root, []*Analyzer{ErrSink}, opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold) != 1 {
		t.Fatalf("cold run = %v, want one finding", cold)
	}
	edited := `package fsio

import "errors"

func Commit(src, dst string) error {
	return errors.New("unimplemented: " + src + dst)
}
`
	if err := os.WriteFile(filepath.Join(root, "internal", "fsio", "fsio.go"), []byte(edited), 0o644); err != nil {
		t.Fatalf("edit dep: %v", err)
	}
	after, err := RunAllOpts(root, []*Analyzer{ErrSink}, opts)
	if err != nil {
		t.Fatalf("run after edit: %v", err)
	}
	if len(after) != 0 {
		t.Fatalf("stale cache survived a dependency edit: %v", after)
	}
}

// TestCacheRuleSetKeyed: entries are keyed by the selected rule set, so
// a -rules subset can never serve another subset's results.
func TestCacheRuleSetKeyed(t *testing.T) {
	root := writeCacheTestModule(t)
	opts := Options{CacheDir: filepath.Join(root, ".cache")}
	if diags, err := RunAllOpts(root, []*Analyzer{DetRand}, opts); err != nil || len(diags) != 0 {
		t.Fatalf("detrand-only run: %v, %v", diags, err)
	}
	diags, err := RunAllOpts(root, []*Analyzer{ErrSink}, opts)
	if err != nil || len(diags) != 1 {
		t.Fatalf("errsink run after detrand warmed the cache = %v, %v; want the finding", diags, err)
	}
}

// TestOnlyDirsScoping: OnlyDirs restricts analysis and output to the
// listed package directories; everything else is at most type-checked.
func TestOnlyDirsScoping(t *testing.T) {
	root := writeCacheTestModule(t)
	diags, err := RunAllOpts(root, []*Analyzer{ErrSink}, Options{OnlyDirs: []string{"internal/fsio"}})
	if err != nil {
		t.Fatalf("only fsio: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope findings reported: %v", diags)
	}
	diags, err = RunAllOpts(root, []*Analyzer{ErrSink}, Options{OnlyDirs: []string{"internal/server"}})
	if err != nil {
		t.Fatalf("only server: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "fsio.Commit") {
		t.Fatalf("scoped run = %v, want the interprocedural finding (dep still type-checked for facts)", diags)
	}
}
