package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract from PR 2: only cmd/*
// binaries and tests may mint root contexts, so any deadline installed
// at the edge provably reaches ga.Run's generation boundaries. It has
// two checks:
//
//  1. context.Background()/context.TODO() inside internal/* non-test
//     code is flagged — a root context minted mid-stack silently
//     detaches everything below it from the caller's deadline.
//  2. An exported function or method in internal/* that loops over
//     generations or specs (the long-running search shapes) but whose
//     signature has no context.Context parameter is flagged — it has
//     no way to observe cancellation at all.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "root contexts in internal/*; exported generation/spec loops without a ctx parameter",
	Run: func(p *Package, report func(pos token.Pos, format string, args ...any)) {
		if !isInternalPkg(p.ImportPath) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := calleeFunc(p, call); isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
						report(call.Pos(), "context.%s() mints a root context in internal package %s; accept a ctx from the caller (only cmd/* and tests may create roots)", fn.Name(), pkgBase(p.ImportPath))
					}
				}
				return true
			})
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig, ok := obj.Type().(*types.Signature)
				if !ok || signatureHasContext(sig) {
					continue
				}
				if loop := searchLoop(p, fd.Body); loop != nil {
					report(fd.Pos(), "exported %s loops over generations/specs but has no context.Context parameter; long searches must be cancellable (add a ctx or an unexported ctx-taking core)", fd.Name.Name)
				}
			}
		}
	},
}

// searchLoop returns a for/range statement in body that iterates over
// generations or specs — the shapes of the repo's long-running search
// loops — or nil. Detection is intentionally name-based: a range whose
// subject mentions spec/generation, or a classic for whose variables
// do ("for gen := 0; gen < cfg.Generations; gen++").
func searchLoop(p *Package, body *ast.BlockStmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.RangeStmt:
			if mentionsSearchNoun(renderExpr(p, s.X)) {
				found = s
				return false
			}
		case *ast.ForStmt:
			text := ""
			if s.Init != nil {
				text += renderStmt(p, s.Init) + " "
			}
			if s.Cond != nil {
				text += renderExpr(p, s.Cond)
			}
			if mentionsSearchNoun(text) {
				found = s
				return false
			}
		}
		return true
	})
	return found
}

func mentionsSearchNoun(text string) bool {
	text = strings.ToLower(text)
	return strings.Contains(text, "spec") || strings.Contains(text, "generation") || strings.Contains(text, "gen ") || strings.HasPrefix(text, "gen")
}

func renderStmt(p *Package, s ast.Stmt) string {
	switch st := s.(type) {
	case *ast.AssignStmt:
		parts := make([]string, 0, len(st.Lhs))
		for _, e := range st.Lhs {
			parts = append(parts, renderExpr(p, e))
		}
		return strings.Join(parts, ", ")
	case *ast.ExprStmt:
		return renderExpr(p, st.X)
	}
	return ""
}
