package lint

import (
	"sync"
	"time"
)

// Timings accumulates per-analyzer wall-clock time across packages and
// workers — the breakdown scripts/bench.sh records next to the
// cold/warm lint wall-clock, so a newly expensive analyzer is visible
// in the benchmark artifact rather than hiding inside the total.
// Attach one via Options.Timings. Only analyzer execution is charged:
// parsing, type-checking, fact computation, and cache hits fall outside
// every bucket, so a fully warm run reports near-zero for each rule.
type Timings struct {
	mu sync.Mutex
	ns map[string]int64
}

// NewTimings returns an empty accumulator safe for concurrent use.
func NewTimings() *Timings { return &Timings{ns: map[string]int64{}} }

// Add charges d to rule's bucket.
func (t *Timings) Add(rule string, d time.Duration) {
	t.mu.Lock()
	t.ns[rule] += int64(d)
	t.mu.Unlock()
}

// NanosByRule returns a copy of the accumulated buckets, in
// nanoseconds.
func (t *Timings) NanosByRule() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.ns))
	for k, v := range t.ns {
		out[k] = v
	}
	return out
}
