package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests mount testdata/src/<name> under a synthetic
// module-internal import path (so package-scoped rules like detrand's
// deterministic-package list fire) and compare the analyzer output
// against `// want rule `substring`` expectations written on the
// flagged lines.

// loadTestPkg loads testdata/src/<name> as importPath.
func loadTestPkg(t *testing.T, name, importPath string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	ld.Mount(importPath, dir)
	p, err := ld.Load(importPath)
	if err != nil {
		t.Fatalf("load %s (%s): %v", name, importPath, err)
	}
	return p
}

// want is one expectation: a diagnostic of rule whose message contains
// substr, on the line the comment sits on.
type want struct {
	rule    string
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile("(\\w+) `([^`]*)`")

// collectWants parses `// want rule `substring“ comments; several
// rule/substring pairs may share one comment.
func collectWants(p *Package) map[int][]*want {
	wants := map[int][]*want{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					wants[line] = append(wants[line], &want{rule: m[1], substr: m[2]})
				}
			}
		}
	}
	return wants
}

func matchWant(ws []*want, d Diagnostic) bool {
	for _, w := range ws {
		if !w.matched && w.rule == d.Rule && strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// checkGolden runs the analyzers and requires an exact bijection
// between diagnostics and want comments.
func checkGolden(t *testing.T, p *Package, analyzers []*Analyzer) {
	t.Helper()
	wants := collectWants(p)
	for _, d := range Run(p, analyzers) {
		if !matchWant(wants[d.Pos.Line], d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("line %d: missing diagnostic [%s] containing %q", line, w.rule, w.substr)
			}
		}
	}
}

func TestDetRandGolden(t *testing.T) {
	p := loadTestPkg(t, "ga", "npudvfs/internal/ga")
	checkGolden(t, p, []*Analyzer{DetRand})
}

// TestDetRandScopedToDeterministicPkgs mounts the same file outside the
// deterministic list and expects no detrand findings: the rule is
// package-scoped. The file's //lint:allow detrand directive correctly
// surfaces as unused there — with the rule scoped off, the exemption
// suppresses nothing.
func TestDetRandScopedToDeterministicPkgs(t *testing.T) {
	p := loadTestPkg(t, "ga", "npudvfs/internal/telemetry")
	for _, d := range Run(p, []*Analyzer{DetRand}) {
		if d.Rule == "detrand" {
			t.Errorf("detrand fired outside the deterministic packages: %s", d)
		} else if d.Rule != "directive" || !strings.Contains(d.Message, "unused directive") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestFloatEqGolden(t *testing.T) {
	p := loadTestPkg(t, "floateq", "npudvfs/internal/floateq")
	checkGolden(t, p, []*Analyzer{FloatEq})
}

// TestFloatEqSkipsStats: internal/stats hosts the tolerance helpers, so
// its exact comparisons are by design.
func TestFloatEqSkipsStats(t *testing.T) {
	p := loadTestPkg(t, "stats", "npudvfs/internal/stats")
	if diags := Run(p, []*Analyzer{FloatEq}); len(diags) != 0 {
		t.Fatalf("floateq fired inside internal/stats: %v", diags)
	}
}

func TestCtxFlowGolden(t *testing.T) {
	p := loadTestPkg(t, "ctxflow", "npudvfs/internal/ctxflow")
	checkGolden(t, p, []*Analyzer{CtxFlow})
}

func TestLockPairGolden(t *testing.T) {
	p := loadTestPkg(t, "lockpair", "npudvfs/internal/lockpair")
	checkGolden(t, p, []*Analyzer{LockPair})
}

func TestGoLeakGolden(t *testing.T) {
	p := loadTestPkg(t, "goleak", "npudvfs/internal/goleak")
	checkGolden(t, p, []*Analyzer{GoLeak})
}

func TestUnitCheckGolden(t *testing.T) {
	p := loadTestPkg(t, "unitcheck", "npudvfs/internal/perfmodel")
	checkGolden(t, p, []*Analyzer{UnitCheck})
}

// TestUnitCheckSignatureRuleScoped: rule (a) polices only the packages
// that were moved to units types; a numeric kernel keeping raw float64
// (profiler, stats, ga, ...) is by design.
func TestUnitCheckSignatureRuleScoped(t *testing.T) {
	const src = `package profiler

func tune(freqMHz float64) float64 { return freqMHz }
`
	p := mountSource(t, "npudvfs/internal/profiler", "tune.go", src)
	if diags := Run(p, []*Analyzer{UnitCheck}); len(diags) != 0 {
		t.Fatalf("unitcheck fired outside the units-typed packages: %v", diags)
	}
	p = mountSource(t, "npudvfs/internal/core", "tune.go", src)
	diags := Run(p, []*Analyzer{UnitCheck})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"freqMHz"`) {
		t.Fatalf("got %v, want one raw-float64 finding for freqMHz inside a typed package", diags)
	}
}

// TestUnitCheckFreqLiteralExemptInVF: internal/vf owns the V-F table,
// so its frequency literals are the source of truth, not duplicates.
func TestUnitCheckFreqLiteralExemptInVF(t *testing.T) {
	const src = `package vf

import "npudvfs/internal/units"

var probe = units.MHz(1500)
`
	p := mountSource(t, "npudvfs/internal/vf", "probe.go", src)
	if diags := Run(p, []*Analyzer{UnitCheck}); len(diags) != 0 {
		t.Fatalf("unitcheck flagged a frequency literal inside internal/vf: %v", diags)
	}
	p = mountSource(t, "npudvfs/internal/telemetry", "probe.go", src)
	diags := Run(p, []*Analyzer{UnitCheck})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "bare frequency literal 1500") {
		t.Fatalf("got %v, want one bare-frequency-literal finding outside internal/vf", diags)
	}
}

// TestCleanPackage runs the full suite over a contract-respecting file
// mounted as a deterministic package and expects zero findings.
func TestCleanPackage(t *testing.T) {
	p := loadTestPkg(t, "clean", "npudvfs/internal/core")
	if diags := Run(p, Analyzers()); len(diags) != 0 {
		t.Fatalf("clean package produced findings: %v", diags)
	}
}

// mountSource type-checks src as a synthetic package under importPath.
func mountSource(t *testing.T, importPath, filename, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filename), []byte(src), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	ld.Mount(importPath, dir)
	p, err := ld.Load(importPath)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// TestMalformedDirective: an //lint:allow with no reason must surface
// as a "directive" finding, not silently suppress. This cannot live in
// a want-golden file — the trailing want comment would itself read as
// the directive's reason.
func TestMalformedDirective(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/badlint", "bad.go", `package badlint

func f() int {
	//lint:allow floateq
	return 1
}
`)
	diags := Run(p, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "directive" || !strings.Contains(d.Message, "malformed directive") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestAllowWrongRuleDoesNotSuppress: a directive only suppresses its
// named rule.
func TestAllowWrongRuleDoesNotSuppress(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/wrongrule", "wrong.go", `package wrongrule

func g(a, b float64) bool {
	//lint:allow detrand misdirected suppression
	return a == b
}
`)
	diags := Run(p, []*Analyzer{FloatEq})
	if len(diags) != 1 || diags[0].Rule != "floateq" {
		t.Fatalf("got %v, want one floateq finding", diags)
	}
}

// mountSources mounts several files as one synthetic package.
func mountSources(t *testing.T, importPath string, files map[string]string) *Package {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	ld.Mount(importPath, dir)
	p, err := ld.Load(importPath)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// TestUnusedAllowDirective: a directive that suppresses nothing is a
// "directive" finding — but only when its rule was actually selected,
// so running a rule subset never flags exemptions for the other rules.
// (mountSource, not a golden file: a want comment on the directive's
// line would be swallowed as part of the directive's reason.)
func TestUnusedAllowDirective(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/staleallow", "stale.go", `package staleallow

//lint:allow floateq stale exemption; the comparison below is integral
func same(a, b int) bool {
	return a == b
}
`)
	diags := Run(p, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "directive" || !strings.Contains(d.Message, "unused directive") || !strings.Contains(d.Message, "floateq") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
	if diags := Run(p, []*Analyzer{DetRand}); len(diags) != 0 {
		t.Fatalf("unused floateq directive reported under -rules detrand: %v", diags)
	}
}

// TestUsedAllowDirectiveNotReported: a directive that suppresses a
// finding (same line or the line below) is not stale.
func TestUsedAllowDirectiveNotReported(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/liveallow", "live.go", `package liveallow

func same(a, b float64) bool {
	//lint:allow floateq exact sentinel comparison by design
	return a == b
}
`)
	if diags := Run(p, []*Analyzer{FloatEq}); len(diags) != 0 {
		t.Fatalf("used directive produced findings: %v", diags)
	}
}

// TestAllowDirectiveScopedToFile: a directive in one file must not
// absorb a finding at the same line number of a sibling file — the
// suppression index is keyed by file AND line. Regression test: the
// collision both leaked the suppression across files and marked the
// wrong directive as used.
func TestAllowDirectiveScopedToFile(t *testing.T) {
	p := mountSources(t, "npudvfs/internal/xfile", map[string]string{
		"a.go": `package xfile

func cmp(a, b float64) bool {
	return a == b
}
`,
		"b.go": `package xfile

func ok() int {
	//lint:allow floateq directive in a sibling file at the same line number
	return 1
}
`,
	})
	diags := Run(p, []*Analyzer{FloatEq})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (the unsuppressed finding and the stale directive): %v", len(diags), diags)
	}
	var sawFinding, sawStale bool
	for _, d := range diags {
		switch {
		case d.Rule == "floateq" && strings.HasSuffix(d.Pos.Filename, "a.go"):
			sawFinding = true
		case d.Rule == "directive" && strings.HasSuffix(d.Pos.Filename, "b.go") && strings.Contains(d.Message, "unused directive"):
			sawStale = true
		}
	}
	if !sawFinding || !sawStale {
		t.Fatalf("cross-file suppression leaked: %v", diags)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	for _, rules := range []string{"", "all"} {
		as, err := SelectAnalyzers(rules)
		if err != nil || len(as) != len(Analyzers()) {
			t.Fatalf("SelectAnalyzers(%q) = %d analyzers, err %v", rules, len(as), err)
		}
	}
	as, err := SelectAnalyzers("detrand,floateq")
	if err != nil {
		t.Fatalf("SelectAnalyzers subset: %v", err)
	}
	if len(as) != 2 || as[0].Name != "detrand" || as[1].Name != "floateq" {
		t.Fatalf("SelectAnalyzers subset = %v", as)
	}
	if _, err := SelectAnalyzers("bogus"); err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("SelectAnalyzers(bogus) err = %v, want unknown-rule error", err)
	}
	if _, err := SelectAnalyzers(","); err == nil {
		t.Fatalf("SelectAnalyzers(\",\") selected nothing but returned no error")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/ga/ga.go", Line: 42},
		Rule:    "detrand",
		Message: "math/rand.Intn uses the process-global RNG",
	}
	got := d.String()
	want := "internal/ga/ga.go:42: [detrand] math/rand.Intn uses the process-global RNG"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
