// Package lint is dvfslint: a project-specific static-analysis suite,
// built entirely on the stdlib go/ast + go/types toolchain, that
// mechanically enforces the repository's determinism and concurrency
// contracts (DESIGN.md §9). It ships five analyzers:
//
//	detrand    — no process-global math/rand or wall-clock reads in
//	             deterministic packages
//	floateq    — no float ==/!= outside internal/stats tolerance helpers
//	ctxflow    — no root contexts minted in internal/*; exported
//	             generation/spec loops must accept a context.Context
//	lockpair   — every mutex Lock/RLock pairs with an Unlock/RUnlock in
//	             the same function
//	goleak     — every `go` statement must be tracked by a WaitGroup, a
//	             result channel, or internal/pool
//
// A diagnostic is suppressed only by an explicit justification on the
// flagged line (or the line above):
//
//	//lint:allow <rule> <reason>
//
// so every exemption is reviewable in-tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in output and //lint:allow directives.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Run reports findings via report; suppression and sorting are the
	// engine's job.
	Run func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, FloatEq, CtxFlow, LockPair, GoLeak}
}

// SelectAnalyzers resolves a comma-separated rule list ("" or "all"
// selects the full suite) against the registry.
func SelectAnalyzers(rules string) ([]*Analyzer, error) {
	all := Analyzers()
	rules = strings.TrimSpace(rules)
	if rules == "" || rules == "all" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, r := range strings.Split(rules, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		a, ok := byName[r]
		if !ok {
			names := make([]string, len(all))
			for i, a := range all {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("lint: unknown rule %q (available: %s)", r, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no rules selected")
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive in the file, and
// reports malformed ones (a directive with no reason silently
// suppressing nothing is worse than an error).
func parseAllows(p *Package, f *ast.File, report func(pos token.Pos, format string, args ...any)) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(c.Pos(), "malformed directive %q: want %s <rule> <reason>", c.Text, allowPrefix)
				continue
			}
			out = append(out, allowDirective{
				rule:   fields[0],
				reason: strings.Join(fields[1:], " "),
				line:   p.Fset.Position(c.Pos()).Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// Run executes the analyzers over the package, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by
// position.
func Run(p *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(rule string) func(pos token.Pos, format string, args ...any) {
		return func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     p.Fset.Position(pos),
				Rule:    rule,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}
	// Allow directives apply per file; malformed ones are findings of
	// the pseudo-rule "directive".
	allowed := map[string]map[int]bool{} // rule -> line -> allowed
	for _, f := range p.Files {
		for _, a := range parseAllows(p, f, collect("directive")) {
			m := allowed[a.rule]
			if m == nil {
				m = map[int]bool{}
				allowed[a.rule] = m
			}
			m[a.line] = true
		}
	}
	for _, a := range analyzers {
		a.Run(p, collect(a.Name))
	}
	out := diags[:0]
	for _, d := range diags {
		// A directive suppresses a diagnostic on its own line or the
		// line directly below (comment-above style).
		if m := allowed[d.Rule]; m != nil && (m[d.Pos.Line] || m[d.Pos.Line-1]) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// RunAll loads every package under root and runs the analyzers over
// each, returning all surviving diagnostics sorted per package.
func RunAll(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	ld, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := ld.LoadAll()
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, Run(p, analyzers)...)
	}
	return out, nil
}
