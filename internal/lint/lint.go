// Package lint is dvfslint: a project-specific static-analysis suite,
// built entirely on the stdlib go/ast + go/types toolchain, that
// mechanically enforces the repository's determinism, concurrency and
// dimensional-safety contracts (DESIGN.md §9). It ships twelve
// analyzers:
//
//	detrand     — no process-global math/rand or wall-clock reads in
//	              deterministic packages
//	floateq     — no float ==/!= outside internal/stats tolerance helpers
//	ctxflow     — no root contexts minted in internal/*; exported
//	              generation/spec loops must accept a context.Context
//	lockpair    — every mutex Lock/RLock pairs with an Unlock/RUnlock in
//	              the same function
//	goleak      — every `go` statement must be tracked by a WaitGroup, a
//	              result channel, or internal/pool
//	unitcheck   — no raw-float64 physical quantities in the typed
//	              packages, no cross-unit arithmetic laundered through
//	              float64, no bare frequency literals outside internal/vf
//	errsink     — no discarded errors with os/io/net provenance in the
//	              serving/cluster packages (interprocedural: a helper
//	              wrapping os.Rename taints its callers)
//	atomicwrite — jobstore persistence must go through the audited
//	              tmp→rename sequence; no direct final-path writes
//	respclose   — every *http.Response in server/client reaches
//	              Body.Close (or a summarized closer) on all paths
//	metricflow  — rendered metrics have writers and vice versa;
//	              HELP/TYPE/emit lines pair; label values come from one
//	              declared set
//	allocfree   — functions marked //lint:hotpath must not allocate,
//	              transitively through every module-internal callee
//	lockorder   — no lock-order cycles across the module's lock graph;
//	              no blocking ops (channel, Wait, network, store I/O)
//	              while holding a serving-path mutex
//
// The last six are interprocedural: they consume per-function
// summaries from a fact store filled bottom-up along the import DAG at
// load time (facts.go, hotfacts.go).
//
// A diagnostic is suppressed only by an explicit justification on the
// flagged line (or the line above):
//
//	//lint:allow <rule> <reason>
//
// so every exemption is reviewable in-tree. A directive that suppresses
// nothing is itself a finding: stale exemptions otherwise outlive the
// code they excused and silently blanket future violations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, printed as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in output and //lint:allow directives.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Run reports findings via report; suppression and sorting are the
	// engine's job.
	Run func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, FloatEq, CtxFlow, LockPair, GoLeak, UnitCheck, ErrSink, AtomicWrite, RespClose, MetricFlow, AllocFree, LockOrder}
}

// SelectAnalyzers resolves a comma-separated rule list ("" or "all"
// selects the full suite) against the registry.
func SelectAnalyzers(rules string) ([]*Analyzer, error) {
	all := Analyzers()
	rules = strings.TrimSpace(rules)
	if rules == "" || rules == "all" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, r := range strings.Split(rules, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		a, ok := byName[r]
		if !ok {
			names := make([]string, len(all))
			for i, a := range all {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("lint: unknown rule %q (available: %s)", r, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no rules selected")
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	file   string
	line   int
	pos    token.Pos
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive in the file, and
// reports malformed ones (a directive with no reason silently
// suppressing nothing is worse than an error).
func parseAllows(p *Package, f *ast.File, report func(pos token.Pos, format string, args ...any)) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(c.Pos(), "malformed directive %q: want %s <rule> <reason>", c.Text, allowPrefix)
				continue
			}
			cpos := p.Fset.Position(c.Pos())
			out = append(out, allowDirective{
				rule:   fields[0],
				reason: strings.Join(fields[1:], " "),
				file:   cpos.Filename,
				line:   cpos.Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// Run executes the analyzers over the package, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by
// position.
func Run(p *Package, analyzers []*Analyzer) []Diagnostic {
	return runTimed(p, analyzers, nil)
}

// runTimed is Run with an optional per-analyzer wall-clock
// accumulator (nil skips the clock reads entirely).
func runTimed(p *Package, analyzers []*Analyzer, tm *Timings) []Diagnostic {
	var diags []Diagnostic
	collect := func(rule string) func(pos token.Pos, format string, args ...any) {
		return func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     p.Fset.Position(pos),
				Rule:    rule,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}
	// Allow directives apply per file — the index is keyed by filename
	// AND line, so a directive in one file can never absorb (and mark
	// itself used against) a finding at the same line number of a
	// sibling file. Malformed ones are findings of the pseudo-rule
	// "directive". Each directive tracks whether it suppressed
	// anything: a no-op exemption is itself a finding.
	type fileLine struct {
		file string
		line int
	}
	type allowState struct {
		d    allowDirective
		used bool
	}
	allowed := map[string]map[fileLine]*allowState{} // rule -> file:line -> state
	var states []*allowState                         // in parse order, for deterministic reporting
	for _, f := range p.Files {
		for _, a := range parseAllows(p, f, collect("directive")) {
			m := allowed[a.rule]
			if m == nil {
				m = map[fileLine]*allowState{}
				allowed[a.rule] = m
			}
			key := fileLine{a.file, a.line}
			if m[key] == nil {
				st := &allowState{d: a}
				m[key] = st
				states = append(states, st)
			}
		}
	}
	for _, a := range analyzers {
		if tm == nil {
			a.Run(p, collect(a.Name))
			continue
		}
		start := time.Now()
		a.Run(p, collect(a.Name))
		tm.Add(a.Name, time.Since(start))
	}
	out := diags[:0]
	for _, d := range diags {
		// A directive suppresses a diagnostic on its own line or the
		// line directly below (comment-above style), in the same file.
		if m := allowed[d.Rule]; m != nil {
			if st := m[fileLine{d.Pos.Filename, d.Pos.Line}]; st != nil {
				st.used = true
				continue
			}
			if st := m[fileLine{d.Pos.Filename, d.Pos.Line - 1}]; st != nil {
				st.used = true
				continue
			}
		}
		out = append(out, d)
	}
	// An unused directive is reported only when its rule actually ran
	// this invocation — a floateq exemption is not stale just because
	// the caller selected -rules detrand.
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	for _, st := range states {
		if !st.used && selected[st.d.rule] {
			out = append(out, Diagnostic{
				Pos:  p.Fset.Position(st.d.pos),
				Rule: "directive",
				Message: fmt.Sprintf("unused directive %s %s %s: no [%s] finding on this line or the one below — remove the stale exemption",
					allowPrefix, st.d.rule, st.d.reason, st.d.rule),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// RunAll loads every package under root and runs the analyzers over
// each, returning all surviving diagnostics sorted per package.
// Packages are type-checked and analyzed by a bounded worker pool
// scheduled along the module's import DAG (see RunAllWorkers); the
// output is byte-identical to a sequential run.
func RunAll(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAllWorkers(root, analyzers, 0)
}
