package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"
	"sync"
)

// This file is the interprocedural fact store behind the serving/cluster
// analyzers (errsink, atomicwrite, respclose, metricflow). Facts are
// per-function summaries keyed by *types.Func identity — valid because
// the Loader caches every package against one shared FileSet, so a
// function object seen by a dependent package is the same object its
// defining package summarized. Facts are computed at package load time
// (checkParsed), which means the parallel driver's import-DAG
// scheduling doubles as the bottom-up fact-propagation order: by the
// time a package analyzes, every module-internal callee already has its
// summary in the store. Within one package, mutually recursive helpers
// are handled by iterating to a fixpoint.

// FuncFact is the interprocedural summary of one function.
type FuncFact struct {
	// DerivesIOError: the function has an error result whose value can
	// originate from an os/io/net operation (directly or through
	// callees). Consumed by errsink: discarding such an error hides a
	// real I/O failure.
	DerivesIOError bool
	// WritesFinalPath: the function performs (or reaches, through
	// callees) a create/write/rename touching a path not derived from a
	// ".tmp" staging name. Consumed by atomicwrite.
	WritesFinalPath bool
	// ClosesBody marks parameter indices (receiver = -1) of
	// *net/http.Response values whose Body the function closes on its
	// main path. Consumed by respclose: passing a response to such a
	// function discharges the caller's close obligation.
	ClosesBody map[int]bool
	// ClosesCloser marks parameter indices the function calls Close()
	// on directly (e.g. a func(io.ReadCloser) drain helper). Consumed
	// by respclose for `helper(resp.Body)` handoffs.
	ClosesCloser map[int]bool
	// LabelKeyField maps parameter indices to the name of the metrics
	// struct map field the parameter is used to key. Consumed by
	// metricflow to resolve label values at call sites.
	LabelKeyField map[int]string

	// --- performance-contract facts (hotfacts.go) ---

	// AllocSites are the function's direct allocation sites (hot-path
	// allocation classes, forbidden calls included). Consumed by
	// allocfree, which reports them when the function is reachable from
	// a //lint:hotpath root in the package under analysis.
	AllocSites []AllocSite
	// Callees are the module-internal functions this one calls
	// statically (including dynamic calls through unexported func-typed
	// struct fields, resolved in the field's declaring package). The
	// interprocedural walk and the fixpoint propagation both run over
	// this edge list.
	Callees []CalleeRef
	// Allocates: the function (or anything it reaches through Callees)
	// has at least one AllocSite. Cross-package allocfree findings are
	// reported at the call edge via this bit.
	Allocates bool
	// Acquires are the lock IDs ("pkg.Type.field") the function
	// acquires directly; AllAcquires closes the set over Callees.
	Acquires    []string
	AllAcquires []string
	// Blocks are the blocking-operation kinds (channel send/recv, Wait,
	// sleep, network, file I/O) the function can reach, closed over
	// Callees. Consumed by lockorder's held-lock blocking rule.
	Blocks []string
	// HeldEdges are direct lock-order edges observed in the body:
	// [held, acquired] pairs. HeldCallees are module-internal calls made
	// while holding a lock; the analyzer expands them against the
	// callee's AllAcquires to complete the global graph.
	HeldEdges   [][2]string
	HeldCallees []HeldCallee
	// LockParamCalls maps func-typed parameter indices to the lock IDs
	// held when the function invokes that parameter, so a callback
	// passed from another package contributes its acquisitions to the
	// graph at the pass site.
	LockParamCalls map[int][]string
}

// Facts is a concurrency-safe store of function summaries shared by all
// packages of one Loader.
type Facts struct {
	mu sync.RWMutex
	m  map[*types.Func]FuncFact
	// fields maps unexported func-typed struct fields (fieldFuncKey) to
	// the functions assigned to them in their declaring package, for
	// resolving dynamic calls like jobstore's persist/unlink hooks.
	fields map[string][]*types.Func
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: map[*types.Func]FuncFact{}, fields: map[string][]*types.Func{}}
}

// Lookup returns the summary for fn (zero value when unknown or when
// the store is nil, so analyzers degrade to intraprocedural).
func (fs *Facts) Lookup(fn *types.Func) FuncFact {
	if fs == nil || fn == nil {
		return FuncFact{}
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.m[fn]
}

func (fs *Facts) put(fn *types.Func, f FuncFact) {
	fs.mu.Lock()
	fs.m[fn] = f
	fs.mu.Unlock()
}

// ioErrPkgs are the stdlib packages whose returned errors count as I/O
// provenance for errsink. fmt is deliberately absent: Fprintf-style
// errors on an http.ResponseWriter are ubiquitous and have no recovery
// path, so including them would drown the signal.
var ioErrPkgs = map[string]bool{
	"os":       true,
	"io":       true,
	"io/fs":    true,
	"net":      true,
	"net/http": true,
	"bufio":    true,
}

// ioErrorSource reports whether fn's errors carry I/O provenance:
// either it is declared in an I/O stdlib package, it is a JSON
// stream codec (wrapping an underlying reader/writer), or a
// module-internal summary says so.
func ioErrorSource(fn *types.Func, store *Facts) bool {
	if fn == nil {
		return false
	}
	path := funcPkgPath(fn)
	if ioErrPkgs[path] {
		return true
	}
	if path == "encoding/json" {
		if named := recvNamed(fn); named != nil {
			tn := named.Obj().Name()
			if (tn == "Encoder" && fn.Name() == "Encode") || (tn == "Decoder" && fn.Name() == "Decode") {
				return true
			}
		}
	}
	return store.Lookup(fn).DerivesIOError
}

// hasErrorResult reports whether sig has at least one result of type
// error, returning the last matching index.
func hasErrorResult(sig *types.Signature) (int, bool) {
	idx, ok := -1, false
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			idx, ok = i, true
		}
	}
	return idx, ok
}

var errorType = types.Universe.Lookup("error").Type()

// computePackageFacts summarizes every function declared in p and
// publishes the summaries to store. Single-pass facts (body closes,
// label keys) are computed once; propagation facts (DerivesIOError,
// WritesFinalPath) iterate to a fixpoint so in-package helper chains
// and mutual recursion converge.
// declFn pairs a declared function with its type object for the fact
// passes.
type declFn struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

func computePackageFacts(p *Package, store *Facts) {
	var fns []declFn
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, declFn{fn, fd})
		}
	}
	// One-shot structural facts first, so the fixpoint below can read
	// them for in-package callees through the store.
	for _, df := range fns {
		fact := FuncFact{
			ClosesBody:    bodyCloseParams(p, df.decl),
			ClosesCloser:  closerParams(p, df.decl),
			LabelKeyField: labelKeyParams(p, df.decl),
		}
		store.put(df.fn, fact)
	}
	for changed := true; changed; {
		changed = false
		for _, df := range fns {
			fact := store.Lookup(df.fn)
			if !fact.DerivesIOError && derivesIOError(p, df.fn, df.decl, store) {
				fact.DerivesIOError = true
				changed = true
			}
			if !fact.WritesFinalPath && writesFinalPath(p, df.decl, store) {
				fact.WritesFinalPath = true
				changed = true
			}
			store.put(df.fn, fact)
		}
	}
	computeHotFacts(p, fns, store)
}

// derivesIOError reports whether fn (with body decl) has an error
// result and contains at least one call to an I/O-deriving callee whose
// error is not locally discarded — i.e. the error can plausibly flow
// out of fn.
func derivesIOError(p *Package, fn *types.Func, decl *ast.FuncDecl, store *Facts) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if _, ok := hasErrorResult(sig); !ok {
		return false
	}
	discarded := discardedCalls(decl.Body)
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || discarded[call] {
			return true
		}
		callee := calleeFunc(p, call)
		if callee == nil || callee == fn {
			return true
		}
		if csig, ok := callee.Type().(*types.Signature); ok {
			if _, hasErr := hasErrorResult(csig); hasErr && ioErrorSource(callee, store) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// discardedCalls collects call expressions whose error results are
// locally dropped inside body: bare statement calls, defers/go
// statements, and assignments where every error-typed position is the
// blank identifier. A function that itself swallows an I/O error does
// not export I/O provenance (errsink flags the swallow at that site
// instead).
func discardedCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				out[call] = true
			}
		case *ast.DeferStmt:
			out[s.Call] = true
		case *ast.GoStmt:
			out[s.Call] = true
		case *ast.AssignStmt:
			if call, ok := singleCallRHS(s); ok && allBlank(s.Lhs) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// singleCallRHS returns the call when s is `lhs... = f(...)` with one
// RHS expression that is a call.
func singleCallRHS(s *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(s.Rhs) != 1 {
		return nil, false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	return call, ok
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// paramObjects maps fn's parameter objects (receiver included at index
// -1) so body scans can resolve ident uses back to parameter indices.
func paramObjects(p *Package, decl *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	add := func(fl *ast.FieldList, start int) int {
		if fl == nil {
			return start
		}
		i := start
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[obj] = i
				}
				i++
			}
		}
		return i
	}
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[obj] = -1
				}
			}
		}
	}
	add(decl.Type.Params, 0)
	return out
}

// bodyCloseParams finds *http.Response parameters (receiver = -1)
// whose Body the function closes: a `param.Body.Close()` call anywhere
// in the body.
func bodyCloseParams(p *Package, decl *ast.FuncDecl) map[int]bool {
	params := paramObjects(p, decl)
	var out map[int]bool
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Match param.Body.Close().
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "Body" {
			return true
		}
		id, ok := ast.Unparen(inner.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		idx, isParam := params[obj]
		if !isParam || obj == nil || !isHTTPResponsePtr(obj.Type()) {
			return true
		}
		if out == nil {
			out = map[int]bool{}
		}
		out[idx] = true
		return true
	})
	return out
}

// closerParams finds parameters the function calls Close() on directly
// (`param.Close()`), e.g. drain helpers taking an io.ReadCloser.
func closerParams(p *Package, decl *ast.FuncDecl) map[int]bool {
	params := paramObjects(p, decl)
	var out map[int]bool
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		idx, isParam := params[obj]
		if !isParam || idx < 0 {
			return true
		}
		if out == nil {
			out = map[int]bool{}
		}
		out[idx] = true
		return true
	})
	return out
}

// labelKeyParams finds parameters used as map-index keys into fields of
// the receiver ("m.jobsTotal[state]++" with state a parameter →
// {paramIdx: "jobsTotal"}). Consumed by metricflow to check label
// values at call sites of writer methods.
func labelKeyParams(p *Package, decl *ast.FuncDecl) map[int]string {
	params := paramObjects(p, decl)
	var out map[int]string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[key]
		idx, isParam := params[obj]
		if !isParam || idx < 0 {
			return true
		}
		if out == nil {
			out = map[int]string{}
		}
		out[idx] = sel.Sel.Name
		return true
	})
	return out
}

// --- atomicwrite provenance ------------------------------------------

// writesFinalPath reports whether decl performs a final-path write:
// an os create/write/rename whose target is not tmp-derived, or a call
// to a module-internal function already summarized as writing final
// paths. os.Rename always counts — its destination is by definition
// the final path — so a helper wrapping rename carries the fact and
// atomicwrite can require its callers inside jobstore to be audited.
func writesFinalPath(p *Package, decl *ast.FuncDecl, store *Facts) bool {
	tmp := tmpDerived(p, decl.Body)
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		if kind, arg := finalWriteKind(p, fn, call); kind != "" {
			if kind == "rename" || !tmpDerivedExpr(p, arg, tmp) {
				found = true
			}
			return false
		}
		if isInternalPkg(funcPkgPath(fn)) && store.Lookup(fn).WritesFinalPath {
			found = true
			return false
		}
		return true
	})
	return found
}

// finalWriteKind classifies a call as a final-path write primitive:
// "write" (os.WriteFile / os.Create / write-mode os.OpenFile, arg =
// path expression) or "rename" (os.Rename, arg = destination). "" for
// anything else.
func finalWriteKind(p *Package, fn *types.Func, call *ast.CallExpr) (string, ast.Expr) {
	switch {
	case isPkgFunc(fn, "os", "WriteFile") && len(call.Args) >= 1:
		return "write", call.Args[0]
	case isPkgFunc(fn, "os", "Create") && len(call.Args) >= 1:
		return "write", call.Args[0]
	case isPkgFunc(fn, "os", "OpenFile") && len(call.Args) >= 2:
		if openFileWrites(p, call.Args[1]) {
			return "write", call.Args[0]
		}
	case isPkgFunc(fn, "os", "Rename") && len(call.Args) >= 2:
		return "rename", call.Args[1]
	}
	return "", nil
}

// openFileWrites resolves the flag argument of os.OpenFile to its
// constant value and tests the write-mode bits. Unresolvable flags are
// treated as writes (conservative).
func openFileWrites(p *Package, flagArg ast.Expr) bool {
	tv, ok := p.Info.Types[flagArg]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	return v&int64(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_APPEND|os.O_TRUNC) != 0
}

// tmpDerived collects, via a forward pass over the body, the local
// objects whose values are tmp-staging paths: assigned from an
// expression ending in ".tmp" (string concat or literal) or copied
// from another tmp-derived object.
func tmpDerived(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil || out[obj] {
					continue
				}
				if tmpDerivedExpr(p, as.Rhs[i], out) {
					out[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return out
}

// tmpDerivedExpr reports whether e syntactically denotes a ".tmp"
// staging path: a string literal/constant ending in ".tmp", a concat
// whose last operand does, a tmp-derived local, or a filepath.Join
// whose final argument is tmp-derived.
func tmpDerivedExpr(p *Package, e ast.Expr, tmp map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasSuffix(constant.StringVal(tv.Value), ".tmp")
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		return obj != nil && tmp[obj]
	case *ast.BinaryExpr:
		return tmpDerivedExpr(p, x.Y, tmp)
	case *ast.CallExpr:
		if fn := calleeFunc(p, x); isPkgFunc(fn, "path/filepath", "Join") && len(x.Args) > 0 {
			return tmpDerivedExpr(p, x.Args[len(x.Args)-1], tmp)
		}
	}
	return false
}
