package lint

import (
	"go/ast"
	"go/token"
)

// AtomicWrite guards the jobstore's crash-safety contract: every
// record reaching disk must go through the audited tmp→rename sequence
// (write to "<path>.tmp", then os.Rename onto the final name), so a
// crash mid-write can never leave a torn JSON file where recovery
// expects a record. Any direct create/write to a final path inside
// internal/cluster/jobstore is a finding, as is delegating the write to
// a helper outside the package that the fact store summarizes as
// WritesFinalPath — the audit boundary must stay inside jobstore.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "jobstore writes must use the audited tmp+rename sequence; no direct final-path creates/writes",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isInternalPkg(p.ImportPath) || pkgBase(p.ImportPath) != "jobstore" {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAtomicWrites(p, fd, report)
		}
	}
}

func checkAtomicWrites(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	tmp := tmpDerived(p, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		kind, arg := finalWriteKind(p, fn, call)
		switch kind {
		case "write":
			if !tmpDerivedExpr(p, arg, tmp) {
				report(call.Pos(), "%s writes final path %s directly — stage to a .tmp file and os.Rename it into place", calleeLabel(fn), renderExpr(p, arg))
			}
		case "rename":
			// The destination of a rename is the final path by design;
			// what must be tmp-derived is the source.
			if !tmpDerivedExpr(p, call.Args[0], tmp) {
				report(call.Pos(), "os.Rename source %s is not a .tmp staging path — the write before it was not atomic", renderExpr(p, call.Args[0]))
			}
		case "":
			// A module-internal helper outside jobstore that performs
			// final-path writes moves the persistence audit out of this
			// package; the summary comes from the fact store.
			path := funcPkgPath(fn)
			if isInternalPkg(path) && pkgBase(path) != "jobstore" && p.Facts.Lookup(fn).WritesFinalPath {
				report(call.Pos(), "%s performs a final-path write outside jobstore — keep persistence inside the audited tmp+rename sequence", calleeLabel(fn))
			}
		}
		return true
	})
}
