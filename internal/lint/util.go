package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function values, conversions, and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or
// "" for method expressions on unnamed types.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the named type of fn's receiver (dereferenced), or
// nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isSyncMethod reports whether fn is a method named name on
// sync.Mutex or sync.RWMutex.
func isSyncMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	tn := named.Obj().Name()
	return tn == "Mutex" || tn == "RWMutex"
}

// renderExpr prints an expression as source text ("s.mu").
func renderExpr(p *Package, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// signatureHasContext reports whether any parameter of sig is a
// context.Context.
func signatureHasContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isInternalPkg reports whether the import path lives under the
// module's internal tree.
func isInternalPkg(importPath string) bool {
	return strings.Contains(importPath, "/internal/") || strings.HasPrefix(importPath, "internal/")
}

// pkgBase returns the final path element of an import path.
func pkgBase(importPath string) string {
	if i := strings.LastIndexByte(importPath, '/'); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}
