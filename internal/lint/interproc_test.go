package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Tests for the fact-based interprocedural analyzers (errsink,
// atomicwrite, respclose, metricflow): golden true-positive +
// allowlisted cases per analyzer, cross-package fact propagation, and
// the PR 4 engine guarantees (unknown rules, unused directives) for
// the four new rules.

// loadTestPkgWithDeps mounts several testdata packages on one Loader
// (so facts propagate between them) and returns the package loaded
// last. mounts maps testdata/src names to synthetic import paths;
// target selects which import path to load and return — its
// dependencies load implicitly through the import graph.
func loadTestPkgWithDeps(t *testing.T, mounts map[string]string, target string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for name, importPath := range mounts {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatalf("abs: %v", err)
		}
		ld.Mount(importPath, dir)
	}
	p, err := ld.Load(target)
	if err != nil {
		t.Fatalf("load %s: %v", target, err)
	}
	return p
}

func TestErrSinkGolden(t *testing.T) {
	p := loadTestPkg(t, "errsink", "npudvfs/internal/server")
	checkGolden(t, p, []*Analyzer{ErrSink})
}

// TestErrSinkScoped: the same file outside the serving/cluster
// packages produces no errsink findings (the allow directive correctly
// surfaces as unused there).
func TestErrSinkScoped(t *testing.T) {
	p := loadTestPkg(t, "errsink", "npudvfs/internal/ga")
	for _, d := range Run(p, []*Analyzer{ErrSink}) {
		if d.Rule == "errsink" {
			t.Errorf("errsink fired outside its scoped packages: %s", d)
		} else if d.Rule != "directive" || !strings.Contains(d.Message, "unused directive") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestErrSinkCrossPackage pins interprocedural propagation across a
// package boundary: fsio.Commit wraps os.Rename in one package, and
// discarding its error in another is flagged through the fact store.
func TestErrSinkCrossPackage(t *testing.T) {
	p := loadTestPkgWithDeps(t, map[string]string{
		"errsinkdep": "npudvfs/internal/fsio",
		"errsinkx":   "npudvfs/internal/cluster/jobstore",
	}, "npudvfs/internal/cluster/jobstore")
	checkGolden(t, p, []*Analyzer{ErrSink})
}

func TestAtomicWriteGolden(t *testing.T) {
	p := loadTestPkg(t, "atomicwrite", "npudvfs/internal/cluster/jobstore")
	checkGolden(t, p, []*Analyzer{AtomicWrite})
}

// TestAtomicWriteScopedToJobstore: direct writes anywhere else are out
// of scope.
func TestAtomicWriteScopedToJobstore(t *testing.T) {
	p := loadTestPkg(t, "rawwrite", "npudvfs/internal/rawwrite")
	if diags := Run(p, []*Analyzer{AtomicWrite}); len(diags) != 0 {
		t.Fatalf("atomicwrite fired outside jobstore: %v", diags)
	}
}

// TestAtomicWriteCrossPackage: a final-path write delegated to a
// helper outside jobstore is flagged at the jobstore call site via the
// WritesFinalPath fact.
func TestAtomicWriteCrossPackage(t *testing.T) {
	p := loadTestPkgWithDeps(t, map[string]string{
		"rawwrite":     "npudvfs/internal/rawwrite",
		"atomicwritex": "npudvfs/internal/cluster/jobstore",
	}, "npudvfs/internal/cluster/jobstore")
	checkGolden(t, p, []*Analyzer{AtomicWrite})
}

func TestRespCloseGolden(t *testing.T) {
	p := loadTestPkg(t, "respclose", "npudvfs/internal/server/client")
	checkGolden(t, p, []*Analyzer{RespClose})
}

// TestRespCloseScoped: responses outside server/client are someone
// else's contract.
func TestRespCloseScoped(t *testing.T) {
	p := loadTestPkg(t, "respclose", "npudvfs/internal/loadgen")
	for _, d := range Run(p, []*Analyzer{RespClose}) {
		if d.Rule == "respclose" {
			t.Errorf("respclose fired outside server/client: %s", d)
		}
	}
}

// TestRespCloseCrossPackage: a closer helper in another package
// discharges the obligation via its ClosesBody fact; a response from a
// cross-package fetcher still leaks if never closed.
func TestRespCloseCrossPackage(t *testing.T) {
	p := loadTestPkgWithDeps(t, map[string]string{
		"respdep":    "npudvfs/internal/httpx",
		"respclosex": "npudvfs/internal/server",
	}, "npudvfs/internal/server")
	checkGolden(t, p, []*Analyzer{RespClose})
}

func TestMetricFlowGolden(t *testing.T) {
	p := loadTestPkg(t, "metricflow", "npudvfs/internal/server")
	checkGolden(t, p, []*Analyzer{MetricFlow})
}

// TestMetricFlowRequiresMetricsStruct: without a metrics struct +
// render method the analyzer stays silent, so unrelated server files
// are never misread.
func TestMetricFlowRequiresMetricsStruct(t *testing.T) {
	p := mountSource(t, "npudvfs/internal/server", "plain.go", `package server

func plain() int { return 1 }
`)
	if diags := Run(p, []*Analyzer{MetricFlow}); len(diags) != 0 {
		t.Fatalf("metricflow fired without a metrics struct: %v", diags)
	}
}

// TestNewRulesSelectable: each new analyzer resolves by name and lists
// a doc string (the -rules/-list contract).
func TestNewRulesSelectable(t *testing.T) {
	for _, rule := range []string{"errsink", "atomicwrite", "respclose", "metricflow", "allocfree", "lockorder"} {
		as, err := SelectAnalyzers(rule)
		if err != nil || len(as) != 1 || as[0].Name != rule {
			t.Fatalf("SelectAnalyzers(%q) = %v, %v", rule, as, err)
		}
		if as[0].Doc == "" {
			t.Fatalf("analyzer %q has no doc string", rule)
		}
	}
}

// TestNewRulesUnusedAllow: the unused-directive guarantee holds for
// the new rules — a no-op exemption is a finding when its rule runs,
// and silent when it doesn't.
func TestNewRulesUnusedAllow(t *testing.T) {
	for _, rule := range []string{"errsink", "atomicwrite", "respclose", "metricflow", "allocfree", "lockorder"} {
		src := "package server\n\n//lint:allow " + rule + " stale exemption kept for the engine test\nfunc ok() int {\n\treturn 1\n}\n"
		p := mountSource(t, "npudvfs/internal/server", "stale.go", src)
		diags := Run(p, Analyzers())
		if len(diags) != 1 || diags[0].Rule != "directive" || !strings.Contains(diags[0].Message, rule) {
			t.Fatalf("rule %s: got %v, want one unused-directive finding", rule, diags)
		}
		if diags := Run(p, []*Analyzer{DetRand}); len(diags) != 0 {
			t.Fatalf("rule %s: unused directive reported under -rules detrand: %v", rule, diags)
		}
	}
}
