package core

import (
	"math"
	"sync"
	"testing"

	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/profiler"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// fixture is the end-to-end modeling context shared by the tests:
// chip, ground truth, calibrated power model, perf models and a
// baseline profile of a BERT iteration.
type fixture struct {
	chip  *npu.Chip
	input Input
	err   error
}

var (
	fixOnce sync.Once
	fix     fixture
)

func sharedFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		fix = buildFixture()
	})
	if fix.err != nil {
		t.Fatal(fix.err)
	}
	return &fix
}

func buildFixture() fixture {
	chip := npu.Default()
	ground := powersim.Default(chip)
	rig := &powermodel.Rig{
		Chip:    chip,
		Ground:  ground,
		Sensor:  powersim.NewSensor(11),
		Thermal: thermal.Default(),
	}
	trace := workload.BERT().Trace
	off, err := powermodel.Calibrate(rig, trace, powermodel.DefaultCalibrateOptions())
	if err != nil {
		return fixture{err: err}
	}
	prof := profiler.Profiler{Chip: chip, Sensor: rig.Sensor, TimeNoiseFrac: 0.01}
	var powerProfiles []*profiler.Profile
	var timingProfiles []*profiler.Profile
	for _, f := range []float64{1000, 1800} {
		thState := thermal.NewState(rig.Thermal)
		if _, err := prof.WarmupIterations(trace, f, ground, thState, 4000, 0.5); err != nil {
			return fixture{err: err}
		}
		p, err := prof.RunPower(trace, f, ground, thState)
		if err != nil {
			return fixture{err: err}
		}
		powerProfiles = append(powerProfiles, p)
		timingProfiles = append(timingProfiles, p)
	}
	power, err := powermodel.Build(off, powerProfiles, true)
	if err != nil {
		return fixture{err: err}
	}
	series := profiler.BuildSeries(timingProfiles)
	var list []*profiler.Series
	for _, s := range series {
		list = append(list, s)
	}
	perf := perfmodel.FitSeries(list, []units.MHz{1000, 1800})
	baseline, err := prof.Run(trace, 1800)
	if err != nil {
		return fixture{err: err}
	}
	return fixture{
		chip: chip,
		input: Input{
			Chip:    chip,
			Profile: baseline,
			Perf:    perf,
			Power:   power,
		},
	}
}

// testConfig shrinks the GA for test speed while keeping the paper's
// structure.
func testConfig(lossTarget float64) Config {
	cfg := DefaultConfig()
	cfg.PerfLossTarget = lossTarget
	cfg.GA.PopSize = 60
	cfg.GA.Generations = 120
	cfg.GA.Seed = 5
	return cfg
}

func TestGenerateProducesValidStrategy(t *testing.T) {
	f := sharedFixture(t)
	strat, stages, res, err := Generate(f.input, testConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if err := preprocess.Validate(stages, len(f.input.Profile.Records)); err != nil {
		t.Fatal(err)
	}
	if len(strat.Points) == 0 {
		t.Fatal("empty strategy")
	}
	if strat.Points[0].OpIndex != 0 {
		t.Errorf("first point at op %d, want 0", strat.Points[0].OpIndex)
	}
	for _, p := range strat.Points {
		if !f.chip.Curve.Contains(p.FreqMHz) {
			t.Errorf("strategy frequency %g not on the grid", p.FreqMHz)
		}
	}
	if res.BestScore <= 0 {
		t.Errorf("best score = %g", res.BestScore)
	}
	// Elitism plus baseline seeding: history must never regress and
	// the final score must beat or match generation zero.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("score regressed at generation %d", i)
		}
	}
}

func TestGeneratedStrategySavesPowerWithinLossTarget(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	strat, stages, _, err := Generate(f.input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the best assignment's prediction via the strategy.
	ind := make([]int, len(stages))
	grid := f.chip.Curve.Grid()
	for si, st := range stages {
		fm := strat.FreqAt(st.OpStart)
		for gi, g := range grid {
			if g == fm {
				ind[si] = gi
			}
		}
	}
	pred, err := PredictAssignment(f.input, cfg, stages, ind)
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([]int, len(stages))
	for i := range baseline {
		baseline[i] = len(grid) - 1
	}
	base, err := PredictAssignment(f.input, cfg, stages, baseline)
	if err != nil {
		t.Fatal(err)
	}
	loss := float64(pred.TimeMicros/base.TimeMicros) - 1
	if loss > cfg.PerfLossTarget+0.02 {
		t.Errorf("predicted performance loss %.3f exceeds target %.3f", loss, cfg.PerfLossTarget)
	}
	if pred.CoreWatts >= base.CoreWatts {
		t.Errorf("no AICore power saving: %g vs %g W", pred.CoreWatts, base.CoreWatts)
	}
	if pred.SoCWatts >= base.SoCWatts {
		t.Errorf("no SoC power saving: %g vs %g W", pred.SoCWatts, base.SoCWatts)
	}
	// The paper's headline shape: AICore savings out-proportion SoC
	// savings because the uncore is untunable (Sect. 8.2).
	coreSave := 1 - float64(pred.CoreWatts/base.CoreWatts)
	socSave := 1 - float64(pred.SoCWatts/base.SoCWatts)
	if coreSave <= socSave {
		t.Errorf("AICore relative saving (%.3f) should exceed SoC saving (%.3f)", coreSave, socSave)
	}
}

func TestLooserTargetSavesMorePower(t *testing.T) {
	f := sharedFixture(t)
	socAt := func(target float64) float64 {
		cfg := testConfig(target)
		strat, stages, _, err := Generate(f.input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		grid := f.chip.Curve.Grid()
		ind := make([]int, len(stages))
		for si, st := range stages {
			fm := strat.FreqAt(st.OpStart)
			for gi, g := range grid {
				if g == fm {
					ind[si] = gi
				}
			}
		}
		pred, err := PredictAssignment(f.input, cfg, stages, ind)
		if err != nil {
			t.Fatal(err)
		}
		return float64(pred.CoreWatts)
	}
	tight := socAt(0.02)
	loose := socAt(0.10)
	if loose > tight*1.01 {
		t.Errorf("10%% target should allow at least the 2%% target's AICore savings: %g vs %g W", loose, tight)
	}
}

func TestStrategyFreqAtAndSwitches(t *testing.T) {
	s := &Strategy{
		BaselineMHz: 1800,
		Points: []FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 5, FreqMHz: 1200},
			{OpIndex: 9, FreqMHz: 1800},
		},
	}
	cases := []struct {
		op   int
		want units.MHz
	}{{0, 1800}, {4, 1800}, {5, 1200}, {8, 1200}, {9, 1800}, {100, 1800}}
	for _, tc := range cases {
		if got := s.FreqAt(tc.op); got != tc.want {
			t.Errorf("FreqAt(%d) = %g, want %g", tc.op, got, tc.want)
		}
	}
	if s.Switches() != 2 {
		t.Errorf("Switches() = %d, want 2", s.Switches())
	}
}

func TestGenerateValidation(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	bad := f.input
	bad.Chip = nil
	if _, _, _, err := Generate(bad, cfg); err == nil {
		t.Error("nil chip: want error")
	}
	bad = f.input
	bad.Profile = nil
	if _, _, _, err := Generate(bad, cfg); err == nil {
		t.Error("nil profile: want error")
	}
	bad = f.input
	bad.Power = nil
	if _, _, _, err := Generate(bad, cfg); err == nil {
		t.Error("nil power model: want error")
	}
	bad = f.input
	bad.Perf = nil
	if _, _, _, err := Generate(bad, cfg); err == nil {
		t.Error("nil perf models: want error")
	}
}

func TestPredictAssignmentValidation(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	_, stages, _, err := Generate(f.input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictAssignment(f.input, cfg, stages, []int{0}); err == nil && len(stages) != 1 {
		t.Error("gene/stage mismatch: want error")
	}
}

func TestPriorSeedIsFeasibleAndCompetitive(t *testing.T) {
	// The paper observes that at the 2% target the prior individual
	// (LFC at 1600, HFC at 1800) is already near-optimal. Check the
	// prior scores at least as well as the baseline.
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	cfg.Guard = 1 // the paper's setting: the bound is the target itself
	prob, err := buildProblem(f.input, cfg, mustStages(t, f, cfg))
	if err != nil {
		t.Fatal(err)
	}
	seeds := prob.Seeds()
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2 (baseline + prior)", len(seeds))
	}
	baseScore := prob.Score(seeds[0])
	priorScore := prob.Score(seeds[1])
	if priorScore < baseScore {
		t.Errorf("prior individual (%g) should score >= baseline (%g)", priorScore, baseScore)
	}
	basePred := prob.predict(seeds[0])
	priorPred := prob.predict(seeds[1])
	if loss := float64(priorPred.TimeMicros/basePred.TimeMicros) - 1; loss > cfg.PerfLossTarget {
		t.Errorf("prior individual predicted loss %.4f violates the 2%% bound", loss)
	}
}

func mustStages(t *testing.T, f *fixture, cfg Config) []preprocess.Stage {
	t.Helper()
	_, stages, _, err := Generate(f.input, Config{
		FAIMicros:      cfg.FAIMicros,
		PerfLossTarget: cfg.PerfLossTarget,
		PriorLFCMHz:    cfg.PriorLFCMHz,
		GA:             ga.Config{PopSize: 4, Generations: 1, Seed: 1, MutationRate: 0.1, CrossoverRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stages
}

func TestDeltaTSelfConsistency(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	stages := mustStages(t, f, cfg)
	prob, err := buildProblem(f.input, cfg, stages)
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([]int, len(stages))
	for i := range baseline {
		baseline[i] = prob.baselineIdx
	}
	pred := prob.predict(baseline)
	if pred.DeltaT <= 0 {
		t.Fatalf("baseline ΔT = %g, want positive", pred.DeltaT)
	}
	// ΔT must satisfy Eq. 15 against the predicted SoC power.
	if got := units.CelsiusPerWatt(prob.tab.K).Times(pred.SoCWatts); math.Abs(float64(got-pred.DeltaT)) > 0.01 {
		t.Errorf("ΔT = %g inconsistent with k·P = %g", pred.DeltaT, got)
	}
}

// The evaluator's precomputed stage tables must agree with a direct
// per-operator summation of the same models.
func TestEvaluatorMatchesDirectSummation(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	stages := mustStages(t, f, cfg)
	ev, err := NewEvaluator(f.input, cfg, stages)
	if err != nil {
		t.Fatal(err)
	}
	grid := f.chip.Curve.Grid()
	// A deterministic mixed assignment.
	ind := make([]int, len(stages))
	for i := range ind {
		ind[i] = (i*3 + 1) % len(grid)
	}
	pred, err := ev.Predict(ind)
	if err != nil {
		t.Fatal(err)
	}
	// Direct summation of predicted times.
	var direct float64
	for si, st := range stages {
		fm := grid[ind[si]]
		for i := st.OpStart; i < st.OpEnd; i++ {
			rec := &f.input.Profile.Records[i]
			if m, ok := f.input.Perf[rec.Spec.Key()]; ok && rec.Spec.Class == 0 /* Compute */ {
				direct += float64(m.Micros(fm))
			} else {
				direct += rec.DurMicros
			}
		}
	}
	if rel := math.Abs(float64(pred.TimeMicros)-direct) / direct; rel > 1e-9 {
		t.Errorf("evaluator time %.3f diverges from direct sum %.3f", pred.TimeMicros, direct)
	}
}

// Higher frequencies must never predict more time on any single-stage
// change (perf models are monotone within the grid for our operators).
func TestPredictMonotoneInFrequency(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	stages := mustStages(t, f, cfg)
	ev, err := NewEvaluator(f.input, cfg, stages)
	if err != nil {
		t.Fatal(err)
	}
	grid := f.chip.Curve.Grid()
	base := make([]int, len(stages))
	for i := range base {
		base[i] = len(grid) - 1
	}
	basePred, _ := ev.Predict(base)
	for si := 0; si < len(stages); si += 7 {
		ind := append([]int(nil), base...)
		ind[si] = 0 // drop one stage to 1000 MHz
		pred, err := ev.Predict(ind)
		if err != nil {
			t.Fatal(err)
		}
		if pred.TimeMicros+1e-9 < basePred.TimeMicros {
			t.Errorf("stage %d at 1000 MHz predicted faster than baseline", si)
		}
		if pred.CoreWatts > basePred.CoreWatts+1e-9 {
			t.Errorf("stage %d at 1000 MHz predicted more AICore power", si)
		}
	}
}
