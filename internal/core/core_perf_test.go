package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"npudvfs/internal/classify"
	"npudvfs/internal/ga"
	"npudvfs/internal/preprocess"
)

// TestSameSeedStrategyIdenticalAcrossWorkers pins the determinism
// contract end to end on the real problem: the same GA seed must yield
// a byte-identical strategy no matter how many scoring workers run.
func TestSameSeedStrategyIdenticalAcrossWorkers(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	cfg.GA.Generations = 40
	var refStrat *Strategy
	var refRes *ga.Result
	for i, workers := range []int{1, 4, 16} {
		cfg.GA.Workers = workers
		strat, _, res, err := Generate(f.input, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refStrat, refRes = strat, res
			continue
		}
		if !reflect.DeepEqual(strat.Points, refStrat.Points) {
			t.Fatalf("workers=%d: strategy diverged from workers=1:\n%v\nvs\n%v", workers, strat.Points, refStrat.Points)
		}
		if res.BestScore != refRes.BestScore || !reflect.DeepEqual(res.Best, refRes.Best) {
			t.Fatalf("workers=%d: GA result diverged (%v vs %v)", workers, res.BestScore, refRes.BestScore)
		}
	}
}

// TestDeltaScoringMatchesFullOnRealProblem drives the PartialScorer
// surface of the real BERT problem with randomized delta chains and
// bounds the drift from a full re-walk at 1e-9 relative.
func TestDeltaScoringMatchesFullOnRealProblem(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig(0.02)
	results := classify.Trace(f.input.Profile)
	stages, err := preprocess.Stages(f.input.Profile, results, float64(cfg.FAIMicros))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(f.input, cfg, stages)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := ev.Problem().(ga.PartialScorer)
	if !ok {
		t.Fatal("core problem does not implement ga.PartialScorer")
	}
	n, alleles := ps.Genes(), ps.Alleles()
	rng := rand.New(rand.NewSource(7))
	ind := make([]int, n)
	for i := range ind {
		ind[i] = rng.Intn(alleles)
	}
	sums := make([]float64, ps.SumCount())
	ps.InitSums(ind, sums)
	if got, want := ps.ScoreSums(sums), ps.Score(ind); got != want {
		t.Fatalf("ScoreSums∘InitSums = %g, Score = %g (contract requires bit-identity)", got, want)
	}
	fresh := make([]float64, ps.SumCount())
	for step := 0; step < 2000; step++ {
		gene := rng.Intn(n)
		next := rng.Intn(alleles)
		ps.UpdateSums(sums, gene, ind[gene], next)
		ind[gene] = next
		ps.InitSums(ind, fresh)
		ds, fs := ps.ScoreSums(sums), ps.ScoreSums(fresh)
		if math.Abs(ds-fs)/math.Max(math.Abs(fs), 1e-300) > 1e-9 {
			t.Fatalf("step %d: delta score %g drifted from full score %g", step, ds, fs)
		}
	}
}
