// Package core implements the paper's primary contribution: DVFS
// strategy generation for millisecond-scale, operator-level frequency
// control (Sect. 6, Fig. 1).
//
// Given a baseline profile of one workload iteration, per-operator
// performance models (Sect. 4) and the power model (Sect. 5), the
// generator classifies operators by bottleneck, splits the iteration
// into LFC/HFC candidate stages merged by the frequency adjustment
// interval, and searches the per-stage frequency assignment with a
// genetic algorithm. Individuals are scored entirely from the models —
// the property that lets the search evaluate tens of thousands of
// strategies in minutes instead of one training round each
// (Sect. 8.1).
//
// The fitness function reconstructs Eq. 17: with Per the predicted
// performance (reciprocal iteration time), Per_base the baseline
// performance and Power the predicted mean SoC power,
//
//	Score = 2·Per_base²/Power                  if Per ≥ Per_lb
//	Score = (Per/Per_lb)²·Per_base²/Power      otherwise (penalized)
//
// Compliant individuals are ranked purely by power, so the search
// drives power as low as the performance bound allows — which is why
// looser loss targets yield monotonically larger savings (Table 3) and
// solutions sit near the bound. Violating individuals are scored at
// less than half the compliant value and pushed back toward
// feasibility by the quadratic penalty.
package core

import (
	"context"
	"fmt"

	"npudvfs/internal/classify"
	"npudvfs/internal/evaltab"
	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
)

// FreqPoint is one frequency-change instruction of a strategy.
type FreqPoint struct {
	// OpIndex is the trace index at which the new frequency must be
	// in effect (the start of a stage).
	OpIndex int
	// TimeMicros is the switch point on the baseline timeline.
	TimeMicros units.Micros
	// FreqMHz is the core frequency to set.
	FreqMHz units.MHz
	// UncoreScale is the uncore frequency relative to nominal; 0
	// means "leave at nominal" (the paper's platform cannot tune the
	// uncore, Sect. 8.2 — non-zero values are used by the two-domain
	// extension in internal/dualdvfs).
	UncoreScale float64
}

// Strategy is a generated DVFS policy for one workload iteration.
// Because long-lived AI workloads repeat the same operator sequence
// every iteration, the strategy applies to all subsequent iterations.
type Strategy struct {
	// Points holds the frequency changes in trace order. The first
	// point is at operator 0 (initial frequency).
	Points []FreqPoint
	// BaselineMHz is the reference frequency the strategy was
	// generated against.
	BaselineMHz units.MHz
}

// FreqAt returns the frequency the strategy prescribes for a trace
// index.
func (s *Strategy) FreqAt(opIndex int) units.MHz {
	f := s.BaselineMHz
	for _, p := range s.Points {
		if p.OpIndex > opIndex {
			break
		}
		f = p.FreqMHz
	}
	return f
}

// Switches returns how many SetFreq operations the strategy triggers
// per iteration (core frequency changes after the initial point).
func (s *Strategy) Switches() int {
	n := 0
	for i := 1; i < len(s.Points); i++ {
		if !stats.Approx(s.Points[i].FreqMHz, s.Points[i-1].FreqMHz) {
			n++
		}
	}
	return n
}

// UncoreSwitches returns how many uncore frequency changes the
// strategy triggers per iteration, counting from the nominal scale.
func (s *Strategy) UncoreSwitches() int {
	n := 0
	prev := 1.0
	for _, p := range s.Points {
		scale := p.UncoreScale
		//lint:allow floateq exact sentinel: 0 means "uncore scale unset"
		if scale == 0 {
			scale = 1
		}
		if !stats.Approx(scale, prev) {
			n++
		}
		prev = scale
	}
	return n
}

// UncoreScaleAt returns the uncore scale prescribed for a trace index
// (1 when untouched).
func (s *Strategy) UncoreScaleAt(opIndex int) float64 {
	scale := 1.0
	for _, p := range s.Points {
		if p.OpIndex > opIndex {
			break
		}
		//lint:allow floateq exact sentinel: 0 means "uncore scale unset"
		if p.UncoreScale != 0 {
			scale = p.UncoreScale
		} else {
			scale = 1
		}
	}
	return scale
}

// Config tunes strategy generation.
type Config struct {
	// FAIMicros is the frequency adjustment interval used for
	// candidate merging (the paper uses 5 ms).
	FAIMicros units.Micros
	// PerfLossTarget is the allowed relative performance loss, e.g.
	// 0.02 for the paper's production setting.
	PerfLossTarget float64
	// GA configures the genetic search.
	GA ga.Config
	// PriorLFCMHz is the frequency assigned to LFC stages in the
	// prior seed individual (Sect. 6.3.1; the paper uses 1600).
	PriorLFCMHz units.MHz
	// Guard shrinks the loss target used internally to absorb model
	// and actuation error, so measured loss lands under the target.
	// The paper's measured losses run at 80-90% of each target
	// (Table 3), consistent with such a guard band. 0 means no guard
	// (treated as 1).
	Guard float64
}

// DefaultConfig returns the paper's production settings: 5 ms FAI, 2%
// performance loss target, population 200, 600 generations, mutation
// 0.15, prior LFC at 1600 MHz.
func DefaultConfig() Config {
	return Config{
		FAIMicros:      5000,
		PerfLossTarget: 0.02,
		GA:             ga.DefaultConfig(),
		PriorLFCMHz:    1600, //lint:allow unitcheck paper prior-individual LFC frequency (Sect. 6.3.1), a vf.Ascend grid point
		Guard:          0.5,
	}
}

// Input bundles everything strategy generation consumes.
type Input struct {
	Chip *npu.Chip
	// Profile is the baseline-frequency profile of one iteration
	// (normally at the maximum frequency).
	Profile *profiler.Profile
	// Perf maps operator keys to fitted performance models. Operators
	// without a model (e.g. excluded sub-20 µs ones) fall back to
	// their measured baseline duration.
	Perf map[string]perfmodel.Model
	// Power is the constructed power model.
	Power *powermodel.Model
}

// Prediction summarizes the model-predicted behaviour of an
// assignment.
type Prediction struct {
	TimeMicros units.Micros
	SoCWatts   units.Watt
	CoreWatts  units.Watt
	DeltaT     units.Celsius
}

// problem is the ga.Problem for stage-frequency assignment. All
// per-stage, per-frequency quantities are precomputed into a flat
// structure-of-arrays table (evaltab) so Score is a cheap contiguous
// accumulation, making the 200x600 search run in seconds. It also
// implements ga.PartialScorer, so the engine scores crossover and
// mutation children by O(changed genes) delta updates.
type problem struct {
	grid   []units.MHz
	stages []preprocess.Stage
	// tab holds the per-(stage, grid index) quadruples — predicted
	// duration, SoC/AICore energies excluding the temperature term,
	// ∫V dt — plus the Eq. 17 scoring parameters.
	tab *evaltab.Table

	baselineIdx int // grid index of the baseline frequency
	priorIdx    int // grid index of the prior LFC frequency

	// seeds is built once: the GA engine copies seed vectors into its
	// population, so repeat Engine.Run calls on a cached problem stay
	// allocation-free.
	seeds [][]int
}

func (p *problem) Genes() int   { return len(p.stages) }
func (p *problem) Alleles() int { return len(p.grid) }

func (p *problem) Seeds() [][]int {
	if p.seeds == nil {
		baseline := make([]int, len(p.stages))
		prior := make([]int, len(p.stages))
		for i := range p.stages {
			baseline[i] = p.baselineIdx
			prior[i] = p.baselineIdx
			if !p.stages[i].Sensitive {
				prior[i] = p.priorIdx
			}
		}
		p.seeds = [][]int{baseline, prior}
	}
	return p.seeds
}

// predict computes iteration time, mean powers and the self-consistent
// temperature rise for an assignment. Over a fixed assignment the SoC
// power is affine in ΔT, so the fixed point is solved in closed form
// (powermodel.SolveDeltaTLinear) instead of iterating.
func (p *problem) predict(ind []int) Prediction {
	pr := p.tab.Predict(ind)
	return Prediction{
		TimeMicros: units.Micros(pr.TimeMicros),
		SoCWatts:   units.Watt(pr.SoCWatts),
		CoreWatts:  units.Watt(pr.CoreWatts),
		DeltaT:     units.Celsius(pr.DeltaTC),
	}
}

func (p *problem) Score(ind []int) float64 { return p.tab.Score(ind) }

// Partial-sum scoring hooks (ga.PartialScorer). Safe for concurrent
// use: the table is read-only after buildProblem.
func (p *problem) SumCount() int                      { return evaltab.Quad }
func (p *problem) InitSums(ind []int, sums []float64) { p.tab.InitSums(ind, sums) }
func (p *problem) UpdateSums(sums []float64, gene, oldAllele, newAllele int) {
	p.tab.UpdateSums(sums, gene, oldAllele, newAllele)
}
func (p *problem) ScoreSums(sums []float64) float64 { return p.tab.ScoreSums(sums) }

// Batch scoring hooks (ga.BatchScorer / ga.BatchPartialScorer): whole
// cohorts sweep the SoA table gene-major, bit-identical to the
// per-candidate paths.
func (p *problem) ScoreBatch(genes []int, count int, scores []float64) {
	p.tab.ScoreBatch(genes, count, scores)
}
func (p *problem) InitSumsBatch(genes []int, count int, sums []float64) {
	p.tab.InitSumsBatch(genes, count, sums)
}

// Generate runs the full strategy-generation pipeline of Fig. 1 on a
// profiled iteration and returns the strategy, the stage list and the
// GA convergence result.
func Generate(in Input, cfg Config) (*Strategy, []preprocess.Stage, *ga.Result, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use GenerateContext
	return GenerateContext(context.Background(), in, cfg)
}

// GenerateContext is Generate under a context: the genetic search — by
// far the dominant cost — observes cancellation at generation
// boundaries, so a timed-out or abandoned generation request stops
// burning CPU within milliseconds. The returned error wraps ctx.Err()
// when the search was cancelled.
func GenerateContext(ctx context.Context, in Input, cfg Config) (*Strategy, []preprocess.Stage, *ga.Result, error) {
	if err := validateInput(in); err != nil {
		return nil, nil, nil, err
	}
	results := classify.Trace(in.Profile)
	stages, err := preprocess.Stages(in.Profile, results, float64(cfg.FAIMicros))
	if err != nil {
		return nil, nil, nil, err
	}
	prob, err := buildProblem(in, cfg, stages)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := ga.RunContext(ctx, prob, cfg.GA)
	if err != nil {
		return nil, nil, nil, err
	}
	return assignmentToStrategy(prob, res.Best), stages, res, nil
}

// Evaluator scores and predicts stage-frequency assignments without
// re-running the expensive precomputation: the model-based policy
// evaluation the paper credits for assessing 20,000 strategies within
// five minutes (Sect. 8.1).
type Evaluator struct {
	prob *problem
}

// NewEvaluator precomputes the per-stage tables for an input and stage
// list.
func NewEvaluator(in Input, cfg Config, stages []preprocess.Stage) (*Evaluator, error) {
	if err := validateInput(in); err != nil {
		return nil, err
	}
	prob, err := buildProblem(in, cfg, stages)
	if err != nil {
		return nil, err
	}
	return &Evaluator{prob: prob}, nil
}

// Score returns the Eq. 17 fitness of an assignment.
func (e *Evaluator) Score(ind []int) float64 { return e.prob.Score(ind) }

// Predict returns the model-predicted time, powers and ΔT of an
// assignment.
func (e *Evaluator) Predict(ind []int) (Prediction, error) {
	if len(ind) != e.prob.Genes() {
		return Prediction{}, fmt.Errorf("core: %d genes for %d stages", len(ind), e.prob.Genes())
	}
	return e.prob.predict(ind), nil
}

// Genes returns the number of stages (genes per individual).
func (e *Evaluator) Genes() int { return e.prob.Genes() }

// Grid returns the frequency grid indexed by gene values.
func (e *Evaluator) Grid() []units.MHz { return e.prob.grid }

// BaselineIndex returns the gene value of the baseline frequency.
func (e *Evaluator) BaselineIndex() int { return e.prob.baselineIdx }

// Problem exposes the evaluator's precomputed assignment problem as a
// ga.Problem (it also satisfies ga.PartialScorer, enabling the
// engine's incremental scoring). Useful for benchmarks and for callers
// that drive ga.Run directly against a prebuilt evaluator.
func (e *Evaluator) Problem() ga.Problem { return e.prob }

// Strategy converts an assignment into a deduplicated switch-point
// strategy.
func (e *Evaluator) Strategy(ind []int) *Strategy {
	return assignmentToStrategy(e.prob, ind)
}

// PredictAssignment exposes the model-based prediction for an explicit
// stage-frequency assignment; used by experiments to compare targets.
func PredictAssignment(in Input, cfg Config, stages []preprocess.Stage, ind []int) (Prediction, error) {
	ev, err := NewEvaluator(in, cfg, stages)
	if err != nil {
		return Prediction{}, err
	}
	return ev.Predict(ind)
}

func validateInput(in Input) error {
	switch {
	case in.Chip == nil:
		return fmt.Errorf("core: nil chip")
	case in.Profile == nil || len(in.Profile.Records) == 0:
		return fmt.Errorf("core: empty profile")
	case in.Power == nil:
		return fmt.Errorf("core: nil power model")
	case in.Perf == nil:
		return fmt.Errorf("core: nil performance models")
	}
	return nil
}

func buildProblem(in Input, cfg Config, stages []preprocess.Stage) (*problem, error) {
	grid := in.Chip.Curve.Grid()
	p := &problem{
		grid:        grid,
		stages:      stages,
		tab:         evaltab.New(len(stages), len(grid)),
		baselineIdx: len(grid) - 1,
	}
	p.tab.K = float64(in.Power.K)
	p.tab.TemperatureAware = in.Power.TemperatureAware
	if p.tab.TemperatureAware {
		p.tab.GammaCore = in.Power.AICore.Gamma
		p.tab.GammaSoC = in.Power.SoC.Gamma
	}
	// Locate the prior LFC frequency on the grid.
	p.priorIdx = p.baselineIdx
	for i, f := range grid {
		if stats.Approx(f, cfg.PriorLFCMHz) {
			p.priorIdx = i
		}
	}
	for si, st := range stages {
		for gi, f := range grid {
			v := float64(in.Chip.Curve.Voltage(f))
			for i := st.OpStart; i < st.OpEnd; i++ {
				rec := &in.Profile.Records[i]
				dur := rec.DurMicros
				if rec.Spec.Class == op.Compute {
					if m, ok := in.Perf[rec.Spec.Key()]; ok {
						dur = float64(m.Micros(f))
					}
				}
				core, soc := in.Power.OpPowerAt(rec.Spec.Key(), f, 0)
				p.tab.Add(si, gi, dur, float64(soc)*dur, float64(core)*dur, v*dur)
			}
		}
	}
	// Baseline performance and the compliance bound.
	baseline := make([]int, len(stages))
	for i := range baseline {
		baseline[i] = p.baselineIdx
	}
	basePred := p.predict(baseline)
	if basePred.TimeMicros <= 0 {
		return nil, fmt.Errorf("core: degenerate baseline prediction")
	}
	guard := cfg.Guard
	if guard <= 0 || guard > 1 {
		guard = 1
	}
	p.tab.PerBaseline = 1 / float64(basePred.TimeMicros)
	p.tab.PerLB = p.tab.PerBaseline * (1 - cfg.PerfLossTarget*guard)
	p.Seeds() // build the seed vectors now: the problem is immutable (and trivially concurrency-safe) once returned
	return p, nil
}

// assignmentToStrategy converts a per-stage frequency assignment into
// a deduplicated switch-point strategy.
func assignmentToStrategy(p *problem, ind []int) *Strategy {
	s := &Strategy{BaselineMHz: p.grid[p.baselineIdx]}
	last := units.MHz(-1)
	for si, g := range ind {
		f := p.grid[g]
		if stats.Approx(f, last) {
			continue
		}
		s.Points = append(s.Points, FreqPoint{
			OpIndex:    p.stages[si].OpStart,
			TimeMicros: units.Micros(p.stages[si].StartMicros),
			FreqMHz:    f,
		})
		last = f
	}
	return s
}
