package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearExact(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("singular system: want error")
	}
}

func TestSolveLinearBadDims(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system: want error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system: want error")
	}
}

func TestLeastSquaresRecovers(t *testing.T) {
	// y = 3 + 2x with exact data: LSQ must recover exactly.
	xs := []float64{0, 1, 2, 3, 4}
	design := make([][]float64, len(xs))
	ys := make([]float64, len(xs))
	for i, x := range xs {
		design[i] = []float64{1, x}
		ys[i] = 3 + 2*x
	}
	beta, err := LeastSquares(design, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-10 || math.Abs(beta[1]-2) > 1e-10 {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("1 observation, 2 params: want error")
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 2*x + 0.5*x*x
	}
	beta, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-9 {
			t.Errorf("beta[%d] = %g, want %g", i, beta[i], want[i])
		}
	}
}

func TestLinFitWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 10 + 0.5*xs[i] + rng.NormFloat64()*0.01
	}
	a, b, err := LinFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-10) > 0.05 || math.Abs(b-0.5) > 0.001 {
		t.Errorf("fit = (%g, %g), want (10, 0.5)", a, b)
	}
}

func TestCurveFitExponential(t *testing.T) {
	model := func(x float64, p []float64) float64 {
		return p[0]*math.Exp(p[1]*x) + p[2]
	}
	truth := []float64{2, 0.8, 5}
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = model(x, truth)
	}
	p, ssr, err := CurveFit(model, xs, ys, []float64{1, 0.5, 1}, DefaultLMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ssr > 1e-8 {
		t.Fatalf("residual %g too large (p=%v)", ssr, p)
	}
	for i := range truth {
		if math.Abs(p[i]-truth[i]) > 1e-3 {
			t.Errorf("p[%d] = %g, want %g", i, p[i], truth[i])
		}
	}
}

func TestCurveFitRespectsBounds(t *testing.T) {
	model := func(x float64, p []float64) float64 {
		return p[0]*math.Exp(p[1]*x) + p[2]
	}
	// Data generated with exponent 3, but the fit clamps b to [0, 1]
	// (mirroring the paper's clamp of Func. 3's b to [0, 10]).
	truth := []float64{1, 3, 0}
	xs := []float64{0, 0.5, 1, 1.5, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = model(x, truth)
	}
	opt := DefaultLMOptions()
	opt.Lower = []float64{-1e9, 0, -1e9}
	opt.Upper = []float64{1e9, 1, 1e9}
	p, _, err := CurveFit(model, xs, ys, []float64{1, 0.5, 0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] < 0 || p[1] > 1 {
		t.Errorf("bounded parameter escaped box: b = %g", p[1])
	}
}

func TestCurveFitErrors(t *testing.T) {
	model := func(x float64, p []float64) float64 { return p[0] * x }
	if _, _, err := CurveFit(model, []float64{1}, []float64{1, 2}, []float64{0}, LMOptions{}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, _, err := CurveFit(model, []float64{1}, []float64{1}, []float64{0, 0}, LMOptions{}); err == nil {
		t.Error("underdetermined: want error")
	}
}

func TestAbsRelError(t *testing.T) {
	if got := AbsRelError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsRelError(110,100) = %g, want 0.1", got)
	}
	if got := AbsRelError(0, 0); got != 0 {
		t.Errorf("AbsRelError(0,0) = %g, want 0", got)
	}
	if got := AbsRelError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsRelError(1,0) = %g, want +Inf", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestFractionBelowAndCDF(t *testing.T) {
	xs := []float64{0.01, 0.02, 0.05, 0.2}
	if got := FractionBelow(xs, 0.05); got != 0.75 {
		t.Errorf("FractionBelow = %g, want 0.75", got)
	}
	pts := EmpiricalCDF(xs, []float64{0.01, 0.1, 1})
	wants := []float64{0.25, 0.75, 1}
	for i, p := range pts {
		if p.Fraction != wants[i] {
			t.Errorf("CDF[%d] = %g, want %g", i, p.Fraction, wants[i])
		}
	}
}

func TestBucket(t *testing.T) {
	xs := []float64{0.005, 0.03, 0.07, 0.5}
	counts := Bucket(xs, []float64{0.01, 0.05, 0.10})
	want := []int{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
}

// Property: LinFit on exact linear data recovers slope/intercept for
// arbitrary coefficients.
func TestQuickLinFitExact(t *testing.T) {
	prop := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{-2, -1, 0, 1, 2, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		ga, gb, err := LinFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(ga-a) < 1e-8 && math.Abs(gb-b) < 1e-8
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"exact", 1.5, 1.5, 1e-9, true},
		{"within-rel", 1e9, 1e9 + 0.5, 1e-9, true},
		{"outside-rel", 1e9, 1e9 + 10, 1e-9, false},
		{"abs-floor-small", 1e-12, 0, 1e-9, true},
		{"small-distinct", 1e-6, 2e-6, 1e-9, false},
		{"inf-same", math.Inf(1), math.Inf(1), 1e-9, true},
		{"inf-vs-finite", math.Inf(1), 1e300, 1e-9, false},
		{"nan", math.NaN(), math.NaN(), 1e-9, false},
		{"neg-symmetric", -3.0, -3.0 - 1e-12, 1e-9, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: AlmostEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
		if got := AlmostEqual(c.b, c.a, c.tol); got != c.want {
			t.Errorf("%s: AlmostEqual not symmetric for (%v, %v)", c.name, c.a, c.b)
		}
	}
}

func TestApprox(t *testing.T) {
	if !Approx(0.1+0.2, 0.3) {
		t.Error("Approx(0.1+0.2, 0.3) = false; the helper exists for exactly this case")
	}
	if Approx(0.3, 0.3001) {
		t.Error("Approx(0.3, 0.3001) = true, want false")
	}
	if !Approx(0.0, 0.0) {
		t.Error("Approx(0, 0) = false")
	}
}
