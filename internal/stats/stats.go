// Package stats provides the small numerical toolkit the modeling
// packages need: dense linear least squares, a Levenberg-Marquardt
// nonlinear fitter (the stdlib replacement for scipy's curve_fit used
// by the paper), and error metrics/CDF helpers used in the evaluation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("stats: singular system")

// SolveLinear solves the square system A x = b in place using Gaussian
// elimination with partial pivoting. A and b are overwritten.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions %dx%d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// LeastSquares solves min ||X beta - y||² via the normal equations.
// X has one row per observation and one column per parameter. Suitable
// for the tiny, well-conditioned systems used in this repository.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 || len(y) != m {
		return nil, fmt.Errorf("stats: bad design matrix dimensions %d rows, %d targets", m, len(y))
	}
	p := len(x[0])
	if p == 0 || m < p {
		return nil, fmt.Errorf("stats: %d observations cannot determine %d parameters", m, p)
	}
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r := 0; r < m; r++ {
		if len(x[r]) != p {
			return nil, fmt.Errorf("stats: design row %d has %d columns, want %d", r, len(x[r]), p)
		}
		for i := 0; i < p; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < p; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	return SolveLinear(xtx, xty)
}

// PolyFit fits y = sum_k beta_k x^k of the given degree.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	design := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		v := 1.0
		for k := 0; k <= degree; k++ {
			row[k] = v
			v *= x
		}
		design[i] = row
	}
	return LeastSquares(design, ys)
}

// LinFit fits y = a + b*x and returns (a, b).
func LinFit(xs, ys []float64) (a, b float64, err error) {
	beta, err := PolyFit(xs, ys, 1)
	if err != nil {
		return 0, 0, err
	}
	return beta[0], beta[1], nil
}

// ModelFunc evaluates a parametric model at x with parameters p.
type ModelFunc func(x float64, p []float64) float64

// LMOptions tunes CurveFit.
type LMOptions struct {
	// MaxIter bounds the number of Levenberg-Marquardt iterations.
	MaxIter int
	// Tol is the relative improvement threshold for convergence.
	Tol float64
	// Lower and Upper, when non-nil, clamp each parameter to a box,
	// mirroring scipy curve_fit's bounds (the paper clamps Func. 3's
	// exponent b to [0, 10] to avoid overflow).
	Lower, Upper []float64
}

// DefaultLMOptions returns reasonable defaults.
func DefaultLMOptions() LMOptions { return LMOptions{MaxIter: 200, Tol: 1e-12} }

// CurveFit fits model parameters to (xs, ys) by Levenberg-Marquardt
// with numerically differentiated Jacobians, starting from p0.
// It returns the fitted parameters and the final sum of squared
// residuals.
func CurveFit(model ModelFunc, xs, ys, p0 []float64, opt LMOptions) ([]float64, float64, error) {
	if len(xs) != len(ys) {
		return nil, 0, fmt.Errorf("stats: CurveFit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < len(p0) {
		return nil, 0, fmt.Errorf("stats: %d points cannot determine %d parameters", len(xs), len(p0))
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-12
	}
	p := append([]float64(nil), p0...)
	clamp := func(p []float64) {
		for i := range p {
			if opt.Lower != nil && p[i] < opt.Lower[i] {
				p[i] = opt.Lower[i]
			}
			if opt.Upper != nil && p[i] > opt.Upper[i] {
				p[i] = opt.Upper[i]
			}
		}
	}
	clamp(p)
	ssr := func(p []float64) float64 {
		s := 0.0
		for i, x := range xs {
			r := ys[i] - model(x, p)
			s += r * r
		}
		return s
	}
	cur := ssr(p)
	lambda := 1e-3
	np := len(p)
	smallSteps := 0 // consecutive sub-tolerance improvements
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Jacobian by forward differences.
		jac := make([][]float64, len(xs))
		res := make([]float64, len(xs))
		for i, x := range xs {
			res[i] = ys[i] - model(x, p)
			row := make([]float64, np)
			for j := 0; j < np; j++ {
				h := 1e-6 * (math.Abs(p[j]) + 1e-6)
				pj := append([]float64(nil), p...)
				pj[j] += h
				clamp(pj)
				dh := pj[j] - p[j]
				if dh == 0 {
					// Pinned at a bound; try the other direction.
					pj[j] = p[j] - h
					clamp(pj)
					dh = pj[j] - p[j]
					if dh == 0 {
						continue
					}
				}
				row[j] = (model(x, pj) - model(x, p)) / dh
			}
			jac[i] = row
		}
		// Normal equations with damping: (JtJ + lambda*diag) d = Jt r.
		jtj := make([][]float64, np)
		for i := range jtj {
			jtj[i] = make([]float64, np)
		}
		jtr := make([]float64, np)
		for r := range jac {
			for i := 0; i < np; i++ {
				jtr[i] += jac[r][i] * res[r]
				for j := 0; j < np; j++ {
					jtj[i][j] += jac[r][i] * jac[r][j]
				}
			}
		}
		improved := false
		for attempt := 0; attempt < 16; attempt++ {
			aug := make([][]float64, np)
			for i := range aug {
				aug[i] = append([]float64(nil), jtj[i]...)
				aug[i][i] += lambda * (jtj[i][i] + 1e-12)
			}
			delta, err := SolveLinear(aug, append([]float64(nil), jtr...))
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, np)
			for i := range trial {
				trial[i] = p[i] + delta[i]
			}
			clamp(trial)
			trialSSR := ssr(trial)
			if trialSSR < cur {
				rel := (cur - trialSSR) / math.Max(cur, 1e-300)
				p, cur = trial, trialSSR
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				// A single tiny improvement can be an artifact of a
				// large damping factor; require three in a row
				// before declaring convergence.
				if rel < opt.Tol {
					smallSteps++
					if smallSteps >= 3 {
						return p, cur, nil
					}
				} else {
					smallSteps = 0
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
	}
	return p, cur, nil
}

// DefaultTol is the tolerance Approx uses: tight enough that any two
// values that were computed differently on purpose stay distinguishable,
// loose enough to absorb non-associative float noise from refactors.
const DefaultTol = 1e-9

// AlmostEqual reports whether a and b agree to within tol, using an
// absolute floor of tol for sub-unit magnitudes and a relative bound
// above it. It is the approved way to compare floats on compute paths
// (dvfslint's floateq rule forbids raw ==/!= outside this package).
// Exact equality — including matching infinities — short-circuits;
// NaN never equals anything, and an infinity never equals a finite
// value (without the explicit check, Inf-x = Inf and tol*Inf = Inf
// would make them compare equal). It is generic over defined float64
// types so unit-typed quantities (units.MHz, units.Micros, …) compare
// without laundering through float64 — and because both arguments
// share one type parameter, comparing an MHz against a Micros is a
// compile error, matching unitcheck's arithmetic rule.
func AlmostEqual[T ~float64](a, b T, tol float64) bool {
	x, y := float64(a), float64(b)
	if x == y {
		return true
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) {
		return false
	}
	d := math.Abs(x - y)
	return d <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
}

// Approx is AlmostEqual at DefaultTol.
func Approx[T ~float64](a, b T) bool { return AlmostEqual(a, b, DefaultTol) }

// AbsRelError returns |pred - actual| / |actual|.
func AbsRelError(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / math.Abs(actual)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation on the sorted copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// FractionBelow returns the fraction of xs that is <= bound: one point
// of an empirical CDF.
func FractionBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDF returns the empirical CDF of xs evaluated at each of the given
// thresholds.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// EmpiricalCDF evaluates the CDF of xs at the supplied thresholds.
func EmpiricalCDF(xs, thresholds []float64) []CDFPoint {
	pts := make([]CDFPoint, len(thresholds))
	for i, th := range thresholds {
		pts[i] = CDFPoint{X: th, Fraction: FractionBelow(xs, th)}
	}
	return pts
}

// Bucket counts how many values fall into (lo, hi] style error bands,
// used by Table 2. Bounds must be ascending; values above the last
// bound land in the final overflow bucket.
func Bucket(xs, bounds []float64) []int {
	counts := make([]int, len(bounds)+1)
	for _, x := range xs {
		placed := false
		for i, b := range bounds {
			if x <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}
