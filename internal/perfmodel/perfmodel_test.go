package perfmodel

import (
	"math"
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

var gridEval = []units.MHz{1100, 1200, 1300, 1500, 1600, 1700}

func TestFitFunc2ExactOnOwnForm(t *testing.T) {
	truth := Model{A: 0.01, C: 40000}
	freqs := []units.MHz{1000, 1800}
	ts := []units.Micros{truth.Micros(1000), truth.Micros(1800)}
	m, err := FitFunc2(freqs, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-truth.A) > 1e-12 || math.Abs(m.C-truth.C) > 1e-6 {
		t.Errorf("fit = %+v, want %+v", m, truth)
	}
}

func TestFitFunc2LeastSquaresPath(t *testing.T) {
	truth := Model{A: 0.02, C: 90000}
	var fs []units.MHz
	var ts []units.Micros
	for f := units.MHz(1000); f <= 1800; f += 100 {
		fs = append(fs, f)
		ts = append(ts, truth.Micros(f))
	}
	m, err := FitFunc2(fs, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-truth.A) > 1e-9 || math.Abs(m.C-truth.C) > 1e-3 {
		t.Errorf("LSQ fit = %+v, want %+v", m, truth)
	}
}

func TestFitFunc1ExactOnOwnForm(t *testing.T) {
	truth := QuadModel{A: 0.008, B: 5, C: 30000}
	fs := []units.MHz{1000, 1400, 1800}
	ts := []units.Micros{truth.Micros(1000), truth.Micros(1400), truth.Micros(1800)}
	m, err := FitFunc1(fs, ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range gridEval {
		if e := stats.AbsRelError(float64(m.Micros(f)), float64(truth.Micros(f))); e > 1e-9 {
			t.Errorf("Func1 self-fit error %g at %g MHz", e, f)
		}
	}
}

func TestFitFunc3RecoversExponential(t *testing.T) {
	truth := ExpModel{A: 5000, B: 2, C: 20000}
	fs := []units.MHz{1000, 1200, 1400, 1600, 1800}
	ts := make([]units.Micros, len(fs))
	for i, f := range fs {
		ts[i] = truth.Micros(f)
	}
	m, err := FitFunc3(fs, ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range gridEval {
		if e := stats.AbsRelError(float64(m.Micros(f)), float64(truth.Micros(f))); e > 0.01 {
			t.Errorf("Func3 self-fit error %g at %g MHz", e, f)
		}
	}
	if m.B < 0 || m.B > 10 {
		t.Errorf("Func3 exponent %g outside the paper's [0, 10] clamp", m.B)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := FitFunc2([]units.MHz{1000}, []units.Micros{5}); err == nil {
		t.Error("one point: want error")
	}
	if _, err := FitFunc2([]units.MHz{1000, 1000}, []units.Micros{5, 5}); err == nil {
		t.Error("duplicate frequencies: want error")
	}
	if _, err := FitFunc2([]units.MHz{1000, -1800}, []units.Micros{5, 4}); err == nil {
		t.Error("negative frequency: want error")
	}
	if _, err := FitFunc2([]units.MHz{1000, 1800}, []units.Micros{5, 0}); err == nil {
		t.Error("zero duration: want error")
	}
	if _, err := FitFunc1([]units.MHz{1000, 1800}, []units.Micros{5, 4}); err == nil {
		t.Error("Func1 with two points: want error")
	}
	if _, err := FitFunc3([]units.MHz{1000, 1800}, []units.Micros{5, 4}); err == nil {
		t.Error("Func3 with two points: want error")
	}
	if _, err := FitFunc2([]units.MHz{1000, 1800}, []units.Micros{5}); err == nil {
		t.Error("length mismatch: want error")
	}
}

// Fitting Func. 2 at the grid endpoints must predict interior points
// of simulator-generated operators within a few percent (the paper
// reports a 1.96% average across >5,000 operators).
func TestFunc2AccurateOnSimulatedOperators(t *testing.T) {
	chip := npu.Default()
	for _, s := range workload.RepresentativeOps() {
		spec := s
		fit := []units.MHz{1000, 1800}
		ts := []units.Micros{units.Micros(chip.Time(&spec, 1000)), units.Micros(chip.Time(&spec, 1800))}
		m, err := FitFunc2(fit, ts)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for _, f := range gridEval {
			e := stats.AbsRelError(float64(m.Micros(f)), chip.Time(&spec, float64(f)))
			errs = append(errs, e)
			if e > 0.10 {
				t.Errorf("%s at %g MHz: error %.3f, want < 10%% (worst-case tail)", spec.Name, f, e)
			}
		}
		if mean := stats.Mean(errs); mean > 0.05 {
			t.Errorf("%s: mean error %.3f, want < 5%%", spec.Name, mean)
		}
	}
}

func TestAnalyticMatchesChip(t *testing.T) {
	chip := npu.Default()
	specs := workload.RepresentativeOps()
	a := Analytic{Chip: chip, Spec: &specs[0]}
	for _, f := range chip.Curve.Grid() {
		if float64(a.Micros(f)) != chip.Time(&specs[0], float64(f)) {
			t.Errorf("analytic time diverges from chip at %g MHz", f)
		}
	}
}

// Fig. 4: an operator engineered so both saturation points fall inside
// the DVFS window must expose breakpoints, and slopes must increase
// left to right.
func TestAnalyticBreakpointsInsideWindow(t *testing.T) {
	chip := npu.Default()
	spec := &op.Spec{
		Name: "fig4", Class: op.Compute, Scenario: op.PingPongFreeIndep,
		Blocks: 4, LoadBytes: 4 << 20, StoreBytes: 2 << 20,
		CoreCycles: 2000, CorePipe: op.Vector, L2Hit: 0.55,
	}
	a := Analytic{Chip: chip, Spec: spec}
	bps := a.Breakpoints(1000, 1800, 1)
	if len(bps) == 0 {
		t.Fatal("no breakpoints found; expected at least the Ld saturation point")
	}
	fsLd := chip.SaturationMHz(chip.CLoad, spec.L2Hit)
	found := false
	for _, b := range bps {
		if math.Abs(float64(b)-fsLd) < 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("breakpoints %v miss Ld saturation %g MHz", bps, fsLd)
	}
}

func TestErrorsHelper(t *testing.T) {
	m := Model{A: 0.01, C: 10000}
	fs := []units.MHz{1000, 2000}
	exact := []units.Micros{m.Micros(1000), m.Micros(2000)}
	errs := Errors(m, fs, exact)
	for i, e := range errs {
		if e > 1e-12 {
			t.Errorf("error[%d] = %g, want 0", i, e)
		}
	}
	errs = Errors(m, []units.MHz{1000}, []units.Micros{2 * m.Micros(1000)})
	if math.Abs(errs[0]-0.5) > 1e-12 {
		t.Errorf("error = %g, want 0.5", errs[0])
	}
}

func TestFitSeriesAndSelectPoints(t *testing.T) {
	chip := npu.Default()
	p := profiler.NewNoiseless(chip)
	trace := workload.RepresentativeOps()
	var profiles []*profiler.Profile
	for _, f := range chip.Curve.Grid() {
		prof, err := p.Run(trace, float64(f))
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	series := profiler.BuildInstanceSeries(profiles)
	if len(series) != len(trace) {
		t.Fatalf("got %d series, want %d", len(series), len(trace))
	}
	models := FitSeries(series, []units.MHz{1000, 1800})
	if len(models) != len(trace) {
		t.Fatalf("got %d models, want %d", len(models), len(trace))
	}
	var errs []float64
	for _, s := range series {
		m := models[s.Key]
		for _, f := range gridEval {
			e := stats.AbsRelError(float64(m.Micros(f)), chip.Time(s.Spec, float64(f)))
			errs = append(errs, e)
			if e > 0.10 {
				t.Errorf("%s at %g: error %.3f", s.Key, f, e)
			}
		}
	}
	if mean := stats.Mean(errs); mean > 0.05 {
		t.Errorf("mean fit error %.3f, want < 5%%", mean)
	}
	// Requesting a frequency that was never profiled fails selection.
	if _, _, ok := SelectPoints(series[0], []units.MHz{999}); ok {
		t.Error("SelectPoints with missing frequency returned ok")
	}
	// FitSeries skips series lacking the fit frequencies.
	if got := FitSeries(series, []units.MHz{999, 1800}); len(got) != 0 {
		t.Errorf("FitSeries with missing frequency produced %d models", len(got))
	}
}

func TestBreakpointsDegenerateRanges(t *testing.T) {
	chip := npu.Default()
	specs := workload.RepresentativeOps()
	a := Analytic{Chip: chip, Spec: &specs[0]}
	if pts := a.Breakpoints(1800, 1000, 1); pts != nil {
		t.Error("reversed range should yield nil")
	}
	if pts := a.Breakpoints(1000, 1800, 0); pts != nil {
		t.Error("zero step should yield nil")
	}
}
