// Package perfmodel implements the paper's DVFS-aware performance
// model (Sect. 4): operator execution time as a function of the
// AICore frequency.
//
// The timeline analysis of Sect. 4.2 shows that an operator's cycle
// count is a convex piecewise-linear function of frequency. Because
// the PMU cannot reveal the breakpoints and profiling at many
// frequencies is expensive, the paper fits smooth convex surrogates
// from data at two or three frequencies (Sect. 4.3):
//
//	Func. 1: T(f) = (a·f² + b·f + c) / f    (three parameters)
//	Func. 2: T(f) =  a·f  +       c  / f    (two parameters; chosen)
//	Func. 3: T(f) = (a·e^{b·f} + c) / f     (three parameters)
//
// Func. 2 admits a direct linear solution (Cycle = a·f² + c is linear
// in f² and 1), which is why it fits thousands of operators orders of
// magnitude faster than curve_fit-style iterative fitting, with
// comparable accuracy — the trade-off quantified in Sect. 7.2.
//
// Frequencies and durations cross this package's API as units.MHz and
// units.Micros; the fit coefficients (A, B, C) stay raw float64 — they
// are mixed-dimension regression parameters, not physical quantities.
package perfmodel

import (
	"fmt"
	"math"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
)

// TimeModel predicts operator execution time from core frequency.
type TimeModel interface {
	// Micros returns the predicted duration at frequency f.
	Micros(f units.MHz) units.Micros
}

// Model is Func. 2, the production model: T(f) = A·f + C/f, i.e.
// Cycle(f) = A·f² + C.
type Model struct {
	A, C float64
}

// Micros implements TimeModel.
func (m Model) Micros(f units.MHz) units.Micros {
	x := float64(f)
	return units.Micros(m.A*x + m.C/x)
}

// Cycles returns the modeled cycle count at frequency f.
func (m Model) Cycles(f units.MHz) float64 {
	x := float64(f)
	return m.A*x*x + m.C
}

// FitFunc2 fits Func. 2 from measured (frequency, duration) pairs.
// Two points solve the parameters exactly; more points use linear
// least squares on Cycle = A·f² + C. This is the direct calculation
// the paper credits for Func. 2's ~24x fitting-speed advantage.
func FitFunc2(freqs []units.MHz, durs []units.Micros) (Model, error) {
	if err := checkSeries(freqs, durs, 2); err != nil {
		return Model{}, err
	}
	fs, ts := units.Floats(freqs), units.Floats(durs)
	if len(fs) == 2 {
		f1, f2 := fs[0], fs[1]
		if stats.Approx(f1, f2) {
			return Model{}, fmt.Errorf("perfmodel: duplicate fit frequency %g", f1)
		}
		// A·f1² + C = T1·f1 ; A·f2² + C = T2·f2.
		c1, c2 := ts[0]*f1, ts[1]*f2
		a := (c2 - c1) / (f2*f2 - f1*f1)
		return Model{A: a, C: c1 - a*f1*f1}, nil
	}
	design := make([][]float64, len(fs))
	cycles := make([]float64, len(fs))
	for i, f := range fs {
		design[i] = []float64{f * f, 1}
		cycles[i] = ts[i] * f
	}
	beta, err := stats.LeastSquares(design, cycles)
	if err != nil {
		return Model{}, err
	}
	return Model{A: beta[0], C: beta[1]}, nil
}

// QuadModel is Func. 1: T(f) = (A·f² + B·f + C)/f.
type QuadModel struct {
	A, B, C float64
}

// Micros implements TimeModel.
func (m QuadModel) Micros(f units.MHz) units.Micros {
	x := float64(f)
	return units.Micros((m.A*x*x + m.B*x + m.C) / x)
}

// FitFunc1 fits Func. 1 from at least three (frequency, duration)
// pairs via least squares on the quadratic cycle form.
func FitFunc1(freqs []units.MHz, durs []units.Micros) (QuadModel, error) {
	if err := checkSeries(freqs, durs, 3); err != nil {
		return QuadModel{}, err
	}
	fs, ts := units.Floats(freqs), units.Floats(durs)
	cycles := make([]float64, len(fs))
	for i, f := range fs {
		cycles[i] = ts[i] * f
	}
	beta, err := stats.PolyFit(fs, cycles, 2)
	if err != nil {
		return QuadModel{}, err
	}
	return QuadModel{A: beta[2], B: beta[1], C: beta[0]}, nil
}

// ExpModel is Func. 3: T(f) = (A·e^{B·f_GHz} + C)/f. The exponent is
// expressed per GHz, and B is clamped to [0, 10] as in the paper
// (which had to bound it to avoid overflow in scipy), a restriction
// that compromises its accuracy (Sect. 7.2).
type ExpModel struct {
	A, B, C float64
}

// Micros implements TimeModel.
func (m ExpModel) Micros(f units.MHz) units.Micros {
	x := float64(f)
	return units.Micros((m.A*math.Exp(m.B*x/1000) + m.C) / x)
}

// FitFunc3 fits Func. 3 by Levenberg-Marquardt from at least three
// pairs.
func FitFunc3(freqs []units.MHz, durs []units.Micros) (ExpModel, error) {
	if err := checkSeries(freqs, durs, 3); err != nil {
		return ExpModel{}, err
	}
	fs, ts := units.Floats(freqs), units.Floats(durs)
	cycles := make([]float64, len(fs))
	ghz := make([]float64, len(fs))
	meanCyc := 0.0
	for i, f := range fs {
		cycles[i] = ts[i] * f
		ghz[i] = f / 1000
		meanCyc += cycles[i]
	}
	meanCyc /= float64(len(cycles))
	model := func(x float64, p []float64) float64 {
		return p[0]*math.Exp(p[1]*x) + p[2]
	}
	opt := stats.DefaultLMOptions()
	opt.MaxIter = 2000 // numeric-Jacobian LM converges slowly on exponentials
	opt.Lower = []float64{0, 0, 0}
	opt.Upper = []float64{math.Inf(1), 10, math.Inf(1)}
	// Exponential fits are prone to local minima; multi-start over a
	// range of exponents and keep the best.
	var best []float64
	bestSSR := math.Inf(1)
	for _, b0 := range []float64{0.25, 0.5, 1, 2, 4} {
		p0 := []float64{meanCyc * 0.1, b0, meanCyc * 0.5}
		p, ssr, err := stats.CurveFit(model, ghz, cycles, p0, opt)
		if err == nil && ssr < bestSSR {
			best, bestSSR = p, ssr
		}
	}
	if best == nil {
		return ExpModel{}, fmt.Errorf("perfmodel: Func3 fit failed from all starts")
	}
	return ExpModel{A: best[0], B: best[1], C: best[2]}, nil
}

// FitFunc1Iterative fits Func. 1 with the generic Levenberg-Marquardt
// fitter instead of the closed-form least squares. It exists to mirror
// the paper's fit-cost comparison (Sect. 4.3), where Func. 1 was fitted
// with scipy's iterative curve_fit (105,930 ms for ShuffleNetV2Plus)
// while Func. 2's parameters were computed directly (4,386 ms).
func FitFunc1Iterative(freqs []units.MHz, durs []units.Micros) (QuadModel, error) {
	if err := checkSeries(freqs, durs, 3); err != nil {
		return QuadModel{}, err
	}
	fs, ts := units.Floats(freqs), units.Floats(durs)
	cycles := make([]float64, len(fs))
	meanCyc := 0.0
	for i, f := range fs {
		cycles[i] = ts[i] * f
		meanCyc += cycles[i]
	}
	meanCyc /= float64(len(cycles))
	model := func(x float64, p []float64) float64 {
		return p[0]*x*x + p[1]*x + p[2]
	}
	p0 := []float64{meanCyc / (1400 * 1400), 0, meanCyc * 0.3}
	p, _, err := stats.CurveFit(model, fs, cycles, p0, stats.DefaultLMOptions())
	if err != nil {
		return QuadModel{}, err
	}
	return QuadModel{A: p[0], B: p[1], C: p[2]}, nil
}

func checkSeries(freqs []units.MHz, durs []units.Micros, minPts int) error {
	if len(freqs) != len(durs) {
		return fmt.Errorf("perfmodel: %d frequencies vs %d durations", len(freqs), len(durs))
	}
	if len(freqs) < minPts {
		return fmt.Errorf("perfmodel: need at least %d points, have %d", minPts, len(freqs))
	}
	for i, f := range freqs {
		if f <= 0 {
			return fmt.Errorf("perfmodel: non-positive frequency %g at %d", float64(f), i)
		}
		if durs[i] <= 0 {
			return fmt.Errorf("perfmodel: non-positive duration %g at %d", float64(durs[i]), i)
		}
	}
	return nil
}

// Errors returns the relative prediction errors of a model against
// measured (frequency, duration) pairs.
func Errors(m TimeModel, freqs []units.MHz, durs []units.Micros) []float64 {
	errs := make([]float64, len(freqs))
	for i, f := range freqs {
		errs[i] = stats.AbsRelError(float64(m.Micros(f)), float64(durs[i]))
	}
	return errs
}

// FitSeries fits the production Func. 2 model for every series,
// sub-selecting the given fit frequencies from each series' samples.
// Series missing any fit frequency are skipped.
func FitSeries(series []*profiler.Series, fitFreqs []units.MHz) map[string]Model {
	models := make(map[string]Model, len(series))
	for _, s := range series {
		fs, ts, ok := SelectPoints(s, fitFreqs)
		if !ok {
			continue
		}
		m, err := FitFunc2(fs, ts)
		if err != nil {
			continue
		}
		models[s.Key] = m
	}
	return models
}

// SelectPoints extracts the (frequency, duration) samples of a series
// at the requested frequencies. ok is false if any is missing. The
// profiler records raw float64 samples; this is the boundary where
// they acquire units.
func SelectPoints(s *profiler.Series, freqs []units.MHz) (fs []units.MHz, ts []units.Micros, ok bool) {
	for _, want := range freqs {
		found := false
		for i, f := range s.FreqMHz {
			if stats.Approx(f, float64(want)) {
				fs = append(fs, units.MHz(f))
				ts = append(ts, units.Micros(s.Micros[i]))
				found = true
				break
			}
		}
		if !found {
			return nil, nil, false
		}
	}
	return fs, ts, true
}

// Analytic is the white-box piecewise-linear model computed directly
// from the operator's timeline parameters (Sect. 4.2). It is exact for
// the simulator and is used to validate the convexity conclusions and
// to draw Fig. 4.
type Analytic struct {
	Chip *npu.Chip
	Spec *op.Spec
}

// Cycles returns the exact cycle count at frequency f.
func (a Analytic) Cycles(f units.MHz) float64 { return a.Chip.Cycles(a.Spec, float64(f)) }

// Micros implements TimeModel.
func (a Analytic) Micros(f units.MHz) units.Micros {
	return units.Micros(a.Chip.Time(a.Spec, float64(f)))
}

// Breakpoints returns the frequencies inside (lo, hi) where the
// cycle-frequency function changes slope, found by scanning for
// second-difference jumps on a fine grid. These are the segment
// boundaries of the piecewise-linear function (Fig. 4).
func (a Analytic) Breakpoints(lo, hi, step units.MHz) []units.MHz {
	var pts []units.MHz
	if step <= 0 || hi <= lo {
		return pts
	}
	var prevSlope float64
	first := true
	for f := lo; f+step <= hi; f += step {
		slope := (a.Cycles(f+step) - a.Cycles(f)) / float64(step)
		if !first {
			// A genuine kink changes the slope by more than
			// numerical noise.
			if slope-prevSlope > 1e-6*(math.Abs(slope)+1) {
				pts = append(pts, f)
			}
		}
		prevSlope = slope
		first = false
	}
	return pts
}
