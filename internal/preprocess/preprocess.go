// Package preprocess implements the DVFS candidate-point preparation
// of Sect. 6.2 (Fig. 13). Starting from a profiled operator sequence
// and its bottleneck classification, it:
//
//  1. splits the execution into Low Frequency Candidate (LFC) and High
//     Frequency Candidate (HFC) stages: maximal runs of
//     frequency-insensitive and frequency-sensitive entries, whose
//     starts are the initial frequency candidate points; and
//  2. merges candidates whose stage is shorter than the frequency
//     adjustment interval (e.g. 5 ms) into an adjacent candidate, so
//     the executor is never asked to retune faster than the hardware
//     can act.
//
// The resulting stages are the genes of the genetic-algorithm search:
// one frequency choice per stage.
package preprocess

import (
	"fmt"

	"npudvfs/internal/classify"
	"npudvfs/internal/profiler"
)

// Stage is one frequency-candidate interval.
type Stage struct {
	// OpStart and OpEnd delimit the trace indices [OpStart, OpEnd).
	OpStart, OpEnd int
	// StartMicros and DurMicros locate the stage within the profiled
	// iteration.
	StartMicros, DurMicros float64
	// Sensitive marks HFC stages (frequency-sensitive work dominates);
	// LFC stages have it false.
	Sensitive bool
}

// Stages builds merged frequency-candidate stages from a profile and
// its per-record classification. faiMicros is the frequency adjustment
// interval; stages shorter than it are merged into their longer
// neighbor. A non-positive faiMicros disables merging.
func Stages(prof *profiler.Profile, results []classify.Result, faiMicros float64) ([]Stage, error) {
	if prof == nil || len(prof.Records) == 0 {
		return nil, fmt.Errorf("preprocess: empty profile")
	}
	if len(results) != len(prof.Records) {
		return nil, fmt.Errorf("preprocess: %d classifications for %d records",
			len(results), len(prof.Records))
	}
	// Step 3 of Fig. 13: split on sensitivity changes.
	var stages []Stage
	cur := Stage{OpStart: 0, Sensitive: results[0].Sensitive, StartMicros: prof.Records[0].StartMicros}
	for i := range prof.Records {
		if results[i].Sensitive != cur.Sensitive {
			cur.OpEnd = i
			stages = append(stages, cur)
			cur = Stage{
				OpStart:     i,
				Sensitive:   results[i].Sensitive,
				StartMicros: prof.Records[i].StartMicros,
			}
		}
		cur.DurMicros += prof.Records[i].DurMicros
	}
	// Recompute durations from record sums per stage (cur.DurMicros
	// accumulated across boundary resets above would be wrong).
	cur.OpEnd = len(prof.Records)
	stages = append(stages, cur)
	for si := range stages {
		s := &stages[si]
		s.DurMicros = 0
		for i := s.OpStart; i < s.OpEnd; i++ {
			s.DurMicros += prof.Records[i].DurMicros
		}
		s.StartMicros = prof.Records[s.OpStart].StartMicros
	}
	if faiMicros <= 0 {
		return stages, nil
	}
	// Step 4: repeatedly merge the shortest sub-threshold stage into
	// its longer neighbor, whose sensitivity label wins.
	for len(stages) > 1 {
		shortest, minDur := -1, faiMicros
		for i, s := range stages {
			if s.DurMicros < minDur {
				shortest, minDur = i, s.DurMicros
			}
		}
		if shortest < 0 {
			break
		}
		stages = mergeInto(stages, shortest)
	}
	return stages, nil
}

// mergeInto merges stage i into its longer-duration neighbor and
// returns the shortened slice.
func mergeInto(stages []Stage, i int) []Stage {
	target := i - 1
	if i == 0 {
		target = 1
	} else if i+1 < len(stages) && stages[i+1].DurMicros > stages[i-1].DurMicros {
		target = i + 1
	}
	lo, hi := i, target
	if lo > hi {
		lo, hi = hi, lo
	}
	merged := Stage{
		OpStart:     stages[lo].OpStart,
		OpEnd:       stages[hi].OpEnd,
		StartMicros: stages[lo].StartMicros,
		DurMicros:   stages[lo].DurMicros + stages[hi].DurMicros,
		Sensitive:   stages[target].Sensitive,
	}
	out := append([]Stage{}, stages[:lo]...)
	out = append(out, merged)
	out = append(out, stages[hi+1:]...)
	return out
}

// Validate checks that stages tile the trace contiguously.
func Validate(stages []Stage, numRecords int) error {
	if len(stages) == 0 {
		return fmt.Errorf("preprocess: no stages")
	}
	if stages[0].OpStart != 0 {
		return fmt.Errorf("preprocess: first stage starts at %d", stages[0].OpStart)
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].OpStart != stages[i-1].OpEnd {
			return fmt.Errorf("preprocess: gap between stages %d and %d", i-1, i)
		}
	}
	if last := stages[len(stages)-1].OpEnd; last != numRecords {
		return fmt.Errorf("preprocess: last stage ends at %d, want %d", last, numRecords)
	}
	return nil
}
