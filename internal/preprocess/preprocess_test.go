package preprocess

import (
	"testing"

	"npudvfs/internal/classify"
	"npudvfs/internal/npu"
	"npudvfs/internal/profiler"
	"npudvfs/internal/workload"
)

// syntheticProfile builds a profile with explicit durations and
// sensitivities for precise merge testing.
func syntheticProfile(durs []float64, sensitive []bool) (*profiler.Profile, []classify.Result) {
	prof := &profiler.Profile{FreqMHz: 1800}
	results := make([]classify.Result, len(durs))
	now := 0.0
	for i, d := range durs {
		prof.Records = append(prof.Records, profiler.Record{
			Index:       i,
			Spec:        &workload.RepresentativeOps()[0],
			StartMicros: now,
			DurMicros:   d,
			FreqMHz:     1800,
		})
		now += d
		results[i] = classify.Result{Sensitive: sensitive[i]}
		if sensitive[i] {
			results[i].Bottleneck = classify.CoreBound
		}
	}
	prof.TotalMicros = now
	return prof, results
}

func TestStagesSplitOnSensitivity(t *testing.T) {
	prof, res := syntheticProfile(
		[]float64{100, 100, 200, 200, 100},
		[]bool{false, false, true, true, false},
	)
	stages, err := Stages(prof, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(stages))
	}
	wantSens := []bool{false, true, false}
	wantDur := []float64{200, 400, 100}
	wantStart := []float64{0, 200, 600}
	for i, s := range stages {
		if s.Sensitive != wantSens[i] || s.DurMicros != wantDur[i] || s.StartMicros != wantStart[i] {
			t.Errorf("stage %d = %+v, want sens=%v dur=%g start=%g",
				i, s, wantSens[i], wantDur[i], wantStart[i])
		}
	}
	if err := Validate(stages, len(prof.Records)); err != nil {
		t.Error(err)
	}
}

func TestMergeShortStageIntoLongerNeighbor(t *testing.T) {
	// Middle HFC stage of 50 µs is below a 100 µs FAI and must merge
	// into the longer LFC neighbor (the right one, 500 µs).
	prof, res := syntheticProfile(
		[]float64{300, 50, 500},
		[]bool{false, true, false},
	)
	stages, err := Stages(prof, res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2 after merging", len(stages))
	}
	if stages[0].Sensitive || stages[1].Sensitive {
		t.Errorf("absorbed stage must take the neighbor's label: %+v", stages)
	}
	if stages[1].DurMicros != 550 {
		t.Errorf("merged stage duration = %g, want 550", stages[1].DurMicros)
	}
	if err := Validate(stages, len(prof.Records)); err != nil {
		t.Error(err)
	}
}

func TestMergeFirstStage(t *testing.T) {
	prof, res := syntheticProfile(
		[]float64{20, 400},
		[]bool{true, false},
	)
	stages, err := Stages(prof, res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
	if stages[0].Sensitive {
		t.Error("label must come from the absorbing (longer) stage")
	}
	if stages[0].OpStart != 0 || stages[0].OpEnd != 2 {
		t.Errorf("merged bounds = [%d,%d), want [0,2)", stages[0].OpStart, stages[0].OpEnd)
	}
}

func TestAllStagesAboveFAISurvive(t *testing.T) {
	prof, res := syntheticProfile(
		[]float64{5000, 6000, 7000},
		[]bool{false, true, false},
	)
	stages, err := Stages(prof, res, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3 (no merging needed)", len(stages))
	}
}

func TestSingleStageNeverMergedAway(t *testing.T) {
	prof, res := syntheticProfile([]float64{10}, []bool{true})
	stages, err := Stages(prof, res, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
}

func TestStagesErrors(t *testing.T) {
	if _, err := Stages(nil, nil, 0); err == nil {
		t.Error("nil profile: want error")
	}
	prof, res := syntheticProfile([]float64{10}, []bool{true})
	if _, err := Stages(prof, res[:0], 0); err == nil {
		t.Error("mismatched classification length: want error")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	bad := []Stage{{OpStart: 0, OpEnd: 3}, {OpStart: 4, OpEnd: 6}}
	if err := Validate(bad, 6); err == nil {
		t.Error("gap between stages: want error")
	}
	if err := Validate([]Stage{{OpStart: 0, OpEnd: 3}}, 6); err == nil {
		t.Error("short coverage: want error")
	}
	if err := Validate(nil, 0); err == nil {
		t.Error("no stages: want error")
	}
}

// Larger FAI must produce monotonically fewer (or equal) candidates —
// the mechanism behind the Fig. 18 FAI comparison.
func TestFAIMonotonicity(t *testing.T) {
	chip := npu.Default()
	p := profiler.NewNoiseless(chip)
	m := workload.GPT3()
	prof, err := p.Run(m.Trace, 1800)
	if err != nil {
		t.Fatal(err)
	}
	res := classify.Trace(prof)
	prev := -1
	for _, fai := range []float64{5000, 100000, 1000000} {
		stages, err := Stages(prof, res, fai)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(stages, len(prof.Records)); err != nil {
			t.Fatalf("FAI %g: %v", fai, err)
		}
		for _, s := range stages[:len(stages)-1] {
			if s.DurMicros < fai {
				t.Fatalf("FAI %g: stage of %g µs survived merging", fai, s.DurMicros)
			}
		}
		if prev >= 0 && len(stages) > prev {
			t.Errorf("FAI %g produced more stages (%d) than smaller FAI (%d)", fai, len(stages), prev)
		}
		prev = len(stages)
	}
}

// The 5 ms FAI on GPT-3 must produce a substantial number of stages —
// the paper's policy issues 821 SetFreq per iteration.
func TestGPT3StageCountScale(t *testing.T) {
	chip := npu.Default()
	p := profiler.NewNoiseless(chip)
	prof, err := p.Run(workload.GPT3().Trace, 1800)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Stages(prof, classify.Trace(prof), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 100 || len(stages) > 3000 {
		t.Errorf("GPT-3 stages at 5 ms FAI = %d, want hundreds", len(stages))
	}
}
