// Package powersim generates the ground-truth power consumption of the
// simulated NPU and the lpmi-like sensor used to observe it.
//
// The ground truth has the same physical composition as Eq. 11 of the
// paper — dynamic load-dependent power αfV², load-independent dynamic
// power βfV², temperature-dependent static power γΔT·V and constant
// static power θV — but is deliberately richer than the model under
// test: per-operator activity factors drift slightly with frequency
// (real switching activity is not perfectly frequency-invariant), the
// uncore power follows achieved memory bandwidth rather than the αfV²
// form the SoC model assumes, and the sensor adds measurement noise.
// That richness is what gives the fitted models of internal/powermodel
// realistic single-digit-percent errors rather than a trivial exact
// recovery of simulator parameters.
package powersim

import (
	"math"
	"math/rand"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/units"
)

// Ground computes the true (noise-free) power of the chip.
type Ground struct {
	Chip *npu.Chip

	// AICore idle components of Eq. 12: P_idle = BetaCore*f*V² + ThetaCore*V.
	BetaCore  float64 // W per (MHz·V²)
	ThetaCore float64 // W per V

	// GammaCore is γ of Eq. 10 for the AICore: W per (°C·V) of
	// subthreshold-leakage growth.
	GammaCore float64

	// AlphaScale converts switching activity to watts per (MHz·V²).
	AlphaScale float64
	// DriftFrac is the maximum fractional drift of an operator's
	// activity factor across the frequency range; each operator gets
	// a deterministic drift in [-DriftFrac, +DriftFrac].
	DriftFrac float64

	// Uncore components (HBM, L2, bus, AICPU): not frequency-tunable
	// on this platform (Sect. 8.2), so they depend on achieved
	// bandwidth, not on the core frequency directly.
	UncoreIdle   float64 // W
	UncoreBWCoef float64 // W per (byte/µs) of achieved uncore traffic
	// UncoreIdleDyn is the clock-proportional share of UncoreIdle: the
	// part that would shrink if the uncore domain were downclocked.
	// Used by the Sect. 8.2 what-if study; at UncoreScale = 1 it is
	// simply included in UncoreIdle.
	UncoreIdleDyn float64
	// UncoreScale is the uncore domain's frequency relative to
	// nominal (1 = stock). Scaling it models the uncore DVFS the
	// paper's platform lacks.
	UncoreScale float64
	// UncoreCoupling scales uncore (bus, L2 interface) switching with
	// the AICore's active power: the uncore serves requests at the
	// rate the core issues them, so part of its dynamic power follows
	// core activity even though its rail is not frequency-tunable.
	// This is what makes measured SoC savings exceed the AICore's own
	// absolute saving, as in the paper's Table 3.
	UncoreCoupling float64
	UncoreGamma    float64 // W per °C of ΔT (uncore leakage)
	AICPUPower     float64 // extra W while an AICPU operator runs
	CommPower      float64 // extra W while a communication operator runs

	// RefMHz is the frequency at which activity factors are defined;
	// drift is proportional to (f-RefMHz)/(max-min).
	RefMHz float64
}

// Default returns the ground-truth parameters calibrated so that a
// GPT-3-like training workload draws roughly the paper's power levels:
// ~250 W SoC with ~46 W on the AICore at 1800 MHz, with the
// temperature-dependent AICore term contributing 3-8 W (10-20% of
// AICore power, Sect. 7.3) and the uncore averaging ~80% of SoC power
// (Sect. 8.2).
func Default(chip *npu.Chip) *Ground {
	return &Ground{
		Chip:           chip,
		BetaCore:       0.004,
		ThetaCore:      5,
		GammaCore:      0.2,
		AlphaScale:     0.027,
		DriftFrac:      0.04,
		UncoreIdle:     150,
		UncoreIdleDyn:  60,
		UncoreScale:    1,
		UncoreBWCoef:   3e-5,
		UncoreCoupling: 0.8,
		UncoreGamma:    0.1,
		AICPUPower:     15,
		CommPower:      25,
		RefMHz:         1400,
	}
}

// FNV-1a, inlined so the ground-truth model stays allocation-free on
// the executor's hot path: hash/fnv costs a []byte conversion and a
// hash.Hash64 box per call. fnvString folds s into h byte-for-byte
// exactly as hash/fnv's sum64a does, so the values are unchanged.
const fnvOffset64 = 14695981039346656037

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hash01 maps an FNV state deterministically to [0, 1).
func hash01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// specHash folds the operator's model identity — the same Name["/"
// Shape] string Spec.Key returns — without building it: FNV is
// byte-sequential, so folding the parts equals hashing the
// concatenation.
func specHash(s *op.Spec) uint64 {
	h := fnvString(fnvOffset64, s.Name)
	if s.Shape != "" {
		h = fnvString(h, "/")
		h = fnvString(h, s.Shape)
	}
	return h
}

// kindFactor gives each operator type/shape a stable activity
// multiplier in [0.7, 1.3].
func kindFactor(s *op.Spec) float64 { return 0.7 + 0.6*hash01(specHash(s)) }

// driftCoef gives each operator a stable frequency drift in
// [-1, 1] (scaled by DriftFrac when applied).
func driftCoef(s *op.Spec) float64 {
	return 2*hash01(fnvString(specHash(s), "/drift")) - 1
}

// Activity returns the operator's switching-activity level: how much
// of the chip toggles per cycle while it runs. Compute pipelines
// toggle the most; memory-transfer pipelines contribute less. The
// level is defined at RefMHz so it is a per-operator constant.
func (g *Ground) Activity(s *op.Spec) float64 {
	if s.Class != op.Compute {
		return 0
	}
	r := g.Chip.Ratios(s, g.RefMHz)
	core := r[op.Cube] + r[op.Vector] + r[op.Scalar] + r[op.MTE1]
	mem := r[op.MTE2] + r[op.MTE3]
	act := core + 0.35*mem
	return act * kindFactor(s)
}

// Alpha returns the operator's true activity coefficient α (Eq. 13) at
// a given frequency, in W per (MHz·V²), including the frequency drift
// that the analytic model cannot see.
func (g *Ground) Alpha(s *op.Spec, fMHz float64) float64 {
	base := g.AlphaScale * g.Activity(s)
	span := float64(g.Chip.Curve.Max() - g.Chip.Curve.Min())
	drift := g.DriftFrac * driftCoef(s) * (fMHz - g.RefMHz) / span
	return base * (1 + drift)
}

// AICoreIdle returns the load-independent AICore power at frequency
// fMHz and temperature rise deltaT (Eq. 12 plus the static leakage
// term, which persists at idle).
func (g *Ground) AICoreIdle(fMHz, deltaT float64) float64 {
	v := float64(g.Chip.Curve.Voltage(units.MHz(fMHz)))
	return g.BetaCore*fMHz*v*v + g.ThetaCore*v + g.GammaCore*deltaT*v
}

// AICorePower returns the true AICore power while the operator runs at
// fMHz with temperature rise deltaT. A nil spec or a non-Compute spec
// yields idle power.
func (g *Ground) AICorePower(s *op.Spec, fMHz, deltaT float64) float64 {
	p := g.AICoreIdle(fMHz, deltaT)
	if s == nil || s.Class != op.Compute {
		return p
	}
	v := float64(g.Chip.Curve.Voltage(units.MHz(fMHz)))
	return p + g.Alpha(s, fMHz)*fMHz*v*v
}

// achievedBW returns the operator's realized uncore traffic in
// bytes/µs at fMHz.
func (g *Ground) achievedBW(s *op.Spec, fMHz float64) float64 {
	if s == nil || s.Class != op.Compute {
		return 0
	}
	bytes := float64(s.Blocks) * (s.LoadBytes + s.StoreBytes)
	t := g.Chip.Time(s, fMHz)
	if t <= 0 {
		return 0
	}
	return bytes / t
}

// UncorePower returns the true power of the uncore domain (HBM, L2,
// bus, AICPU) while the given trace entry runs.
func (g *Ground) UncorePower(s *op.Spec, fMHz, deltaT float64) float64 {
	p := g.UncoreIdle + g.UncoreGamma*deltaT
	//lint:allow floateq exact sentinel: 1 is the nominal scale, copied verbatim from config
	if scale := g.UncoreScale; scale > 0 && scale != 1 {
		// Downclocking the uncore shrinks its clock-proportional idle
		// power (frequency and, mildly, voltage).
		p -= g.UncoreIdleDyn * (1 - scale*scale)
	}
	if s == nil {
		return p
	}
	switch s.Class {
	case op.Compute:
		v := float64(g.Chip.Curve.Voltage(units.MHz(fMHz)))
		p += g.UncoreBWCoef * g.achievedBW(s, fMHz)
		p += g.UncoreCoupling * g.Alpha(s, fMHz) * fMHz * v * v
	case op.AICPU:
		p += g.AICPUPower
	case op.Communication:
		p += g.CommPower
	}
	return p
}

// SoCPower returns the true chip (SoC) power: AICore plus uncore.
func (g *Ground) SoCPower(s *op.Spec, fMHz, deltaT float64) float64 {
	return g.AICorePower(s, fMHz, deltaT) + g.UncorePower(s, fMHz, deltaT)
}

// Sensor models the lpmi_tool telemetry path: readings of true power
// and temperature with multiplicative power noise and additive
// temperature noise. All randomness is seeded for reproducibility.
type Sensor struct {
	rng *rand.Rand
	// PowerNoiseFrac is the 1-sigma relative error of power readings.
	PowerNoiseFrac float64
	// TempNoiseC is the 1-sigma absolute error of temperature
	// readings in °C.
	TempNoiseC float64
}

// NewSensor returns a sensor with 1% power noise and 0.3 °C
// temperature noise, seeded deterministically.
func NewSensor(seed int64) *Sensor {
	return &Sensor{
		rng:            rand.New(rand.NewSource(seed)),
		PowerNoiseFrac: 0.01,
		TempNoiseC:     0.3,
	}
}

// Power returns a noisy reading of a true power value.
func (s *Sensor) Power(trueWatts float64) float64 {
	return trueWatts * (1 + s.rng.NormFloat64()*s.PowerNoiseFrac)
}

// Temp returns a noisy reading of a true temperature.
func (s *Sensor) Temp(trueC float64) float64 {
	return trueC + s.rng.NormFloat64()*s.TempNoiseC
}

// TimeNoise returns a multiplicative duration-measurement factor
// centred on 1, used by the profiler for execution-time readings.
func (s *Sensor) TimeNoise(sigmaFrac float64) float64 {
	return math.Exp(s.rng.NormFloat64() * sigmaFrac)
}
