package powersim

import (
	"math"
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/units"
)

func computeSpec() *op.Spec {
	return &op.Spec{
		Name:       "MatMul",
		Shape:      "4096",
		Class:      op.Compute,
		Scenario:   op.PingPongIndep,
		Blocks:     8,
		LoadBytes:  1 << 20,
		StoreBytes: 1 << 19,
		CoreCycles: 80000,
		CorePipe:   op.Cube,
		L2Hit:      0.6,
	}
}

func ground() *Ground { return Default(npu.Default()) }

func TestIdlePowerRisesWithFrequency(t *testing.T) {
	g := ground()
	prev := 0.0
	for _, f := range g.Chip.Curve.Grid() {
		p := g.AICoreIdle(float64(f), 0)
		if p <= prev {
			t.Errorf("idle power not increasing at %g MHz: %g <= %g", f, p, prev)
		}
		prev = p
	}
}

func TestIdlePowerRisesWithTemperature(t *testing.T) {
	g := ground()
	cold := g.AICoreIdle(1500, 0)
	hot := g.AICoreIdle(1500, 30)
	if hot <= cold {
		t.Errorf("leakage must grow with ΔT: %g <= %g", hot, cold)
	}
	// Eq. 10: the growth is linear in ΔT with slope γV.
	v := float64(g.Chip.Curve.Voltage(1500))
	want := g.GammaCore * 30 * v
	if math.Abs((hot-cold)-want) > 1e-9 {
		t.Errorf("temperature term = %g, want %g", hot-cold, want)
	}
}

func TestActivePowerExceedsIdle(t *testing.T) {
	g := ground()
	s := computeSpec()
	for _, f := range units.Floats(g.Chip.Curve.Grid()) {
		idle := g.AICorePower(nil, f, 10)
		active := g.AICorePower(s, f, 10)
		if active <= idle {
			t.Errorf("active power %g <= idle %g at %g MHz", active, idle, f)
		}
	}
}

func TestNonComputeDrawsIdleAICorePower(t *testing.T) {
	g := ground()
	comm := &op.Spec{Name: "AllReduce", Class: op.Communication, FixedTime: 100}
	if got, want := g.AICorePower(comm, 1500, 5), g.AICoreIdle(1500, 5); got != want {
		t.Errorf("communication AICore power = %g, want idle %g", got, want)
	}
}

func TestActivityStableAcrossShapesButNotKinds(t *testing.T) {
	g := ground()
	a := computeSpec()
	b := computeSpec()
	b.Shape = "8192" // different key -> different kind factor
	if g.Activity(a) == g.Activity(b) {
		t.Error("different shapes should get distinct activity factors")
	}
	// Deterministic: same spec, same value.
	if g.Activity(a) != g.Activity(computeSpec()) {
		t.Error("activity factor must be deterministic")
	}
}

func TestAlphaDriftBoundedAndDeterministic(t *testing.T) {
	g := ground()
	s := computeSpec()
	base := g.Alpha(s, g.RefMHz)
	for _, f := range units.Floats(g.Chip.Curve.Grid()) {
		a := g.Alpha(s, f)
		if rel := math.Abs(a-base) / base; rel > g.DriftFrac+1e-12 {
			t.Errorf("drift at %g MHz = %g, exceeds bound %g", f, rel, g.DriftFrac)
		}
	}
	if g.Alpha(s, 1700) != g.Alpha(computeSpec(), 1700) {
		t.Error("alpha must be deterministic per operator")
	}
}

func TestUncoreDominatesSoCPower(t *testing.T) {
	// Sect. 8.2: uncore power averages around 80% of SoC power.
	g := ground()
	s := computeSpec()
	at := 1800.0
	un := g.UncorePower(s, at, 25)
	soc := g.SoCPower(s, at, 25)
	frac := un / soc
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("uncore fraction = %g, want within [0.6, 0.95]", frac)
	}
}

func TestUncorePowerTracksTraffic(t *testing.T) {
	g := ground()
	light := computeSpec()
	light.LoadBytes, light.StoreBytes = 1024, 1024
	heavy := computeSpec()
	heavy.LoadBytes = 8 << 20
	pl := g.UncorePower(light, 1500, 0)
	ph := g.UncorePower(heavy, 1500, 0)
	if ph <= pl {
		t.Errorf("memory-heavy op uncore power %g <= light op %g", ph, pl)
	}
}

func TestUncoreExtrasByClass(t *testing.T) {
	g := ground()
	idle := g.UncorePower(&op.Spec{Name: "i", Class: op.Idle, FixedTime: 1}, 1500, 0)
	aicpu := g.UncorePower(&op.Spec{Name: "a", Class: op.AICPU, FixedTime: 1}, 1500, 0)
	comm := g.UncorePower(&op.Spec{Name: "c", Class: op.Communication, FixedTime: 1}, 1500, 0)
	if aicpu <= idle || comm <= idle {
		t.Errorf("AICPU (%g) and communication (%g) must exceed idle uncore (%g)", aicpu, comm, idle)
	}
	if nilPower := g.UncorePower(nil, 1500, 0); nilPower != idle {
		t.Errorf("nil spec uncore power %g, want idle %g", nilPower, idle)
	}
}

func TestSoCPowerScaleMatchesPaperBallpark(t *testing.T) {
	// The reference calibration should put a busy compute op in the
	// paper's regime: SoC power in the low hundreds of watts with the
	// AICore contributing a 10-25% share.
	g := ground()
	s := computeSpec()
	soc := g.SoCPower(s, 1800, 25)
	core := g.AICorePower(s, 1800, 25)
	if soc < 150 || soc > 400 {
		t.Errorf("SoC power = %g W, want within [150, 400]", soc)
	}
	if share := core / soc; share < 0.08 || share > 0.3 {
		t.Errorf("AICore share = %g, want within [0.08, 0.3]", share)
	}
}

func TestSensorDeterministicPerSeed(t *testing.T) {
	a := NewSensor(42)
	b := NewSensor(42)
	for i := 0; i < 10; i++ {
		if a.Power(100) != b.Power(100) {
			t.Fatal("same-seed sensors diverged")
		}
	}
}

func TestSensorNoiseMagnitude(t *testing.T) {
	s := NewSensor(1)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		r := s.Power(100)
		sum += r
		sumSq += (r - 100) * (r - 100)
	}
	mean := sum / float64(n)
	rms := math.Sqrt(sumSq / float64(n))
	if math.Abs(mean-100) > 0.05 {
		t.Errorf("sensor bias: mean = %g", mean)
	}
	if rms < 0.8 || rms > 1.2 {
		t.Errorf("sensor rms = %g, want ~1 (1%% of 100)", rms)
	}
}

func TestTimeNoiseCentred(t *testing.T) {
	s := NewSensor(7)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.TimeNoise(0.01)
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.005 {
		t.Errorf("time noise mean = %g, want ~1", mean)
	}
}

func TestUncoreScaleReducesUncorePower(t *testing.T) {
	g := ground()
	s := computeSpec()
	stock := g.UncorePower(s, 1500, 10)
	g.UncoreScale = 0.8
	g.Chip = g.Chip.WithUncoreScale(0.8)
	slow := g.UncorePower(s, 1500, 10)
	if slow >= stock {
		t.Errorf("downclocked uncore power %g >= stock %g", slow, stock)
	}
	// The reduction must not exceed the dynamic idle share plus the
	// traffic term.
	if stock-slow > g.UncoreIdleDyn+g.UncoreBWCoef*g.Chip.BWUncore(s.L2Hit) {
		t.Errorf("implausible uncore saving %g W", stock-slow)
	}
}
