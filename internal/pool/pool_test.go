package pool

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Draws must be a function of the item index, not the worker count.
func TestEachSeededDeterminism(t *testing.T) {
	draw := func(workers int) []float64 {
		out := make([]float64, 32)
		err := Each(context.Background(), 7, len(out), workers, func(i int, rng *rand.Rand) error {
			out[i] = rng.Float64()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := draw(1)
	for _, w := range []int{2, 4, 9} {
		got := draw(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: item %d drew %v, serial drew %v", w, i, got[i], serial[i])
			}
		}
	}
}

func TestEachLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	err := Each(context.Background(), 1, 16, 4, func(i int, _ *rand.Rand) error {
		if i == 3 || i == 11 {
			return fmt.Errorf("item %d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3: boom" {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	err := Each(ctx, 1, 100, 2, func(i int, _ *rand.Rand) error {
		mu.Lock()
		ran++
		if ran == 5 {
			cancel()
		}
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran == 100 {
		t.Fatal("cancellation did not stop new items")
	}
}

func TestEachEmptyAndSingle(t *testing.T) {
	if err := Each(context.Background(), 1, 0, 4, nil); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := Each(context.Background(), 1, 1, 8, func(i int, _ *rand.Rand) error {
		calls++
		return nil
	}); err != nil || calls != 1 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}
