// Package pool provides the bounded, seed-deterministic worker pool
// shared by the parallel experiment harness and the dvfsd serving
// layer.
//
// Determinism rule (inherited from the experiment harness): every work
// item derives its randomness from a rand.Rand seeded seed+i, never
// from a source shared across goroutines, so which worker runs an item
// — and in what order — cannot change any result. Cancellation is the
// one deliberate exception: once ctx is done, items that have not
// started are skipped and report ctx.Err(), so the set of completed
// items under cancellation depends on scheduling (results produced
// before the cancel remain deterministic).
package pool

import (
	"context"
	"math/rand"
	"sync"
)

// Each runs fn(i, rng) for every i in [0, n) across up to workers
// goroutines and returns the lowest-index error (deterministic, unlike
// first-completed). Each invocation gets its own rand.Rand seeded
// seed+i. workers <= 1 degenerates to a plain loop. A done ctx stops
// new items from starting; skipped items fail with ctx.Err(). In-flight
// items are not interrupted — fn must watch ctx itself if it can block.
func Each(ctx context.Context, seed int64, n, workers int, fn func(i int, rng *rand.Rand) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, rand.New(rand.NewSource(seed+int64(i)))); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i, rand.New(rand.NewSource(seed+int64(i))))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
