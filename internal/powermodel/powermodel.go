// Package powermodel implements the paper's temperature-aware power
// model (Sect. 5):
//
//	P = α·f·V² + β·f·V² + γ·ΔT·V + θ·V            (Eq. 11)
//
// Construction follows Fig. 11. The offline phase characterizes the
// chip once: idle power at two frequencies determines the
// load-independent terms β and θ (Eq. 12); the power/temperature decay
// after a test load determines the leakage temperature coefficient γ
// (dP/dT = γV, Sect. 5.4.2); and equilibrium temperatures across loads
// determine k in T = T0 + k·P_soc (Eq. 15). The online phase extracts
// one activity coefficient α per operator from power telemetry
// collected while the target workload runs at the build frequencies
// (Eq. 14). Because P_soc and ΔT depend on each other, predictions use
// the paper's iterative scheme, which converges in a handful of
// rounds.
//
// Both an AICore model and a SoC model are built; the SoC model mirrors
// the AICore formulation (Eq. 16).
//
// Physical quantities cross this package's API as units types
// (units.MHz, units.Volt, units.Watt, units.Celsius); the fitted
// coefficients (α, β, γ, θ) stay raw float64 — they carry composite
// dimensions no single unit type captures.
package powermodel

import (
	"fmt"
	"math"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
)

// Domain holds the fitted load-independent and leakage parameters for
// one power domain (AICore or SoC).
type Domain struct {
	// Beta and Theta define idle power: P_idle = Beta·f·V² + Theta·V.
	Beta, Theta float64
	// Gamma is the leakage temperature coefficient: P_ΔT = Gamma·ΔT·V.
	Gamma float64
}

// Idle returns the domain's load-independent power at frequency f with
// voltage v, excluding the temperature term.
func (d Domain) Idle(f units.MHz, v units.Volt) units.Watt {
	x, w := float64(f), float64(v)
	return units.Watt(d.Beta*x*w*w + d.Theta*w)
}

// Offline holds all hardware-level parameters extracted by the
// offline phase of Fig. 11.
type Offline struct {
	Chip *npu.Chip
	// AICore and SoC are the two modeled power domains.
	AICore, SoC Domain
	// K is k of Eq. 15: equilibrium temperature rise per SoC watt.
	K units.CelsiusPerWatt
	// AmbientC is the zero-power die temperature used to convert
	// temperature readings into ΔT.
	AmbientC units.Celsius
}

// Rig bundles the live system the calibration procedures measure:
// the simulated chip with its ground-truth power and a telemetry
// sensor. On real hardware this is the NPU plus lpmi_tool.
type Rig struct {
	Chip    *npu.Chip
	Ground  *powersim.Ground
	Sensor  *powersim.Sensor
	Thermal thermal.Params
}

// sampleIdle reads n noisy power/temperature samples of the idle chip
// at frequency f with the given ΔT and returns mean AICore and SoC
// power. The raw float64 returns feed straight into the 2x2 solve.
func (r *Rig) sampleIdle(f units.MHz, deltaT units.Celsius, n int) (core, soc float64) {
	x, dt := float64(f), float64(deltaT)
	for i := 0; i < n; i++ {
		core += r.Sensor.Power(r.Ground.AICorePower(nil, x, dt))
		soc += r.Sensor.Power(r.Ground.SoCPower(nil, x, dt))
	}
	return core / float64(n), soc / float64(n)
}

// CalibrateOptions tunes the offline phase.
type CalibrateOptions struct {
	// LoMHz and HiMHz are the two idle measurement frequencies.
	LoMHz, HiMHz units.MHz
	// IdleSamples is the number of sensor readings averaged per idle
	// measurement.
	IdleSamples int
	// CooldownSamples and CooldownStepMicros define the
	// power/temperature decay capture after the test load.
	CooldownSamples    int
	CooldownStepMicros units.Micros
	// EquilibriumFreqs are the frequencies the test load is run at to
	// collect (P_soc, T) equilibrium pairs for fitting k.
	EquilibriumFreqs []units.MHz
}

// DefaultCalibrateOptions returns the values used by the paper
// reproduction: idle at the edges of the reference DVFS window, a
// 40-point cooldown capture, and equilibrium runs at four frequencies.
func DefaultCalibrateOptions() CalibrateOptions {
	return CalibrateOptions{
		LoMHz:              1000, //lint:allow unitcheck paper calibration frequency (window floor)
		HiMHz:              1800, //lint:allow unitcheck paper calibration frequency (window ceiling)
		IdleSamples:        64,
		CooldownSamples:    40,
		CooldownStepMicros: 2e5,
		EquilibriumFreqs:   []units.MHz{1000, 1300, 1500, 1800}, //lint:allow unitcheck paper equilibrium-run frequencies (Fig. 10)
	}
}

// Calibrate runs the offline phase of Fig. 11 against the rig using
// testLoad as the warm-up workload.
func Calibrate(rig *Rig, testLoad []op.Spec, opt CalibrateOptions) (*Offline, error) {
	if rig == nil || rig.Chip == nil || rig.Ground == nil || rig.Sensor == nil {
		return nil, fmt.Errorf("powermodel: incomplete rig")
	}
	if len(testLoad) == 0 {
		return nil, fmt.Errorf("powermodel: empty test load")
	}
	curve := rig.Chip.Curve
	off := &Offline{Chip: rig.Chip, AmbientC: rig.Thermal.AmbientC}

	// Step 1 - idle power at two frequencies, cold chip (ΔT = 0):
	// solve Beta/Theta for each domain from the 2x2 system
	//   P(f) = Beta·f·V² + Theta·V.
	f1, f2 := float64(opt.LoMHz), float64(opt.HiMHz)
	v1, v2 := float64(curve.Voltage(opt.LoMHz)), float64(curve.Voltage(opt.HiMHz))
	c1, s1 := rig.sampleIdle(opt.LoMHz, 0, opt.IdleSamples)
	c2, s2 := rig.sampleIdle(opt.HiMHz, 0, opt.IdleSamples)
	solve := func(p1, p2 float64) (Domain, error) {
		a := [][]float64{{f1 * v1 * v1, v1}, {f2 * v2 * v2, v2}}
		x, err := stats.SolveLinear(a, []float64{p1, p2})
		if err != nil {
			return Domain{}, err
		}
		return Domain{Beta: x[0], Theta: x[1]}, nil
	}
	var err error
	if off.AICore, err = solve(c1, c2); err != nil {
		return nil, fmt.Errorf("powermodel: AICore idle fit: %w", err)
	}
	if off.SoC, err = solve(s1, s2); err != nil {
		return nil, fmt.Errorf("powermodel: SoC idle fit: %w", err)
	}

	// Step 2 - gamma from the cooldown after a test load: warm the
	// chip, remove the load, and regress idle power readings against
	// temperature readings as the die cools (dP/dT = γV).
	prof := profiler.Profiler{Chip: rig.Chip, Sensor: rig.Sensor, TimeNoiseFrac: 0.01}
	th := thermal.NewState(rig.Thermal)
	coolF := opt.HiMHz
	if _, err := prof.WarmupIterations(testLoad, float64(coolF), rig.Ground, th, 4000, 0.5); err != nil {
		return nil, fmt.Errorf("powermodel: warm-up: %w", err)
	}
	vCool := float64(curve.Voltage(coolF))
	var temps, cores, socs []float64
	for i := 0; i < opt.CooldownSamples; i++ {
		deltaT := float64(th.DeltaT())
		pc := rig.Ground.AICorePower(nil, float64(coolF), deltaT)
		ps := rig.Ground.SoCPower(nil, float64(coolF), deltaT)
		temps = append(temps, rig.Sensor.Temp(float64(th.TempC())))
		cores = append(cores, rig.Sensor.Power(pc))
		socs = append(socs, rig.Sensor.Power(ps))
		th.Step(opt.CooldownStepMicros, units.Watt(ps))
	}
	_, slopeCore, err := stats.LinFit(temps, cores)
	if err != nil {
		return nil, fmt.Errorf("powermodel: AICore cooldown fit: %w", err)
	}
	_, slopeSoC, err := stats.LinFit(temps, socs)
	if err != nil {
		return nil, fmt.Errorf("powermodel: SoC cooldown fit: %w", err)
	}
	off.AICore.Gamma = slopeCore / vCool
	off.SoC.Gamma = slopeSoC / vCool

	// Step 3 - k from equilibrium (P_soc, T) pairs across loads at
	// different frequencies (Fig. 10 / Eq. 15).
	var eqP, eqT []float64
	for _, f := range opt.EquilibriumFreqs {
		thEq := thermal.NewState(rig.Thermal)
		p, err := prof.WarmupIterations(testLoad, float64(f), rig.Ground, thEq, 4000, 0.5)
		if err != nil {
			return nil, fmt.Errorf("powermodel: equilibrium run at %g MHz: %w", float64(f), err)
		}
		eqP = append(eqP, p.MeanSoCW())
		eqT = append(eqT, rig.Sensor.Temp(float64(thEq.TempC())))
	}
	_, k, err := stats.LinFit(eqP, eqT)
	if err != nil {
		return nil, fmt.Errorf("powermodel: equilibrium fit: %w", err)
	}
	off.K = units.CelsiusPerWatt(k)
	return off, nil
}

// OpPower holds the fitted load-dependent coefficients of one
// operator.
type OpPower struct {
	// AlphaCore and AlphaSoC are the activity coefficients of Eq. 13
	// for compute operators (W per MHz·V²).
	AlphaCore, AlphaSoC float64
	// ExtraSoC is the constant uncore power above idle drawn by
	// non-compute entries (AICPU, communication), whose consumption
	// does not follow the α·f·V² form.
	ExtraSoC float64
	// Compute records which representation applies.
	Compute bool
}

// Model is the complete power model: offline hardware parameters plus
// per-operator online coefficients.
type Model struct {
	*Offline
	// Ops maps operator key to fitted coefficients.
	Ops map[string]OpPower
	// TemperatureAware controls whether the γΔT·V term is used; the
	// ablation of Sect. 7.3 sets it false (γ effectively zero).
	TemperatureAware bool
}

// Build runs the online phase: it extracts per-operator α values from
// power-collecting profiles (one per build frequency, typically the
// window edges), subtracting idle and temperature terms per Eq. 14.
// With temperatureAware false, the temperature term is not subtracted,
// so its energy is absorbed into α — the paper's γ=0 ablation.
func Build(off *Offline, profiles []*profiler.Profile, temperatureAware bool) (*Model, error) {
	if off == nil {
		return nil, fmt.Errorf("powermodel: nil offline calibration")
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("powermodel: no build profiles")
	}
	type acc struct {
		core, soc, extra float64
		n                int
		compute          bool
	}
	sums := make(map[string]*acc)
	curve := off.Chip.Curve
	for _, prof := range profiles {
		for i := range prof.Records {
			r := &prof.Records[i]
			if r.Spec.Class == op.Idle {
				continue
			}
			f := r.FreqMHz
			v := float64(curve.Voltage(units.MHz(f)))
			deltaT := r.TempC - float64(off.AmbientC)
			tempCore, tempSoC := 0.0, 0.0
			if temperatureAware {
				tempCore = off.AICore.Gamma * deltaT * v
				tempSoC = off.SoC.Gamma * deltaT * v
			}
			key := r.Spec.Key()
			a, ok := sums[key]
			if !ok {
				a = &acc{compute: r.Spec.Class == op.Compute}
				sums[key] = a
			}
			idleCore := float64(off.AICore.Idle(units.MHz(f), units.Volt(v)))
			idleSoC := float64(off.SoC.Idle(units.MHz(f), units.Volt(v)))
			if a.compute {
				a.core += (r.AICoreW - idleCore - tempCore) / (f * v * v)
				a.soc += (r.SoCW - idleSoC - tempSoC) / (f * v * v)
			} else {
				a.extra += r.SoCW - idleSoC - tempSoC
			}
			a.n++
		}
	}
	m := &Model{Offline: off, Ops: make(map[string]OpPower, len(sums)), TemperatureAware: temperatureAware}
	for key, a := range sums {
		n := float64(a.n)
		m.Ops[key] = OpPower{
			AlphaCore: a.core / n,
			AlphaSoC:  a.soc / n,
			ExtraSoC:  a.extra / n,
			Compute:   a.compute,
		}
	}
	return m, nil
}

// gamma returns the effective temperature coefficients honoring the
// ablation switch.
func (m *Model) gamma() (core, soc float64) {
	if !m.TemperatureAware {
		return 0, 0
	}
	return m.AICore.Gamma, m.SoC.Gamma
}

// OpPowerAt predicts the instantaneous AICore and SoC power of an
// operator at frequency f with temperature rise deltaT. Unknown keys
// predict idle power.
func (m *Model) OpPowerAt(key string, f units.MHz, deltaT units.Celsius) (core, soc units.Watt) {
	x, dt := float64(f), float64(deltaT)
	v := float64(m.Chip.Curve.Voltage(f))
	gc, gs := m.gamma()
	pc := float64(m.AICore.Idle(f, units.Volt(v))) + gc*dt*v
	ps := float64(m.SoC.Idle(f, units.Volt(v))) + gs*dt*v
	p, ok := m.Ops[key]
	if !ok {
		return units.Watt(pc), units.Watt(ps)
	}
	if p.Compute {
		pc += p.AlphaCore * x * v * v
		ps += p.AlphaSoC * x * v * v
	} else {
		ps += p.ExtraSoC
	}
	return units.Watt(pc), units.Watt(ps)
}

// SolveDeltaTLinear solves the Sect. 5.4 fixed point in closed form
// for the affine case ΔT = k·(P0 + slope·ΔT), where P0 is the power at
// ΔT = 0 and slope (W/°C) is dP_soc/dΔT — for the stage-table
// evaluator, γ_soc times the time-weighted mean voltage. The iterative
// scheme from ΔT = 0 is the geometric series k·P0·Σ(k·slope)^m, so the
// closed form k·P0/(1-k·slope) is its exact limit; the two agree to
// better than 1e-9 (proved in tests), but the closed form costs one
// divide instead of a handful of callback rounds and allocates
// nothing. When the loop gain k·slope reaches 1 the fixed point is
// non-physical (thermal runaway) and the iterative solver's divergent
// behaviour is preserved by falling back to it. Genuinely nonlinear
// P_soc(ΔT) callers must keep using SolveDeltaT.
func SolveDeltaTLinear(k units.CelsiusPerWatt, p0 units.Watt, slopeWPerC float64) units.Celsius {
	gain := float64(k) * slopeWPerC
	if gain >= 1 {
		// Inline the SolveDeltaT rounds for the affine P_soc instead of
		// passing a closure: this branch is reachable from the scoring
		// hot path, and the closure capture was its only allocation.
		// Same maxIters/tol and the same float op order, so the
		// divergent-case behaviour is bit-identical.
		const (
			maxIters = 16
			tol      = 1e-6
		)
		var deltaT units.Celsius
		for i := 0; i < maxIters; i++ {
			next := k.Times(units.Watt(float64(p0) + slopeWPerC*float64(deltaT)))
			if math.Abs(float64(next-deltaT)) < tol {
				return next
			}
			deltaT = next
		}
		return deltaT
	}
	return units.Celsius(float64(k) * float64(p0) / (1 - gain))
}

// SolveDeltaT solves the self-consistent temperature rise of Sect. 5.4:
// ΔT = k·P_soc(ΔT). It iterates from ΔT = 0 as in the paper, which
// converges within a few rounds; iters reports how many were used.
func SolveDeltaT(k units.CelsiusPerWatt, psoc func(deltaT units.Celsius) units.Watt) (deltaT units.Celsius, iters int) {
	const (
		maxIters = 16
		tol      = 1e-6
	)
	for iters = 0; iters < maxIters; iters++ {
		next := k.Times(psoc(deltaT))
		if math.Abs(float64(next-deltaT)) < tol {
			return next, iters + 1
		}
		deltaT = next
	}
	return deltaT, maxIters
}
