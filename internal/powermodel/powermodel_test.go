package powermodel

import (
	"math"
	"sync"
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

func testRig(seed int64) *Rig {
	chip := npu.Default()
	return &Rig{
		Chip:    chip,
		Ground:  powersim.Default(chip),
		Sensor:  powersim.NewSensor(seed),
		Thermal: thermal.Default(),
	}
}

// testLoad returns a mid-size trace whose iterations are long enough
// to warm the chip in a reasonable number of iterations.
func testLoad() []op.Spec {
	var trace []op.Spec
	reps := workload.RepresentativeOps()
	for i := 0; i < 60; i++ {
		trace = append(trace, reps...)
	}
	return trace
}

var (
	calOnce sync.Once
	calOff  *Offline
	calErr  error
)

// calibrated returns a fresh rig plus a calibration shared across
// tests (calibration is the expensive step and is deterministic).
func calibrated(t *testing.T) (*Rig, *Offline) {
	t.Helper()
	calOnce.Do(func() {
		calOff, calErr = Calibrate(testRig(7), testLoad(), DefaultCalibrateOptions())
	})
	if calErr != nil {
		t.Fatal(calErr)
	}
	return testRig(7), calOff
}

func TestCalibrateRecoversAICoreIdleTerms(t *testing.T) {
	rig, off := calibrated(t)
	g := rig.Ground
	if rel := math.Abs(off.AICore.Beta-g.BetaCore) / g.BetaCore; rel > 0.25 {
		t.Errorf("BetaCore = %g, truth %g (rel %g)", off.AICore.Beta, g.BetaCore, rel)
	}
	if rel := math.Abs(off.AICore.Theta-g.ThetaCore) / g.ThetaCore; rel > 0.25 {
		t.Errorf("ThetaCore = %g, truth %g (rel %g)", off.AICore.Theta, g.ThetaCore, rel)
	}
	// The fitted idle curve must reproduce true idle power at interior
	// frequencies within a couple of percent.
	for _, f := range rig.Chip.Curve.Grid() {
		v := rig.Chip.Curve.Voltage(f)
		pred := off.AICore.Idle(f, v)
		truth := g.AICoreIdle(float64(f), 0)
		if e := stats.AbsRelError(float64(pred), truth); e > 0.05 {
			t.Errorf("idle prediction at %g MHz: error %g", f, e)
		}
	}
}

func TestCalibrateRecoversGamma(t *testing.T) {
	rig, off := calibrated(t)
	g := rig.Ground
	if rel := math.Abs(off.AICore.Gamma-g.GammaCore) / g.GammaCore; rel > 0.25 {
		t.Errorf("GammaCore = %g, truth %g", off.AICore.Gamma, g.GammaCore)
	}
	// SoC gamma folds in the uncore leakage slope: γ_soc·V ≈ γ_core·V + UncoreGamma.
	v := float64(rig.Chip.Curve.Voltage(rig.Chip.Curve.Max()))
	wantSlope := g.GammaCore*v + g.UncoreGamma
	if rel := math.Abs(off.SoC.Gamma*v-wantSlope) / wantSlope; rel > 0.25 {
		t.Errorf("SoC cooling slope = %g, want ~%g", off.SoC.Gamma*v, wantSlope)
	}
}

func TestCalibrateRecoversK(t *testing.T) {
	rig, off := calibrated(t)
	if rel := math.Abs(float64(off.K-rig.Thermal.KCPerWatt)) / float64(rig.Thermal.KCPerWatt); rel > 0.1 {
		t.Errorf("K = %g, truth %g", off.K, rig.Thermal.KCPerWatt)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(nil, testLoad(), DefaultCalibrateOptions()); err == nil {
		t.Error("nil rig: want error")
	}
	if _, err := Calibrate(testRig(1), nil, DefaultCalibrateOptions()); err == nil {
		t.Error("empty test load: want error")
	}
}

// buildProfiles collects power profiles of the trace at the build
// frequencies from a warmed chip, as the online phase prescribes.
func buildProfiles(t *testing.T, rig *Rig, trace []op.Spec, freqs []float64) []*profiler.Profile {
	t.Helper()
	p := profiler.Profiler{Chip: rig.Chip, Sensor: rig.Sensor, TimeNoiseFrac: 0.01}
	var out []*profiler.Profile
	for _, f := range freqs {
		th := thermal.NewState(rig.Thermal)
		if _, err := p.WarmupIterations(trace, f, rig.Ground, th, 4000, 0.5); err != nil {
			t.Fatal(err)
		}
		prof, err := p.RunPower(trace, f, rig.Ground, th)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, prof)
	}
	return out
}

func TestBuildAndPredictAcrossFrequencies(t *testing.T) {
	rig, off := calibrated(t)
	trace := testLoad()
	m, err := Build(off, buildProfiles(t, rig, trace, []float64{1000, 1800}), true)
	if err != nil {
		t.Fatal(err)
	}
	// Predict each operator's power at interior frequencies and
	// compare against ground truth at the equilibrium ΔT of that
	// frequency. Average error should be single-digit percent
	// (Table 2 reports 4.62%).
	var errsCore, errsSoC []float64
	for _, f := range []units.MHz{1100, 1300, 1500, 1700} {
		th := thermal.NewState(rig.Thermal)
		p := profiler.Profiler{Chip: rig.Chip} // noiseless observation of truth
		if _, err := p.WarmupIterations(trace, float64(f), rig.Ground, th, 4000, 0.5); err != nil {
			t.Fatal(err)
		}
		deltaT := th.DeltaT()
		reps := workload.RepresentativeOps()
		for i := range reps {
			s := &reps[i]
			predCore, predSoC := m.OpPowerAt(s.Key(), f, deltaT)
			trueCore := rig.Ground.AICorePower(s, float64(f), float64(deltaT))
			trueSoC := rig.Ground.SoCPower(s, float64(f), float64(deltaT))
			errsCore = append(errsCore, stats.AbsRelError(float64(predCore), trueCore))
			errsSoC = append(errsSoC, stats.AbsRelError(float64(predSoC), trueSoC))
		}
	}
	if mean := stats.Mean(errsCore); mean > 0.08 {
		t.Errorf("mean AICore power error %.3f, want < 8%%", mean)
	}
	if mean := stats.Mean(errsSoC); mean > 0.08 {
		t.Errorf("mean SoC power error %.3f, want < 8%%", mean)
	}
}

func TestBuildValidation(t *testing.T) {
	_, off := calibrated(t)
	if _, err := Build(nil, nil, true); err == nil {
		t.Error("nil offline: want error")
	}
	if _, err := Build(off, nil, true); err == nil {
		t.Error("no profiles: want error")
	}
}

func TestTemperatureTermImprovesHotIdlePrediction(t *testing.T) {
	rig, off := calibrated(t)
	trace := testLoad()
	profiles := buildProfiles(t, rig, trace, []float64{1000, 1800})
	aware, err := Build(off, profiles, true)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := Build(off, profiles, false)
	if err != nil {
		t.Fatal(err)
	}
	// At a 30°C rise, the temperature term contributes several watts
	// of AICore leakage (Sect. 7.3 measures 3-8 W). The γ-aware model
	// must track it; the γ=0 model misses it on idle prediction.
	const deltaT = 30.0
	f := units.MHz(1500)
	truth := rig.Ground.AICorePower(nil, float64(f), deltaT)
	awareCore, _ := aware.OpPowerAt("nonexistent", f, deltaT)
	blindCore, _ := blind.OpPowerAt("nonexistent", f, deltaT)
	if eAware, eBlind := math.Abs(float64(awareCore)-truth), math.Abs(float64(blindCore)-truth); eAware >= eBlind {
		t.Errorf("temperature-aware idle error %g W should beat blind %g W", eAware, eBlind)
	}
}

func TestNonComputeOpsGetConstantExtra(t *testing.T) {
	rig, off := calibrated(t)
	trace := append(testLoad(),
		op.Spec{Name: "AllReduce", Class: op.Communication, FixedTime: 500},
		op.Spec{Name: "TopK", Class: op.AICPU, FixedTime: 200},
	)
	m, err := Build(off, buildProfiles(t, rig, trace, []float64{1000, 1800}), true)
	if err != nil {
		t.Fatal(err)
	}
	comm, ok := m.Ops["AllReduce"]
	if !ok {
		t.Fatal("communication op missing from model")
	}
	if comm.Compute {
		t.Error("communication op marked Compute")
	}
	if comm.ExtraSoC < rig.Ground.CommPower*0.5 || comm.ExtraSoC > rig.Ground.CommPower*1.5 {
		t.Errorf("AllReduce ExtraSoC = %g, want ~%g", comm.ExtraSoC, rig.Ground.CommPower)
	}
	// Its SoC power prediction must not scale with frequency beyond
	// the idle component.
	_, socLo := m.OpPowerAt("AllReduce", 1000, 10)
	_, socHi := m.OpPowerAt("AllReduce", 1800, 10)
	idleLo := off.SoC.Idle(1000, rig.Chip.Curve.Voltage(1000))
	idleHi := off.SoC.Idle(1800, rig.Chip.Curve.Voltage(1800))
	if math.Abs(float64((socHi-idleHi)-(socLo-idleLo))) > 1 {
		t.Errorf("non-compute extra varies with frequency: %g vs %g", socHi-idleHi, socLo-idleLo)
	}
}

func TestSolveDeltaTConvergesQuickly(t *testing.T) {
	// Linear self-consistency: P = 200 + 0.3·ΔT, k = 0.12 — the exact
	// fixpoint is ΔT = k·200/(1-0.3k).
	k := units.CelsiusPerWatt(0.12)
	psoc := func(dt units.Celsius) units.Watt { return units.Watt(200 + 0.3*float64(dt)) }
	dt, iters := SolveDeltaT(k, psoc)
	want := float64(k) * 200 / (1 - 0.3*float64(k))
	if math.Abs(float64(dt)-want) > 1e-3 {
		t.Errorf("fixpoint = %g, want %g", dt, want)
	}
	if iters > 8 {
		t.Errorf("took %d iterations, paper reports <= 4 at this scale", iters)
	}
}

func TestSolveDeltaTLinearMatchesIterative(t *testing.T) {
	// The closed form dt = k·p0/(1-k·slope) is the limit of the geometric
	// series the iterative solver walks. Compare against an
	// iterated-to-machine-precision reference (not SolveDeltaT itself,
	// whose 1e-6 tolerance stops a few ulps short).
	cases := []struct {
		k     float64
		p0    float64
		slope float64
	}{
		{0.12, 200, 0.3},
		{0.05, 350, 0},
		{0.02, 80, 1.9},
		{0.3, 15, 2.5},
		{0.0007, 4200, 0.9},
	}
	for _, c := range cases {
		got := float64(SolveDeltaTLinear(units.CelsiusPerWatt(c.k), units.Watt(c.p0), c.slope))
		ref := 0.0
		for i := 0; i < 200; i++ {
			ref = c.k * (c.p0 + c.slope*ref)
		}
		if ref != 0 && math.Abs(got-ref)/math.Abs(ref) > 1e-9 {
			t.Errorf("k=%g p0=%g slope=%g: closed form %g, iterative reference %g", c.k, c.p0, c.slope, got, ref)
		}
	}
}

func TestSolveDeltaTLinearRunawayFallsBackToIterative(t *testing.T) {
	// gain = k·slope >= 1 has no finite fixpoint; the closed form would
	// divide by zero or flip sign. The function must fall back to the
	// bounded iterative solver and return whatever it returns.
	k := units.CelsiusPerWatt(0.5)
	p0 := units.Watt(100)
	slope := 2.5 // gain = 1.25
	got := SolveDeltaTLinear(k, p0, slope)
	want, _ := SolveDeltaT(k, func(dt units.Celsius) units.Watt {
		return units.Watt(float64(p0) + slope*float64(dt))
	})
	if got != want {
		t.Errorf("runaway case: closed-form path returned %g, iterative fallback %g", got, want)
	}
	if math.IsNaN(float64(got)) || math.IsInf(float64(got), 0) {
		t.Errorf("runaway case produced non-finite %g", got)
	}
}

func TestOpPowerAtUnknownKeyIsIdle(t *testing.T) {
	rig, off := calibrated(t)
	m := &Model{Offline: off, Ops: map[string]OpPower{}, TemperatureAware: true}
	core, soc := m.OpPowerAt("missing", 1500, 0)
	v := rig.Chip.Curve.Voltage(1500)
	if core != off.AICore.Idle(1500, v) || soc != off.SoC.Idle(1500, v) {
		t.Error("unknown key should predict idle power")
	}
}
