// Package vf models the voltage-frequency relationship of an AI
// accelerator's core domain under DVFS control.
//
// The reference curve reproduces Fig. 9 of the paper: the Ascend NPU
// supports core frequencies from 1000 MHz to 1800 MHz in 100 MHz
// increments; below a knee frequency (1300 MHz) the firmware holds the
// voltage constant, and above the knee the voltage rises linearly with
// frequency. The same positive correlation is observed on NVIDIA GPUs.
//
// Conventions used across this repository: frequencies are expressed in
// MHz and voltages in volts. Because times elsewhere are expressed in
// microseconds, a frequency in MHz is numerically equal to cycles per
// microsecond, which keeps cycle arithmetic free of unit constants.
package vf

import (
	"fmt"
	"math"
	"sort"
)

// Curve describes a firmware voltage-frequency table: a frequency grid
// with automatic voltage adaptation. The zero value is not usable; build
// one with New or use Ascend for the paper's reference platform.
type Curve struct {
	minMHz  float64
	maxMHz  float64
	stepMHz float64
	kneeMHz float64 // below this the voltage is flat
	vFlat   float64 // volts at and below the knee
	vMax    float64 // volts at maxMHz
}

// New builds a voltage-frequency curve. Frequencies are in MHz, voltages
// in volts. The curve holds vFlat below kneeMHz and rises linearly from
// vFlat at kneeMHz to vMax at maxMHz.
func New(minMHz, maxMHz, stepMHz, kneeMHz, vFlat, vMax float64) (*Curve, error) {
	switch {
	case minMHz <= 0 || maxMHz <= minMHz:
		return nil, fmt.Errorf("vf: invalid frequency range [%g, %g] MHz", minMHz, maxMHz)
	case stepMHz <= 0:
		return nil, fmt.Errorf("vf: invalid step %g MHz", stepMHz)
	case kneeMHz < minMHz || kneeMHz > maxMHz:
		return nil, fmt.Errorf("vf: knee %g MHz outside range [%g, %g]", kneeMHz, minMHz, maxMHz)
	case vFlat <= 0 || vMax < vFlat:
		return nil, fmt.Errorf("vf: invalid voltages flat=%g max=%g", vFlat, vMax)
	}
	return &Curve{
		minMHz:  minMHz,
		maxMHz:  maxMHz,
		stepMHz: stepMHz,
		kneeMHz: kneeMHz,
		vFlat:   vFlat,
		vMax:    vMax,
	}, nil
}

// Ascend returns the reference curve used throughout the paper's
// experiments: 1000-1800 MHz in 100 MHz steps, voltage flat at 0.75 V up
// to 1300 MHz, rising linearly to 0.83 V at 1800 MHz (the shape of
// Fig. 9).
func Ascend() *Curve {
	c, err := New(1000, 1800, 100, 1300, 0.75, 0.83)
	if err != nil {
		panic("vf: reference curve construction failed: " + err.Error())
	}
	return c
}

// Min returns the lowest supported frequency in MHz.
func (c *Curve) Min() float64 { return c.minMHz }

// Max returns the highest supported frequency in MHz.
func (c *Curve) Max() float64 { return c.maxMHz }

// Step returns the grid step in MHz.
func (c *Curve) Step() float64 { return c.stepMHz }

// Knee returns the frequency in MHz below which voltage is flat.
func (c *Curve) Knee() float64 { return c.kneeMHz }

// Grid returns the supported frequency points in MHz, ascending.
func (c *Curve) Grid() []float64 {
	n := int(math.Round((c.maxMHz-c.minMHz)/c.stepMHz)) + 1
	grid := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		grid = append(grid, c.minMHz+float64(i)*c.stepMHz)
	}
	return grid
}

// Voltage returns the firmware-selected voltage in volts for a core
// frequency in MHz. Frequencies outside the supported range are clamped,
// matching firmware behaviour.
func (c *Curve) Voltage(fMHz float64) float64 {
	f := c.Clamp(fMHz)
	if f <= c.kneeMHz {
		return c.vFlat
	}
	frac := (f - c.kneeMHz) / (c.maxMHz - c.kneeMHz)
	return c.vFlat + frac*(c.vMax-c.vFlat)
}

// Clamp limits fMHz to the supported range.
func (c *Curve) Clamp(fMHz float64) float64 {
	return math.Min(c.maxMHz, math.Max(c.minMHz, fMHz))
}

// Nearest snaps fMHz to the closest grid point.
func (c *Curve) Nearest(fMHz float64) float64 {
	f := c.Clamp(fMHz)
	steps := math.Round((f - c.minMHz) / c.stepMHz)
	return c.minMHz + steps*c.stepMHz
}

// Contains reports whether fMHz is exactly one of the grid points.
func (c *Curve) Contains(fMHz float64) bool {
	grid := c.Grid()
	i := sort.SearchFloat64s(grid, fMHz)
	//lint:allow floateq exact by contract: grid points are constructed identically by Grid/Nearest and Contains is documented as exact membership
	return i < len(grid) && grid[i] == fMHz
}

// Point is one (frequency, voltage) operating point.
type Point struct {
	MHz   float64
	Volts float64
}

// Points returns the full operating-point table, ascending by frequency.
// This is the data series behind Fig. 9.
func (c *Curve) Points() []Point {
	grid := c.Grid()
	pts := make([]Point, len(grid))
	for i, f := range grid {
		pts[i] = Point{MHz: f, Volts: c.Voltage(f)}
	}
	return pts
}
