// Package vf models the voltage-frequency relationship of an AI
// accelerator's core domain under DVFS control.
//
// The reference curve reproduces Fig. 9 of the paper: the Ascend NPU
// supports core frequencies from 1000 MHz to 1800 MHz in 100 MHz
// increments; below a knee frequency (1300 MHz) the firmware holds the
// voltage constant, and above the knee the voltage rises linearly with
// frequency. The same positive correlation is observed on NVIDIA GPUs.
//
// Quantities carry the defined types of internal/units (units.MHz,
// units.Volt). This package is the one place frequency constants are
// allowed to appear as bare literals — everything else must derive its
// operating points from a Curve (enforced by dvfslint's unitcheck
// rule).
package vf

import (
	"fmt"
	"math"
	"sort"

	"npudvfs/internal/units"
)

// Curve describes a firmware voltage-frequency table: a frequency grid
// with automatic voltage adaptation. The zero value is not usable; build
// one with New or use Ascend for the paper's reference platform.
type Curve struct {
	minMHz  units.MHz
	maxMHz  units.MHz
	stepMHz units.MHz
	kneeMHz units.MHz  // below this the voltage is flat
	vFlat   units.Volt // volts at and below the knee
	vMax    units.Volt // volts at maxMHz
}

// New builds a voltage-frequency curve. The curve holds vFlat below
// kneeMHz and rises linearly from vFlat at kneeMHz to vMax at maxMHz.
func New(minMHz, maxMHz, stepMHz, kneeMHz units.MHz, vFlat, vMax units.Volt) (*Curve, error) {
	switch {
	case minMHz <= 0 || maxMHz <= minMHz:
		return nil, fmt.Errorf("vf: invalid frequency range [%g, %g] MHz", minMHz, maxMHz)
	case stepMHz <= 0:
		return nil, fmt.Errorf("vf: invalid step %g MHz", stepMHz)
	case kneeMHz < minMHz || kneeMHz > maxMHz:
		return nil, fmt.Errorf("vf: knee %g MHz outside range [%g, %g]", kneeMHz, minMHz, maxMHz)
	case vFlat <= 0 || vMax < vFlat:
		return nil, fmt.Errorf("vf: invalid voltages flat=%g max=%g", vFlat, vMax)
	}
	return &Curve{
		minMHz:  minMHz,
		maxMHz:  maxMHz,
		stepMHz: stepMHz,
		kneeMHz: kneeMHz,
		vFlat:   vFlat,
		vMax:    vMax,
	}, nil
}

// Ascend returns the reference curve used throughout the paper's
// experiments: 1000-1800 MHz in 100 MHz steps, voltage flat at 0.75 V up
// to 1300 MHz, rising linearly to 0.83 V at 1800 MHz (the shape of
// Fig. 9).
func Ascend() *Curve {
	c, err := New(1000, 1800, 100, 1300, 0.75, 0.83)
	if err != nil {
		panic("vf: reference curve construction failed: " + err.Error())
	}
	return c
}

// Min returns the lowest supported frequency.
func (c *Curve) Min() units.MHz { return c.minMHz }

// Max returns the highest supported frequency.
func (c *Curve) Max() units.MHz { return c.maxMHz }

// Step returns the grid step.
func (c *Curve) Step() units.MHz { return c.stepMHz }

// Knee returns the frequency below which voltage is flat.
func (c *Curve) Knee() units.MHz { return c.kneeMHz }

// Grid returns the supported frequency points, ascending.
func (c *Curve) Grid() []units.MHz {
	n := int(math.Round(float64((c.maxMHz-c.minMHz)/c.stepMHz))) + 1
	grid := make([]units.MHz, 0, n)
	for i := 0; i < n; i++ {
		grid = append(grid, c.minMHz+units.MHz(i)*c.stepMHz)
	}
	return grid
}

// Voltage returns the firmware-selected voltage for a core frequency.
// Frequencies outside the supported range are clamped, matching
// firmware behaviour.
func (c *Curve) Voltage(fMHz units.MHz) units.Volt {
	f := c.Clamp(fMHz)
	if f <= c.kneeMHz {
		return c.vFlat
	}
	frac := float64((f - c.kneeMHz) / (c.maxMHz - c.kneeMHz))
	return c.vFlat + units.Volt(frac)*(c.vMax-c.vFlat)
}

// Clamp limits fMHz to the supported range.
func (c *Curve) Clamp(fMHz units.MHz) units.MHz {
	return units.MHz(math.Min(float64(c.maxMHz), math.Max(float64(c.minMHz), float64(fMHz))))
}

// Nearest snaps fMHz to the closest grid point.
func (c *Curve) Nearest(fMHz units.MHz) units.MHz {
	f := c.Clamp(fMHz)
	steps := math.Round(float64((f - c.minMHz) / c.stepMHz))
	return c.minMHz + units.MHz(steps)*c.stepMHz
}

// Contains reports whether fMHz is exactly one of the grid points.
func (c *Curve) Contains(fMHz units.MHz) bool {
	grid := units.Floats(c.Grid())
	i := sort.SearchFloat64s(grid, float64(fMHz))
	//lint:allow floateq exact by contract: grid points are constructed identically by Grid/Nearest and Contains is documented as exact membership
	return i < len(grid) && grid[i] == float64(fMHz)
}

// Point is one (frequency, voltage) operating point.
type Point struct {
	MHz   units.MHz
	Volts units.Volt
}

// Points returns the full operating-point table, ascending by frequency.
// This is the data series behind Fig. 9.
func (c *Curve) Points() []Point {
	grid := c.Grid()
	pts := make([]Point, len(grid))
	for i, f := range grid {
		pts[i] = Point{MHz: f, Volts: c.Voltage(f)}
	}
	return pts
}
