package vf

import (
	"math"
	"testing"
	"testing/quick"

	"npudvfs/internal/units"
)

func TestAscendGrid(t *testing.T) {
	c := Ascend()
	grid := c.Grid()
	if len(grid) != 9 {
		t.Fatalf("grid length = %d, want 9", len(grid))
	}
	if grid[0] != 1000 || grid[len(grid)-1] != 1800 {
		t.Errorf("grid endpoints = %g, %g; want 1000, 1800", grid[0], grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i]-grid[i-1] != 100 {
			t.Errorf("grid step at %d = %g, want 100", i, grid[i]-grid[i-1])
		}
	}
}

func TestVoltageFlatBelowKnee(t *testing.T) {
	c := Ascend()
	for _, f := range []units.MHz{1000, 1100, 1200, 1300} {
		if v := c.Voltage(f); v != 0.75 {
			t.Errorf("Voltage(%g) = %g, want 0.75 (flat below knee)", f, v)
		}
	}
}

func TestVoltageLinearAboveKnee(t *testing.T) {
	c := Ascend()
	v13 := c.Voltage(1300)
	v18 := c.Voltage(1800)
	if v18 <= v13 {
		t.Fatalf("voltage must rise above knee: V(1300)=%g, V(1800)=%g", v13, v18)
	}
	// Midpoint of the rising segment must be the midpoint voltage.
	vMid := c.Voltage(1550)
	want := (v13 + v18) / 2
	if math.Abs(float64(vMid-want)) > 1e-12 {
		t.Errorf("Voltage(1550) = %g, want %g (linear above knee)", vMid, want)
	}
}

func TestVoltageMonotone(t *testing.T) {
	c := Ascend()
	prev := units.Volt(0)
	for _, f := range c.Grid() {
		v := c.Voltage(f)
		if v < prev {
			t.Errorf("voltage decreased at %g MHz: %g < %g", f, v, prev)
		}
		prev = v
	}
}

func TestClampAndNearest(t *testing.T) {
	c := Ascend()
	cases := []struct {
		in, clamp, near units.MHz
	}{
		{900, 1000, 1000},
		{1000, 1000, 1000},
		{1049, 1049, 1000},
		{1051, 1051, 1100},
		{1800, 1800, 1800},
		{2500, 1800, 1800},
	}
	for _, tc := range cases {
		if got := c.Clamp(tc.in); got != tc.clamp {
			t.Errorf("Clamp(%g) = %g, want %g", tc.in, got, tc.clamp)
		}
		if got := c.Nearest(tc.in); got != tc.near {
			t.Errorf("Nearest(%g) = %g, want %g", tc.in, got, tc.near)
		}
	}
}

func TestContains(t *testing.T) {
	c := Ascend()
	if !c.Contains(1500) {
		t.Error("Contains(1500) = false, want true")
	}
	if c.Contains(1550) {
		t.Error("Contains(1550) = true, want false")
	}
}

func TestPointsMatchesVoltage(t *testing.T) {
	c := Ascend()
	for _, p := range c.Points() {
		if got := c.Voltage(p.MHz); got != p.Volts {
			t.Errorf("Points() at %g MHz = %g V, Voltage() = %g V", p.MHz, p.Volts, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name                 string
		min, max, step, knee units.MHz
		vFlat, vMax          units.Volt
	}{
		{"reversed range", 1800, 1000, 100, 1300, 0.75, 0.83},
		{"zero step", 1000, 1800, 0, 1300, 0.75, 0.83},
		{"knee below range", 1000, 1800, 100, 900, 0.75, 0.83},
		{"knee above range", 1000, 1800, 100, 1900, 0.75, 0.83},
		{"vmax below vflat", 1000, 1800, 100, 1300, 0.85, 0.75},
		{"nonpositive voltage", 1000, 1800, 100, 1300, 0, 0.83},
	}
	for _, tc := range cases {
		if _, err := New(tc.min, tc.max, tc.step, tc.knee, tc.vFlat, tc.vMax); err == nil {
			t.Errorf("New(%s): expected error, got nil", tc.name)
		}
	}
}

// Property: Nearest always lands on a grid point, and voltage is always
// within the [vFlat, vMax] envelope, for arbitrary inputs.
func TestQuickNearestOnGrid(t *testing.T) {
	c := Ascend()
	prop := func(f float64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
		n := c.Nearest(units.MHz(f))
		v := c.Voltage(units.MHz(f))
		return c.Contains(n) && v >= 0.75 && v <= 0.83
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
