package plot

import (
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "Cycles vs frequency",
		XLabel: "MHz",
		YLabel: "cycles",
		Series: []Series{
			{Name: "op-a", X: []float64{1000, 1400, 1800}, Y: []float64{10, 12, 18}},
			{Name: "op-b", X: []float64{1000, 1400, 1800}, Y: []float64{20, 20, 21}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"polyline", "Cycles vs frequency", "op-a", "op-b", "MHz"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("got %d polylines, want 2", got)
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := sample()
	c.Title = `a < b & "c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a < b &`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp;") {
		t.Error("escaped title missing")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&Chart{Title: "empty"}).SVG(); err == nil {
		t.Error("no series: want error")
	}
	bad := &Chart{Series: []Series{{Name: "m", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("length mismatch: want error")
	}
	nan := &Chart{Series: []Series{{Name: "m", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}}
	if _, err := nan.SVG(); err == nil {
		t.Error("all-NaN series: want error")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	c := &Chart{
		Title:  "flat",
		Series: []Series{{Name: "const", X: []float64{5, 5, 5}, Y: []float64{2, 2, 2}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate range produced non-finite coordinates")
	}
}

func TestSinglePointRendersCircle(t *testing.T) {
	c := &Chart{
		Title:  "point",
		Series: []Series{{Name: "p", X: []float64{3}, Y: []float64{4}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("single point should render as a circle")
	}
}

func TestSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chart.svg")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("saved file does not start with <svg")
	}
}
