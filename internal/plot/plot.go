// Package plot renders simple line charts as SVG using only the
// standard library, so the figure-regeneration experiments can emit
// viewable plots (Fig. 3, 4, 9, 15, 17, ...) next to their text
// reports.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a line chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// W and H are the SVG dimensions in pixels; zero values default
	// to 720x420.
	W, H int
}

// palette holds the line colors, cycled by series index.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 50.0
	legendRow    = 16.0
)

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	w, h := c.W, c.H
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return "", fmt.Errorf("plot: chart %q has no finite points", c.Title)
	}
	// Degenerate ranges expand symmetrically so lines stay visible.
	//lint:allow floateq exact degenerate-range check; only a truly collapsed axis needs widening
	if xmax == xmin {
		xmin, xmax = xmin-1, xmax+1
	}
	//lint:allow floateq exact degenerate-range check; only a truly collapsed axis needs widening
	if ymax == ymin {
		ymin, ymax = ymin-1, ymax+1
	}
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, xmlEscape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	// Ticks and grid.
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/ticks
		fy := ymin + (ymax-ymin)*float64(i)/ticks
		x := px(fx)
		y := py(fy)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, formatTick(fx))
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(fy))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(h)-12, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, xmlEscape(c.YLabel))

	// Series polylines and legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) == 1 {
			// A single point renders as a small circle.
			var x, y float64
			fmt.Sscanf(pts[0], "%f,%f", &x, &y)
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n", x, y, color)
		} else if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		}
		// Legend entry.
		lx := marginLeft + plotW - 150
		ly := marginTop + 8 + legendRow*float64(si)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Save renders the chart to an SVG file.
func Save(path string, c *Chart) error {
	svg, err := c.SVG()
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(svg), 0o644)
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e5 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
