package traceio

import (
	"encoding/json"
	"fmt"
	"io"

	"npudvfs/internal/core"
	"npudvfs/internal/op"
	"npudvfs/internal/profiler"
)

// Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a JSON array of events viewable in chrome://tracing or Perfetto.
// Profiles export as complete ("X") events on per-class tracks, with
// the operator key, bottleneck-relevant ratios and the core frequency
// in args; strategies add instant ("i") SetFreq markers on a control
// track.

// chromeEvent is one trace-event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// trackOf maps trace-entry classes to display threads.
func trackOf(class op.Class) int {
	switch class {
	case op.Compute:
		return 1
	case op.AICPU:
		return 2
	case op.Communication:
		return 3
	default:
		return 4 // idle
	}
}

// WriteChromeTrace exports a profiled iteration (and optionally the
// strategy applied to it) as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, prof *profiler.Profile, strat *core.Strategy) error {
	if prof == nil || len(prof.Records) == 0 {
		return fmt.Errorf("traceio: empty profile")
	}
	events := make([]chromeEvent, 0, len(prof.Records)+16)
	for i := range prof.Records {
		r := &prof.Records[i]
		args := map[string]any{
			"key":      r.Spec.Key(),
			"class":    r.Spec.Class.String(),
			"freq_mhz": r.FreqMHz,
		}
		if r.Spec.Class == op.Compute {
			args["scenario"] = r.Spec.Scenario.String()
			args["ratio_core"] = r.Ratios[r.Spec.CorePipe]
			args["ratio_ld"] = r.Ratios[op.MTE2]
			args["ratio_st"] = r.Ratios[op.MTE3]
		}
		if r.SoCW > 0 {
			args["soc_w"] = r.SoCW
			args["aicore_w"] = r.AICoreW
		}
		events = append(events, chromeEvent{
			Name:  r.Spec.Name,
			Cat:   r.Spec.Class.String(),
			Phase: "X",
			TS:    r.StartMicros,
			Dur:   r.DurMicros,
			PID:   1,
			TID:   trackOf(r.Spec.Class),
			Args:  args,
		})
	}
	if strat != nil {
		for _, p := range strat.Points {
			args := map[string]any{"freq_mhz": float64(p.FreqMHz), "op_index": p.OpIndex}
			//lint:allow floateq exact sentinels: 0 = unset, 1 = nominal scale
			if p.UncoreScale != 0 && p.UncoreScale != 1 {
				args["uncore_scale"] = p.UncoreScale
			}
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("SetFreq %0.f", float64(p.FreqMHz)),
				Cat:   "dvfs",
				Phase: "i",
				TS:    float64(p.TimeMicros),
				PID:   1,
				TID:   0,
				Scope: "p",
				Args:  args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// SaveChromeTrace writes the Chrome trace to a file.
func SaveChromeTrace(path string, prof *profiler.Profile, strat *core.Strategy) error {
	return saveTo(path, func(w io.Writer) error { return WriteChromeTrace(w, prof, strat) })
}
