package traceio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
)

func sampleBundle(t *testing.T) *ModelBundle {
	t.Helper()
	perf := map[string]perfmodel.Model{
		"MatMul/a": {A: 0.01, C: 40000},
		"Gelu/b":   {A: 0.0001, C: 90000},
	}
	power := &powermodel.Model{
		Offline: &powermodel.Offline{
			AICore:   powermodel.Domain{Beta: 0.004, Theta: 5, Gamma: 0.2},
			SoC:      powermodel.Domain{Beta: -0.02, Theta: 220, Gamma: 0.32},
			K:        0.12,
			AmbientC: 35,
		},
		TemperatureAware: true,
		Ops: map[string]powermodel.OpPower{
			"MatMul/a":  {AlphaCore: 0.025, AlphaSoC: 0.05, Compute: true},
			"AllReduce": {ExtraSoC: 25},
		},
	}
	b, err := NewModelBundle("unit", perf, power)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestModelBundleRoundTrip(t *testing.T) {
	b := sampleBundle(t)
	var buf bytes.Buffer
	if err := WriteModels(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perf := back.PerfModels()
	if m := perf["MatMul/a"]; m.A != 0.01 || m.C != 40000 {
		t.Errorf("perf model round trip: %+v", m)
	}
	off := &powermodel.Offline{}
	power := back.PowerModel(off)
	if !power.TemperatureAware || power.K != 0.12 {
		t.Errorf("power offline round trip: %+v", power.Offline)
	}
	op := power.Ops["MatMul/a"]
	if !op.Compute || math.Abs(op.AlphaCore-0.025) > 1e-15 {
		t.Errorf("op power round trip: %+v", op)
	}
	comm := power.Ops["AllReduce"]
	if comm.Compute || comm.ExtraSoC != 25 {
		t.Errorf("non-compute op round trip: %+v", comm)
	}
	if got := back.Keys(); len(got) != 2 || got[0] != "Gelu/b" {
		t.Errorf("Keys() = %v", got)
	}
}

func TestModelBundleFileRoundTrip(t *testing.T) {
	b := sampleBundle(t)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := SaveModels(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != "unit" {
		t.Errorf("workload name = %q", back.Workload)
	}
}

func TestModelBundleErrors(t *testing.T) {
	if _, err := NewModelBundle("x", nil, nil); err == nil {
		t.Error("nil power model: want error")
	}
	var buf bytes.Buffer
	if err := WriteModels(&buf, nil); err == nil {
		t.Error("nil bundle: want error")
	}
	if _, err := ReadModels(strings.NewReader("nope")); err == nil {
		t.Error("garbage input: want error")
	}
	// Empty JSON object decodes into an empty but usable bundle.
	b, err := ReadModels(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if b.PerfModels() == nil || len(b.Keys()) != 0 {
		t.Error("empty bundle should be usable")
	}
}
