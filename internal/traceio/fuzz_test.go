package traceio

import (
	"bytes"
	"strings"
	"testing"

	"npudvfs/internal/workload"
)

// FuzzReadStrategy ensures the strategy parser never panics and that
// anything it accepts round-trips stably.
func FuzzReadStrategy(f *testing.F) {
	f.Add(`{"baseline_mhz":1800,"points":[{"op_index":0,"time_us":0,"freq_mhz":1800}]}`)
	f.Add(`{"baseline_mhz":1800,"points":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"baseline_mhz":-1}`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadStrategy(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteStrategy(&buf, s); err != nil {
			t.Fatalf("accepted strategy failed to serialize: %v", err)
		}
		s2, err := ReadStrategy(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted strategy failed: %v", err)
		}
		if s2.BaselineMHz != s.BaselineMHz || len(s2.Points) != len(s.Points) {
			t.Fatal("round trip changed the strategy")
		}
	})
}

// FuzzReadWorkload ensures the trace parser never panics and validates
// everything it accepts.
func FuzzReadWorkload(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, workload.MicroOp(workload.TanhOp(), 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","trace":[]}`)
	f.Add(`{"name":"x","trace":[{"name":"a","class":"idle","fixed_us":3}]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadWorkload(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything accepted must be a valid workload.
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid workload: %v", err)
		}
	})
}
