package traceio

import (
	"bytes"
	"strings"
	"testing"

	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// FuzzReadStrategy ensures the strategy parser never panics and that
// anything it accepts round-trips stably.
func FuzzReadStrategy(f *testing.F) {
	f.Add(`{"baseline_mhz":1800,"points":[{"op_index":0,"time_us":0,"freq_mhz":1800}]}`)
	f.Add(`{"baseline_mhz":1800,"points":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"baseline_mhz":-1}`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadStrategy(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteStrategy(&buf, s); err != nil {
			t.Fatalf("accepted strategy failed to serialize: %v", err)
		}
		s2, err := ReadStrategy(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted strategy failed: %v", err)
		}
		if s2.BaselineMHz != s.BaselineMHz || len(s2.Points) != len(s.Points) {
			t.Fatal("round trip changed the strategy")
		}
	})
}

// FuzzSearchSpecHash ensures the search-spec cache key is stable: for
// any spec the canonicalizer accepts, ConfigHash is a fixed-width hex
// digest, canonicalization is idempotent (re-canonicalizing changes
// neither the spec nor the hash), and the timeout — deliberately
// excluded from the key, since it cannot change a completed search's
// result — never perturbs it.
func FuzzSearchSpecHash(f *testing.F) {
	f.Add(0.0, 0.0, 0, 0, int64(0), 0)
	f.Add(0.02, 5.0, 200, 600, int64(1), 30000)
	f.Add(0.1, 1.0, 8, 40, int64(9), 0)
	f.Add(-0.5, 2.0, 10, 10, int64(3), 100)
	f.Add(0.999, 1e6, 1, 1, int64(-7), -1)
	f.Fuzz(func(t *testing.T, loss, fai float64, pop, gens int, seed int64, timeout int) {
		spec := SearchSpec{
			TargetLoss:    loss,
			FAIMillis:     units.Millis(fai),
			Pop:           pop,
			Gens:          gens,
			Seed:          seed,
			TimeoutMillis: timeout,
		}
		if err := spec.Canonicalize(); err != nil {
			return
		}
		h := spec.ConfigHash()
		if len(h) != 16 {
			t.Fatalf("ConfigHash %q is not 16 hex chars", h)
		}
		again := spec
		if err := again.Canonicalize(); err != nil {
			t.Fatalf("re-canonicalizing an accepted spec failed: %v", err)
		}
		if again != spec {
			t.Fatalf("Canonicalize is not idempotent: %+v != %+v", again, spec)
		}
		if again.ConfigHash() != h {
			t.Fatalf("hash changed across re-canonicalization: %s != %s", again.ConfigHash(), h)
		}
		retimed := spec
		retimed.TimeoutMillis = spec.TimeoutMillis + 1
		if retimed.ConfigHash() != h {
			t.Fatal("TimeoutMillis leaked into ConfigHash; the timeout must not invalidate cached strategies")
		}
	})
}

// FuzzReadWorkload ensures the trace parser never panics and validates
// everything it accepts.
func FuzzReadWorkload(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, workload.MicroOp(workload.TanhOp(), 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","trace":[]}`)
	f.Add(`{"name":"x","trace":[{"name":"a","class":"idle","fixed_us":3}]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadWorkload(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything accepted must be a valid workload.
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid workload: %v", err)
		}
	})
}
