package traceio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/units"
)

// ModelBundle is the serializable form of a workload's fitted models:
// the production deployment artifact — models are built once from
// profiling runs and reused for every subsequent strategy generation.
type ModelBundle struct {
	// Workload names the trace the models were fitted on.
	Workload string `json:"workload"`
	// Perf maps operator keys to Func. 2 coefficients.
	Perf map[string]perfJSON `json:"perf"`
	// Power carries the offline parameters and per-operator
	// coefficients.
	Power powerJSON `json:"power"`
}

type perfJSON struct {
	A float64 `json:"a"`
	C float64 `json:"c"`
}

type domainJSON struct {
	Beta  float64 `json:"beta"`
	Theta float64 `json:"theta"`
	Gamma float64 `json:"gamma"`
}

type opPowerJSON struct {
	AlphaCore float64 `json:"alpha_core,omitempty"`
	AlphaSoC  float64 `json:"alpha_soc,omitempty"`
	ExtraSoC  float64 `json:"extra_soc,omitempty"`
	Compute   bool    `json:"compute"`
}

type powerJSON struct {
	AICore           domainJSON             `json:"aicore"`
	SoC              domainJSON             `json:"soc"`
	K                units.CelsiusPerWatt   `json:"k"`
	AmbientC         units.Celsius          `json:"ambient_c"`
	TemperatureAware bool                   `json:"temperature_aware"`
	Ops              map[string]opPowerJSON `json:"ops"`
}

// NewModelBundle collects fitted models into a serializable bundle.
func NewModelBundle(workloadName string, perf map[string]perfmodel.Model, power *powermodel.Model) (*ModelBundle, error) {
	if power == nil || power.Offline == nil {
		return nil, fmt.Errorf("traceio: nil power model")
	}
	b := &ModelBundle{
		Workload: workloadName,
		Perf:     make(map[string]perfJSON, len(perf)),
		Power: powerJSON{
			AICore:           domainJSON(power.AICore),
			SoC:              domainJSON(power.SoC),
			K:                power.K,
			AmbientC:         power.AmbientC,
			TemperatureAware: power.TemperatureAware,
			Ops:              make(map[string]opPowerJSON, len(power.Ops)),
		},
	}
	for k, m := range perf {
		b.Perf[k] = perfJSON{A: m.A, C: m.C}
	}
	for k, p := range power.Ops {
		b.Power.Ops[k] = opPowerJSON{
			AlphaCore: p.AlphaCore, AlphaSoC: p.AlphaSoC,
			ExtraSoC: p.ExtraSoC, Compute: p.Compute,
		}
	}
	return b, nil
}

// PerfModels reconstructs the performance-model map.
func (b *ModelBundle) PerfModels() map[string]perfmodel.Model {
	out := make(map[string]perfmodel.Model, len(b.Perf))
	for k, m := range b.Perf {
		out[k] = perfmodel.Model{A: m.A, C: m.C}
	}
	return out
}

// PowerModel reconstructs the power model. The chip is re-attached by
// the caller because hardware handles do not serialize.
func (b *ModelBundle) PowerModel(off *powermodel.Offline) *powermodel.Model {
	offline := *off
	offline.AICore = powermodel.Domain(b.Power.AICore)
	offline.SoC = powermodel.Domain(b.Power.SoC)
	offline.K = b.Power.K
	offline.AmbientC = b.Power.AmbientC
	m := &powermodel.Model{
		Offline:          &offline,
		Ops:              make(map[string]powermodel.OpPower, len(b.Power.Ops)),
		TemperatureAware: b.Power.TemperatureAware,
	}
	for k, p := range b.Power.Ops {
		m.Ops[k] = powermodel.OpPower{
			AlphaCore: p.AlphaCore, AlphaSoC: p.AlphaSoC,
			ExtraSoC: p.ExtraSoC, Compute: p.Compute,
		}
	}
	return m
}

// Keys returns the operator keys covered by the bundle, sorted.
func (b *ModelBundle) Keys() []string {
	keys := make([]string, 0, len(b.Perf))
	for k := range b.Perf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteModels serializes a bundle to w.
func WriteModels(w io.Writer, b *ModelBundle) error {
	if b == nil {
		return fmt.Errorf("traceio: nil model bundle")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b)
}

// ReadModels deserializes a bundle from r.
func ReadModels(r io.Reader) (*ModelBundle, error) {
	var b ModelBundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("traceio: decoding models: %w", err)
	}
	if b.Perf == nil {
		b.Perf = map[string]perfJSON{}
	}
	if b.Power.Ops == nil {
		b.Power.Ops = map[string]opPowerJSON{}
	}
	return &b, nil
}

// SaveModels writes a bundle to path.
func SaveModels(path string, b *ModelBundle) error {
	return saveTo(path, func(w io.Writer) error { return WriteModels(w, b) })
}

// LoadModels reads a bundle from path.
func LoadModels(path string) (*ModelBundle, error) {
	f, err := openFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadModels(f)
}
