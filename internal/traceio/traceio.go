// Package traceio serializes workload traces and DVFS strategies as
// JSON, so profiling captures and generated policies can be stored,
// inspected and replayed across runs — the DVFS Executor of Sect. 7.1
// "reads the strategy generated in the DVFS Strategy Generate phase".
//
// Enumerations are encoded as strings for human readability and format
// stability.
package traceio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"npudvfs/internal/core"
	"npudvfs/internal/op"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// specJSON is the stable wire form of an operator spec.
type specJSON struct {
	Name        string  `json:"name"`
	Shape       string  `json:"shape,omitempty"`
	Class       string  `json:"class"`
	Scenario    string  `json:"scenario,omitempty"`
	Blocks      int     `json:"blocks,omitempty"`
	LoadBytes   float64 `json:"load_bytes,omitempty"`
	StoreBytes  float64 `json:"store_bytes,omitempty"`
	CoreCycles  float64 `json:"core_cycles,omitempty"`
	CorePipe    string  `json:"core_pipe,omitempty"`
	L2Hit       float64 `json:"l2_hit,omitempty"`
	PrePostTime float64 `json:"prepost_us,omitempty"`
	FixedTime   float64 `json:"fixed_us,omitempty"`
}

var classNames = map[op.Class]string{
	op.Compute:       "compute",
	op.AICPU:         "aicpu",
	op.Communication: "communication",
	op.Idle:          "idle",
}

var scenarioNames = map[op.Scenario]string{
	op.PingPongFreeIndep: "pingpongfree-indep",
	op.PingPongFreeDep:   "pingpongfree-dep",
	op.PingPongIndep:     "pingpong-indep",
	op.PingPongDep:       "pingpong-dep",
}

var pipeNames = map[op.Pipe]string{
	op.Cube: "cube", op.Vector: "vector", op.Scalar: "scalar",
	op.MTE1: "mte1", op.MTE2: "mte2", op.MTE3: "mte3",
}

func invert[K comparable, V comparable](m map[K]V) map[V]K {
	out := make(map[V]K, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

var (
	classValues    = invert(classNames)
	scenarioValues = invert(scenarioNames)
	pipeValues     = invert(pipeNames)
)

func specToJSON(s *op.Spec) specJSON {
	j := specJSON{
		Name:        s.Name,
		Shape:       s.Shape,
		Class:       classNames[s.Class],
		Blocks:      s.Blocks,
		LoadBytes:   s.LoadBytes,
		StoreBytes:  s.StoreBytes,
		CoreCycles:  s.CoreCycles,
		L2Hit:       s.L2Hit,
		PrePostTime: s.PrePostTime,
		FixedTime:   s.FixedTime,
	}
	if s.Class == op.Compute {
		j.Scenario = scenarioNames[s.Scenario]
		j.CorePipe = pipeNames[s.CorePipe]
	}
	return j
}

func specFromJSON(j *specJSON) (op.Spec, error) {
	class, ok := classValues[j.Class]
	if !ok {
		return op.Spec{}, fmt.Errorf("traceio: unknown class %q", j.Class)
	}
	s := op.Spec{
		Name:        j.Name,
		Shape:       j.Shape,
		Class:       class,
		Blocks:      j.Blocks,
		LoadBytes:   j.LoadBytes,
		StoreBytes:  j.StoreBytes,
		CoreCycles:  j.CoreCycles,
		L2Hit:       j.L2Hit,
		PrePostTime: j.PrePostTime,
		FixedTime:   j.FixedTime,
	}
	if class == op.Compute {
		scenario, ok := scenarioValues[j.Scenario]
		if !ok {
			return op.Spec{}, fmt.Errorf("traceio: unknown scenario %q for %s", j.Scenario, j.Name)
		}
		pipe, ok := pipeValues[j.CorePipe]
		if !ok {
			return op.Spec{}, fmt.Errorf("traceio: unknown pipe %q for %s", j.CorePipe, j.Name)
		}
		s.Scenario = scenario
		s.CorePipe = pipe
	}
	return s, nil
}

// workloadJSON is the wire form of a workload.
type workloadJSON struct {
	Name  string     `json:"name"`
	Trace []specJSON `json:"trace"`
}

// WriteWorkload serializes a workload to w.
func WriteWorkload(w io.Writer, m *workload.Model) error {
	if m == nil {
		return fmt.Errorf("traceio: nil workload")
	}
	out := workloadJSON{Name: m.Name, Trace: make([]specJSON, len(m.Trace))}
	for i := range m.Trace {
		out.Trace[i] = specToJSON(&m.Trace[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadWorkload deserializes and validates a workload from r.
func ReadWorkload(r io.Reader) (*workload.Model, error) {
	var in workloadJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("traceio: decoding workload: %w", err)
	}
	m := &workload.Model{Name: in.Name, Trace: make([]op.Spec, len(in.Trace))}
	for i := range in.Trace {
		s, err := specFromJSON(&in.Trace[i])
		if err != nil {
			return nil, fmt.Errorf("traceio: entry %d: %w", i, err)
		}
		m.Trace[i] = s
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveWorkload writes a workload to path.
func SaveWorkload(path string, m *workload.Model) error {
	return saveTo(path, func(w io.Writer) error { return WriteWorkload(w, m) })
}

// LoadWorkload reads a workload from path.
func LoadWorkload(path string) (*workload.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWorkload(f)
}

// strategyJSON is the wire form of a DVFS strategy.
// strategyJSON carries the units types directly: a defined float64
// type marshals byte-identically to float64, so the wire format is
// unchanged while decoded values arrive pre-dimensioned.
type strategyJSON struct {
	BaselineMHz units.MHz   `json:"baseline_mhz"`
	Points      []pointJSON `json:"points"`
}

type pointJSON struct {
	OpIndex     int          `json:"op_index"`
	TimeMicros  units.Micros `json:"time_us"`
	FreqMHz     units.MHz    `json:"freq_mhz"`
	UncoreScale float64      `json:"uncore_scale,omitempty"`
}

// WriteStrategy serializes a strategy to w.
func WriteStrategy(w io.Writer, s *core.Strategy) error {
	if s == nil {
		return fmt.Errorf("traceio: nil strategy")
	}
	out := strategyJSON{BaselineMHz: s.BaselineMHz, Points: make([]pointJSON, len(s.Points))}
	for i, p := range s.Points {
		out.Points[i] = pointJSON{
			OpIndex: p.OpIndex, TimeMicros: p.TimeMicros,
			FreqMHz: p.FreqMHz, UncoreScale: p.UncoreScale,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadStrategy deserializes a strategy from r and checks basic
// invariants (ordered, positive frequencies).
func ReadStrategy(r io.Reader) (*core.Strategy, error) {
	var in strategyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("traceio: decoding strategy: %w", err)
	}
	if in.BaselineMHz <= 0 {
		return nil, fmt.Errorf("traceio: baseline frequency %g", float64(in.BaselineMHz))
	}
	s := &core.Strategy{BaselineMHz: in.BaselineMHz}
	prev := -1
	for i, p := range in.Points {
		if p.FreqMHz <= 0 {
			return nil, fmt.Errorf("traceio: point %d has frequency %g", i, float64(p.FreqMHz))
		}
		if p.UncoreScale < 0 || p.UncoreScale > 1 {
			return nil, fmt.Errorf("traceio: point %d has uncore scale %g", i, p.UncoreScale)
		}
		if p.OpIndex <= prev && i > 0 {
			return nil, fmt.Errorf("traceio: point %d out of order (op %d after %d)", i, p.OpIndex, prev)
		}
		prev = p.OpIndex
		s.Points = append(s.Points, core.FreqPoint{
			OpIndex: p.OpIndex, TimeMicros: p.TimeMicros,
			FreqMHz: p.FreqMHz, UncoreScale: p.UncoreScale,
		})
	}
	return s, nil
}

// SaveStrategy writes a strategy to path.
func SaveStrategy(path string, s *core.Strategy) error {
	return saveTo(path, func(w io.Writer) error { return WriteStrategy(w, s) })
}

// LoadStrategy reads a strategy from path.
func LoadStrategy(path string) (*core.Strategy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStrategy(f)
}

func openFile(path string) (*os.File, error) { return os.Open(path) }

func saveTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
