package traceio

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"npudvfs/internal/workload"
)

func TestFingerprintCanonical(t *testing.T) {
	m := workload.ResNet50()
	fp := Fingerprint(m.Trace)
	if len(fp) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(fp))
	}
	if fp != Fingerprint(m.Trace) {
		t.Error("fingerprint not deterministic")
	}
	// The display name must not enter the hash: an inline submission of
	// a registry workload has to share its cache entry.
	renamed := &workload.Model{Name: "something-else", Trace: m.Trace}
	if Fingerprint(renamed.Trace) != fp {
		t.Error("fingerprint depends on workload name")
	}
	other := workload.BERT()
	if Fingerprint(other.Trace) == fp {
		t.Error("distinct traces share a fingerprint")
	}
	// A trace surviving a wire round-trip must keep its fingerprint.
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(back.Trace) != fp {
		t.Error("fingerprint changed across JSON round-trip")
	}
}

func TestSearchSpecCanonicalize(t *testing.T) {
	var s SearchSpec
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	want := SearchSpec{TargetLoss: 0.02, FAIMillis: 5, Pop: 200, Gens: 600, Seed: 1}
	if s != want {
		t.Errorf("zero spec canonicalized to %+v, want %+v", s, want)
	}
	// Explicit defaults and the zero value hash identically.
	if s.ConfigHash() != want.ConfigHash() {
		t.Error("canonical equal specs hash differently")
	}
	seeded := want
	seeded.Seed = 7
	if seeded.ConfigHash() == want.ConfigHash() {
		t.Error("seed change did not change the config hash")
	}
	// Timeout must not enter the hash (it cannot change the result).
	timed := want
	timed.TimeoutMillis = 12345
	if timed.ConfigHash() != want.ConfigHash() {
		t.Error("timeout_ms leaked into the config hash")
	}
	if CacheKey("abc", seeded) == CacheKey("abc", want) {
		t.Error("cache keys collide across different seeds")
	}
	if CacheKey("abc", want) == CacheKey("def", want) {
		t.Error("cache keys collide across different fingerprints")
	}

	for _, bad := range []SearchSpec{
		{TargetLoss: -0.1},
		{TargetLoss: 1.5},
		{Pop: 1},
		{Gens: -1},
		{TimeoutMillis: -5},
	} {
		b := bad
		if err := b.Canonicalize(); err == nil {
			t.Errorf("spec %+v passed validation", bad)
		}
	}
}

func TestStrategyRequestResolve(t *testing.T) {
	req := StrategyRequest{Workload: "resnet50"}
	m, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(m.Name, "resnet50") || len(m.Trace) == 0 {
		t.Fatalf("resolved %q with %d ops", m.Name, len(m.Trace))
	}

	unknown := StrategyRequest{Workload: "nonsense"}
	if _, err := unknown.Resolve(); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown workload: got %v, want ErrUnknownWorkload", err)
	}

	var empty StrategyRequest
	if _, err := empty.Resolve(); err == nil || !strings.Contains(err.Error(), "no workload") {
		t.Errorf("empty request: got %v", err)
	}

	// Inline trace: serialize a registry workload and submit it raw.
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, workload.ResNet50()); err != nil {
		t.Fatal(err)
	}
	inline := StrategyRequest{Trace: json.RawMessage(buf.Bytes())}
	mi, err := inline.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(mi.Trace) != Fingerprint(m.Trace) {
		t.Error("inline submission fingerprints differently from the registry workload")
	}

	both := StrategyRequest{Workload: "resnet50", Trace: json.RawMessage(buf.Bytes())}
	if _, err := both.Resolve(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("workload+trace: got %v", err)
	}

	garbage := StrategyRequest{Trace: json.RawMessage(`{"trace": [{"class": "zebra"}]}`)}
	if _, err := garbage.Resolve(); err == nil {
		t.Error("garbage trace resolved without error")
	}
}
