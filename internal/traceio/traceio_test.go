package traceio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/workload"
)

func TestWorkloadRoundTrip(t *testing.T) {
	orig := workload.BERT()
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name = %q, want %q", back.Name, orig.Name)
	}
	if len(back.Trace) != len(orig.Trace) {
		t.Fatalf("trace length %d, want %d", len(back.Trace), len(orig.Trace))
	}
	for i := range orig.Trace {
		if back.Trace[i] != orig.Trace[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, back.Trace[i], orig.Trace[i])
		}
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	orig := workload.ResNet50()
	if err := SaveWorkload(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops() != orig.Ops() {
		t.Errorf("ops = %d, want %d", back.Ops(), orig.Ops())
	}
}

func TestWorkloadHumanReadableEnums(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, workload.MicroOp(workload.SoftmaxOp(), 1)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"class": "compute"`, `"scenario": "pingpongfree-dep"`, `"core_pipe": "vector"`} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized trace missing %s:\n%s", want, out)
		}
	}
}

func TestReadWorkloadRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","trace":[{"name":"a","class":"nosuch"}]}`,
		`{"name":"x","trace":[{"name":"a","class":"compute","scenario":"bogus","core_pipe":"cube","blocks":1,"core_cycles":5}]}`,
		`{"name":"x","trace":[{"name":"a","class":"compute","scenario":"pingpong-dep","core_pipe":"mte2","blocks":1,"core_cycles":5}]}`,
		// Valid JSON but invalid spec (no work).
		`{"name":"x","trace":[{"name":"a","class":"compute","scenario":"pingpong-dep","core_pipe":"cube","blocks":1}]}`,
	}
	for i, in := range cases {
		if _, err := ReadWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	orig := &core.Strategy{
		BaselineMHz: 1800,
		Points: []core.FreqPoint{
			{OpIndex: 0, TimeMicros: 0, FreqMHz: 1800},
			{OpIndex: 42, TimeMicros: 1234.5, FreqMHz: 1200, UncoreScale: 0.9},
			{OpIndex: 90, TimeMicros: 8000, FreqMHz: 1700},
		},
	}
	path := filepath.Join(t.TempDir(), "strategy.json")
	if err := SaveStrategy(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStrategy(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.BaselineMHz != orig.BaselineMHz || len(back.Points) != len(orig.Points) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range orig.Points {
		if back.Points[i] != orig.Points[i] {
			t.Errorf("point %d = %+v, want %+v", i, back.Points[i], orig.Points[i])
		}
	}
	if back.Switches() != orig.Switches() {
		t.Errorf("switches = %d, want %d", back.Switches(), orig.Switches())
	}
}

func TestReadStrategyValidates(t *testing.T) {
	cases := []string{
		`{"baseline_mhz":0,"points":[]}`,
		`{"baseline_mhz":1800,"points":[{"op_index":0,"freq_mhz":-5}]}`,
		`{"baseline_mhz":1800,"points":[{"op_index":9,"freq_mhz":1200},{"op_index":3,"freq_mhz":1500}]}`,
		`{"baseline_mhz":1800,"points":[{"op_index":0,"freq_mhz":1200,"uncore_scale":1.4}]}`,
		`not json`,
	}
	for i, in := range cases {
		if _, err := ReadStrategy(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestNilInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, nil); err == nil {
		t.Error("nil workload: want error")
	}
	if err := WriteStrategy(&buf, nil); err == nil {
		t.Error("nil strategy: want error")
	}
}
