package traceio

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/npu"
	"npudvfs/internal/profiler"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

func sampleProfile(t *testing.T) *profiler.Profile {
	t.Helper()
	p := profiler.NewNoiseless(npu.Default())
	prof, err := p.Run(workload.ResNet50().Trace[:50], 1800)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestChromeTraceValidJSON(t *testing.T) {
	prof := sampleProfile(t)
	strat := &core.Strategy{
		BaselineMHz: 1800,
		Points: []core.FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 20, TimeMicros: units.Micros(prof.Records[20].StartMicros), FreqMHz: 1200, UncoreScale: 0.9},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, prof, strat); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != len(prof.Records)+len(strat.Points) {
		t.Fatalf("got %d events, want %d", len(events), len(prof.Records)+len(strat.Points))
	}
	// Complete events must carry ph=X with non-negative ts/dur.
	complete, instants := 0, 0
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if e["ts"].(float64) < 0 {
				t.Error("negative timestamp")
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if complete != len(prof.Records) || instants != len(strat.Points) {
		t.Errorf("event mix %d/%d, want %d/%d", complete, instants, len(prof.Records), len(strat.Points))
	}
}

func TestChromeTraceWithoutStrategy(t *testing.T) {
	prof := sampleProfile(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, prof, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(prof.Records) {
		t.Errorf("got %d events, want %d", len(events), len(prof.Records))
	}
}

func TestChromeTraceRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err == nil {
		t.Error("nil profile: want error")
	}
	if err := WriteChromeTrace(&buf, &profiler.Profile{}, nil); err == nil {
		t.Error("empty profile: want error")
	}
}

func TestSaveChromeTrace(t *testing.T) {
	prof := sampleProfile(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveChromeTrace(path, prof, nil); err != nil {
		t.Fatal(err)
	}
}
