package traceio

// This file defines the wire contract of the dvfsd strategy service
// (internal/server): request/response schemas for the
// POST /v1/strategies and GET /v1/jobs/{id} endpoints, the canonical
// trace fingerprint, and the strategy-cache key. It lives in traceio —
// not in the server — so cmd/dvfsctl and other clients can share the
// exact types and key derivation without importing the daemon.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"npudvfs/internal/op"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// Job states reported by GET /v1/jobs/{id}.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// IsTerminal reports whether a job state is final: a terminal job will
// never change state again, so pollers can stop and retention policies
// may evict it.
func IsTerminal(state string) bool {
	switch state {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// ErrUnknownWorkload marks a request naming a workload absent from the
// registry; the server maps it to 404 instead of the generic 400.
var ErrUnknownWorkload = errors.New("traceio: unknown workload")

// SearchSpec is the client-tunable part of a strategy search. The zero
// value means "server defaults"; Canonicalize resolves it to explicit
// values so equal effective configurations hash identically.
type SearchSpec struct {
	// TargetLoss is the allowed relative performance loss (paper
	// default 0.02).
	TargetLoss float64 `json:"target_loss,omitempty"`
	// FAIMillis is the frequency adjustment interval in milliseconds
	// (paper default 5).
	FAIMillis units.Millis `json:"fai_ms,omitempty"`
	// Pop and Gens size the genetic search (defaults 200/600, matching
	// cmd/dvfs-run).
	Pop  int   `json:"pop,omitempty"`
	Gens int   `json:"gens,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMillis bounds the search wall time; 0 uses the server
	// default. The timeout is intentionally NOT part of the cache key:
	// it cannot change a completed search's result, only whether it
	// completes.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// Canonicalize fills defaults and validates ranges. The defaults equal
// the cmd/dvfs-run flag defaults so a server-generated strategy is
// byte-identical to the batch path's for the same workload and seed.
func (s *SearchSpec) Canonicalize() error {
	//lint:allow floateq exact sentinel: 0 means "use the default", mirroring the flag default
	if s.TargetLoss == 0 {
		s.TargetLoss = 0.02
	}
	//lint:allow floateq exact sentinel: 0 means "use the default", mirroring the flag default
	if s.FAIMillis == 0 {
		s.FAIMillis = 5
	}
	if s.Pop == 0 {
		s.Pop = 200
	}
	if s.Gens == 0 {
		s.Gens = 600
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch {
	case s.TargetLoss < 0 || s.TargetLoss >= 1:
		return fmt.Errorf("traceio: target_loss %g outside [0, 1)", s.TargetLoss)
	case s.FAIMillis < 0:
		return fmt.Errorf("traceio: fai_ms %g negative", float64(s.FAIMillis))
	case s.Pop < 2:
		return fmt.Errorf("traceio: pop %d below 2", s.Pop)
	case s.Gens < 1:
		return fmt.Errorf("traceio: gens %d below 1", s.Gens)
	case s.TimeoutMillis < 0:
		return fmt.Errorf("traceio: timeout_ms %d negative", s.TimeoutMillis)
	}
	return nil
}

// ConfigHash is a short stable digest of everything in the spec that
// can influence the generated strategy. Call after Canonicalize.
func (s SearchSpec) ConfigHash() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v1|loss=%g|fai=%g|pop=%d|gens=%d|seed=%d",
		s.TargetLoss, s.FAIMillis, s.Pop, s.Gens, s.Seed)))
	return hex.EncodeToString(h[:8])
}

// StrategyRequest is the body of POST /v1/strategies. Exactly one of
// Workload (a registry name) or Trace (an inline workload in the
// WriteWorkload wire format) must be set.
type StrategyRequest struct {
	Workload string          `json:"workload,omitempty"`
	Trace    json.RawMessage `json:"trace,omitempty"`
	Search   SearchSpec      `json:"search"`
}

// Resolve validates the request, canonicalizes the search spec and
// returns the workload model it refers to.
func (r *StrategyRequest) Resolve() (*workload.Model, error) {
	if err := r.Search.Canonicalize(); err != nil {
		return nil, err
	}
	switch {
	case r.Workload == "" && len(r.Trace) == 0:
		return nil, fmt.Errorf("traceio: request names no workload and carries no trace")
	case r.Workload != "" && len(r.Trace) != 0:
		return nil, fmt.Errorf("traceio: workload %q and inline trace are mutually exclusive", r.Workload)
	case r.Workload != "":
		m, err := workload.ByName(r.Workload)
		if err != nil {
			return nil, fmt.Errorf("%w: %q (available: %v)", ErrUnknownWorkload, r.Workload, workload.Names())
		}
		return m, nil
	default:
		m, err := ReadWorkload(bytes.NewReader(r.Trace))
		if err != nil {
			return nil, err
		}
		return m, nil
	}
}

// Fingerprint returns the canonical SHA-256 digest of a trace. Only
// the operator specs enter the hash — the workload's display name does
// not — so a named registry workload and the identical trace submitted
// inline share one cache entry.
func Fingerprint(trace []op.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|%d ops\n", len(trace))
	for i := range trace {
		j := specToJSON(&trace[i])
		// encoding/json emits struct fields in declaration order, so
		// this line is a stable canonical form of the spec.
		b, _ := json.Marshal(j)
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey combines the trace fingerprint with the canonical search
// configuration: two requests collide exactly when the deterministic
// search would redo identical work.
func CacheKey(fingerprint string, s SearchSpec) string {
	return fingerprint + ":" + s.ConfigHash()
}

// Key resolves the request and returns its strategy key — the cache
// key on the server and the consistent-hash routing key in a cluster.
// Ring-aware clients derive it locally to pick the owning node before
// submitting.
func (r *StrategyRequest) Key() (string, error) {
	m, err := r.Resolve()
	if err != nil {
		return "", err
	}
	return CacheKey(Fingerprint(m.Trace), r.Search), nil
}

// PredictedDeltas reports the model-predicted effect of a strategy
// against the fixed-maximum-frequency baseline. These come from the
// same evaluator the GA scored with (Sect. 6.3), not from measured
// execution.
type PredictedDeltas struct {
	BaselineTimeMicros units.Micros `json:"baseline_time_us"`
	TimeMicros         units.Micros `json:"time_us"`
	BaselineSoCWatts   units.Watt   `json:"baseline_soc_w"`
	SoCWatts           units.Watt   `json:"soc_w"`
	BaselineCoreWatts  units.Watt   `json:"baseline_core_w"`
	CoreWatts          units.Watt   `json:"core_w"`
	// Derived percentages (positive loss = slower, positive saving =
	// less power).
	PerfLossPct   float64 `json:"perf_loss_pct"`
	SoCSavingPct  float64 `json:"soc_saving_pct"`
	CoreSavingPct float64 `json:"core_saving_pct"`
}

// StrategyResponse is the payload of a completed job.
type StrategyResponse struct {
	Workload    string `json:"workload"`
	Fingerprint string `json:"fingerprint"`
	// Strategy is the generated policy in the WriteStrategy wire
	// format, ready for traceio.ReadStrategy or dvfs-run
	// -load-strategy.
	Strategy json.RawMessage `json:"strategy"`
	// Search provenance: the canonical spec the strategy was generated
	// under, and the GA's work/convergence summary.
	Search      SearchSpec `json:"search"`
	Stages      int        `json:"stages"`
	Switches    int        `json:"switches"`
	Evaluations int        `json:"evaluations"`
	BestScore   float64    `json:"best_score"`

	Predicted PredictedDeltas `json:"predicted"`
}

// JobStatus is the body of GET /v1/jobs/{id} and of the 202 response
// to POST /v1/strategies.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	// Cached marks jobs answered from the strategy cache without a
	// search.
	Cached bool `json:"cached"`
	// Error is set for failed and cancelled jobs.
	Error string `json:"error,omitempty"`
	// QueueMillis and SearchMillis are per-stage latencies (0 until
	// the stage completes).
	QueueMillis  units.Millis `json:"queue_ms"`
	SearchMillis units.Millis `json:"search_ms"`
	// Result is set once State is done.
	Result *StrategyResponse `json:"result,omitempty"`
}

// ClusterNode is one ring member as reported by GET /v1/cluster.
type ClusterNode struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Self marks the node answering the request.
	Self bool `json:"self,omitempty"`
}

// ClusterStatus is the body of GET /v1/cluster: the answering node's
// identity, its job-store backend, and its view of the ring. A
// single-node daemon reports an empty node ID and no ring.
type ClusterStatus struct {
	Node   string        `json:"node"`
	Store  string        `json:"store"`
	VNodes int           `json:"vnodes,omitempty"`
	Nodes  []ClusterNode `json:"nodes,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}
