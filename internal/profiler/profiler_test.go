package profiler

import (
	"math"
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
)

func smallTrace() []op.Spec {
	return []op.Spec{
		{
			Name: "MatMul", Shape: "a", Class: op.Compute, Scenario: op.PingPongIndep,
			Blocks: 4, LoadBytes: 1 << 18, StoreBytes: 1 << 16, CoreCycles: 60000,
			CorePipe: op.Cube, L2Hit: 0.7,
		},
		{Name: "AllReduce", Class: op.Communication, FixedTime: 150},
		{
			Name: "Gelu", Shape: "b", Class: op.Compute, Scenario: op.PingPongFreeIndep,
			Blocks: 6, LoadBytes: 2 << 18, StoreBytes: 2 << 18, CoreCycles: 500,
			CorePipe: op.Vector, L2Hit: 0.1,
		},
		{Name: "idle", Class: op.Idle, FixedTime: 40},
		{
			Name: "MatMul", Shape: "a", Class: op.Compute, Scenario: op.PingPongIndep,
			Blocks: 4, LoadBytes: 1 << 18, StoreBytes: 1 << 16, CoreCycles: 60000,
			CorePipe: op.Cube, L2Hit: 0.7,
		},
	}
}

func TestRunNoiselessMatchesChipTime(t *testing.T) {
	chip := npu.Default()
	p := NewNoiseless(chip)
	trace := smallTrace()
	prof, err := p.Run(trace, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) != len(trace) {
		t.Fatalf("got %d records, want %d", len(prof.Records), len(trace))
	}
	total := 0.0
	for i := range trace {
		want := chip.Time(&trace[i], 1500)
		if got := prof.Records[i].DurMicros; got != want {
			t.Errorf("record %d duration = %g, want %g", i, got, want)
		}
		if prof.Records[i].StartMicros != total {
			t.Errorf("record %d start = %g, want %g", i, prof.Records[i].StartMicros, total)
		}
		total += want
	}
	if prof.TotalMicros != total {
		t.Errorf("TotalMicros = %g, want %g", prof.TotalMicros, total)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	p := NewNoiseless(npu.Default())
	if _, err := p.Run(smallTrace(), 0); err == nil {
		t.Error("zero frequency: want error")
	}
	bad := []op.Spec{{Name: "", Class: op.Compute}}
	if _, err := p.Run(bad, 1500); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestNoiseIsSmallAndDeterministic(t *testing.T) {
	trace := smallTrace()
	a, err := New(npu.Default(), 99).Run(trace, 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(npu.Default(), 99).Run(trace, 1500)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewNoiseless(npu.Default()).Run(trace, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].DurMicros != b.Records[i].DurMicros {
			t.Fatalf("same-seed profilers diverged at record %d", i)
		}
		rel := math.Abs(a.Records[i].DurMicros-exact.Records[i].DurMicros) / exact.Records[i].DurMicros
		if rel > 0.1 {
			t.Errorf("record %d noise %g too large", i, rel)
		}
	}
}

func TestRunPowerPopulatesTelemetry(t *testing.T) {
	chip := npu.Default()
	p := NewNoiseless(chip)
	g := powersim.Default(chip)
	th := thermal.NewState(thermal.Default())
	prof, err := p.RunPower(smallTrace(), 1500, g, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prof.Records {
		r := &prof.Records[i]
		if r.SoCW <= 0 || r.AICoreW <= 0 {
			t.Errorf("record %d: power not populated (%g, %g)", i, r.AICoreW, r.SoCW)
		}
		if r.SoCW <= r.AICoreW {
			t.Errorf("record %d: SoC power %g <= AICore %g", i, r.SoCW, r.AICoreW)
		}
		if r.TempC < float64(thermal.Default().AmbientC) {
			t.Errorf("record %d: temperature %g below ambient", i, r.TempC)
		}
	}
	if th.TempC() <= thermal.Default().AmbientC {
		t.Error("thermal state did not warm up")
	}
	if prof.MeanSoCW() <= prof.MeanAICoreW() {
		t.Error("mean SoC power should exceed mean AICore power")
	}
}

func TestRunPowerNeedsDependencies(t *testing.T) {
	p := NewNoiseless(npu.Default())
	if _, err := p.RunPower(smallTrace(), 1500, nil, nil); err == nil {
		t.Error("nil ground/thermal: want error")
	}
}

func TestWarmupConverges(t *testing.T) {
	chip := npu.Default()
	p := NewNoiseless(chip)
	g := powersim.Default(chip)
	th := thermal.NewState(thermal.Default())
	// Build a long trace so each iteration meaningfully heats the die.
	var trace []op.Spec
	for i := 0; i < 50; i++ {
		trace = append(trace, smallTrace()...)
	}
	prof, err := p.WarmupIterations(trace, 1800, g, th, 5000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("nil profile")
	}
	// At stability, the temperature should be near the equilibrium
	// for the mean SoC power.
	teq := th.Equilibrium(units.Watt(prof.MeanSoCW()))
	if math.Abs(float64(th.TempC()-teq)) > 2 {
		t.Errorf("warmed temp %g not near equilibrium %g", th.TempC(), teq)
	}
}

func TestComputeMicrosExcludesFixed(t *testing.T) {
	p := NewNoiseless(npu.Default())
	prof, err := p.Run(smallTrace(), 1500)
	if err != nil {
		t.Fatal(err)
	}
	fixed := 150.0 + 40.0
	if math.Abs(prof.ComputeMicros()-(prof.TotalMicros-fixed)) > 1e-9 {
		t.Errorf("ComputeMicros = %g, total-fixed = %g", prof.ComputeMicros(), prof.TotalMicros-fixed)
	}
}

func TestBuildSeriesAggregates(t *testing.T) {
	chip := npu.Default()
	p := NewNoiseless(chip)
	trace := smallTrace()
	var profiles []*Profile
	for _, f := range []float64{1000, 1400, 1800} {
		prof, err := p.Run(trace, f)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	series := BuildSeries(profiles)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2 (MatMul/a, Gelu/b)", len(series))
	}
	mm := series["MatMul/a"]
	if mm == nil {
		t.Fatal("missing MatMul/a series")
	}
	if mm.Count != 2 {
		t.Errorf("MatMul/a count = %d, want 2", mm.Count)
	}
	if len(mm.FreqMHz) != 3 || len(mm.Micros) != 3 {
		t.Fatalf("series lengths = %d/%d, want 3/3", len(mm.FreqMHz), len(mm.Micros))
	}
	// Mean of two identical instances equals the single-op time.
	want := chip.Time(&trace[0], 1400)
	if math.Abs(mm.Micros[1]-want) > 1e-9 {
		t.Errorf("mean duration = %g, want %g", mm.Micros[1], want)
	}
}
