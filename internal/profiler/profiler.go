// Package profiler plays the role of the CANN profiler and lpmi_tool
// in the paper's workflow (Fig. 1, Sect. 6): it executes a workload
// trace on the simulated NPU at a chosen core frequency and reports,
// per operator, the measured execution time, the per-pipeline
// utilization ratios, and optionally the power and temperature
// telemetry needed for power modeling.
//
// Measured durations carry multiplicative sensor noise, so models
// fitted from profiles face realistic measurement error, as on real
// hardware.
package profiler

import (
	"fmt"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powersim"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
)

// Record is one profiled trace entry.
type Record struct {
	// Index is the position of the entry in the trace.
	Index int
	// Spec points at the operator description.
	Spec *op.Spec
	// StartMicros is the start offset within the iteration, µs.
	StartMicros float64
	// DurMicros is the measured (noisy) duration, µs.
	DurMicros float64
	// FreqMHz is the core frequency while the entry executed.
	FreqMHz float64
	// Ratios is the per-pipeline utilization reported by the PMU.
	Ratios [op.NumPipes]float64
	// AICoreW and SoCW are mean power readings over the entry, in
	// watts; populated only by power-collecting runs.
	AICoreW, SoCW float64
	// TempC is the die temperature reading at the end of the entry;
	// populated only by power-collecting runs.
	TempC float64
}

// Profile is the result of one profiled iteration.
type Profile struct {
	// FreqMHz is the nominal profiling frequency.
	FreqMHz float64
	// Records holds one entry per trace element, in order.
	Records []Record
	// TotalMicros is the measured iteration duration.
	TotalMicros float64
}

// ComputeMicros returns the summed measured duration of Compute
// entries.
func (p *Profile) ComputeMicros() float64 {
	sum := 0.0
	for i := range p.Records {
		if p.Records[i].Spec.Class == op.Compute {
			sum += p.Records[i].DurMicros
		}
	}
	return sum
}

// MeanSoCW returns the time-weighted mean SoC power of the profile.
// Valid only for power-collecting runs.
func (p *Profile) MeanSoCW() float64 {
	return p.weightedMean(func(r *Record) float64 { return r.SoCW })
}

// MeanAICoreW returns the time-weighted mean AICore power.
func (p *Profile) MeanAICoreW() float64 {
	return p.weightedMean(func(r *Record) float64 { return r.AICoreW })
}

func (p *Profile) weightedMean(get func(*Record) float64) float64 {
	var num, den float64
	for i := range p.Records {
		r := &p.Records[i]
		num += get(r) * r.DurMicros
		den += r.DurMicros
	}
	//lint:allow floateq exact sentinel: division guard against a zero-duration profile
	if den == 0 {
		return 0
	}
	return num / den
}

// Profiler executes traces on a chip and records what real tooling
// would observe.
type Profiler struct {
	Chip *npu.Chip
	// Sensor supplies measurement noise; nil means noise-free
	// profiling (useful in tests).
	Sensor *powersim.Sensor
	// TimeNoiseFrac is the 1-sigma relative duration noise when a
	// Sensor is present.
	TimeNoiseFrac float64
}

// New returns a Profiler with 1% duration noise from the given seed.
func New(chip *npu.Chip, seed int64) *Profiler {
	return &Profiler{Chip: chip, Sensor: powersim.NewSensor(seed), TimeNoiseFrac: 0.01}
}

// NewNoiseless returns a Profiler whose measurements are exact.
func NewNoiseless(chip *npu.Chip) *Profiler {
	return &Profiler{Chip: chip}
}

func (p *Profiler) measure(trueDur float64) float64 {
	if p.Sensor == nil || p.TimeNoiseFrac <= 0 {
		return trueDur
	}
	return trueDur * p.Sensor.TimeNoise(p.TimeNoiseFrac)
}

// Run executes the trace once at a fixed core frequency and returns
// the timing profile.
func (p *Profiler) Run(trace []op.Spec, fMHz float64) (*Profile, error) {
	if err := p.Chip.Validate(); err != nil {
		return nil, err
	}
	if fMHz <= 0 {
		return nil, fmt.Errorf("profiler: invalid frequency %g MHz", fMHz)
	}
	prof := &Profile{FreqMHz: fMHz, Records: make([]Record, len(trace))}
	now := 0.0
	for i := range trace {
		s := &trace[i]
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("profiler: trace entry %d: %w", i, err)
		}
		dur := p.measure(p.Chip.Time(s, fMHz))
		prof.Records[i] = Record{
			Index:       i,
			Spec:        s,
			StartMicros: now,
			DurMicros:   dur,
			FreqMHz:     fMHz,
			Ratios:      p.Chip.Ratios(s, fMHz),
		}
		now += dur
	}
	prof.TotalMicros = now
	return prof, nil
}

// RunPower executes the trace once at a fixed frequency while sampling
// power and temperature, advancing the thermal state across operators.
// The thermal state is shared across calls so repeated iterations warm
// the chip up, as in the paper's "collect once training is stable"
// methodology.
func (p *Profiler) RunPower(trace []op.Spec, fMHz float64, g *powersim.Ground, th *thermal.State) (*Profile, error) {
	if g == nil || th == nil {
		return nil, fmt.Errorf("profiler: RunPower needs ground truth and thermal state")
	}
	prof, err := p.Run(trace, fMHz)
	if err != nil {
		return nil, err
	}
	for i := range prof.Records {
		r := &prof.Records[i]
		deltaT := float64(th.DeltaT())
		core := g.AICorePower(r.Spec, fMHz, deltaT)
		soc := g.SoCPower(r.Spec, fMHz, deltaT)
		th.Step(units.Micros(r.DurMicros), units.Watt(soc))
		if p.Sensor != nil {
			r.AICoreW = p.Sensor.Power(core)
			r.SoCW = p.Sensor.Power(soc)
			r.TempC = p.Sensor.Temp(float64(th.TempC()))
		} else {
			r.AICoreW = core
			r.SoCW = soc
			r.TempC = float64(th.TempC())
		}
	}
	return prof, nil
}

// WarmupIterations repeats RunPower until the die temperature settles
// within tolC of the thermal equilibrium for the iteration's mean SoC
// power (or maxIters is reached), and returns the last, thermally
// stable profile. This mirrors the paper's "collect data once stable
// training is achieved" methodology.
func (p *Profiler) WarmupIterations(trace []op.Spec, fMHz float64, g *powersim.Ground, th *thermal.State, maxIters int, tolC float64) (*Profile, error) {
	var last *Profile
	for i := 0; i < maxIters; i++ {
		prof, err := p.RunPower(trace, fMHz, g, th)
		if err != nil {
			return nil, err
		}
		last = prof
		if abs(float64(th.TempC()-th.Equilibrium(units.Watt(prof.MeanSoCW())))) < tolC {
			break
		}
	}
	return last, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Series groups mean measured durations by operator key across several
// profiles: the (frequency, time) points the performance model is
// fitted from. Only Compute operators are included.
type Series struct {
	// Key identifies the operator (type/shape).
	Key string
	// Spec is a representative spec for the key.
	Spec *op.Spec
	// FreqMHz and Micros are parallel: mean measured duration per
	// profiling frequency.
	FreqMHz []float64
	Micros  []float64
	// Count is the number of instances of the key per iteration.
	Count int
}

// BuildInstanceSeries builds one series per Compute trace position
// across several profiles of the same trace: the per-operator fitting
// unit the paper uses (each operator instance gets its own model; the
// ShuffleNetV2Plus fit-cost figure counts 4,343 such fits). The
// returned slice is ordered by trace index.
func BuildInstanceSeries(profiles []*Profile) []*Series {
	if len(profiles) == 0 {
		return nil
	}
	var out []*Series
	for i := range profiles[0].Records {
		spec := profiles[0].Records[i].Spec
		if spec.Class != op.Compute {
			continue
		}
		s := &Series{Key: spec.Key(), Spec: spec, Count: 1}
		for _, prof := range profiles {
			s.FreqMHz = append(s.FreqMHz, prof.FreqMHz)
			s.Micros = append(s.Micros, prof.Records[i].DurMicros)
		}
		out = append(out, s)
	}
	return out
}

// BuildSeries aggregates profiles (one per frequency) into per-key
// duration series. Profiles must all cover the same trace.
func BuildSeries(profiles []*Profile) map[string]*Series {
	out := make(map[string]*Series)
	for _, prof := range profiles {
		sums := make(map[string]float64)
		counts := make(map[string]int)
		for i := range prof.Records {
			r := &prof.Records[i]
			if r.Spec.Class != op.Compute {
				continue
			}
			k := r.Spec.Key()
			sums[k] += r.DurMicros
			counts[k]++
			if _, ok := out[k]; !ok {
				out[k] = &Series{Key: k, Spec: r.Spec}
			}
		}
		for k, sum := range sums {
			s := out[k]
			s.FreqMHz = append(s.FreqMHz, prof.FreqMHz)
			s.Micros = append(s.Micros, sum/float64(counts[k]))
			s.Count = counts[k]
		}
	}
	return out
}
