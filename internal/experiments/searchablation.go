package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/preprocess"
)

// SearchRow is one search algorithm's outcome.
type SearchRow struct {
	Algorithm     string
	Evaluations   int
	SearchSec     float64
	PerfLoss      float64
	CoreReduction float64
	SoCReduction  float64
}

// SearchAblationResult compares the paper's genetic algorithm against
// two natural alternatives on the identical evaluator and budget: a
// greedy marginal-descent pass (lower each stage while the predicted
// bound holds) and uniform random sampling. It answers the "why a GA?"
// question of Sect. 6.3.
type SearchAblationResult struct {
	LossTarget float64
	Rows       []SearchRow
}

// greedySearch lowers stage frequencies one grid step at a time,
// always taking the step with the best predicted power-saving per
// predicted time cost, until the bound binds.
func greedySearch(ev *core.Evaluator, stages []preprocess.Stage, perLB float64) ([]int, int) {
	grid := ev.Grid()
	ind := make([]int, ev.Genes())
	for i := range ind {
		ind[i] = len(grid) - 1
	}
	evals := 0
	predict := func(x []int) core.Prediction {
		evals++
		p, _ := ev.Predict(x)
		return p
	}
	cur := predict(ind)
	for {
		bestStage, bestScore := -1, 0.0
		var bestPred core.Prediction
		for s := range ind {
			if ind[s] == 0 {
				continue
			}
			ind[s]--
			p := predict(ind)
			ind[s]++
			if 1/float64(p.TimeMicros) < perLB {
				continue
			}
			dPower := float64(cur.SoCWatts - p.SoCWatts)
			dTime := float64(p.TimeMicros - cur.TimeMicros)
			if dPower <= 0 {
				continue
			}
			score := dPower / (dTime + 1) // +1µs regularizer for free moves
			if score > bestScore {
				bestStage, bestScore, bestPred = s, score, p
			}
		}
		if bestStage < 0 {
			break
		}
		ind[bestStage]--
		cur = bestPred
	}
	return ind, evals
}

// randomSearch draws budget uniform individuals and keeps the best
// compliant one.
func randomSearch(ev *core.Evaluator, budget int, seed int64) ([]int, int) {
	grid := ev.Grid()
	rng := rand.New(rand.NewSource(seed))
	best := make([]int, ev.Genes())
	for i := range best {
		best[i] = len(grid) - 1
	}
	bestScore := ev.Score(best)
	ind := make([]int, ev.Genes())
	for e := 0; e < budget; e++ {
		for i := range ind {
			ind[i] = rng.Intn(len(grid))
		}
		if s := ev.Score(ind); s > bestScore {
			bestScore = s
			copy(best, ind)
		}
	}
	return best, budget + 1
}

// SearchAblation runs all three searches on the GPT-3 problem at the
// 4% target and measures each winning strategy on the simulator.
func (l *Lab) SearchAblation() (*SearchAblationResult, error) {
	//lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to searchAblation
	return l.searchAblation(context.Background())
}

func (l *Lab) searchAblation(ctx context.Context) (*SearchAblationResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.PerfLossTarget = 0.04
	cfg.GA.Seed = 911
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	res := &SearchAblationResult{LossTarget: cfg.PerfLossTarget}
	measure := func(name string, strat *core.Strategy, evals int, sec float64) error {
		meas, err := l.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, SearchRow{
			Algorithm:     name,
			Evaluations:   evals,
			SearchSec:     sec,
			PerfLoss:      meas.TimeMicros/base.TimeMicros - 1,
			CoreReduction: 1 - meas.MeanCoreW/base.MeanCoreW,
			SoCReduction:  1 - meas.MeanSoCW/base.MeanSoCW,
		})
		return nil
	}

	// Genetic algorithm (the paper's search).
	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	start := time.Now()
	strat, stages, gaRes, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	if err := measure("genetic", strat, gaRes.Evaluations, time.Since(start).Seconds()); err != nil {
		return nil, err
	}
	ev, err := core.NewEvaluator(gpt.Input(l.Chip), cfg, stages)
	if err != nil {
		return nil, err
	}
	// The evaluator's internal bound mirrors core.Generate's.
	guard := cfg.Guard
	if guard <= 0 || guard > 1 {
		guard = 1
	}
	baselineInd := make([]int, ev.Genes())
	for i := range baselineInd {
		baselineInd[i] = ev.BaselineIndex()
	}
	basePred, err := ev.Predict(baselineInd)
	if err != nil {
		return nil, err
	}
	perLB := (1 / float64(basePred.TimeMicros)) * (1 - cfg.PerfLossTarget*guard)

	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	start = time.Now()
	greedyInd, greedyEvals := greedySearch(ev, stages, perLB)
	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	if err := measure("greedy", ev.Strategy(greedyInd), greedyEvals, time.Since(start).Seconds()); err != nil {
		return nil, err
	}

	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	start = time.Now()
	randInd, randEvals := randomSearch(ev, gaRes.Evaluations, 912)
	//lint:allow detrand wall-clock timing only: SearchSec; search ablation is excluded from the byte-identity suite
	if err := measure("random", ev.Strategy(randInd), randEvals, time.Since(start).Seconds()); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *SearchAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Search-algorithm ablation on GPT-3 (%.0f%% target)\n", r.LossTarget*100)
	fmt.Fprintf(&b, "  %-9s %9s %8s %8s %8s %9s\n", "search", "evals", "time", "loss", "SoC-", "AICore-")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %9d %7.2fs %7.2f%% %7.2f%% %8.2f%%\n",
			row.Algorithm, row.Evaluations, row.SearchSec,
			row.PerfLoss*100, row.SoCReduction*100, row.CoreReduction*100)
	}
	return b.String()
}
