package experiments

import (
	"fmt"

	"npudvfs/internal/plot"
)

// Chart builders turn experiment results into SVG-renderable figures,
// matching the paper's plots. Results without a natural line-chart
// form (the tables) have no Chart method.

// Chart renders Fig. 3's two panels as one chart with normalized axes.
func (r *Fig3Result) Chart() *plot.Chart {
	tp := plot.Series{Name: "throughput (GB/s)"}
	cyc := plot.Series{Name: "Ld cycles"}
	for _, row := range r.Rows {
		tp.X = append(tp.X, row.MHz)
		tp.Y = append(tp.Y, row.ThroughputGBs)
		cyc.X = append(cyc.X, row.MHz)
		cyc.Y = append(cyc.Y, row.Cycles)
	}
	return &plot.Chart{
		Title:  "Fig. 3 - Ld throughput and cycles vs core frequency",
		XLabel: "core frequency (MHz)",
		YLabel: "GB/s | cycles",
		Series: []plot.Series{tp, cyc},
	}
}

// Chart renders Fig. 4's piecewise-linear cycle curve.
func (r *Fig4Result) Chart() *plot.Chart {
	s := plot.Series{Name: "cycles", X: r.MHz, Y: r.Cycles}
	return &plot.Chart{
		Title:  "Fig. 4 - convex piecewise-linear cycle curve",
		XLabel: "core frequency (MHz)",
		YLabel: "cycles",
		Series: []plot.Series{s},
	}
}

// Chart renders the V-F curve of Fig. 9.
func (r *Fig9Result) Chart() *plot.Chart {
	s := plot.Series{Name: "voltage"}
	for _, p := range r.Points {
		s.X = append(s.X, float64(p.MHz))
		s.Y = append(s.Y, float64(p.Volts))
	}
	return &plot.Chart{
		Title:  "Fig. 9 - voltage vs frequency",
		XLabel: "frequency (MHz)",
		YLabel: "volts",
		Series: []plot.Series{s},
	}
}

// Chart renders the temperature/power lines of Fig. 10.
func (r *Fig10Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Fig. 10 - temperature vs SoC power",
		XLabel: "SoC power (W)",
		YLabel: "temperature (C)",
	}
	for _, line := range r.Lines {
		c.Series = append(c.Series, plot.Series{Name: line.Operator, X: line.PowerW, Y: line.TempC})
	}
	return c
}

// Chart renders the error CDFs of Fig. 15.
func (r *Fig15Result) Chart() *plot.Chart {
	thresholds := make([]float64, 0, 60)
	for e := 0.0; e <= 0.30; e += 0.005 {
		thresholds = append(thresholds, e)
	}
	c := &plot.Chart{
		Title:  "Fig. 15 - performance-model error CDF",
		XLabel: "relative error",
		YLabel: "CDF",
	}
	for k := Func1; k <= Func3; k++ {
		s := plot.Series{Name: k.String()}
		for _, p := range r.CDF(k, thresholds) {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.Fraction)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Charts renders one panel per representative operator of Fig. 16.
func (r *Fig16Result) Charts() []*plot.Chart {
	var charts []*plot.Chart
	for _, row := range r.Rows {
		c := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 16 - %s", row.Name),
			XLabel: "frequency (MHz)",
			YLabel: "time (us)",
			Series: []plot.Series{
				{Name: "measured", X: row.MHz, Y: row.RealUs},
				{Name: "Func1", X: row.MHz, Y: row.PredUs[Func1]},
				{Name: "Func2", X: row.MHz, Y: row.PredUs[Func2]},
				{Name: "Func3", X: row.MHz, Y: row.PredUs[Func3]},
			},
		}
		charts = append(charts, c)
	}
	return charts
}

// Chart renders the GA convergence histories of Fig. 17.
func (r *Fig17Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Fig. 17 - best score during the search",
		XLabel: "generation",
		YLabel: "score",
	}
	for _, s := range r.Series {
		line := plot.Series{Name: fmt.Sprintf("target %.0f%%", s.LossTarget*100)}
		for g, v := range s.History {
			line.X = append(line.X, float64(g))
			line.Y = append(line.Y, v)
		}
		c.Series = append(c.Series, line)
	}
	return c
}

// Chart renders the FAI sweep curve.
func (r *FAISweepResult) Chart() *plot.Chart {
	core := plot.Series{Name: "AICore reduction (%)"}
	soc := plot.Series{Name: "SoC reduction (%)"}
	loss := plot.Series{Name: "perf loss (%)"}
	for _, row := range r.Rows {
		core.X = append(core.X, row.FAIMillis)
		core.Y = append(core.Y, row.CoreReduction*100)
		soc.X = append(soc.X, row.FAIMillis)
		soc.Y = append(soc.Y, row.SoCReduction*100)
		loss.X = append(loss.X, row.FAIMillis)
		loss.Y = append(loss.Y, row.PerfLoss*100)
	}
	return &plot.Chart{
		Title:  "Savings vs frequency adjustment interval (GPT-3)",
		XLabel: "FAI (ms)",
		YLabel: "percent",
		Series: []plot.Series{core, soc, loss},
	}
}
