package experiments

import (
	"strings"
	"sync"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/workload"
)

// The experiments package is exercised end-to-end by the repository
// benchmarks; these tests verify the cheap experiments fully and the
// expensive ones through reduced configurations, asserting the
// paper-shape invariants each figure/table is about.

var (
	labOnce sync.Once
	labInst *Lab
)

func sharedLab() *Lab {
	labOnce.Do(func() { labInst = NewLab() })
	return labInst
}

func TestFig3Shape(t *testing.T) {
	r := sharedLab().Fig3()
	if r.SaturationMHz < 1000 || r.SaturationMHz > 1800 {
		t.Fatalf("saturation %g MHz outside the DVFS window", r.SaturationMHz)
	}
	// Throughput rises then saturates; cycles flat then rising.
	var sawFlat bool
	for i := 1; i < len(r.Rows); i++ {
		dTp := r.Rows[i].ThroughputGBs - r.Rows[i-1].ThroughputGBs
		if dTp < 0 {
			t.Fatalf("throughput decreased at %g MHz", r.Rows[i].MHz)
		}
		if dTp == 0 {
			sawFlat = true
		} else if sawFlat {
			t.Fatalf("throughput rose after saturating at %g MHz", r.Rows[i].MHz)
		}
	}
	if !sawFlat {
		t.Error("throughput never saturated (Fig. 3(a) shape missing)")
	}
	if !strings.Contains(r.String(), "Fig. 3") {
		t.Error("missing report header")
	}
}

func TestFig4Breakpoints(t *testing.T) {
	r := sharedLab().Fig4()
	if len(r.BreakpointsMHz) < 2 {
		t.Fatalf("got %d breakpoints, want >= 2 (St and Ld saturation)", len(r.BreakpointsMHz))
	}
	// Slopes must be non-decreasing (convex piecewise linear).
	for i := 1; i < len(r.SlopesPerSeg); i++ {
		if r.SlopesPerSeg[i] < r.SlopesPerSeg[i-1]-1e-9 {
			t.Fatalf("slope decreased at segment %d", i)
		}
	}
}

func TestFig9MatchesCurve(t *testing.T) {
	r := sharedLab().Fig9()
	if len(r.Points) != 9 {
		t.Fatalf("got %d V-F points, want 9", len(r.Points))
	}
	if r.Points[0].Volts != r.Points[3].Volts {
		t.Error("voltage should be flat below the knee")
	}
	if r.Points[8].Volts <= r.Points[4].Volts {
		t.Error("voltage should rise above the knee")
	}
}

func TestFig10LinearInPower(t *testing.T) {
	skipHeavyUnderRace(t)
	r, err := sharedLab().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) < 3 {
		t.Fatalf("want >= 3 operator lines, got %d", len(r.Lines))
	}
	if rel := abs(r.FittedK-r.TrueK) / r.TrueK; rel > 0.05 {
		t.Errorf("fitted k = %g, truth %g", r.FittedK, r.TrueK)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig16Func2Accurate(t *testing.T) {
	r, err := sharedLab().Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("got %d operators, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeanErr[Func2] > 0.08 {
			t.Errorf("%s: Func2 mean error %.3f too high", row.Name, row.MeanErr[Func2])
		}
	}
}

func TestFitCostFunc2MuchFaster(t *testing.T) {
	r, err := sharedLab().FitCost()
	if err != nil {
		t.Fatal(err)
	}
	if r.Operators < 3000 {
		t.Errorf("only %d operators fitted; ShuffleNet should have ~4,343", r.Operators)
	}
	// The paper reports a ~24x gap (4,386 ms vs 105,930 ms).
	if r.Speedup < 5 {
		t.Errorf("Func2 speedup = %.1fx, want a large direct-solve advantage", r.Speedup)
	}
}

func TestInferenceShape(t *testing.T) {
	r, err := sharedLab().Inference()
	if err != nil {
		t.Fatal(err)
	}
	// Sect. 8.4 shape: small loss, large AICore reduction, host-bound.
	if r.PerfLoss > 0.05 {
		t.Errorf("inference loss %.3f too large for a host-bound step", r.PerfLoss)
	}
	if r.CoreReduction < 0.15 {
		t.Errorf("AICore reduction %.3f, want > 15%% (paper: 25%%)", r.CoreReduction)
	}
	if r.SoCReduction <= 0 {
		t.Errorf("SoC reduction %.3f, want positive", r.SoCReduction)
	}
	if r.IdleFraction < 0.25 {
		t.Errorf("idle fraction %.2f; the trace must be host-bound", r.IdleFraction)
	}
}

// quickTable3Case runs the end-to-end pipeline on BERT with a reduced
// GA; the full-scale version is the BenchmarkTable3EndToEnd benchmark.
func TestEndToEndBERTQuick(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	l := sharedLab()
	ms, err := l.BuildModels(workload.BERT(), true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.GA.PopSize = 60
	cfg.GA.Generations = 150
	cfg.GA.Seed = 4
	strat, _, _, err := core.Generate(ms.Input(l.Chip), cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.MeasureFixed(ms.Workload, 1800)
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := l.MeasureStrategy(ms.Workload, strat, executor.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loss := dvfs.TimeMicros/base.TimeMicros - 1
	coreSave := 1 - dvfs.MeanCoreW/base.MeanCoreW
	socSave := 1 - dvfs.MeanSoCW/base.MeanSoCW
	if loss > 0.04 {
		t.Errorf("measured loss %.3f far beyond the 2%% target", loss)
	}
	if coreSave <= 0.02 {
		t.Errorf("AICore saving %.3f, want material savings", coreSave)
	}
	if socSave <= 0 {
		t.Errorf("SoC saving %.3f, want positive", socSave)
	}
	if coreSave <= socSave {
		t.Errorf("AICore relative saving (%.3f) should exceed SoC (%.3f)", coreSave, socSave)
	}
}

func TestFig17StricterConvergesFasterQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("GA convergence comparison in -short mode")
	}
	l := sharedLab()
	ms, err := l.BuildModels(workload.BERT(), true)
	if err != nil {
		t.Fatal(err)
	}
	history := func(target float64) []float64 {
		cfg := core.DefaultConfig()
		cfg.PerfLossTarget = target
		cfg.GA = ga.Config{PopSize: 60, Generations: 200, MutationRate: 0.15,
			CrossoverRate: 0.7, Elitism: 2, Seed: 9}
		_, _, res, err := core.Generate(ms.Input(l.Chip), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	tight := history(0.02)
	loose := history(0.10)
	// Looser bounds reach strictly better final scores (more power
	// headroom) — the Fig. 17 ordering.
	if loose[len(loose)-1] <= tight[len(tight)-1] {
		t.Errorf("10%% target final score %.4g should exceed 2%% target %.4g",
			loose[len(loose)-1], tight[len(tight)-1])
	}
}

func TestScoringThroughputFastEnough(t *testing.T) {
	if testing.Short() {
		t.Skip("GPT-3 modeling in -short mode")
	}
	r, err := sharedLab().ScoringThroughput(2000)
	if err != nil {
		t.Fatal(err)
	}
	// Sect. 8.1: a policy must be evaluable in milliseconds; ours is
	// far below that.
	if r.PerEvalMicros > 10000 {
		t.Errorf("policy evaluation takes %.0f µs, want << 10 ms", r.PerEvalMicros)
	}
	if r.ModelFreeEquivalentSec < 1000 {
		t.Errorf("model-free equivalent %.0f s implausibly low", r.ModelFreeEquivalentSec)
	}
}

func TestCoarseGrainedLosesToFineGrained(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().CoarseGrained()
	if err != nil {
		t.Fatal(err)
	}
	// The motivating claim: under a tight loss bound, whole-program
	// DVFS saves (almost) nothing while the fine-grained strategy
	// saves materially.
	if r.FineGrained.CoreReduction <= r.BestFixed.CoreReduction {
		t.Errorf("fine-grained AICore saving %.3f should beat best fixed %.3f",
			r.FineGrained.CoreReduction, r.BestFixed.CoreReduction)
	}
	// Rows ascend in frequency, so fixed-frequency losses must fall
	// (up to measurement noise) as frequency rises.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].PerfLoss > r.Rows[i-1].PerfLoss+0.002 {
			t.Errorf("fixed-frequency loss rose with frequency at %g MHz", r.Rows[i].MHz)
		}
	}
}

func TestModelFreeStarved(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().ModelFree(300)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelFreeEvals >= 100 {
		t.Errorf("model-free admitted %d evaluations; 12 s iterations should cap it near 25", r.ModelFreeEvals)
	}
	if r.ModelBasedEvals < 10000 {
		t.Errorf("model-based evaluations = %d, want tens of thousands", r.ModelBasedEvals)
	}
	if r.ModelBasedCoreRed <= r.ModelFreeCoreRed {
		t.Errorf("model-based saving %.3f should beat model-free %.3f under the budget",
			r.ModelBasedCoreRed, r.ModelFreeCoreRed)
	}
}

func TestUncoreWhatIfAddsHeadroom(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().UncoreDVFS()
	if err != nil {
		t.Fatal(err)
	}
	// Find the 90% uncore rows: SoC savings with uncore tuning must
	// exceed the core-DVFS-only row, at higher loss.
	var coreOnly, combined90 *UncoreRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Scale == 1.0 && row.CoreDVFS {
			coreOnly = row
		}
		if row.Scale == 0.9 && row.CoreDVFS {
			combined90 = row
		}
	}
	if coreOnly == nil || combined90 == nil {
		t.Fatal("missing rows in uncore what-if")
	}
	if combined90.SoCReduction <= coreOnly.SoCReduction {
		t.Errorf("uncore tuning should add SoC savings: %.3f vs %.3f",
			combined90.SoCReduction, coreOnly.SoCReduction)
	}
	if combined90.PerfLoss <= coreOnly.PerfLoss {
		t.Errorf("uncore downclock should cost performance: %.3f vs %.3f",
			combined90.PerfLoss, coreOnly.PerfLoss)
	}
}

func TestDualDomainAddsSoCSavings(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().DualDomain()
	if err != nil {
		t.Fatal(err)
	}
	if r.DualSoC <= r.CoreOnlySoC {
		t.Errorf("dual SoC saving %.3f should exceed core-only %.3f", r.DualSoC, r.CoreOnlySoC)
	}
	if r.DualUncoreSwitches == 0 {
		t.Error("dual strategy never touched the uncore")
	}
	if r.DualLoss > r.LossTarget+0.01 {
		t.Errorf("dual loss %.3f far beyond the %.0f%% target", r.DualLoss, r.LossTarget*100)
	}
}

func TestAttributionMemoryOpsGoLow(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().Attribution(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("strategy uses %d frequencies; expected a real spread", len(r.Rows))
	}
	// Sect. 7.4's validation: memory-bound operators should land at
	// low frequencies far more often than at the maximum.
	bias := r.LowFreqMemoryBias(1500)
	if bias < 0.25 {
		t.Errorf("only %.0f%% of memory-bound ops run below 1500 MHz", bias*100)
	}
	// The maximum frequency must still hold the bulk of core-bound
	// operators.
	var maxRow *AttributionRow
	for i := range r.Rows {
		if maxRow == nil || r.Rows[i].FreqMHz > maxRow.FreqMHz {
			maxRow = &r.Rows[i]
		}
	}
	if maxRow.SensitiveOps == 0 {
		t.Error("no core-bound operators remained at the maximum frequency")
	}
}

func TestSearchAblationGAWins(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("GPT-3 pipeline in -short mode")
	}
	r, err := sharedLab().SearchAblation()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SearchRow{}
	for _, row := range r.Rows {
		byName[row.Algorithm] = row
	}
	ga, greedy, random := byName["genetic"], byName["greedy"], byName["random"]
	if ga.CoreReduction <= greedy.CoreReduction {
		t.Errorf("GA (%.3f) should beat greedy (%.3f)", ga.CoreReduction, greedy.CoreReduction)
	}
	if greedy.CoreReduction <= random.CoreReduction {
		t.Errorf("greedy (%.3f) should beat random (%.3f)", greedy.CoreReduction, random.CoreReduction)
	}
	if random.CoreReduction > 0.01 {
		t.Errorf("random search found %.3f savings; thousand-gene uniform sampling should fail", random.CoreReduction)
	}
}

func TestChartsRenderable(t *testing.T) {
	l := sharedLab()
	charts := []interface{ SVG() (string, error) }{
		l.Fig3().Chart(),
		l.Fig4().Chart(),
		l.Fig9().Chart(),
	}
	for i, c := range charts {
		svg, err := c.SVG()
		if err != nil {
			t.Fatalf("chart %d: %v", i, err)
		}
		if len(svg) < 500 {
			t.Errorf("chart %d suspiciously small (%d bytes)", i, len(svg))
		}
	}
}
