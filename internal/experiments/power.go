package experiments

import (
	"fmt"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// Fig10Line is the equilibrium (SoC power, temperature) series of one
// operator across frequencies.
type Fig10Line struct {
	Operator string
	PowerW   []float64
	TempC    []float64
}

// Fig10Result reproduces Fig. 10: AICore temperature is linear in SoC
// power. Each line is a different operator swept across frequencies;
// the fitted slope is k of Eq. 15.
type Fig10Result struct {
	Lines      []Fig10Line
	FittedK    float64
	TrueK      float64
	InterceptC float64
}

// Fig10 warms single-operator workloads to equilibrium at several
// frequencies and regresses temperature against SoC power.
func (l *Lab) Fig10() (*Fig10Result, error) {
	res := &Fig10Result{TrueK: float64(l.Thermal.KCPerWatt)}
	subjects := []struct {
		name string
		m    *workload.Model
	}{
		{"SoftMax", workload.MicroOp(workload.SoftmaxOp(), 400)},
		{"Tanh", workload.MicroOp(workload.TanhOp(), 400)},
		{"Conv2D", workload.MicroOp(workload.RepresentativeOps()[3], 200)},
	}
	p := l.profiler(400)
	var allP, allT []float64
	for _, sub := range subjects {
		line := Fig10Line{Operator: sub.name}
		for _, f := range []float64{1000, 1200, 1400, 1600, 1800} {
			th := thermal.NewState(l.Thermal)
			prof, err := p.WarmupIterations(sub.m.Trace, f, l.Ground, th, 6000, 0.3)
			if err != nil {
				return nil, err
			}
			line.PowerW = append(line.PowerW, prof.MeanSoCW())
			line.TempC = append(line.TempC, float64(th.TempC()))
			allP = append(allP, prof.MeanSoCW())
			allT = append(allT, float64(th.TempC()))
		}
		res.Lines = append(res.Lines, line)
	}
	t0, k, err := stats.LinFit(allP, allT)
	if err != nil {
		return nil, err
	}
	res.FittedK, res.InterceptC = k, t0
	return res, nil
}

func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 - temperature vs SoC power: T = %.1f + %.4f*P (true k = %.4f)\n",
		r.InterceptC, r.FittedK, r.TrueK)
	for _, line := range r.Lines {
		fmt.Fprintf(&b, "  %-10s", line.Operator)
		for i := range line.PowerW {
			fmt.Fprintf(&b, "  (%.0fW, %.1fC)", line.PowerW[i], line.TempC[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2Entry is one workload/frequency power prediction.
type Table2Entry struct {
	Workload string
	MHz      float64
	PredW    float64
	MeasW    float64
	RelErr   float64
}

// Table2Result reproduces Table 2: the error distribution of SoC power
// predictions at held-out frequencies, with the γ=0 temperature
// ablation of Sect. 7.3.
type Table2Result struct {
	Entries []Table2Entry
	// BucketFrac holds fractions for (0,1%], (1,5%], (5,10%], (10%,inf).
	BucketFrac [4]float64
	MeanErr    float64
	// AblationMeanErr is the average error with the temperature term
	// disabled.
	AblationMeanErr float64
}

// table2Workloads returns the validation subjects of Sect. 7.3.
func table2Workloads() []*workload.Model {
	return []*workload.Model{
		workload.GPT3(),
		workload.BERT(),
		workload.VGG19(),
		workload.ResNet50(),
		workload.ViTBase(),
		workload.MicroOp(workload.SoftmaxOp(), 300),
		workload.MicroOp(workload.TanhOp(), 300),
	}
}

// predictMeanPower predicts the workload's thermally-settled mean SoC
// power at a uniform frequency using the full model stack.
func (l *Lab) predictMeanPower(ms *Models, fMHz units.MHz) (float64, error) {
	stage := []preprocess.Stage{{
		OpStart: 0, OpEnd: len(ms.Baseline.Records),
		DurMicros: ms.Baseline.TotalMicros,
	}}
	ev, err := core.NewEvaluator(ms.Input(l.Chip), core.DefaultConfig(), stage)
	if err != nil {
		return 0, err
	}
	gi := -1
	for i, f := range ev.Grid() {
		if stats.Approx(f, fMHz) {
			gi = i
		}
	}
	if gi < 0 {
		return 0, fmt.Errorf("experiments: %g MHz not on the grid", float64(fMHz))
	}
	pred, err := ev.Predict([]int{gi})
	if err != nil {
		return 0, err
	}
	return float64(pred.SoCWatts), nil
}

// Table2 builds power models for each validation workload at the fit
// frequencies and compares predicted against measured mean SoC power
// at every held-out frequency.
func (l *Lab) Table2() (*Table2Result, error) {
	res := &Table2Result{}
	var errsAware, errsBlind []float64
	for _, m := range table2Workloads() {
		aware, err := l.BuildModels(m, true)
		if err != nil {
			return nil, err
		}
		// The ablation shares profiles and calibration; only the
		// online build differs.
		blindPower := *aware.Power
		blindPower.TemperatureAware = false
		blind := *aware
		blind.Power = &blindPower
		for _, f := range EvalFreqs {
			meas, err := l.MeasureFixed(m, f)
			if err != nil {
				return nil, err
			}
			pred, err := l.predictMeanPower(aware, f)
			if err != nil {
				return nil, err
			}
			relErr := stats.AbsRelError(pred, meas.MeanSoCW)
			res.Entries = append(res.Entries, Table2Entry{
				Workload: m.Name, MHz: float64(f), PredW: pred, MeasW: meas.MeanSoCW, RelErr: relErr,
			})
			errsAware = append(errsAware, relErr)
			predBlind, err := l.predictMeanPower(&blind, f)
			if err != nil {
				return nil, err
			}
			errsBlind = append(errsBlind, stats.AbsRelError(predBlind, meas.MeanSoCW))
		}
	}
	counts := stats.Bucket(errsAware, []float64{0.01, 0.05, 0.10})
	total := float64(len(errsAware))
	for i := 0; i < 4; i++ {
		res.BucketFrac[i] = float64(counts[i]) / total
	}
	res.MeanErr = stats.Mean(errsAware)
	res.AblationMeanErr = stats.Mean(errsBlind)
	return res, nil
}

func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 - power-model prediction error distribution\n")
	fmt.Fprintf(&b, "  (0,1%%]: %.1f%%  (1,5%%]: %.1f%%  (5,10%%]: %.1f%%  (10%%,inf): %.1f%%  avg: %.2f%%\n",
		r.BucketFrac[0]*100, r.BucketFrac[1]*100, r.BucketFrac[2]*100, r.BucketFrac[3]*100, r.MeanErr*100)
	fmt.Fprintf(&b, "  temperature ablation (gamma=0) avg: %.2f%%\n", r.AblationMeanErr*100)
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %-18s %5.0f MHz  pred %7.2f W  meas %7.2f W  err %5.2f%%\n",
			e.Workload, e.MHz, e.PredW, e.MeasW, e.RelErr*100)
	}
	return b.String()
}
