package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/op"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
)

// AttributionRow aggregates the strategy's behaviour at one frequency.
type AttributionRow struct {
	FreqMHz float64
	// Stages assigned to this frequency, and their share of iteration
	// time and of compute operators.
	Stages        int
	TimeSharePct  float64
	Ops           int
	SensitiveOps  int
	MemoryBoundOp int
}

// AttributionResult explains a generated strategy: which frequencies
// it uses, how much of the iteration runs at each, and what kind of
// operators live there. The expected picture (Sect. 7.4: "the policy
// sets the LFC to low values ... while the frequency for the HFC
// remains high") is memory-bound time at the low end and compute-bound
// time pinned at maximum.
type AttributionResult struct {
	Workload string
	Target   float64
	Rows     []AttributionRow
	SetFreq  int
}

// Attribution generates a GPT-3 strategy at the given loss target and
// breaks it down by assigned frequency. Sect. 7.4 validates the 10%
// policy this way: LFC frequencies land around 1200 MHz while HFC
// stays at the maximum.
func (l *Lab) Attribution(target float64) (*AttributionResult, error) {
	//lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant
	return l.attribution(context.Background(), target)
}

func (l *Lab) attribution(ctx context.Context, target float64) (*AttributionResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.PerfLossTarget = target
	cfg.GA.Seed = 877
	strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	type agg struct {
		stages, ops, sens, mem int
		time                   float64
	}
	byFreq := map[units.MHz]*agg{}
	prof := gpt.Baseline
	lastFreq := units.MHz(-1)
	var total float64
	for i := range prof.Records {
		rec := &prof.Records[i]
		f := strat.FreqAt(i)
		a, ok := byFreq[f]
		if !ok {
			a = &agg{}
			byFreq[f] = a
		}
		if !stats.Approx(f, lastFreq) {
			a.stages++
			lastFreq = f
		}
		a.ops++
		a.time += rec.DurMicros
		total += rec.DurMicros
		if rec.Spec.Class == op.Compute {
			r := rec.Ratios
			if r[rec.Spec.CorePipe] >= 0.8 {
				a.sens++
			}
			if r[op.MTE2] >= 0.8 || r[op.MTE3] >= 0.8 {
				a.mem++
			}
		}
	}
	res := &AttributionResult{Workload: gpt.Workload.Name, SetFreq: strat.Switches(), Target: target}
	for f, a := range byFreq {
		res.Rows = append(res.Rows, AttributionRow{
			FreqMHz:       float64(f),
			Stages:        a.stages,
			TimeSharePct:  100 * a.time / total,
			Ops:           a.ops,
			SensitiveOps:  a.sens,
			MemoryBoundOp: a.mem,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].FreqMHz < res.Rows[j].FreqMHz })
	return res, nil
}

func (r *AttributionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strategy attribution on %s at the %.0f%% target (%d SetFreq per iteration)\n",
		r.Workload, r.Target*100, r.SetFreq)
	fmt.Fprintf(&b, "  %8s %7s %10s %8s %10s %10s\n",
		"MHz", "stages", "time-share", "ops", "core-bound", "mem-bound")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8.0f %7d %9.2f%% %8d %10d %10d\n",
			row.FreqMHz, row.Stages, row.TimeSharePct, row.Ops, row.SensitiveOps, row.MemoryBoundOp)
	}
	return b.String()
}

// LowFreqMemoryBias reports the fraction of strongly memory-bound
// operators that ended up below the given frequency — the signature of
// a correct fine-grained policy.
func (r *AttributionResult) LowFreqMemoryBias(belowMHz float64) float64 {
	lowMem, totalMem := 0, 0
	for _, row := range r.Rows {
		totalMem += row.MemoryBoundOp
		if row.FreqMHz < belowMHz {
			lowMem += row.MemoryBoundOp
		}
	}
	if totalMem == 0 {
		return 0
	}
	return float64(lowMem) / float64(totalMem)
}
