package experiments

import (
	"context"
	"fmt"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/dualdvfs"
	"npudvfs/internal/executor"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
)

// DualResult compares joint core+uncore strategy generation (the
// Sect. 8.2 future work, implemented in internal/dualdvfs) against the
// identical machinery restricted to the core domain.
type DualResult struct {
	LossTarget float64
	// UncoreDynW is the calibrated clock-proportional uncore idle
	// power.
	UncoreDynW float64
	// CoreOnly and Dual are measured against the fixed-max baseline.
	CoreOnlyLoss, CoreOnlySoC, CoreOnlyCore float64
	DualLoss, DualSoC, DualCore             float64
	DualUncoreSwitches                      int
}

// DualDomain runs both searches on GPT-3 at a 4% loss target (2%
// leaves little room for the extra knob) and measures the strategies.
func (l *Lab) DualDomain() (*DualResult, error) { return l.dualDomain(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) dualDomain(ctx context.Context) (*DualResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	rig := &powermodel.Rig{
		Chip:    l.Chip,
		Ground:  l.Ground,
		Sensor:  powersim.NewSensor(l.Seed + 900),
		Thermal: l.Thermal,
	}
	dyn, err := dualdvfs.CalibrateUncore(rig, 0.8, 64)
	if err != nil {
		return nil, err
	}
	in := dualdvfs.Input{
		Chip:       l.Chip,
		Profile:    gpt.Baseline,
		Power:      gpt.Power,
		UncoreDynW: dyn,
	}
	cfg := dualdvfs.DefaultConfig()
	cfg.PerfLossTarget = 0.04
	cfg.GA.Seed = 801
	dualStrat, _, _, err := dualdvfs.GenerateContext(ctx, in, cfg)
	if err != nil {
		return nil, err
	}
	coreCfg := cfg
	coreCfg.UncoreScales = []float64{1.0}
	coreCfg.GA.Seed = 802
	coreStrat, _, _, err := dualdvfs.GenerateContext(ctx, in, coreCfg)
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	measure := func(s *core.Strategy) (*executor.Result, error) {
		return l.MeasureStrategy(gpt.Workload, s, executor.DefaultOptions())
	}
	dual, err := measure(dualStrat)
	if err != nil {
		return nil, err
	}
	coreOnly, err := measure(coreStrat)
	if err != nil {
		return nil, err
	}
	return &DualResult{
		LossTarget:         cfg.PerfLossTarget,
		UncoreDynW:         dyn,
		CoreOnlyLoss:       coreOnly.TimeMicros/base.TimeMicros - 1,
		CoreOnlySoC:        1 - coreOnly.MeanSoCW/base.MeanSoCW,
		CoreOnlyCore:       1 - coreOnly.MeanCoreW/base.MeanCoreW,
		DualLoss:           dual.TimeMicros/base.TimeMicros - 1,
		DualSoC:            1 - dual.MeanSoCW/base.MeanSoCW,
		DualCore:           1 - dual.MeanCoreW/base.MeanCoreW,
		DualUncoreSwitches: dualStrat.UncoreSwitches(),
	}, nil
}

func (r *DualResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sect. 8.2 joint core+uncore DVFS on GPT-3 (%.0f%% target, uncore dyn %.1f W)\n",
		r.LossTarget*100, r.UncoreDynW)
	fmt.Fprintf(&b, "  core-only: loss %5.2f%%  SoC -%5.2f%%  AICore -%6.2f%%\n",
		r.CoreOnlyLoss*100, r.CoreOnlySoC*100, r.CoreOnlyCore*100)
	fmt.Fprintf(&b, "  dual:      loss %5.2f%%  SoC -%5.2f%%  AICore -%6.2f%%  (%d uncore switches)\n",
		r.DualLoss*100, r.DualSoC*100, r.DualCore*100, r.DualUncoreSwitches)
	return b.String()
}
