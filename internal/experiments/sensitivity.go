package experiments

import (
	"fmt"
	"strings"

	"npudvfs/internal/op"
	"npudvfs/internal/workload"
)

// SensitivityRow is one operator's performance/power trade-off for a
// single frequency step down.
type SensitivityRow struct {
	Name string
	// PerfLossPct and PowerGainPct are the relative slowdown and
	// AICore power saving when stepping from FromMHz to ToMHz.
	PerfLossPct  float64
	PowerGainPct float64
	// EfficiencyRatio is power gain per unit of performance loss;
	// above 1 the trade is favourable.
	EfficiencyRatio float64
}

// SensitivityResult reproduces the observation opening Sect. 6:
// "Compute-bound operators like MatMul sacrifice 6.9% performance for
// a 7.9% power gain, while memory-bound ones like Gelu could trade a
// 2% performance drop for a 5% or greater power gain."
type SensitivityResult struct {
	FromMHz, ToMHz float64
	Rows           []SensitivityRow
}

// Sensitivity measures the per-operator trade-off of one DVFS step for
// a compute-bound MatMul, a memory-bound Gelu and the representative
// operators.
func (l *Lab) Sensitivity(fromMHz, toMHz float64) *SensitivityResult {
	res := &SensitivityResult{FromMHz: fromMHz, ToMHz: toMHz}
	subjects := []op.Spec{
		{
			Name: "MatMul", Shape: "4096x12288x12288", Class: op.Compute,
			Scenario: op.PingPongIndep, Blocks: 8,
			LoadBytes: (4096*12288 + 12288*12288) * 2 / 8, StoreBytes: 4096 * 12288 * 2 / 8,
			CoreCycles: 4096 * 12288 * 12288 / workload.CubeMACsPerCycle / 8,
			CorePipe:   op.Cube, L2Hit: 0.75, PrePostTime: 2,
		},
		{
			Name: "Gelu", Shape: "200M", Class: op.Compute,
			Scenario: op.PingPongFreeIndep, Blocks: 6,
			LoadBytes: 200e6 * 2 / 6, StoreBytes: 200e6 * 2 / 6,
			CoreCycles: 200e6 * 1.5 / workload.VecElemsPerCycle / 6,
			CorePipe:   op.Vector, L2Hit: 0.12, PrePostTime: 2,
		},
	}
	subjects = append(subjects, workload.RepresentativeOps()...)
	for i := range subjects {
		s := &subjects[i]
		tHi := l.Chip.Time(s, fromMHz)
		tLo := l.Chip.Time(s, toMHz)
		// Mean AICore power over the operator at a representative
		// warm ΔT.
		const deltaT = 25
		pHi := l.Ground.AICorePower(s, fromMHz, deltaT)
		pLo := l.Ground.AICorePower(s, toMHz, deltaT)
		row := SensitivityRow{
			Name:         s.Name,
			PerfLossPct:  100 * (tLo/tHi - 1),
			PowerGainPct: 100 * (1 - pLo/pHi),
		}
		if row.PerfLossPct > 1e-9 {
			row.EfficiencyRatio = row.PowerGainPct / row.PerfLossPct
		} else {
			row.EfficiencyRatio = 1e9 // effectively free
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func (r *SensitivityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sect. 6 operator sensitivity, %g -> %g MHz\n", r.FromMHz, r.ToMHz)
	fmt.Fprintf(&b, "  %-18s %10s %11s %8s\n", "operator", "perf loss", "power gain", "ratio")
	for _, row := range r.Rows {
		ratio := fmt.Sprintf("%7.2f", row.EfficiencyRatio)
		if row.EfficiencyRatio >= 1e9 {
			ratio = "   free"
		}
		fmt.Fprintf(&b, "  %-18s %9.2f%% %10.2f%% %s\n",
			row.Name, row.PerfLossPct, row.PowerGainPct, ratio)
	}
	return b.String()
}
