package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/pool"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// gpt3Models caches the expensive GPT-3 modeling pipeline across the
// end-to-end experiments.
func (l *Lab) gpt3Models() (*Models, error) {
	l.gptOnce.Do(func() {
		l.gptModels, l.gptErr = l.BuildModels(workload.GPT3(), true)
	})
	return l.gptModels, l.gptErr
}

// Table3Row is one end-to-end optimization result (Table 3).
type Table3Row struct {
	Model          string
	LossTarget     float64
	OrigIterSec    float64
	DVFSIterSec    float64
	PerfLoss       float64
	OrigSoCW       float64
	DVFSSoCW       float64
	SoCReduction   float64
	OrigCoreW      float64
	DVFSCoreW      float64
	CoreReduction  float64
	SetFreqPerIter int
	Stages         int
}

// Table3Result is the full end-to-end table.
type Table3Result struct {
	Rows []Table3Row
}

// table3Case optimizes one workload at one loss target and measures
// baseline and DVFS execution on the simulated hardware.
func (l *Lab) table3Case(ctx context.Context, ms *Models, target float64, gaSeed int64) (Table3Row, error) {
	cfg := core.DefaultConfig()
	cfg.PerfLossTarget = target
	cfg.GA.Seed = gaSeed
	strat, stages, _, err := core.GenerateContext(ctx, ms.Input(l.Chip), cfg)
	if err != nil {
		return Table3Row{}, err
	}
	base, err := l.MeasureFixed(ms.Workload, l.Chip.Curve.Max())
	if err != nil {
		return Table3Row{}, err
	}
	dvfs, err := l.MeasureStrategy(ms.Workload, strat, executor.DefaultOptions())
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{
		Model:          ms.Workload.Name,
		LossTarget:     target,
		OrigIterSec:    base.TimeMicros / 1e6,
		DVFSIterSec:    dvfs.TimeMicros / 1e6,
		PerfLoss:       dvfs.TimeMicros/base.TimeMicros - 1,
		OrigSoCW:       base.MeanSoCW,
		DVFSSoCW:       dvfs.MeanSoCW,
		SoCReduction:   1 - dvfs.MeanSoCW/base.MeanSoCW,
		OrigCoreW:      base.MeanCoreW,
		DVFSCoreW:      dvfs.MeanCoreW,
		CoreReduction:  1 - dvfs.MeanCoreW/base.MeanCoreW,
		SetFreqPerIter: strat.Switches(),
		Stages:         len(stages),
	}, nil
}

// Table3 reproduces the end-to-end table: GPT-3 at loss targets 2-10%
// plus BERT, ResNet-50 and ResNet-152 at the production 2% target.
// Cases fan out over l.Parallel workers; every case's GA seed is fixed
// per case, so rows are identical at any worker count.
func (l *Lab) Table3() (*Table3Result, error) { return l.table3(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) table3(ctx context.Context) (*Table3Result, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	targets := []float64{0.02, 0.04, 0.06, 0.08, 0.10}
	extras := []*workload.Model{workload.BERT(), workload.ResNet50(), workload.ResNet152()}
	rows := make([]Table3Row, len(targets)+len(extras))
	err = pool.Each(ctx, l.Seed, len(rows), l.workers(), func(i int, _ *rand.Rand) error {
		if i < len(targets) {
			row, err := l.table3Case(ctx, gpt, targets[i], int64(100+i))
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		}
		j := i - len(targets)
		ms, err := l.BuildModels(extras[j], true)
		if err != nil {
			return err
		}
		row, err := l.table3Case(ctx, ms, 0.02, int64(200+j))
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Rows: rows}, nil
}

func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 - end-to-end results\n")
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %7s %9s %9s %7s %9s %9s %7s %8s\n",
		"model", "target", "t_orig", "t_dvfs", "loss", "soc_orig", "soc_dvfs", "soc-",
		"core_orig", "core_dvfs", "core-", "setfreq")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %5.0f%% %8.3fs %8.3fs %6.2f%% %8.2fW %8.2fW %6.2f%% %8.2fW %8.2fW %6.2f%% %8d\n",
			row.Model, row.LossTarget*100, row.OrigIterSec, row.DVFSIterSec, row.PerfLoss*100,
			row.OrigSoCW, row.DVFSSoCW, row.SoCReduction*100,
			row.OrigCoreW, row.DVFSCoreW, row.CoreReduction*100, row.SetFreqPerIter)
	}
	return b.String()
}

// Fig17Series is the GA convergence history at one loss target.
type Fig17Series struct {
	LossTarget float64
	History    []float64
	SearchSec  float64
}

// Fig17Result reproduces the search-convergence figure.
type Fig17Result struct {
	Series []Fig17Series
}

// Fig17 runs the full 200x600 search at each loss target on GPT-3 and
// records the best score per generation.
func (l *Lab) Fig17() (*Fig17Result, error) { return l.fig17(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) fig17(ctx context.Context) (*Fig17Result, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{}
	for i, target := range []float64{0.02, 0.04, 0.06, 0.08, 0.10} {
		cfg := core.DefaultConfig()
		cfg.PerfLossTarget = target
		cfg.GA.Seed = int64(300 + i)
		//lint:allow detrand wall-clock timing only: SearchSec; fig17 is excluded from the byte-identity suite
		start := time.Now()
		_, _, gaRes, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig17Series{
			LossTarget: target,
			History:    gaRes.History,
			//lint:allow detrand wall-clock timing only: SearchSec; fig17 is excluded from the byte-identity suite
			SearchSec: time.Since(start).Seconds(),
		})
	}
	return res, nil
}

// ConvergedAt returns the first generation whose score is within frac
// of the final score.
func (s *Fig17Series) ConvergedAt(frac float64) int {
	final := s.History[len(s.History)-1]
	for i, v := range s.History {
		if v >= final*(1-frac) {
			return i
		}
	}
	return len(s.History) - 1
}

func (r *Fig17Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 17 - GA convergence under performance lower bounds\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  target %2.0f%%: final score %.4g, converged(99%%) at gen %d, search %.2fs\n",
			s.LossTarget*100, s.History[len(s.History)-1], s.ConvergedAt(0.01), s.SearchSec)
	}
	return b.String()
}

// Fig18Row is one comparative configuration on GPT-3 training.
type Fig18Row struct {
	Name          string
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
	SetFreq       int
}

// Fig18Result reproduces the millisecond-DVFS and FAI comparisons.
type Fig18Result struct {
	Rows []Fig18Row
}

// Fig18 compares the production configuration against a simulated
// V100-latency deployment (SetFreq delayed by 14 ms) and coarser
// frequency adjustment intervals (100 ms, 1 s).
func (l *Lab) Fig18() (*Fig18Result, error) { return l.fig18(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) fig18(ctx context.Context) (*Fig18Result, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	res := &Fig18Result{}
	run := func(name string, faiMicros units.Micros, opt executor.Options, seed int64) error {
		cfg := core.DefaultConfig()
		cfg.FAIMicros = faiMicros
		cfg.GA.Seed = seed
		strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
		if err != nil {
			return err
		}
		meas, err := l.MeasureStrategy(gpt.Workload, strat, opt)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Fig18Row{
			Name:          name,
			PerfLoss:      meas.TimeMicros/base.TimeMicros - 1,
			SoCReduction:  1 - meas.MeanSoCW/base.MeanSoCW,
			CoreReduction: 1 - meas.MeanCoreW/base.MeanCoreW,
			SetFreq:       strat.Switches(),
		})
		return nil
	}
	nominal := executor.DefaultOptions()
	// The V100 comparison delays SetFreq deployment by 14 ms
	// (Sect. 7.4) with the actuation jitter of a platform lacking a
	// fast, stable frequency-control path.
	delayed := executor.Options{
		SetFreqLatencyMicros: 1000,
		ExtraDelayMicros:     14000,
		DelayJitterMicros:    10000,
		JitterSeed:           17,
		Sync:                 false,
	}
	if err := run("origin", 5000, nominal, 401); err != nil {
		return nil, err
	}
	if err := run("delay-14ms", 5000, delayed, 401); err != nil {
		return nil, err
	}
	if err := run("FAI-100ms", 100000, nominal, 402); err != nil {
		return nil, err
	}
	if err := run("FAI-1s", 1000000, nominal, 403); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Fig18Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 18 - comparative experiments on GPT-3 training\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %8s %8s\n", "config", "loss", "soc-", "core-", "setfreq")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %7.2f%% %7.2f%% %7.2f%% %8d\n",
			row.Name, row.PerfLoss*100, row.SoCReduction*100, row.CoreReduction*100, row.SetFreq)
	}
	return b.String()
}

// InferenceResult reproduces the Sect. 8.4 host-bound inference
// experiment: lowering every operator to 1300 MHz.
type InferenceResult struct {
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
	IdleFraction  float64
}

// Inference measures a Llama2 decode step at 1800 vs 1300 MHz.
func (l *Lab) Inference() (*InferenceResult, error) {
	m := workload.Llama2Inference()
	base, err := l.MeasureFixed(m, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	low, err := l.MeasureFixed(m, 1300) //lint:allow unitcheck paper low-frequency comparison point for the decode step (the vf.Ascend knee)
	if err != nil {
		return nil, err
	}
	idle := 0.0
	for i := range m.Trace {
		if !m.Trace[i].FrequencyScaled() {
			idle += l.Chip.Time(&m.Trace[i], 1800)
		}
	}
	return &InferenceResult{
		PerfLoss:      low.TimeMicros/base.TimeMicros - 1,
		SoCReduction:  1 - low.MeanSoCW/base.MeanSoCW,
		CoreReduction: 1 - low.MeanCoreW/base.MeanCoreW,
		IdleFraction:  idle / base.TimeMicros,
	}, nil
}

func (r *InferenceResult) String() string {
	return fmt.Sprintf(
		"Sect. 8.4 inference at 1300 MHz - loss %.2f%%, SoC -%.2f%%, AICore -%.2f%% (host/fixed fraction %.0f%%)\n",
		r.PerfLoss*100, r.SoCReduction*100, r.CoreReduction*100, r.IdleFraction*100)
}

// ThroughputResult quantifies the model-based scoring advantage of
// Sect. 8.1: how many candidate strategies per second the evaluator
// scores, versus one 11-second training round per candidate for a
// model-free search.
type ThroughputResult struct {
	Policies      int
	Seconds       float64
	PerEvalMicros float64
	// ModelFreeEquivalentSec is how long the same number of
	// evaluations would take at one training iteration each.
	ModelFreeEquivalentSec float64
}

// ScoringThroughput times policy evaluation on the GPT-3 problem.
func (l *Lab) ScoringThroughput(policies int) (*ThroughputResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	strat, stages, _, err := core.Generate(gpt.Input(l.Chip), core.Config{
		FAIMicros:      cfg.FAIMicros,
		PerfLossTarget: cfg.PerfLossTarget,
		PriorLFCMHz:    cfg.PriorLFCMHz,
		GA:             quickGA(),
	})
	if err != nil {
		return nil, err
	}
	_ = strat
	ev, err := core.NewEvaluator(gpt.Input(l.Chip), cfg, stages)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(9))
	ind := make([]int, ev.Genes())
	//lint:allow detrand wall-clock timing only: scoring throughput is a timing benchmark by definition
	start := time.Now()
	sink := 0.0
	for i := 0; i < policies; i++ {
		for j := range ind {
			ind[j] = rng.Intn(len(ev.Grid()))
		}
		sink += ev.Score(ind)
	}
	//lint:allow detrand wall-clock timing only: scoring throughput is a timing benchmark by definition
	elapsed := time.Since(start).Seconds()
	_ = sink
	iterSec := gpt.Baseline.TotalMicros / 1e6
	return &ThroughputResult{
		Policies:               policies,
		Seconds:                elapsed,
		PerEvalMicros:          elapsed / float64(policies) * 1e6,
		ModelFreeEquivalentSec: float64(policies) * iterSec,
	}, nil
}

func quickGA() ga.Config {
	c := core.DefaultConfig().GA
	c.PopSize = 10
	c.Generations = 2
	return c
}

func (r *ThroughputResult) String() string {
	return fmt.Sprintf(
		"Sect. 8.1 scoring throughput - %d policies in %.2fs (%.1f µs each); model-free equivalent: %.0fs\n",
		r.Policies, r.Seconds, r.PerEvalMicros, r.ModelFreeEquivalentSec)
}
