package experiments

import (
	"context"
	"fmt"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
)

// UncoreRow is one uncore-scale measurement on GPT-3.
type UncoreRow struct {
	// Scale is the uncore frequency relative to nominal.
	Scale float64
	// CoreDVFS marks rows where the fine-grained core strategy runs
	// on top of the scaled uncore.
	CoreDVFS      bool
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
}

// UncoreResult is the Sect. 8.2 what-if study: the paper notes that
// uncore components average ~80% of SoC power but are not
// frequency-tunable on the measured platform, capping overall savings;
// this experiment quantifies the additional headroom if they were.
type UncoreResult struct {
	Rows []UncoreRow
	// BestCombined is the largest compliant SoC reduction achieved by
	// combining the fine-grained core strategy with an uncore scale.
	BestCombined UncoreRow
	LossTarget   float64
}

// scaledLab builds a laboratory whose uncore runs at the given scale.
func (l *Lab) scaledLab(scale float64) *Lab {
	chip := l.Chip.WithUncoreScale(scale)
	ground := *l.Ground
	ground.Chip = chip
	ground.UncoreScale = scale
	return NewLabFor(chip, &ground, l.Thermal, l.Seed)
}

// UncoreDVFS sweeps uncore frequency scales on GPT-3, alone and
// combined with the fine-grained core strategy, against the stock
// baseline at maximum core and uncore frequency.
func (l *Lab) UncoreDVFS() (*UncoreResult, error) { return l.uncoreDVFS(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) uncoreDVFS(ctx context.Context) (*UncoreResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	// The fine-grained core strategy, generated once on the stock
	// chip (re-deriving it per uncore scale would need per-scale
	// profiles; the near-optimal stock strategy suffices for the
	// headroom estimate).
	cfg := core.DefaultConfig()
	cfg.GA.Seed = 601
	strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	res := &UncoreResult{LossTarget: 0.025}
	res.BestCombined = UncoreRow{Scale: 1}
	for _, scale := range []float64{1.0, 0.95, 0.9, 0.85, 0.8} {
		lab2 := l.scaledLab(scale)
		fixed, err := lab2.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, UncoreRow{
			Scale:         scale,
			PerfLoss:      fixed.TimeMicros/base.TimeMicros - 1,
			SoCReduction:  1 - fixed.MeanSoCW/base.MeanSoCW,
			CoreReduction: 1 - fixed.MeanCoreW/base.MeanCoreW,
		})
		combined, err := lab2.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row := UncoreRow{
			Scale:         scale,
			CoreDVFS:      true,
			PerfLoss:      combined.TimeMicros/base.TimeMicros - 1,
			SoCReduction:  1 - combined.MeanSoCW/base.MeanSoCW,
			CoreReduction: 1 - combined.MeanCoreW/base.MeanCoreW,
		}
		res.Rows = append(res.Rows, row)
		if row.PerfLoss <= res.LossTarget && row.SoCReduction > res.BestCombined.SoCReduction {
			res.BestCombined = row
		}
	}
	return res, nil
}

func (r *UncoreResult) String() string {
	var b strings.Builder
	b.WriteString("Sect. 8.2 what-if: uncore DVFS headroom on GPT-3\n")
	fmt.Fprintf(&b, "  %-7s %-9s %8s %8s %8s\n", "uncore", "core", "loss", "SoC-", "AICore-")
	for _, row := range r.Rows {
		mode := "1800MHz"
		if row.CoreDVFS {
			mode = "DVFS"
		}
		fmt.Fprintf(&b, "  %6.0f%% %-9s %7.2f%% %7.2f%% %7.2f%%\n",
			row.Scale*100, mode, row.PerfLoss*100, row.SoCReduction*100, row.CoreReduction*100)
	}
	fmt.Fprintf(&b, "  best compliant combined: uncore %.0f%% -> SoC -%.2f%% at %.2f%% loss\n",
		r.BestCombined.Scale*100, r.BestCombined.SoCReduction*100, r.BestCombined.PerfLoss*100)
	return b.String()
}
