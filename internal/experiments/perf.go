package experiments

import (
	"fmt"
	"strings"
	"time"

	"npudvfs/internal/op"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
	"npudvfs/internal/vf"
	"npudvfs/internal/workload"
)

// Fig3Row is one frequency point of Fig. 3: Ld/St throughput (Eq. 1)
// and cycle count at fixed transfer volume (Eq. 4).
type Fig3Row struct {
	MHz           float64
	ThroughputGBs float64
	Cycles        float64
}

// Fig3Result reproduces both panels of Fig. 3 for a transfer whose
// saturation frequency falls inside the DVFS window.
type Fig3Result struct {
	SaturationMHz float64
	Rows          []Fig3Row
}

// Fig3 sweeps the frequency grid for a half-L2-resident load.
func (l *Lab) Fig3() *Fig3Result {
	const l2Hit = 0.55
	const volume = 4 << 20 // bytes
	res := &Fig3Result{SaturationMHz: l.Chip.SaturationMHz(l.Chip.CLoad, l2Hit)}
	spec := &op.Spec{
		Name: "fig3", Class: op.Compute, Scenario: op.PingPongFreeIndep,
		Blocks: 1, LoadBytes: volume, CoreCycles: 1, CorePipe: op.Vector, L2Hit: l2Hit,
	}
	for f := 1000.0; f <= 1800; f += 50 {
		res.Rows = append(res.Rows, Fig3Row{
			MHz:           f,
			ThroughputGBs: l.Chip.Throughput(l.Chip.CLoad, l2Hit, f) / 1000,
			Cycles:        l.Chip.LdCycles(spec, f),
		})
	}
	return res
}

func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 - Ld throughput and cycles vs core frequency (f_s = %.0f MHz)\n", r.SaturationMHz)
	fmt.Fprintf(&b, "%8s %14s %12s\n", "MHz", "Tp (GB/s)", "Cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.0f %14.1f %12.0f\n", row.MHz, row.ThroughputGBs, row.Cycles)
	}
	return b.String()
}

// Fig4Result reproduces Fig. 4(b): the convex piecewise-linear
// cycle-frequency curve of an operator whose Ld and St saturation
// points both land inside the DVFS window.
type Fig4Result struct {
	BreakpointsMHz []float64
	MHz            []float64
	Cycles         []float64
	SlopesPerSeg   []float64
}

// Fig4 evaluates the analytic white-box model of an engineered
// PingPong-free, independent-Ld/St operator.
func (l *Lab) Fig4() *Fig4Result {
	spec := &op.Spec{
		Name: "fig4", Class: op.Compute, Scenario: op.PingPongFreeIndep,
		Blocks: 4, LoadBytes: 4 << 20, StoreBytes: 3 << 20,
		CoreCycles: 2000, CorePipe: op.Vector, L2Hit: 0.55,
	}
	// A chip copy with a narrower store port separates the St
	// saturation point (≈1200 MHz) from the Ld one (≈1338 MHz), and
	// the smaller store volume makes the max(Cycle(Ld), Cycle(St))
	// term switch branches near 1780 MHz — the multi-breakpoint
	// example of Fig. 4.
	chip := *l.Chip
	chip.CStore = chip.BWUncore(spec.L2Hit) / (1200 * float64(chip.Cores))
	a := perfmodel.Analytic{Chip: &chip, Spec: spec}
	res := &Fig4Result{BreakpointsMHz: units.Floats(a.Breakpoints(l.Chip.Curve.Min(), l.Chip.Curve.Max(), 1))}
	var prev float64
	for f := 1000.0; f <= 1800; f += 25 {
		c := a.Cycles(units.MHz(f))
		res.MHz = append(res.MHz, f)
		res.Cycles = append(res.Cycles, c)
		if len(res.Cycles) > 1 {
			res.SlopesPerSeg = append(res.SlopesPerSeg, (c-prev)/25)
		}
		prev = c
	}
	return res
}

func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 - piecewise-linear cycle curve, breakpoints at %v MHz\n", r.BreakpointsMHz)
	fmt.Fprintf(&b, "%8s %12s\n", "MHz", "Cycles")
	for i := range r.MHz {
		fmt.Fprintf(&b, "%8.0f %12.0f\n", r.MHz[i], r.Cycles[i])
	}
	return b.String()
}

// Fig9Result is the voltage-frequency table of Fig. 9.
type Fig9Result struct {
	Points []vf.Point
}

// Fig9 reads the firmware V-F curve.
func (l *Lab) Fig9() *Fig9Result {
	return &Fig9Result{Points: l.Chip.Curve.Points()}
}

func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 - Voltage-Frequency curve\n")
	fmt.Fprintf(&b, "%8s %10s\n", "MHz", "Volts")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.0f %10.3f\n", p.MHz, p.Volts)
	}
	return b.String()
}

// FuncKind names the three candidate fitting functions of Sect. 4.3.
type FuncKind int

const (
	Func1 FuncKind = iota // T = (a·f² + b·f + c)/f
	Func2                 // T = a·f + c/f (production)
	Func3                 // T = (a·e^{b·f} + c)/f
)

func (k FuncKind) String() string {
	switch k {
	case Func1:
		return "Func1 (af²+bf+c)/f"
	case Func2:
		return "Func2 af+c/f"
	case Func3:
		return "Func3 (ae^bf+c)/f"
	}
	return "?"
}

// Fig15Result holds the per-function error populations behind the CDF
// of Fig. 15.
type Fig15Result struct {
	// Errors[k] lists relative errors of function k across all
	// evaluated operator instances and frequencies.
	Errors [3][]float64
	// Operators is the number of instances evaluated (>= 20 µs ones).
	Operators int
	// DataPoints is operators times evaluation frequencies.
	DataPoints int
	// MeanError[k] is the average relative error of function k.
	MeanError [3]float64
}

// threeFitFreqs is the three-point fit plan used by Func. 1 and
// Func. 3 (Sect. 7.2: fits at 1000, 1400, 1800 MHz).
var threeFitFreqs = []units.MHz{1000, 1400, 1800} //lint:allow unitcheck paper three-point fit frequencies (Sect. 7.2), vf.Ascend grid points

// MinModelMicros is the duration threshold below which operators are
// excluded from performance-model evaluation (Sect. 7.2: sub-20 µs
// operators are 58.3% of the population but 0.9% of time).
const MinModelMicros = 20.0

// Fig15 fits all three functions per operator instance across the
// seven evaluation models and accumulates prediction errors at the
// held-out frequencies. Func. 1 and Func. 3 fit three points (1000,
// 1400, 1800 MHz); Func. 2 fits two (1000, 1800 MHz).
func (l *Lab) Fig15() (*Fig15Result, error) {
	res := &Fig15Result{}
	threeFreqs := threeFitFreqs
	allFreqs := append(append([]units.MHz{}, FitFreqs...), EvalFreqs...)
	for _, m := range workload.PerfEvalModels() {
		profiles, err := l.TimingProfiles(m, allFreqs)
		if err != nil {
			return nil, err
		}
		for _, s := range profiler.BuildInstanceSeries(profiles) {
			// Exclude short operators by their 1800 MHz duration.
			dur1800 := durAt(s, 1800)
			if dur1800 < MinModelMicros {
				continue
			}
			res.Operators++
			evalFs, evalTs, _ := perfmodel.SelectPoints(s, EvalFreqs)

			if fs, ts, ok := perfmodel.SelectPoints(s, threeFreqs); ok {
				if m1, err := perfmodel.FitFunc1(fs, ts); err == nil {
					res.Errors[Func1] = append(res.Errors[Func1], perfmodel.Errors(m1, evalFs, evalTs)...)
				}
				if m3, err := perfmodel.FitFunc3(fs, ts); err == nil {
					res.Errors[Func3] = append(res.Errors[Func3], perfmodel.Errors(m3, evalFs, evalTs)...)
				}
			}
			if fs, ts, ok := perfmodel.SelectPoints(s, FitFreqs); ok {
				if m2, err := perfmodel.FitFunc2(fs, ts); err == nil {
					errs := perfmodel.Errors(m2, evalFs, evalTs)
					res.Errors[Func2] = append(res.Errors[Func2], errs...)
					res.DataPoints += len(errs)
				}
			}
		}
	}
	for k := 0; k < 3; k++ {
		res.MeanError[k] = stats.Mean(res.Errors[k])
	}
	return res, nil
}

func durAt(s *profiler.Series, f float64) float64 {
	for i, ff := range s.FreqMHz {
		if stats.Approx(ff, f) {
			return s.Micros[i]
		}
	}
	return 0
}

// CDF evaluates the error CDF of one function at the given thresholds.
func (r *Fig15Result) CDF(k FuncKind, thresholds []float64) []stats.CDFPoint {
	return stats.EmpiricalCDF(r.Errors[k], thresholds)
}

func (r *Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15 - performance-model error CDF (%d operators, %d data points)\n",
		r.Operators, r.DataPoints)
	thresholds := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50}
	fmt.Fprintf(&b, "%-22s %8s", "function", "mean")
	for _, th := range thresholds {
		fmt.Fprintf(&b, "  <=%3.0f%%", th*100)
	}
	b.WriteString("\n")
	for k := Func1; k <= Func3; k++ {
		fmt.Fprintf(&b, "%-22s %7.2f%%", k, r.MeanError[k]*100)
		for _, p := range r.CDF(k, thresholds) {
			fmt.Fprintf(&b, "  %5.1f%%", p.Fraction*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig16Row is one operator panel of Fig. 16.
type Fig16Row struct {
	Name    string
	MHz     []float64
	RealUs  []float64
	PredUs  [3][]float64
	MeanErr [3]float64
}

// Fig16Result covers the five representative operators.
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16 fits all three functions to each representative operator and
// reports predictions and error rates at the held-out frequencies.
func (l *Lab) Fig16() (*Fig16Result, error) {
	specs := workload.RepresentativeOps()
	m := &workload.Model{Name: "fig16", Trace: specs}
	allFreqs := append(append([]units.MHz{}, FitFreqs...), EvalFreqs...)
	profiles, err := l.TimingProfiles(m, allFreqs)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{}
	threeFreqs := threeFitFreqs
	for _, s := range profiler.BuildInstanceSeries(profiles) {
		row := Fig16Row{Name: s.Spec.Name}
		evalFs, evalTs, _ := perfmodel.SelectPoints(s, EvalFreqs)
		row.MHz, row.RealUs = units.Floats(evalFs), units.Floats(evalTs)
		fs3, ts3, _ := perfmodel.SelectPoints(s, threeFreqs)
		fs2, ts2, _ := perfmodel.SelectPoints(s, FitFreqs)
		if m1, err := perfmodel.FitFunc1(fs3, ts3); err == nil {
			row.PredUs[Func1] = predictAll(m1, evalFs)
			row.MeanErr[Func1] = stats.Mean(perfmodel.Errors(m1, evalFs, evalTs))
		}
		if m2, err := perfmodel.FitFunc2(fs2, ts2); err == nil {
			row.PredUs[Func2] = predictAll(m2, evalFs)
			row.MeanErr[Func2] = stats.Mean(perfmodel.Errors(m2, evalFs, evalTs))
		}
		if m3, err := perfmodel.FitFunc3(fs3, ts3); err == nil {
			row.PredUs[Func3] = predictAll(m3, evalFs)
			row.MeanErr[Func3] = stats.Mean(perfmodel.Errors(m3, evalFs, evalTs))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func predictAll(m perfmodel.TimeModel, fs []units.MHz) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = float64(m.Micros(f))
	}
	return out
}

func (r *Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 16 - predictions for five representative operators\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s: mean errors Func1=%.2f%% Func2=%.2f%% Func3=%.2f%%\n",
			row.Name, row.MeanErr[Func1]*100, row.MeanErr[Func2]*100, row.MeanErr[Func3]*100)
		fmt.Fprintf(&b, "  %8s %10s %10s %10s %10s\n", "MHz", "real", "Func1", "Func2", "Func3")
		for i := range row.MHz {
			fmt.Fprintf(&b, "  %8.0f %10.2f %10.2f %10.2f %10.2f\n",
				row.MHz[i], row.RealUs[i], row.PredUs[Func1][i], row.PredUs[Func2][i], row.PredUs[Func3][i])
		}
	}
	return b.String()
}

// FitCostResult reproduces the Sect. 4.3 fit-cost comparison: the
// direct solution of Func. 2 versus iterative curve fitting of Func. 1
// across all operator instances of ShuffleNetV2Plus.
type FitCostResult struct {
	Operators   int
	Func2Millis float64
	Func1Millis float64
	Speedup     float64
}

// FitCost times both fitting paths over the ShuffleNetV2Plus instance
// series.
func (l *Lab) FitCost() (*FitCostResult, error) {
	m := workload.ShuffleNetV2Plus()
	profiles, err := l.TimingProfiles(m, threeFitFreqs)
	if err != nil {
		return nil, err
	}
	series := profiler.BuildInstanceSeries(profiles)
	res := &FitCostResult{Operators: len(series)}

	//lint:allow detrand wall-clock timing only: FitCost measures fit latency; excluded from the byte-identity suite
	start := time.Now()
	for _, s := range series {
		if fs, ts, ok := perfmodel.SelectPoints(s, FitFreqs); ok {
			if _, err := perfmodel.FitFunc2(fs, ts); err != nil {
				return nil, err
			}
		}
	}
	//lint:allow detrand wall-clock timing only: FitCost measures fit latency; excluded from the byte-identity suite
	res.Func2Millis = float64(time.Since(start).Microseconds()) / 1000

	//lint:allow detrand wall-clock timing only: FitCost measures fit latency; excluded from the byte-identity suite
	start = time.Now()
	for _, s := range series {
		if fs, ts, ok := perfmodel.SelectPoints(s, threeFitFreqs); ok {
			if _, err := perfmodel.FitFunc1Iterative(fs, ts); err != nil {
				return nil, err
			}
		}
	}
	//lint:allow detrand wall-clock timing only: FitCost measures fit latency; excluded from the byte-identity suite
	res.Func1Millis = float64(time.Since(start).Microseconds()) / 1000
	if res.Func2Millis > 0 {
		res.Speedup = res.Func1Millis / res.Func2Millis
	}
	return res, nil
}

func (r *FitCostResult) String() string {
	return fmt.Sprintf(
		"Sect. 4.3 fit cost - %d operators: Func2 direct %.1f ms, Func1 iterative %.1f ms (%.0fx)\n",
		r.Operators, r.Func2Millis, r.Func1Millis, r.Speedup)
}
