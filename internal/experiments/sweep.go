package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/pool"
	"npudvfs/internal/units"
)

// FAISweepRow is one frequency-adjustment-interval measurement.
type FAISweepRow struct {
	FAIMillis     float64
	Stages        int
	SetFreq       int
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
}

// FAISweepResult extends the Fig. 18 FAI comparison to a full curve:
// savings versus control granularity, the quantitative version of the
// paper's "with a larger frequency adjustment interval ... many
// opportunities to reduce energy consumption are missed".
type FAISweepResult struct {
	Rows []FAISweepRow
}

// FAISweep generates and measures GPT-3 strategies across adjustment
// intervals from 5 ms to 1 s.
func (l *Lab) FAISweep() (*FAISweepResult, error) { return l.faiSweep(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) faiSweep(ctx context.Context) (*FAISweepResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	fais := []units.Millis{5, 10, 20, 50, 100, 250, 500, 1000}
	rows := make([]FAISweepRow, len(fais))
	err = pool.Each(ctx, l.Seed, len(fais), l.workers(), func(i int, _ *rand.Rand) error {
		cfg := core.DefaultConfig()
		cfg.FAIMicros = fais[i].Micros()
		cfg.GA.Seed = int64(820 + i)
		strat, stages, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
		if err != nil {
			return err
		}
		meas, err := l.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
		if err != nil {
			return err
		}
		rows[i] = FAISweepRow{
			FAIMillis:     float64(fais[i]),
			Stages:        len(stages),
			SetFreq:       strat.Switches(),
			PerfLoss:      meas.TimeMicros/base.TimeMicros - 1,
			SoCReduction:  1 - meas.MeanSoCW/base.MeanSoCW,
			CoreReduction: 1 - meas.MeanCoreW/base.MeanCoreW,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &FAISweepResult{Rows: rows}, nil
}

func (r *FAISweepResult) String() string {
	var b strings.Builder
	b.WriteString("FAI sweep on GPT-3 (2% loss target)\n")
	fmt.Fprintf(&b, "  %8s %8s %8s %8s %8s %9s\n", "FAI", "stages", "SetFreq", "loss", "SoC-", "AICore-")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6.0fms %8d %8d %7.2f%% %7.2f%% %8.2f%%\n",
			row.FAIMillis, row.Stages, row.SetFreq,
			row.PerfLoss*100, row.SoCReduction*100, row.CoreReduction*100)
	}
	return b.String()
}

// SeedsRow summarizes one seed's end-to-end outcome.
type SeedsRow struct {
	Seed          int64
	PerfLoss      float64
	CoreReduction float64
}

// SeedsResult reports the run-to-run spread of the headline GPT-3
// result across GA seeds: the stochastic search must deliver stable
// savings for the production claim to hold.
type SeedsResult struct {
	Rows                    []SeedsRow
	MeanCoreRed, StdCoreRed float64
	MeanLoss                float64
}

// SeedsRobustness repeats the 2%-target GPT-3 optimization with n GA
// seeds.
func (l *Lab) SeedsRobustness(n int) (*SeedsResult, error) {
	//lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant
	return l.seedsRobustness(context.Background(), n)
}

func (l *Lab) seedsRobustness(ctx context.Context, n int) (*SeedsResult, error) {
	if n < 2 {
		n = 2
	}
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	rows := make([]SeedsRow, n)
	err = pool.Each(ctx, l.Seed, n, l.workers(), func(i int, _ *rand.Rand) error {
		cfg := core.DefaultConfig()
		cfg.GA.Seed = int64(1000 + 17*i)
		strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
		if err != nil {
			return err
		}
		meas, err := l.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
		if err != nil {
			return err
		}
		rows[i] = SeedsRow{
			Seed:          cfg.GA.Seed,
			PerfLoss:      meas.TimeMicros/base.TimeMicros - 1,
			CoreReduction: 1 - meas.MeanCoreW/base.MeanCoreW,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &SeedsResult{Rows: rows}
	var sum, sumSq, sumLoss float64
	for _, row := range res.Rows {
		sum += row.CoreReduction
		sumLoss += row.PerfLoss
	}
	res.MeanCoreRed = sum / float64(len(res.Rows))
	res.MeanLoss = sumLoss / float64(len(res.Rows))
	for _, row := range res.Rows {
		d := row.CoreReduction - res.MeanCoreRed
		sumSq += d * d
	}
	res.StdCoreRed = math.Sqrt(sumSq / float64(len(res.Rows)))
	return res, nil
}

func (r *SeedsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GA seed robustness on GPT-3 (2%% target, %d seeds)\n", len(r.Rows))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  seed %4d: loss %5.2f%%  AICore -%5.2f%%\n",
			row.Seed, row.PerfLoss*100, row.CoreReduction*100)
	}
	fmt.Fprintf(&b, "  AICore reduction %.2f%% ± %.2f%%, mean loss %.2f%%\n",
		r.MeanCoreRed*100, r.StdCoreRed*100, r.MeanLoss*100)
	return b.String()
}
