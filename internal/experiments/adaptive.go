package experiments

import (
	"context"
	"fmt"
	"strings"

	"npudvfs/internal/adaptive"
	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// AdaptiveIter is one closed-loop iteration record.
type AdaptiveIter struct {
	Iteration  int
	LossPct    float64
	CoreRedPct float64
	Adjustment string
}

// AdaptiveResult demonstrates the production guard: a strategy
// generated without a guard band (Guard = 1) typically overshoots its
// loss target on hardware; the feedback controller ratchets it back
// under the target within a few iterations while preserving most of
// the savings.
type AdaptiveResult struct {
	Target      float64
	Iters       []AdaptiveIter
	Adjustments int
	FinalLoss   float64
	FinalSaving float64
}

// Adaptive runs the closed loop on BERT.
func (l *Lab) Adaptive() (*AdaptiveResult, error) { return l.adaptiveClosedLoop(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) adaptiveClosedLoop(ctx context.Context) (*AdaptiveResult, error) {
	m := workload.BERT()
	ms, err := l.BuildModels(m, true)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Guard = 1 // no safety margin: rely on the controller instead
	cfg.GA.Seed = 701
	strat, _, _, err := core.GenerateContext(ctx, ms.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(m, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	ctl, err := adaptive.New(l.Chip.Curve, strat, units.Micros(base.TimeMicros), cfg.PerfLossTarget)
	if err != nil {
		return nil, err
	}
	ex := executor.New(l.Chip, l.Ground)
	th := thermal.NewState(l.Thermal)
	th.SetTemp(units.Celsius(base.EndTempC))
	res := &AdaptiveResult{Target: cfg.PerfLossTarget}
	for i := 0; i < 25; i++ {
		meas, err := ex.Run(m.Trace, ctl.Strategy(), th, executor.DefaultOptions())
		if err != nil {
			return nil, err
		}
		loss := meas.TimeMicros/base.TimeMicros - 1
		adj := ctl.Observe(units.Micros(meas.TimeMicros))
		res.Iters = append(res.Iters, AdaptiveIter{
			Iteration:  i,
			LossPct:    loss * 100,
			CoreRedPct: (1 - meas.MeanCoreW/base.MeanCoreW) * 100,
			Adjustment: adj.String(),
		})
		res.FinalLoss = loss
		res.FinalSaving = 1 - meas.MeanCoreW/base.MeanCoreW
	}
	res.Adjustments = ctl.Adjustments()
	return res, nil
}

func (r *AdaptiveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-loop guard on BERT (%.0f%% target, strategy generated without guard band)\n",
		r.Target*100)
	for _, it := range r.Iters {
		fmt.Fprintf(&b, "  iter %2d: loss %5.2f%%  AICore -%5.2f%%  [%s]\n",
			it.Iteration, it.LossPct, it.CoreRedPct, it.Adjustment)
	}
	fmt.Fprintf(&b, "  %d adjustments; final loss %.2f%% with AICore -%.2f%%\n",
		r.Adjustments, r.FinalLoss*100, r.FinalSaving*100)
	return b.String()
}
