//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. Heavy end-to-end cases skip under -race: their numerical
// claims are covered by the regular suite, and the ~10x race slowdown
// would push the package past practical test timeouts. Concurrency
// tests never skip on this flag.
const raceEnabled = true
