package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the parallel experiment harness: a registry naming
// every experiment the Lab can regenerate, and a worker-pool runner
// that fans them out across goroutines with deterministic result
// ordering.
//
// Determinism rule: every experiment derives its stochasticity from
// fixed per-experiment seeds (GA seeds, sensor offsets), never from a
// source shared across goroutines, so the parallel schedule cannot
// change any result. The same rule holds inside experiments that fan
// out across workloads or seeds via parEach: randomness is seeded per
// work item, not per worker, so item i sees identical draws no matter
// which worker runs it. The only shared mutable state is the Lab's
// sync.Once-guarded calibrations and the Executor's locked view cache,
// both safe (and deterministic) under concurrency.

// Spec is one named, runnable experiment.
type Spec struct {
	// Name is the identifier used by cmd/experiments -run.
	Name string
	// Run regenerates the experiment on the lab.
	Run func(l *Lab) (fmt.Stringer, error)
}

// Registry returns every experiment in canonical order — the order
// serial runs execute in and parallel runs report in.
func Registry() []Spec {
	return []Spec{
		{"fig3", func(l *Lab) (fmt.Stringer, error) { return l.Fig3(), nil }},
		{"fig4", func(l *Lab) (fmt.Stringer, error) { return l.Fig4(), nil }},
		{"fig9", func(l *Lab) (fmt.Stringer, error) { return l.Fig9(), nil }},
		{"fig10", func(l *Lab) (fmt.Stringer, error) { return l.Fig10() }},
		{"fig15", func(l *Lab) (fmt.Stringer, error) { return l.Fig15() }},
		{"fig16", func(l *Lab) (fmt.Stringer, error) { return l.Fig16() }},
		{"fig17", func(l *Lab) (fmt.Stringer, error) { return l.Fig17() }},
		{"fig18", func(l *Lab) (fmt.Stringer, error) { return l.Fig18() }},
		{"table2", func(l *Lab) (fmt.Stringer, error) { return l.Table2() }},
		{"table3", func(l *Lab) (fmt.Stringer, error) { return l.Table3() }},
		{"fitcost", func(l *Lab) (fmt.Stringer, error) { return l.FitCost() }},
		{"inference", func(l *Lab) (fmt.Stringer, error) { return l.Inference() }},
		{"throughput", func(l *Lab) (fmt.Stringer, error) { return l.ScoringThroughput(20000) }},
		{"coarse", func(l *Lab) (fmt.Stringer, error) { return l.CoarseGrained() }},
		{"modelfree", func(l *Lab) (fmt.Stringer, error) { return l.ModelFree(300) }},
		{"uncore", func(l *Lab) (fmt.Stringer, error) { return l.UncoreDVFS() }},
		{"sensitivity", func(l *Lab) (fmt.Stringer, error) { return l.Sensitivity(1800, 1600), nil }},
		{"adaptive", func(l *Lab) (fmt.Stringer, error) { return l.Adaptive() }},
		{"dual", func(l *Lab) (fmt.Stringer, error) { return l.DualDomain() }},
		{"faisweep", func(l *Lab) (fmt.Stringer, error) { return l.FAISweep() }},
		{"seeds", func(l *Lab) (fmt.Stringer, error) { return l.SeedsRobustness(5) }},
		{"pareto", func(l *Lab) (fmt.Stringer, error) { return l.Pareto() }},
		{"attribution", func(l *Lab) (fmt.Stringer, error) { return l.Attribution(0.10) }},
		{"search", func(l *Lab) (fmt.Stringer, error) { return l.SearchAblation() }},
	}
}

// ExperimentNames lists the registry's names in canonical order.
func ExperimentNames() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, s := range reg {
		names[i] = s.Name
	}
	return names
}

// Select resolves a name list against the registry, preserving
// canonical order. nil, empty, or a list containing "all" selects
// everything; unknown names are a descriptive error.
func Select(names []string) ([]Spec, error) {
	reg := Registry()
	if len(names) == 0 {
		return reg, nil
	}
	want := make(map[string]bool)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			return reg, nil
		}
		want[n] = true
	}
	var out []Spec
	for _, s := range reg {
		if want[s.Name] {
			out = append(out, s)
			delete(want, s.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown experiment(s) %s (available: %s)",
			strings.Join(unknown, ", "), strings.Join(ExperimentNames(), ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no experiment selected")
	}
	return out, nil
}

// Outcome is one experiment's result as produced by RunSuite.
type Outcome struct {
	// Name is the experiment's registry name.
	Name string
	// Result is the typed result (nil on error or timeout); it may
	// implement the chart interfaces consumed by cmd/experiments -svg.
	Result fmt.Stringer
	// Report is Result rendered to text. It contains no wall-clock
	// timing of the harness itself, so serial and parallel runs of a
	// deterministic experiment render byte-identical reports.
	Report string
	// Elapsed is the experiment's wall time.
	Elapsed time.Duration
	// Err is the experiment's failure, including timeouts.
	Err error
}

// RunSuite executes the named experiments (nil or "all" = the full
// registry) on up to parallel workers, with an optional per-experiment
// timeout (0 = none). Outcomes are returned in canonical registry
// order regardless of completion order; with parallel <= 1 execution
// order equals report order, matching the historical serial harness
// exactly. Errors are per-outcome, not returned, so one failing
// experiment cannot hide the others' results.
func (l *Lab) RunSuite(names []string, parallel int, timeout time.Duration) ([]Outcome, error) {
	specs, err := Select(names)
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(specs))
	perr := parEach(l.Seed, len(specs), parallel, func(i int, _ *rand.Rand) error {
		out[i] = runOne(l, specs[i], timeout)
		return nil
	})
	return out, perr
}

// runOne executes a single experiment, enforcing the timeout. A timed
// out experiment's goroutine is abandoned (the Lab has no
// cancellation points); its eventual result is discarded.
func runOne(l *Lab, s Spec, timeout time.Duration) Outcome {
	start := time.Now()
	if timeout <= 0 {
		res, err := s.Run(l)
		return finishOutcome(s.Name, res, err, time.Since(start))
	}
	type done struct {
		res fmt.Stringer
		err error
	}
	ch := make(chan done, 1)
	go func() {
		res, err := s.Run(l)
		ch <- done{res, err}
	}()
	select {
	case d := <-ch:
		return finishOutcome(s.Name, d.res, d.err, time.Since(start))
	case <-time.After(timeout):
		return Outcome{
			Name:    s.Name,
			Elapsed: timeout,
			Err:     fmt.Errorf("experiments: %s timed out after %s (abandoned)", s.Name, timeout),
		}
	}
}

func finishOutcome(name string, res fmt.Stringer, err error, elapsed time.Duration) Outcome {
	o := Outcome{Name: name, Result: res, Elapsed: elapsed, Err: err}
	if err == nil && res != nil {
		o.Report = res.String()
	}
	return o
}

// parEach runs fn(i, rng) for every i in [0, n) across up to workers
// goroutines and returns the lowest-index error (deterministic, unlike
// first-completed). Each invocation gets its own rand.Rand seeded
// seed+i, so any randomness a work item draws is a function of the
// item, never of the worker that happened to run it or of scheduling
// order — the property that makes parallel runs byte-identical to
// serial ones. workers <= 1 degenerates to a plain loop.
func parEach(seed int64, n, workers int, fn func(i int, rng *rand.Rand) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i, rand.New(rand.NewSource(seed+int64(i)))); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				errs[i] = fn(i, rand.New(rand.NewSource(seed+int64(i))))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
