package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"npudvfs/internal/pool"
)

// This file is the parallel experiment harness: a registry naming
// every experiment the Lab can regenerate, and a worker-pool runner
// (internal/pool) that fans them out across goroutines with
// deterministic result ordering.
//
// Determinism rule: every experiment derives its stochasticity from
// fixed per-experiment seeds (GA seeds, sensor offsets), never from a
// source shared across goroutines, so the parallel schedule cannot
// change any result. The same rule holds inside experiments that fan
// out across workloads or seeds via pool.Each: randomness is seeded
// per work item, not per worker, so item i sees identical draws no
// matter which worker runs it. The only shared mutable state is the
// Lab's sync.Once-guarded calibrations and the Executor's locked view
// cache, both safe (and deterministic) under concurrency.

// Spec is one named, runnable experiment.
type Spec struct {
	// Name is the identifier used by cmd/experiments -run.
	Name string
	// Run regenerates the experiment on the lab. ctx carries the
	// harness's per-experiment deadline: every experiment that runs a
	// genetic search observes it (the search cancels at generation
	// boundaries) and returns an error wrapping ctx.Err(); cheap
	// model-validation experiments ignore it.
	Run func(ctx context.Context, l *Lab) (fmt.Stringer, error)
}

// Registry returns every experiment in canonical order — the order
// serial runs execute in and parallel runs report in.
func Registry() []Spec {
	return []Spec{
		{"fig3", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig3(), nil }},
		{"fig4", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig4(), nil }},
		{"fig9", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig9(), nil }},
		{"fig10", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig10() }},
		{"fig15", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig15() }},
		{"fig16", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Fig16() }},
		{"fig17", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.fig17(ctx) }},
		{"fig18", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.fig18(ctx) }},
		{"table2", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Table2() }},
		{"table3", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.table3(ctx) }},
		{"fitcost", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.FitCost() }},
		{"inference", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Inference() }},
		{"throughput", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.ScoringThroughput(20000) }},
		{"coarse", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.coarseGrained(ctx) }},
		{"modelfree", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.modelFree(ctx, 300) }},
		{"uncore", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.uncoreDVFS(ctx) }},
		{"sensitivity", func(_ context.Context, l *Lab) (fmt.Stringer, error) { return l.Sensitivity(1800, 1600), nil }},
		{"adaptive", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.adaptiveClosedLoop(ctx) }},
		{"dual", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.dualDomain(ctx) }},
		{"faisweep", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.faiSweep(ctx) }},
		{"seeds", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.seedsRobustness(ctx, 5) }},
		{"pareto", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.pareto(ctx) }},
		{"attribution", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.attribution(ctx, 0.10) }},
		{"search", func(ctx context.Context, l *Lab) (fmt.Stringer, error) { return l.searchAblation(ctx) }},
	}
}

// ExperimentNames lists the registry's names in canonical order.
func ExperimentNames() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, s := range reg {
		names[i] = s.Name
	}
	return names
}

// Select resolves a name list against the registry, preserving
// canonical order. nil, empty, or a list containing "all" selects
// everything; unknown names are a descriptive error.
func Select(names []string) ([]Spec, error) {
	reg := Registry()
	if len(names) == 0 {
		return reg, nil
	}
	want := make(map[string]bool)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			return reg, nil
		}
		want[n] = true
	}
	var out []Spec
	for _, s := range reg {
		if want[s.Name] {
			out = append(out, s)
			delete(want, s.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown experiment(s) %s (available: %s)",
			strings.Join(unknown, ", "), strings.Join(ExperimentNames(), ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no experiment selected")
	}
	return out, nil
}

// Outcome is one experiment's result as produced by RunSuite.
type Outcome struct {
	// Name is the experiment's registry name.
	Name string
	// Result is the typed result (nil on error or timeout); it may
	// implement the chart interfaces consumed by cmd/experiments -svg.
	Result fmt.Stringer
	// Report is Result rendered to text. It contains no wall-clock
	// timing of the harness itself, so serial and parallel runs of a
	// deterministic experiment render byte-identical reports.
	Report string
	// Elapsed is the experiment's wall time.
	Elapsed time.Duration
	// Err is the experiment's failure, including timeouts.
	Err error
}

// RunSuite executes the named experiments (nil or "all" = the full
// registry) on up to parallel workers, with an optional per-experiment
// timeout (0 = none). Outcomes are returned in canonical registry
// order regardless of completion order; with parallel <= 1 execution
// order equals report order, matching the historical serial harness
// exactly. Errors are per-outcome, not returned, so one failing
// experiment cannot hide the others' results.
func (l *Lab) RunSuite(names []string, parallel int, timeout time.Duration) ([]Outcome, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use RunSuiteContext
	return l.RunSuiteContext(context.Background(), names, parallel, timeout)
}

// RunSuiteContext is RunSuite under a caller-supplied root context:
// cancelling ctx stops unstarted experiments from launching and
// reaches every running search at its next generation boundary.
// cmd/experiments wires an interrupt-cancelled context here so ^C
// drains the suite instead of killing it mid-write.
func (l *Lab) RunSuiteContext(ctx context.Context, names []string, parallel int, timeout time.Duration) ([]Outcome, error) {
	specs, err := Select(names)
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, len(specs))
	perr := pool.Each(ctx, l.Seed, len(specs), parallel, func(i int, _ *rand.Rand) error {
		out[i] = runOne(ctx, l, specs[i], timeout)
		return nil
	})
	return out, perr
}

// cancelGrace is how long runOne waits, after the deadline fires, for
// a cancellation-aware experiment to observe ctx and unwind. GA-backed
// experiments cancel at generation boundaries (milliseconds), so this
// comfortably separates "cancelled cleanly" from "ignores ctx".
const cancelGrace = time.Second

// runOne executes a single experiment, enforcing the timeout through
// the experiment's context. A cancellation-aware experiment returns an
// error wrapping context.DeadlineExceeded and its goroutine exits; an
// experiment that ignores ctx past the grace window is abandoned (its
// goroutine keeps running until its next cancellation point — or to
// completion — and its eventual result is discarded). The two cases
// report distinct errors: only the clean one satisfies
// errors.Is(err, context.DeadlineExceeded).
func runOne(ctx context.Context, l *Lab, s Spec, timeout time.Duration) Outcome {
	//lint:allow detrand wall-clock timing only: feeds Outcome.Elapsed, which reports exclude
	start := time.Now()
	if timeout <= 0 {
		res, err := s.Run(ctx, l)
		//lint:allow detrand wall-clock timing only: feeds Outcome.Elapsed, which reports exclude
		return finishOutcome(s.Name, res, err, time.Since(start))
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type done struct {
		res fmt.Stringer
		err error
	}
	ch := make(chan done, 1)
	go func() {
		res, err := s.Run(ctx, l)
		ch <- done{res, err}
	}()
	cancelled := func(d done) Outcome {
		return Outcome{
			Name: s.Name,
			//lint:allow detrand wall-clock timing only: feeds Outcome.Elapsed, which reports exclude
			Elapsed: time.Since(start),
			Err:     fmt.Errorf("experiments: %s timed out after %s (search cancelled): %w", s.Name, timeout, d.err),
		}
	}
	select {
	case d := <-ch:
		if d.err != nil && errors.Is(d.err, context.DeadlineExceeded) {
			return cancelled(d)
		}
		//lint:allow detrand wall-clock timing only: feeds Outcome.Elapsed, which reports exclude
		return finishOutcome(s.Name, d.res, d.err, time.Since(start))
	case <-ctx.Done():
		grace := time.NewTimer(cancelGrace)
		defer grace.Stop()
		select {
		case d := <-ch:
			if d.err != nil && errors.Is(d.err, context.DeadlineExceeded) {
				return cancelled(d)
			}
			// Finished (or failed for an unrelated reason) in the
			// grace window: a result that just beat the deadline is
			// better reported than discarded.
			//lint:allow detrand wall-clock timing only: feeds Outcome.Elapsed, which reports exclude
			return finishOutcome(s.Name, d.res, d.err, time.Since(start))
		case <-grace.C:
			return Outcome{
				Name:    s.Name,
				Elapsed: timeout,
				Err:     fmt.Errorf("experiments: %s timed out after %s (abandoned; experiment ignores cancellation)", s.Name, timeout),
			}
		}
	}
}

func finishOutcome(name string, res fmt.Stringer, err error, elapsed time.Duration) Outcome {
	o := Outcome{Name: name, Result: res, Elapsed: elapsed, Err: err}
	if err == nil && res != nil {
		o.Report = res.String()
	}
	return o
}
