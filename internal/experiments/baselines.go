package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"npudvfs/internal/classify"
	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/stats"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// CoarseRow is one fixed-frequency measurement.
type CoarseRow struct {
	MHz           float64
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
}

// CoarseResult compares whole-program DVFS — the granularity of prior
// work, which sets one frequency for the entire run (Sect. 1) — with
// the fine-grained per-operator strategy, both under the same 2%
// performance-loss constraint.
type CoarseResult struct {
	Rows []CoarseRow
	// BestFixed is the lowest-power fixed frequency meeting the loss
	// target; 0 if only the maximum frequency qualifies.
	BestFixed CoarseRow
	// FineGrained is the fine-grained strategy's measurement.
	FineGrained CoarseRow
	LossTarget  float64
}

// CoarseGrained sweeps every fixed frequency on GPT-3 and contrasts
// the best compliant one with the fine-grained strategy.
func (l *Lab) CoarseGrained() (*CoarseResult, error) { return l.coarseGrained(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) coarseGrained(ctx context.Context) (*CoarseResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	res := &CoarseResult{LossTarget: 0.02}
	res.BestFixed = CoarseRow{MHz: float64(l.Chip.Curve.Max())}
	for _, f := range l.Chip.Curve.Grid() {
		meas, err := l.MeasureFixed(gpt.Workload, f)
		if err != nil {
			return nil, err
		}
		row := CoarseRow{
			MHz:           float64(f),
			PerfLoss:      meas.TimeMicros/base.TimeMicros - 1,
			SoCReduction:  1 - meas.MeanSoCW/base.MeanSoCW,
			CoreReduction: 1 - meas.MeanCoreW/base.MeanCoreW,
		}
		res.Rows = append(res.Rows, row)
		if row.PerfLoss <= res.LossTarget && row.SoCReduction > res.BestFixed.SoCReduction {
			res.BestFixed = row
		}
	}
	cfg := core.DefaultConfig()
	cfg.GA.Seed = 501
	strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	fine, err := l.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res.FineGrained = CoarseRow{
		PerfLoss:      fine.TimeMicros/base.TimeMicros - 1,
		SoCReduction:  1 - fine.MeanSoCW/base.MeanSoCW,
		CoreReduction: 1 - fine.MeanCoreW/base.MeanCoreW,
	}
	return res, nil
}

func (r *CoarseResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Whole-program DVFS baseline vs fine-grained (%.0f%% loss target)\n", r.LossTarget*100)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  fixed %4.0f MHz: loss %6.2f%%  SoC -%5.2f%%  AICore -%6.2f%%\n",
			row.MHz, row.PerfLoss*100, row.SoCReduction*100, row.CoreReduction*100)
	}
	fmt.Fprintf(&b, "  best compliant fixed: %4.0f MHz (AICore -%.2f%%)\n",
		r.BestFixed.MHz, r.BestFixed.CoreReduction*100)
	fmt.Fprintf(&b, "  fine-grained:  loss %.2f%%  SoC -%.2f%%  AICore -%.2f%%\n",
		r.FineGrained.PerfLoss*100, r.FineGrained.SoCReduction*100, r.FineGrained.CoreReduction*100)
	return b.String()
}

// hardwareProblem scores individuals by actually executing them on the
// simulated NPU — the model-free alternative of Sect. 8.1. Each Score
// call costs one full training iteration of simulated hardware time.
type hardwareProblem struct {
	lab      *Lab
	workload *workload.Model
	// ex is shared across Score calls; Executor is safe for concurrent
	// Run as long as each call brings its own thermal.State.
	ex        *executor.Executor
	stages    []preprocess.Stage
	grid      []float64
	baseT     float64
	baseP     float64
	perLB     float64
	warmTempC float64

	mu sync.Mutex
	// hardwareMicros accumulates the simulated hardware time spent,
	// guarded by mu so Score may run from GA worker goroutines.
	hardwareMicros float64
}

func (p *hardwareProblem) Genes() int   { return len(p.stages) }
func (p *hardwareProblem) Alleles() int { return len(p.grid) }
func (p *hardwareProblem) Seeds() [][]int {
	baseline := make([]int, len(p.stages))
	for i := range baseline {
		baseline[i] = len(p.grid) - 1
	}
	return [][]int{baseline}
}

func (p *hardwareProblem) strategy(ind []int) *core.Strategy {
	s := &core.Strategy{BaselineMHz: units.MHz(p.grid[len(p.grid)-1])}
	last := -1.0
	for si, g := range ind {
		f := p.grid[g]
		if stats.Approx(f, last) {
			continue
		}
		s.Points = append(s.Points, core.FreqPoint{
			OpIndex:    p.stages[si].OpStart,
			TimeMicros: units.Micros(p.stages[si].StartMicros),
			FreqMHz:    units.MHz(f),
		})
		last = f
	}
	return s
}

// Score executes one iteration under the candidate strategy. Safe for
// concurrent use: the shared Executor tolerates concurrent Run, the
// thermal state is per-call, and the hardware-time tally is locked.
// The GA still runs it with Workers=1 because real hardware is a
// serial resource — exactly the model-free bottleneck — but the race
// stress test exercises it from many goroutines.
func (p *hardwareProblem) Score(ind []int) float64 {
	th := thermal.NewState(p.lab.Thermal)
	th.SetTemp(units.Celsius(p.warmTempC))
	res, err := p.ex.Run(p.workload.Trace, p.strategy(ind), th, executor.DefaultOptions())
	if err != nil {
		return 0
	}
	p.mu.Lock()
	p.hardwareMicros += res.TimeMicros
	p.mu.Unlock()
	per := 1 / res.TimeMicros
	perBase := 1 / p.baseT
	score := perBase * perBase / res.MeanSoCW
	if per >= p.perLB {
		return 2 * score
	}
	rel := per / p.perLB
	return score * rel * rel
}

// ModelFreeResult reproduces the Sect. 8.1 comparison: under an equal
// hardware-time budget, a model-free search evaluates a few dozen
// strategies while the model-based search evaluates tens of thousands.
type ModelFreeResult struct {
	// Budget is the hardware-time budget in seconds (the paper uses 5
	// minutes).
	BudgetSec float64
	// ModelFree and ModelBased report the AICore reduction attained
	// within the budget, at <= the loss target.
	ModelFreeEvals    int
	ModelFreeCoreRed  float64
	ModelFreeLoss     float64
	ModelBasedEvals   int
	ModelBasedCoreRed float64
	ModelBasedLoss    float64
}

// ModelFree runs both searches on GPT-3 under a fixed simulated
// hardware-time budget: with ~12-second training iterations, the
// budget admits only a few dozen hardware evaluations (the paper
// counts 30 in five minutes), far too few for a thousand-gene search.
func (l *Lab) ModelFree(budgetSec float64) (*ModelFreeResult, error) {
	//lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant
	return l.modelFree(context.Background(), budgetSec)
}

func (l *Lab) modelFree(ctx context.Context, budgetSec float64) (*ModelFreeResult, error) {
	ms, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	m := ms.Workload
	base, err := l.MeasureFixed(m, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	results := classify.Trace(ms.Baseline)
	stages, err := preprocess.Stages(ms.Baseline, results, float64(core.DefaultConfig().FAIMicros))
	if err != nil {
		return nil, err
	}
	// How many hardware evaluations fit in the budget.
	iterSec := base.TimeMicros / 1e6
	evals := int(budgetSec / iterSec)
	if evals < 4 {
		evals = 4
	}
	hw := &hardwareProblem{
		lab:       l,
		workload:  m,
		ex:        executor.New(l.Chip, l.Ground),
		stages:    stages,
		grid:      units.Floats(l.Chip.Curve.Grid()),
		baseT:     base.TimeMicros,
		baseP:     base.MeanSoCW,
		perLB:     (1 / base.TimeMicros) * (1 - 0.02),
		warmTempC: base.EndTempC,
	}
	pop := 10
	gens := evals/pop - 1
	if gens < 1 {
		gens = 1
	}
	// NoScoreCache: Score is impure (it burns simulated hardware time);
	// memoizing repeats would cheat the hardware-time budget the whole
	// comparison is about.
	hwRes, err := ga.RunContext(ctx, hw, ga.Config{
		PopSize: pop, Generations: gens, MutationRate: 0.15,
		CrossoverRate: 0.7, Elitism: 1, Seed: 21, Workers: 1,
		NoScoreCache: true,
	})
	if err != nil {
		return nil, err
	}
	hwMeas, err := l.MeasureStrategy(m, hw.strategy(hwRes.Best), executor.DefaultOptions())
	if err != nil {
		return nil, err
	}

	// The model-based search has the whole budget for CPU-side
	// evaluation; the paper's production 200x600 fits easily.
	cfg := core.DefaultConfig()
	cfg.GA.Seed = 22
	strat, _, gaRes, err := core.GenerateContext(ctx, ms.Input(l.Chip), cfg)
	if err != nil {
		return nil, err
	}
	mbMeas, err := l.MeasureStrategy(m, strat, executor.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &ModelFreeResult{
		BudgetSec:         budgetSec,
		ModelFreeEvals:    hwRes.Evaluations,
		ModelFreeCoreRed:  1 - hwMeas.MeanCoreW/base.MeanCoreW,
		ModelFreeLoss:     hwMeas.TimeMicros/base.TimeMicros - 1,
		ModelBasedEvals:   gaRes.Evaluations,
		ModelBasedCoreRed: 1 - mbMeas.MeanCoreW/base.MeanCoreW,
		ModelBasedLoss:    mbMeas.TimeMicros/base.TimeMicros - 1,
	}, nil
}

func (r *ModelFreeResult) String() string {
	return fmt.Sprintf(
		"Sect. 8.1 model-free comparison (%.0fs hardware budget)\n"+
			"  model-free:  %6d evaluations, AICore -%5.2f%%, loss %5.2f%%\n"+
			"  model-based: %6d evaluations, AICore -%5.2f%%, loss %5.2f%%\n",
		r.BudgetSec,
		r.ModelFreeEvals, r.ModelFreeCoreRed*100, r.ModelFreeLoss*100,
		r.ModelBasedEvals, r.ModelBasedCoreRed*100, r.ModelBasedLoss*100)
}
