package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/op"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// skipHeavyUnderRace skips end-to-end numerical cases when the binary
// is race-instrumented: they are minutes-long under the detector and
// their assertions are exercised by the regular suite. Concurrency
// tests (everything in this file) run under -race unconditionally —
// that is their point.
func skipHeavyUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("heavy end-to-end case; covered by the non-race suite")
	}
}

// sharedExecProblem scores GA individuals by running them on ONE
// Executor shared across all GA worker goroutines — the shape of a
// hardware-in-the-loop search, and the scenario the Executor's
// concurrency contract exists for. Alleles mix core frequencies with
// uncore scales so concurrent Run calls populate the scaled-view
// cache while racing each other.
type sharedExecProblem struct {
	lab    *Lab
	ex     *executor.Executor
	trace  []op.Spec
	grid   []float64
	scales []float64
}

func (p *sharedExecProblem) Genes() int     { return 4 }
func (p *sharedExecProblem) Alleles() int   { return len(p.grid) }
func (p *sharedExecProblem) Seeds() [][]int { return nil }

func (p *sharedExecProblem) Score(ind []int) float64 {
	step := len(p.trace) / len(ind)
	strat := &core.Strategy{BaselineMHz: units.MHz(p.grid[len(p.grid)-1])}
	for i, g := range ind {
		strat.Points = append(strat.Points, core.FreqPoint{
			OpIndex:     i * step,
			FreqMHz:     units.MHz(p.grid[g]),
			UncoreScale: p.scales[g%len(p.scales)],
		})
	}
	th := thermal.NewState(p.lab.Thermal)
	res, err := p.ex.Run(p.trace, strat, th, executor.DefaultOptions())
	if err != nil {
		return math.NaN() // treated as worst fitness by the GA
	}
	return 1 / res.EnergyCoreJ
}

// TestGASharedExecutorStress drives GA scoring through one shared
// Executor from many worker goroutines. Its real assertion is the
// race detector: `go test -race` fails here if the Executor's view
// cache (or any other shared state on the Score path) races. It also
// pins determinism: a Workers=1 run must find the identical result.
func TestGASharedExecutorStress(t *testing.T) {
	lab := sharedLab()
	reps := workload.RepresentativeOps()
	var trace []op.Spec
	for len(trace) < 24 {
		trace = append(trace, reps...)
	}
	newProblem := func() *sharedExecProblem {
		return &sharedExecProblem{
			lab:    lab,
			ex:     executor.New(lab.Chip, lab.Ground),
			trace:  trace,
			grid:   units.Floats(lab.Chip.Curve.Grid()),
			scales: []float64{0, 0.8, 0.9, 0.95, 1.05},
		}
	}
	cfg := ga.Config{
		PopSize: 16, Generations: 6, MutationRate: 0.2,
		CrossoverRate: 0.7, Elitism: 1, Seed: 77, Workers: 8,
	}
	par, err := ga.Run(newProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	ser, err := ga.Run(newProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.BestScore != ser.BestScore {
		t.Errorf("parallel best %g != serial best %g", par.BestScore, ser.BestScore)
	}
	if len(par.Best) != len(ser.Best) {
		t.Fatalf("gene count mismatch: %d vs %d", len(par.Best), len(ser.Best))
	}
	for i := range par.Best {
		if par.Best[i] != ser.Best[i] {
			t.Errorf("gene %d: parallel %d != serial %d", i, par.Best[i], ser.Best[i])
		}
	}
}

// deterministicSuite lists cheap experiments whose rendered reports
// carry no wall-clock timing, so serial and parallel runs must be
// byte-identical.
var deterministicSuite = []string{"fig3", "fig4", "fig9", "sensitivity"}

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	l := sharedLab()
	serial, err := l.RunSuite(deterministicSuite, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := l.RunSuite(deterministicSuite, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(deterministicSuite) || len(parallel) != len(serial) {
		t.Fatalf("outcome counts: serial %d, parallel %d, want %d",
			len(serial), len(parallel), len(deterministicSuite))
	}
	for i := range serial {
		if serial[i].Name != deterministicSuite[i] || parallel[i].Name != deterministicSuite[i] {
			t.Fatalf("outcome %d: order broken (serial %q, parallel %q, want %q)",
				i, serial[i].Name, parallel[i].Name, deterministicSuite[i])
		}
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s: unexpected error (serial %v, parallel %v)",
				serial[i].Name, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Report == "" {
			t.Fatalf("%s: empty report", serial[i].Name)
		}
		if serial[i].Report != parallel[i].Report {
			t.Errorf("%s: parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].Name, serial[i].Report, parallel[i].Report)
		}
	}
}

func TestRunSuiteUnknownName(t *testing.T) {
	l := sharedLab()
	_, err := l.RunSuite([]string{"fig3", "nonsense"}, 1, 0)
	if err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("want error naming the unknown experiment, got %v", err)
	}
}

func TestSelectPreservesCanonicalOrder(t *testing.T) {
	specs, err := Select([]string{"fig9", "fig3"}) // reversed on purpose
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "fig3" || specs[1].Name != "fig9" {
		t.Fatalf("want canonical order [fig3 fig9], got %v", specNames(specs))
	}
	all, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Registry()) {
		t.Fatalf("nil selection: want full registry (%d), got %d", len(Registry()), len(all))
	}
}

func specNames(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

type fakeResult string

func (f fakeResult) String() string { return string(f) }

func TestRunOneTimeout(t *testing.T) {
	l := sharedLab()

	// An experiment that observes ctx (like every GA-backed one does at
	// generation boundaries) is reported as cancelled: the error wraps
	// context.DeadlineExceeded and says so.
	aware := Spec{Name: "aware", Run: func(ctx context.Context, _ *Lab) (fmt.Stringer, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("search cancelled mid-flight: %w", ctx.Err())
	}}
	o := runOne(context.Background(), l, aware, 30*time.Millisecond)
	if o.Err == nil || !strings.Contains(o.Err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", o.Err)
	}
	if !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Errorf("cancellation-aware timeout should wrap context.DeadlineExceeded, got %v", o.Err)
	}
	if !strings.Contains(o.Err.Error(), "cancelled") {
		t.Errorf("cancellation-aware timeout should say cancelled, got %v", o.Err)
	}
	if o.Report != "" || o.Result != nil {
		t.Errorf("timed-out outcome should carry no result, got %+v", o)
	}

	// An experiment that ignores ctx past the grace window is abandoned:
	// plain error, NOT errors.Is(context.DeadlineExceeded).
	release := make(chan struct{})
	deaf := Spec{Name: "deaf", Run: func(context.Context, *Lab) (fmt.Stringer, error) {
		<-release
		return fakeResult("too late"), nil
	}}
	o = runOne(context.Background(), l, deaf, 30*time.Millisecond)
	close(release) // let the abandoned goroutine exit
	if o.Err == nil || !strings.Contains(o.Err.Error(), "abandoned") {
		t.Fatalf("want abandoned error, got %v", o.Err)
	}
	if errors.Is(o.Err, context.DeadlineExceeded) {
		t.Errorf("abandonment must be distinguishable from clean cancellation, got %v", o.Err)
	}
	if o.Report != "" || o.Result != nil {
		t.Errorf("abandoned outcome should carry no result, got %+v", o)
	}

	// A result that beats the deadline inside the grace window is
	// reported, not discarded.
	lagged := Spec{Name: "lagged", Run: func(ctx context.Context, _ *Lab) (fmt.Stringer, error) {
		<-ctx.Done()
		time.Sleep(20 * time.Millisecond) // unwind takes a moment, but well inside cancelGrace
		return fakeResult("just made it"), nil
	}}
	o = runOne(context.Background(), l, lagged, 30*time.Millisecond)
	if o.Err != nil || o.Report != "just made it" {
		t.Fatalf("grace-window result should be reported: got report %q, err %v", o.Report, o.Err)
	}

	fast := Spec{Name: "fast", Run: func(context.Context, *Lab) (fmt.Stringer, error) {
		return fakeResult("done"), nil
	}}
	o = runOne(context.Background(), l, fast, time.Minute)
	if o.Err != nil || o.Report != "done" {
		t.Fatalf("fast spec under timeout: got report %q, err %v", o.Report, o.Err)
	}
}

// TestGARunContextCancels pins the GA's cancellation point: a search
// whose context expires mid-run returns an error wrapping the ctx
// error within a generation boundary.
func TestGARunContextCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the GA must notice before generation 0
	_, err := ga.RunContext(ctx, &slowProblem{}, ga.Config{
		PopSize: 8, Generations: 100, MutationRate: 0.2,
		CrossoverRate: 0.7, Elitism: 1, Seed: 1, Workers: 2,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got %v", err)
	}
}

type slowProblem struct{}

func (slowProblem) Genes() int     { return 4 }
func (slowProblem) Alleles() int   { return 4 }
func (slowProblem) Seeds() [][]int { return nil }
func (slowProblem) Score(ind []int) float64 {
	time.Sleep(100 * time.Microsecond)
	s := 0.0
	for _, g := range ind {
		s += float64(g)
	}
	return s
}
