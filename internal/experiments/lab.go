// Package experiments regenerates every table and figure of the
// paper's evaluation (Sect. 7) plus the discussion experiments of
// Sect. 8 on the simulated NPU. Each experiment returns a typed result
// with a text rendering, and is also wired to a benchmark in the
// repository root so `go test -bench` reproduces the full evaluation.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/profiler"
	"npudvfs/internal/thermal"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// FitFreqs are the two frequencies the power model is built from
// (Sect. 7.3: data at 1000 and 1800 MHz builds the model).
var FitFreqs = []units.MHz{1000, 1800} //lint:allow unitcheck paper measurement-plan frequencies (Sect. 7.3), the vf.Ascend window edges

// PerfFitFreqs are the frequencies per-operator performance models are
// fitted from. Like the paper, Func. 2's two parameters are solved
// exactly from the grid endpoints, which makes predictions exact at
// the frequencies LFC stages most often land on; the guard band in
// core.Config absorbs the model's mid-grid optimism.
var PerfFitFreqs = []units.MHz{1000, 1800} //lint:allow unitcheck paper measurement-plan frequencies (Sect. 7.3), the vf.Ascend window edges

// EvalFreqs are the interior frequencies predictions are validated at.
var EvalFreqs = []units.MHz{1100, 1200, 1300, 1400, 1500, 1600, 1700} //lint:allow unitcheck paper validation frequencies: the interior vf.Ascend grid points

// Lab is the shared experimental setup: the simulated chip, its
// ground-truth power, thermal constants, and the one-time offline
// power calibration. All randomness is seeded for reproducibility.
type Lab struct {
	Chip    *npu.Chip
	Ground  *powersim.Ground
	Thermal thermal.Params
	Seed    int64

	// Parallel bounds the worker count experiments may use for their
	// internal fan-out (across workloads, targets, or seeds). Zero or
	// one means serial. Because every work item seeds its own
	// randomness, results are identical at any setting; only wall
	// time changes. Set before running experiments, not concurrently
	// with them.
	Parallel int

	calOnce sync.Once
	offline *powermodel.Offline
	calErr  error

	gptOnce   sync.Once
	gptModels *Models
	gptErr    error
}

// NewLab returns the reference laboratory configuration.
func NewLab() *Lab {
	chip := npu.Default()
	return NewLabFor(chip, powersim.Default(chip), thermal.Default(), 2025)
}

// NewLabFor builds a laboratory around a custom accelerator: its chip
// parameters, ground-truth power and thermal constants. This is the
// entry point for porting the methodology to other hardware
// (Sect. 8.3).
func NewLabFor(chip *npu.Chip, ground *powersim.Ground, th thermal.Params, seed int64) *Lab {
	return &Lab{Chip: chip, Ground: ground, Thermal: th, Seed: seed}
}

// workers is Parallel clamped to at least one serial worker.
func (l *Lab) workers() int {
	if l.Parallel < 1 {
		return 1
	}
	return l.Parallel
}

func (l *Lab) sensor(offset int64) *powersim.Sensor {
	return powersim.NewSensor(l.Seed + offset)
}

func (l *Lab) profiler(offset int64) *profiler.Profiler {
	return &profiler.Profiler{Chip: l.Chip, Sensor: l.sensor(offset), TimeNoiseFrac: 0.01}
}

// Offline returns the chip's offline power calibration, computed once
// per lab using a representative test load (Fig. 11, offline phase).
func (l *Lab) Offline() (*powermodel.Offline, error) {
	l.calOnce.Do(func() {
		var load []op.Spec
		reps := workload.RepresentativeOps()
		for i := 0; i < 60; i++ {
			load = append(load, reps...)
		}
		rig := &powermodel.Rig{
			Chip:    l.Chip,
			Ground:  l.Ground,
			Sensor:  l.sensor(7001),
			Thermal: l.Thermal,
		}
		l.offline, l.calErr = powermodel.Calibrate(rig, load, powermodel.DefaultCalibrateOptions())
	})
	return l.offline, l.calErr
}

// TimingProfiles profiles the model once per frequency (timing and
// ratios only).
func (l *Lab) TimingProfiles(m *workload.Model, freqs []units.MHz) ([]*profiler.Profile, error) {
	p := l.profiler(100)
	var out []*profiler.Profile
	for _, f := range freqs {
		prof, err := p.Run(m.Trace, float64(f))
		if err != nil {
			return nil, fmt.Errorf("profiling %s at %g MHz: %w", m.Name, float64(f), err)
		}
		out = append(out, prof)
	}
	return out, nil
}

// PowerProfiles collects thermally stable power profiles of the model
// at each frequency.
func (l *Lab) PowerProfiles(m *workload.Model, freqs []units.MHz) ([]*profiler.Profile, error) {
	p := l.profiler(200)
	var out []*profiler.Profile
	for _, f := range freqs {
		th := thermal.NewState(l.Thermal)
		if _, err := p.WarmupIterations(m.Trace, float64(f), l.Ground, th, 4000, 0.5); err != nil {
			return nil, fmt.Errorf("warming %s at %g MHz: %w", m.Name, float64(f), err)
		}
		prof, err := p.RunPower(m.Trace, float64(f), l.Ground, th)
		if err != nil {
			return nil, fmt.Errorf("power-profiling %s at %g MHz: %w", m.Name, float64(f), err)
		}
		out = append(out, prof)
	}
	return out, nil
}

// Models bundles everything needed to optimize one workload.
type Models struct {
	Workload *workload.Model
	Baseline *profiler.Profile
	Perf     map[string]perfmodel.Model
	Power    *powermodel.Model
}

// BuildModels runs the full modeling pipeline of Fig. 1 for a
// workload: power profiles at the fit frequencies feed both the
// per-operator performance models and the online power model, and a
// separate baseline profile anchors strategy generation.
func (l *Lab) BuildModels(m *workload.Model, temperatureAware bool) (*Models, error) {
	off, err := l.Offline()
	if err != nil {
		return nil, err
	}
	profiles, err := l.PowerProfiles(m, FitFreqs)
	if err != nil {
		return nil, err
	}
	power, err := powermodel.Build(off, profiles, temperatureAware)
	if err != nil {
		return nil, err
	}
	// Performance fitting adds one timing-only profile at the middle
	// frequency to the two power-profiled endpoints.
	mid, err := l.TimingProfiles(m, []units.MHz{1400}) //lint:allow unitcheck paper mid-grid fit-supplement frequency (Sect. 7.2), a vf.Ascend grid point
	if err != nil {
		return nil, err
	}
	perf := perfmodel.FitSeries(seriesList(append(profiles, mid...)), PerfFitFreqs)
	baseline, err := l.profiler(300).Run(m.Trace, float64(l.Chip.Curve.Max()))
	if err != nil {
		return nil, err
	}
	return &Models{Workload: m, Baseline: baseline, Perf: perf, Power: power}, nil
}

func seriesList(profiles []*profiler.Profile) []*profiler.Series {
	bykey := profiler.BuildSeries(profiles)
	out := make([]*profiler.Series, 0, len(bykey))
	for _, s := range bykey {
		out = append(out, s)
	}
	return out
}

// Input converts Models into the strategy-generation input.
func (ms *Models) Input(chip *npu.Chip) core.Input {
	return core.Input{Chip: chip, Profile: ms.Baseline, Perf: ms.Perf, Power: ms.Power}
}

// Bundle serializes the fitted models for reuse across runs
// (dvfs-run -save-models, dvfsd -load-models).
func (ms *Models) Bundle() (*traceio.ModelBundle, error) {
	return traceio.NewModelBundle(ms.Workload.Name, ms.Perf, ms.Power)
}

// ModelsFromBundle reconstructs Models from a saved bundle, skipping
// the offline calibration and the fit-frequency profiling runs — the
// expensive front half of BuildModels. Only the baseline profile is
// regenerated, with the same profiler seed BuildModels uses, so
// strategies generated from a loaded bundle are byte-identical to ones
// generated from freshly built models.
func (l *Lab) ModelsFromBundle(m *workload.Model, b *traceio.ModelBundle) (*Models, error) {
	if b == nil {
		return nil, fmt.Errorf("experiments: nil model bundle")
	}
	if b.Workload != "" && !strings.EqualFold(b.Workload, m.Name) {
		return nil, fmt.Errorf("experiments: bundle fitted on %q, not %q", b.Workload, m.Name)
	}
	baseline, err := l.profiler(300).Run(m.Trace, float64(l.Chip.Curve.Max()))
	if err != nil {
		return nil, err
	}
	return &Models{
		Workload: m,
		Baseline: baseline,
		Perf:     b.PerfModels(),
		Power:    b.PowerModel(&powermodel.Offline{Chip: l.Chip}),
	}, nil
}

// MeasureFixed executes the workload at a fixed frequency until
// thermally stable and returns the measured result.
func (l *Lab) MeasureFixed(m *workload.Model, f units.MHz) (*executor.Result, error) {
	ex := executor.New(l.Chip, l.Ground)
	th := thermal.NewState(l.Thermal)
	return ex.RunStable(m.Trace, executor.FixedStrategy(f), th, executor.DefaultOptions(), 4000, 0.5)
}

// MeasureStrategy executes the workload under a strategy until
// thermally stable.
func (l *Lab) MeasureStrategy(m *workload.Model, strat *core.Strategy, opt executor.Options) (*executor.Result, error) {
	ex := executor.New(l.Chip, l.Ground)
	th := thermal.NewState(l.Thermal)
	return ex.RunStable(m.Trace, strat, th, opt, 4000, 0.5)
}
