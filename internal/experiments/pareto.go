package experiments

import (
	"context"
	"fmt"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/plot"
)

// ParetoRow is one point of the loss/savings frontier.
type ParetoRow struct {
	LossTarget    float64
	PerfLoss      float64
	SoCReduction  float64
	CoreReduction float64
	// EnergyReduction is the SoC energy-per-iteration change (power
	// and time combined).
	EnergyReduction float64
	// EDP is the energy-delay product normalized to the baseline;
	// below 1 means the strategy wins on both axes combined.
	EDP float64
}

// ParetoResult traces the performance/energy trade-off frontier that
// Table 3 samples at five points, at finer granularity, and reports
// the energy-delay-product optimum. The paper observes diminishing
// returns past the 2% target; the frontier makes that knee visible.
type ParetoResult struct {
	Rows []ParetoRow
	// BestEDP is the row minimizing the energy-delay product.
	BestEDP ParetoRow
}

// Pareto sweeps loss targets on GPT-3.
func (l *Lab) Pareto() (*ParetoResult, error) { return l.pareto(context.Background()) } //lint:allow ctxflow context-free convenience wrapper; the harness passes its ctx to the unexported variant

func (l *Lab) pareto(ctx context.Context) (*ParetoResult, error) {
	gpt, err := l.gpt3Models()
	if err != nil {
		return nil, err
	}
	base, err := l.MeasureFixed(gpt.Workload, l.Chip.Curve.Max())
	if err != nil {
		return nil, err
	}
	res := &ParetoResult{BestEDP: ParetoRow{EDP: 1}}
	for i, target := range []float64{0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.16, 0.20} {
		cfg := core.DefaultConfig()
		cfg.PerfLossTarget = target
		cfg.GA.Seed = int64(860 + i)
		strat, _, _, err := core.GenerateContext(ctx, gpt.Input(l.Chip), cfg)
		if err != nil {
			return nil, err
		}
		meas, err := l.MeasureStrategy(gpt.Workload, strat, executor.DefaultOptions())
		if err != nil {
			return nil, err
		}
		relT := meas.TimeMicros / base.TimeMicros
		relE := meas.EnergySoCJ / base.EnergySoCJ
		row := ParetoRow{
			LossTarget:      target,
			PerfLoss:        relT - 1,
			SoCReduction:    1 - meas.MeanSoCW/base.MeanSoCW,
			CoreReduction:   1 - meas.MeanCoreW/base.MeanCoreW,
			EnergyReduction: 1 - relE,
			EDP:             relE * relT,
		}
		res.Rows = append(res.Rows, row)
		if row.EDP < res.BestEDP.EDP {
			res.BestEDP = row
		}
	}
	return res, nil
}

func (r *ParetoResult) String() string {
	var b strings.Builder
	b.WriteString("Performance/energy frontier on GPT-3\n")
	fmt.Fprintf(&b, "  %7s %8s %8s %9s %9s %7s\n", "target", "loss", "SoC-", "AICore-", "energy-", "EDP")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6.0f%% %7.2f%% %7.2f%% %8.2f%% %8.2f%% %7.4f\n",
			row.LossTarget*100, row.PerfLoss*100, row.SoCReduction*100,
			row.CoreReduction*100, row.EnergyReduction*100, row.EDP)
	}
	fmt.Fprintf(&b, "  EDP optimum at the %.0f%% target (EDP %.4f, loss %.2f%%)\n",
		r.BestEDP.LossTarget*100, r.BestEDP.EDP, r.BestEDP.PerfLoss*100)
	return b.String()
}

// Chart renders the frontier.
func (r *ParetoResult) Chart() *plot.Chart {
	soc := plot.Series{Name: "SoC power reduction (%)"}
	core := plot.Series{Name: "AICore power reduction (%)"}
	energy := plot.Series{Name: "SoC energy reduction (%)"}
	for _, row := range r.Rows {
		x := row.PerfLoss * 100
		soc.X = append(soc.X, x)
		soc.Y = append(soc.Y, row.SoCReduction*100)
		core.X = append(core.X, x)
		core.Y = append(core.Y, row.CoreReduction*100)
		energy.X = append(energy.X, x)
		energy.Y = append(energy.Y, row.EnergyReduction*100)
	}
	return &plot.Chart{
		Title:  "Performance/energy frontier (GPT-3)",
		XLabel: "measured performance loss (%)",
		YLabel: "reduction (%)",
		Series: []plot.Series{core, soc, energy},
	}
}
