package dualdvfs

import (
	"math"
	"sync"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/profiler"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// fixture builds the two-domain modeling context on BERT once.
type fixture struct {
	chip   *npu.Chip
	ground *powersim.Ground
	input  Input
	model  *workload.Model
	err    error
}

var (
	fixOnce sync.Once
	fix     fixture
)

func sharedFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix = buildFixture() })
	if fix.err != nil {
		t.Fatal(fix.err)
	}
	return &fix
}

func buildFixture() fixture {
	chip := npu.Default()
	ground := powersim.Default(chip)
	rig := &powermodel.Rig{
		Chip: chip, Ground: ground,
		Sensor: powersim.NewSensor(31), Thermal: thermal.Default(),
	}
	m := workload.BERT()
	off, err := powermodel.Calibrate(rig, m.Trace, powermodel.DefaultCalibrateOptions())
	if err != nil {
		return fixture{err: err}
	}
	prof := profiler.Profiler{Chip: chip, Sensor: rig.Sensor, TimeNoiseFrac: 0.01}
	var profiles []*profiler.Profile
	for _, f := range []float64{1000, 1800} {
		th := thermal.NewState(rig.Thermal)
		if _, err := prof.WarmupIterations(m.Trace, f, ground, th, 4000, 0.5); err != nil {
			return fixture{err: err}
		}
		p, err := prof.RunPower(m.Trace, f, ground, th)
		if err != nil {
			return fixture{err: err}
		}
		profiles = append(profiles, p)
	}
	power, err := powermodel.Build(off, profiles, true)
	if err != nil {
		return fixture{err: err}
	}
	dyn, err := CalibrateUncore(rig, 0.8, 64)
	if err != nil {
		return fixture{err: err}
	}
	baseline, err := prof.Run(m.Trace, 1800)
	if err != nil {
		return fixture{err: err}
	}
	return fixture{
		chip:   chip,
		ground: ground,
		model:  m,
		input: Input{
			Chip: chip, Profile: baseline, Power: power, UncoreDynW: dyn,
		},
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GA.PopSize = 60
	cfg.GA.Generations = 150
	cfg.GA.Seed = 13
	cfg.PerfLossTarget = 0.04
	return cfg
}

func TestCalibrateUncoreRecoversDynShare(t *testing.T) {
	f := sharedFixture(t)
	// The ground truth's clock-proportional idle share is
	// UncoreIdleDyn; calibration must land near it.
	if rel := math.Abs(f.input.UncoreDynW-f.ground.UncoreIdleDyn) / f.ground.UncoreIdleDyn; rel > 0.1 {
		t.Errorf("calibrated dyn = %g W, truth %g W", f.input.UncoreDynW, f.ground.UncoreIdleDyn)
	}
}

func TestCalibrateUncoreValidation(t *testing.T) {
	if _, err := CalibrateUncore(nil, 0.8, 8); err == nil {
		t.Error("nil rig: want error")
	}
	f := sharedFixture(t)
	rig := &powermodel.Rig{Chip: f.chip, Ground: f.ground, Sensor: powersim.NewSensor(1), Thermal: thermal.Default()}
	if _, err := CalibrateUncore(rig, 1.2, 8); err == nil {
		t.Error("scale > 1: want error")
	}
	if _, err := CalibrateUncore(rig, 0, 8); err == nil {
		t.Error("zero scale: want error")
	}
}

func TestGenerateValidation(t *testing.T) {
	f := sharedFixture(t)
	bad := f.input
	bad.Chip = nil
	if _, _, _, err := Generate(bad, testConfig()); err == nil {
		t.Error("nil chip: want error")
	}
	cfg := testConfig()
	cfg.UncoreScales = []float64{1.5}
	if _, _, _, err := Generate(f.input, cfg); err == nil {
		t.Error("invalid uncore scale: want error")
	}
}

func TestDualStrategyBeatsCoreOnlySoCSavings(t *testing.T) {
	f := sharedFixture(t)
	// Two-domain search at a 4% target. The allele space is 4x the
	// core-only one, so the search gets a proportionally larger
	// budget.
	dualCfg := testConfig()
	dualCfg.GA.PopSize = 100
	dualCfg.GA.Generations = 400
	dualStrat, _, _, err := Generate(f.input, dualCfg)
	if err != nil {
		t.Fatal(err)
	}
	if dualStrat.UncoreSwitches() == 0 {
		t.Error("two-domain strategy never touches the uncore; expected it to exploit the new knob")
	}
	// Core-only ablation: identical machinery with the uncore knob
	// removed, so both searches share models, scoring and budget.
	coreCfg := testConfig()
	coreCfg.UncoreScales = []float64{1.0}
	coreStrat, _, _, err := Generate(f.input, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := executor.New(f.chip, f.ground)
	measure := func(s *core.Strategy) *executor.Result {
		th := thermal.NewState(thermal.Default())
		res, err := ex.RunStable(f.model.Trace, s, th, executor.DefaultOptions(), 4000, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := measure(executor.FixedStrategy(1800))
	dual := measure(dualStrat)
	coreOnly := measure(coreStrat)
	dualSoC := 1 - dual.MeanSoCW/base.MeanSoCW
	coreSoC := 1 - coreOnly.MeanSoCW/base.MeanSoCW
	if dualSoC <= coreSoC {
		t.Errorf("two-domain SoC saving %.3f should exceed core-only %.3f", dualSoC, coreSoC)
	}
	if loss := dual.TimeMicros/base.TimeMicros - 1; loss > 0.06 {
		t.Errorf("two-domain loss %.3f far beyond the 4%% target", loss)
	}
}

func TestPairAlleleRoundTrip(t *testing.T) {
	p := &problem{grid: []units.MHz{1000, 1100, 1200}, scales: []float64{1, 0.9}}
	for fi := range p.grid {
		for sc := range p.scales {
			got := p.pairOf(p.alleleOf(fi, sc))
			if got.freqIdx != fi || got.scaleIdx != sc {
				t.Fatalf("allele round trip (%d,%d) -> %+v", fi, sc, got)
			}
		}
	}
}

func TestScalesAutoIncludeNominal(t *testing.T) {
	f := sharedFixture(t)
	cfg := testConfig()
	cfg.UncoreScales = []float64{0.9}
	cfg.GA = ga.Config{PopSize: 4, Generations: 1, MutationRate: 0.1, CrossoverRate: 0.5, Seed: 1}
	strat, _, _, err := Generate(f.input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strat == nil {
		t.Fatal("nil strategy")
	}
}
