// Package dualdvfs implements the paper's stated future work
// (Sect. 8.2): joint core + uncore DVFS strategy generation. The
// measured Ascend platform can only tune the AICore domain, capping
// SoC savings because the uncore (HBM, L2, bus) averages ~80% of chip
// power; this package extends the search space so every candidate
// stage carries a (core frequency, uncore scale) pair.
//
// Because per-operator fitted models only exist for the stock uncore,
// stage timing under a scaled uncore is predicted with the white-box
// analytical model of Sect. 4.2 (the operator timeline equations
// evaluated on a bandwidth-scaled chip) — the derivation route the
// paper notes as an alternative to fitting. Power under a scaled
// uncore uses the stock power model minus the calibrated
// clock-proportional share of uncore idle power.
package dualdvfs

import (
	"context"
	"fmt"

	"npudvfs/internal/classify"
	"npudvfs/internal/core"
	"npudvfs/internal/evaltab"
	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/profiler"
	"npudvfs/internal/stats"
	"npudvfs/internal/units"
)

// Config tunes two-domain strategy generation.
type Config struct {
	// UncoreScales are the candidate uncore frequencies relative to
	// nominal; 1.0 is added automatically if missing.
	UncoreScales []float64
	// FAIMicros, PerfLossTarget, Guard and GA mirror core.Config.
	FAIMicros      units.Micros
	PerfLossTarget float64
	Guard          float64
	GA             ga.Config
	// PriorLFCMHz seeds LFC stages of the prior individual at this
	// core frequency (uncore at nominal: scaling the uncore down on a
	// memory-bound stage costs time directly).
	PriorLFCMHz units.MHz
	// PriorHFCScale seeds HFC stages at this uncore scale (core at
	// maximum): compute-bound stages hide memory latency under the
	// core computation, so their uncore can be downclocked nearly for
	// free until the transfer time surfaces.
	PriorHFCScale float64
}

// DefaultConfig mirrors the paper's production settings with a
// conservative uncore candidate set.
func DefaultConfig() Config {
	return Config{
		UncoreScales:   []float64{1.0, 0.95, 0.9, 0.85},
		FAIMicros:      5000,
		PerfLossTarget: 0.02,
		Guard:          0.7,
		GA:             ga.DefaultConfig(),
		PriorLFCMHz:    1600, //lint:allow unitcheck paper prior-individual LFC frequency (Sect. 6.3.1), a vf.Ascend grid point
		PriorHFCScale:  0.95,
	}
}

// Input bundles what generation consumes.
type Input struct {
	Chip *npu.Chip
	// Profile is the stock baseline profile.
	Profile *profiler.Profile
	// Power is the stock power model.
	Power *powermodel.Model
	// UncoreDynW is the calibrated clock-proportional share of uncore
	// idle power (watts at nominal; scales with s²).
	UncoreDynW float64
}

// CalibrateUncore measures the clock-proportional uncore idle power by
// reading cold idle SoC power at nominal and at a reduced uncore scale
// — the extra offline measurement a platform with uncore DVFS would
// provide.
func CalibrateUncore(rig *powermodel.Rig, probeScale float64, samples int) (float64, error) {
	if rig == nil || rig.Ground == nil || rig.Sensor == nil {
		return 0, fmt.Errorf("dualdvfs: incomplete rig")
	}
	if probeScale <= 0 || probeScale >= 1 {
		return 0, fmt.Errorf("dualdvfs: probe scale %g outside (0, 1)", probeScale)
	}
	if samples <= 0 {
		samples = 64
	}
	//lint:allow unitcheck fixed mid-window probe frequency for the uncore idle measurement; any in-window point works, 1500 kept for reproducibility
	const probeF = units.MHz(1500)
	read := func(g *powersim.Ground) float64 {
		sum := 0.0
		for i := 0; i < samples; i++ {
			sum += rig.Sensor.Power(g.SoCPower(nil, float64(probeF), 0))
		}
		return sum / float64(samples)
	}
	stock := read(rig.Ground)
	scaledGround := *rig.Ground
	scaledGround.Chip = rig.Chip.WithUncoreScale(probeScale)
	scaledGround.UncoreScale = probeScale
	scaled := read(&scaledGround)
	dyn := (stock - scaled) / (1 - probeScale*probeScale)
	if dyn < 0 {
		dyn = 0
	}
	return dyn, nil
}

// pair indexes the (core frequency, uncore scale) allele grid.
type pair struct {
	freqIdx, scaleIdx int
}

type problem struct {
	grid   []units.MHz
	scales []float64
	stages []preprocess.Stage

	// tab holds the per-(stage, pair-allele) prediction quadruples in
	// the flat SoA layout shared with core (see internal/evaltab); it
	// also implements the ga.PartialScorer delta-scoring hooks.
	tab *evaltab.Table

	baselineIdx int // allele of (f_max, scale 1)
	priorLFCIdx int // prior allele for LFC stages
	priorHFCIdx int // prior allele for HFC stages

	// seeds is built once: the GA engine copies seed vectors, so
	// repeat searches on a cached problem stay allocation-free.
	seeds [][]int
}

func (p *problem) alleleOf(freqIdx, scaleIdx int) int { return freqIdx*len(p.scales) + scaleIdx }

func (p *problem) pairOf(allele int) pair {
	return pair{freqIdx: allele / len(p.scales), scaleIdx: allele % len(p.scales)}
}

func (p *problem) Genes() int   { return len(p.stages) }
func (p *problem) Alleles() int { return len(p.grid) * len(p.scales) }

func (p *problem) Seeds() [][]int {
	if p.seeds == nil {
		baseline := make([]int, len(p.stages))
		prior := make([]int, len(p.stages))
		for i := range p.stages {
			baseline[i] = p.baselineIdx
			if p.stages[i].Sensitive {
				prior[i] = p.priorHFCIdx
			} else {
				prior[i] = p.priorLFCIdx
			}
		}
		p.seeds = [][]int{baseline, prior}
	}
	return p.seeds
}

func (p *problem) predict(ind []int) core.Prediction {
	pr := p.tab.Predict(ind)
	return core.Prediction{
		TimeMicros: units.Micros(pr.TimeMicros),
		SoCWatts:   units.Watt(pr.SoCWatts),
		CoreWatts:  units.Watt(pr.CoreWatts),
		DeltaT:     units.Celsius(pr.DeltaTC),
	}
}

func (p *problem) Score(ind []int) float64 { return p.tab.Score(ind) }

// Partial-sum scoring hooks (ga.PartialScorer). Safe for concurrent
// use: the table is read-only after buildProblem.
func (p *problem) SumCount() int                      { return evaltab.Quad }
func (p *problem) InitSums(ind []int, sums []float64) { p.tab.InitSums(ind, sums) }
func (p *problem) UpdateSums(sums []float64, gene, oldAllele, newAllele int) {
	p.tab.UpdateSums(sums, gene, oldAllele, newAllele)
}
func (p *problem) ScoreSums(sums []float64) float64 { return p.tab.ScoreSums(sums) }

// Batch scoring hooks (ga.BatchScorer / ga.BatchPartialScorer): whole
// cohorts sweep the SoA table gene-major, bit-identical to the
// per-candidate paths.
func (p *problem) ScoreBatch(genes []int, count int, scores []float64) {
	p.tab.ScoreBatch(genes, count, scores)
}
func (p *problem) InitSumsBatch(genes []int, count int, sums []float64) {
	p.tab.InitSumsBatch(genes, count, sums)
}

// Generate searches (core frequency, uncore scale) pairs per stage.
func Generate(in Input, cfg Config) (*core.Strategy, []preprocess.Stage, *ga.Result, error) {
	//lint:allow ctxflow context-free convenience wrapper; cancellable callers use GenerateContext
	return GenerateContext(context.Background(), in, cfg)
}

// GenerateContext is Generate with the genetic search observing ctx at
// generation boundaries, mirroring core.GenerateContext.
func GenerateContext(ctx context.Context, in Input, cfg Config) (*core.Strategy, []preprocess.Stage, *ga.Result, error) {
	if in.Chip == nil || in.Profile == nil || len(in.Profile.Records) == 0 || in.Power == nil {
		return nil, nil, nil, fmt.Errorf("dualdvfs: incomplete input")
	}
	results := classify.Trace(in.Profile)
	stages, err := preprocess.Stages(in.Profile, results, float64(cfg.FAIMicros))
	if err != nil {
		return nil, nil, nil, err
	}
	prob, err := buildProblem(in, cfg, stages)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := ga.RunContext(ctx, prob, cfg.GA)
	if err != nil {
		return nil, nil, nil, err
	}
	return prob.strategy(res.Best), stages, res, nil
}

func buildProblem(in Input, cfg Config, stages []preprocess.Stage) (*problem, error) {
	scales := append([]float64(nil), cfg.UncoreScales...)
	hasOne := false
	for _, s := range scales {
		if stats.Approx(s, 1) {
			hasOne = true
		}
		if s <= 0 || s > 1 {
			return nil, fmt.Errorf("dualdvfs: invalid uncore scale %g", s)
		}
	}
	if !hasOne {
		scales = append([]float64{1}, scales...)
	}
	grid := in.Chip.Curve.Grid()
	p := &problem{
		grid:   grid,
		scales: scales,
		stages: stages,
		tab:    evaltab.New(len(stages), len(grid)*len(scales)),
	}
	p.tab.K = float64(in.Power.K)
	p.tab.TemperatureAware = in.Power.TemperatureAware
	if p.tab.TemperatureAware {
		p.tab.GammaCore = in.Power.AICore.Gamma
		p.tab.GammaSoC = in.Power.SoC.Gamma
	}
	// Scaled chips for white-box timing.
	chips := make([]*npu.Chip, len(scales))
	for i, s := range scales {
		if stats.Approx(s, 1) {
			chips[i] = in.Chip
		} else {
			chips[i] = in.Chip.WithUncoreScale(s)
		}
	}
	// Locate baseline and prior alleles. The prior individual pairs
	// LFC stages with a lower core frequency (nominal uncore) and HFC
	// stages with a downclocked uncore (maximum core frequency).
	one := indexOf(scales, 1)
	p.baselineIdx = p.alleleOf(len(grid)-1, one)
	priorF := len(grid) - 1
	for i, f := range grid {
		if stats.Approx(f, cfg.PriorLFCMHz) {
			priorF = i
		}
	}
	p.priorLFCIdx = p.alleleOf(priorF, one)
	hfcScale := indexOf(scales, cfg.PriorHFCScale)
	if hfcScale < 0 {
		hfcScale = one
	}
	p.priorHFCIdx = p.alleleOf(len(grid)-1, hfcScale)

	for si, st := range stages {
		for fi, f := range grid {
			v := float64(in.Chip.Curve.Voltage(f))
			for sc, scale := range scales {
				allele := p.alleleOf(fi, sc)
				dynSaving := in.UncoreDynW * (1 - scale*scale)
				for i := st.OpStart; i < st.OpEnd; i++ {
					rec := &in.Profile.Records[i]
					dur := rec.DurMicros
					if rec.Spec.Class == op.Compute {
						// White-box timing on the scaled chip.
						dur = chips[sc].Time(rec.Spec, float64(f))
					}
					coreP, socP := in.Power.OpPowerAt(rec.Spec.Key(), f, 0)
					soc := float64(socP) - dynSaving
					p.tab.Add(si, allele, dur, soc*dur, float64(coreP)*dur, v*dur)
				}
			}
		}
	}
	baseline := make([]int, len(stages))
	for i := range baseline {
		baseline[i] = p.baselineIdx
	}
	basePred := p.predict(baseline)
	if basePred.TimeMicros <= 0 {
		return nil, fmt.Errorf("dualdvfs: degenerate baseline prediction")
	}
	guard := cfg.Guard
	if guard <= 0 || guard > 1 {
		guard = 1
	}
	p.tab.PerBaseline = 1 / float64(basePred.TimeMicros)
	p.tab.PerLB = p.tab.PerBaseline * (1 - cfg.PerfLossTarget*guard)
	p.Seeds() // build the seed vectors now: the problem is immutable (and trivially concurrency-safe) once returned
	return p, nil
}

func indexOf(xs []float64, want float64) int {
	for i, x := range xs {
		if stats.Approx(x, want) {
			return i
		}
	}
	return -1
}

// strategy converts an assignment to a two-domain strategy.
func (p *problem) strategy(ind []int) *core.Strategy {
	s := &core.Strategy{BaselineMHz: p.grid[len(p.grid)-1]}
	lastF, lastS := units.MHz(-1), -1.0
	for si, allele := range ind {
		pr := p.pairOf(allele)
		f := p.grid[pr.freqIdx]
		scale := p.scales[pr.scaleIdx]
		if stats.Approx(f, lastF) && stats.Approx(scale, lastS) {
			continue
		}
		s.Points = append(s.Points, core.FreqPoint{
			OpIndex:     p.stages[si].OpStart,
			TimeMicros:  units.Micros(p.stages[si].StartMicros),
			FreqMHz:     f,
			UncoreScale: scale,
		})
		lastF, lastS = f, scale
	}
	return s
}
