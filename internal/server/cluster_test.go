package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/traceio"
)

// clusterNode is one live daemon of a test cluster.
type clusterNode struct {
	s    *Server
	id   string
	addr string // http://host:port
}

// newCluster boots count bundle-warmed daemons sharing one ring built
// from their actual bound addresses, each behind a real TCP listener
// (the nodes must reach each other over HTTP to proxy).
func newCluster(t *testing.T, count int) []clusterNode {
	t.Helper()
	lab, bundle := fixture(t)
	lns := make([]net.Listener, count)
	nodes := make([]ring.Node, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		nodes[i] = ring.Node{ID: fmt.Sprintf("n%d", i+1), Addr: "http://" + ln.Addr().String()}
	}
	r, err := ring.New(nodes, ring.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]clusterNode, count)
	for i := range out {
		s, err := New(Config{
			Workers: 1, QueueDepth: 8, Lab: lab,
			Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
			Ring:    r, NodeID: nodes[i].ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		ln := lns[i]
		go func() { _ = hs.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			_ = s.Shutdown(ctx)
		})
		out[i] = clusterNode{s: s, id: nodes[i].ID, addr: nodes[i].Addr}
	}
	return out
}

// postStrategy submits a request body to one node, with optional extra
// headers, returning the status code and decoded job.
func postStrategy(t *testing.T, addr, body string, hdr map[string]string) (int, *traceio.JobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, addr+"/v1/strategies", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, nil
	}
	var st traceio.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return resp.StatusCode, &st
}

// pollJob polls one node for a job until it is terminal.
func pollJob(t *testing.T, addr, id string) *traceio.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s at %s: code %d (%s)", id, addr, resp.StatusCode, raw)
		}
		var st traceio.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if traceio.IsTerminal(st.State) {
			return &st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestClusterForwardsToOwner is the tentpole end-to-end: a submission
// to a NON-owner node is proxied to the ring owner (the job ID carries
// the owner's prefix), pollable through any node, answered from the
// owner's cache on resubmission — and the strategy is byte-identical
// to a standalone single-node daemon's.
func TestClusterForwardsToOwner(t *testing.T) {
	nodes := newCluster(t, 3)

	body := smallSearch(7)
	var req traceio.StrategyRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].s.ring.Owner(key).ID
	var ownerNode, other, third clusterNode
	for _, n := range nodes {
		switch {
		case n.id == owner:
			ownerNode = n
		case other.id == "":
			other = n
		default:
			third = n
		}
	}

	// Submit via a non-owner: accepted, and the ID proves the owner
	// served it.
	code, st := postStrategy(t, other.addr, body, nil)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit via non-owner %s: code %d", other.id, code)
	}
	if got := nodePrefix(st.ID); got != owner {
		t.Fatalf("job %s landed on %q, want ring owner %q", st.ID, got, owner)
	}

	// Poll through a different non-owner: the poll is routed by the
	// ID's node prefix.
	done := pollJob(t, third.addr, st.ID)
	if done.State != traceio.JobDone {
		t.Fatalf("job finished %q (%s)", done.State, done.Error)
	}

	// Resubmit through the third node: the owner's cache answers.
	code, hit := postStrategy(t, third.addr, body, nil)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("resubmit via %s: code %d cached=%v, want 200 cached", third.id, code, hit.Cached)
	}
	if !bytes.Equal(hit.Result.Strategy, done.Result.Strategy) {
		t.Error("cached strategy differs from the original")
	}

	// Forward accounting: the submitting node proxied out, the owner
	// received in.
	if m := scrape(t, other.addr); !strings.Contains(m, `dvfsd_cluster_forwards_total{direction="out"}`) {
		t.Errorf("non-owner %s metrics show no outbound forwards:\n%s", other.id, m)
	}
	if m := scrape(t, ownerNode.addr); !strings.Contains(m, `dvfsd_cluster_forwards_total{direction="in"}`) {
		t.Errorf("owner %s metrics show no inbound forwards:\n%s", owner, m)
	}

	// Byte-identity with a standalone daemon: the ring only routes; it
	// must not change what is computed.
	_, ts := newTestServer(t, Config{Workers: 1})
	scode, sst := submit(t, ts, body)
	if scode != http.StatusAccepted {
		t.Fatalf("standalone submit: code %d", scode)
	}
	standalone := waitJob(t, ts, sst.ID)
	var a, b bytes.Buffer
	if err := json.Compact(&a, done.Result.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&b, standalone.Result.Strategy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("cluster strategy differs from single-node:\n--- cluster ---\n%s\n--- single ---\n%s", a.Bytes(), b.Bytes())
	}
}

// TestClusterLoopGuard pins the single-hop contract: a request already
// carrying the forward header is served locally even by a non-owner,
// so disagreeing ring files can cost an extra hop but never a loop.
func TestClusterLoopGuard(t *testing.T) {
	nodes := newCluster(t, 3)
	body := smallSearch(11)
	var req traceio.StrategyRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].s.ring.Owner(key).ID
	var other clusterNode
	for _, n := range nodes {
		if n.id != owner {
			other = n
			break
		}
	}
	code, st := postStrategy(t, other.addr, body, map[string]string{ForwardHeader: "forged"})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("forwarded submit: code %d", code)
	}
	if got := nodePrefix(st.ID); got != other.id {
		t.Fatalf("pre-forwarded request landed on %q, want local node %q (no second hop)", got, other.id)
	}
	done := pollJob(t, other.addr, st.ID)
	if done.State != traceio.JobDone {
		t.Fatalf("job finished %q (%s)", done.State, done.Error)
	}
}

// TestClusterEndpoint checks /v1/cluster reports the node identity and
// the full ring, with exactly one self marker per node.
func TestClusterEndpoint(t *testing.T) {
	nodes := newCluster(t, 3)
	for _, n := range nodes {
		resp, err := http.Get(n.addr + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var st traceio.ClusterStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Node != n.id || st.Store != "memory" || len(st.Nodes) != 3 {
			t.Fatalf("cluster status of %s: %+v", n.id, st)
		}
		selfs := 0
		for _, m := range st.Nodes {
			if m.Self {
				selfs++
				if m.ID != n.id {
					t.Errorf("node %s marks %s as self", n.id, m.ID)
				}
			}
		}
		if selfs != 1 {
			t.Errorf("node %s reports %d self markers", n.id, selfs)
		}
	}
}

// TestClusterRejectsBadConfig pins New's validation.
func TestClusterRejectsBadConfig(t *testing.T) {
	lab, bundle := fixture(t)
	r, err := ring.New([]ring.Node{{ID: "a", Addr: "http://127.0.0.1:1"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Lab: lab, Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle}}
	noID := base
	noID.Ring = r
	if _, err := New(noID); err == nil {
		t.Error("New accepted a ring without a node ID")
	}
	stranger := base
	stranger.Ring = r
	stranger.NodeID = "not-a-member"
	if _, err := New(stranger); err == nil {
		t.Error("New accepted a node ID absent from the ring")
	}
}
