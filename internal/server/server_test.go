package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"npudvfs/internal/core"
	"npudvfs/internal/experiments"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

// The test fixture: one lab (its offline calibration is the expensive
// part, computed once) and one pre-fitted resnet50 bundle so
// bundle-warmed servers skip per-job model building entirely.
var (
	fixOnce   sync.Once
	fixLab    *experiments.Lab
	fixBundle *traceio.ModelBundle
	fixErr    error
)

func fixture(t *testing.T) (*experiments.Lab, *traceio.ModelBundle) {
	t.Helper()
	fixOnce.Do(func() {
		fixLab = experiments.NewLab()
		m, err := workload.ByName("resnet50")
		if err != nil {
			fixErr = err
			return
		}
		ms, err := fixLab.BuildModels(m, true)
		if err != nil {
			fixErr = err
			return
		}
		b, err := ms.Bundle()
		if err != nil {
			fixErr = err
			return
		}
		// Round-trip through the wire format: the server loads bundles
		// from disk, so the test must prove serialization preserves
		// the models exactly.
		var buf bytes.Buffer
		if err := traceio.WriteModels(&buf, b); err != nil {
			fixErr = err
			return
		}
		fixBundle, fixErr = traceio.ReadModels(&buf)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLab, fixBundle
}

// newTestServer boots a bundle-warmed server over httptest and
// registers teardown.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	lab, bundle := fixture(t)
	if cfg.Lab == nil {
		cfg.Lab = lab
	}
	if cfg.Bundles == nil {
		cfg.Bundles = map[string]*traceio.ModelBundle{"resnet50": bundle}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, *traceio.JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/strategies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, nil
	}
	var st traceio.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return resp.StatusCode, &st
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, *traceio.JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var st traceio.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &st
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) *traceio.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, st := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: status code %d", id, code)
		}
		switch st.State {
		case traceio.JobDone, traceio.JobFailed, traceio.JobCancelled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// smallSearch is a seconds-scale GA for handler tests.
func smallSearch(seed int64) string {
	return fmt.Sprintf(`{"workload": "resnet50", "search": {"pop": 16, "gens": 8, "seed": %d}}`, seed)
}

func TestSubmitBadJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := submit(t, ts, `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON: code %d, want 400", code)
	}
	if code, _ := submit(t, ts, `{"workload": "resnet50", "unknown_field": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d, want 400", code)
	}
	if code, _ := submit(t, ts, `{"workload": "resnet50", "search": {"pop": 1}}`); code != http.StatusBadRequest {
		t.Errorf("invalid search spec: code %d, want 400", code)
	}
	if code, _ := submit(t, ts, `{}`); code != http.StatusBadRequest {
		t.Errorf("no workload: code %d, want 400", code)
	}
}

func TestSubmitUnknownWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := submit(t, ts, `{"workload": "nonsense"}`); code != http.StatusNotFound {
		t.Errorf("unknown workload: code %d, want 404", code)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := getJob(t, ts, "j99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: code %d", resp.StatusCode)
	}
}

func TestSubmitCompletesAndCacheHitOnResubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, st := submit(t, ts, smallSearch(7))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d, want 202", code)
	}
	if st.State != traceio.JobQueued && st.State != traceio.JobRunning {
		t.Fatalf("first submit state %q", st.State)
	}
	done := waitJob(t, ts, st.ID)
	if done.State != traceio.JobDone {
		t.Fatalf("job finished %q (%s), want done", done.State, done.Error)
	}
	if done.Cached {
		t.Error("first submission reported as cached")
	}
	if done.Result == nil || len(done.Result.Strategy) == 0 {
		t.Fatal("done job carries no strategy")
	}
	if done.Result.Predicted.SoCSavingPct <= 0 {
		t.Errorf("predicted SoC saving %.2f%%, want > 0", done.Result.Predicted.SoCSavingPct)
	}
	if _, err := traceio.ReadStrategy(bytes.NewReader(done.Result.Strategy)); err != nil {
		t.Errorf("strategy payload does not parse: %v", err)
	}

	// Resubmission: answered immediately from the cache, strategy
	// byte-identical.
	code, hit := submit(t, ts, smallSearch(7))
	if code != http.StatusOK {
		t.Fatalf("resubmit: code %d, want 200", code)
	}
	if hit.State != traceio.JobDone || !hit.Cached {
		t.Fatalf("resubmit state %q cached=%v, want done/cached", hit.State, hit.Cached)
	}
	if !bytes.Equal(hit.Result.Strategy, done.Result.Strategy) {
		t.Error("cached strategy differs from the original")
	}

	// A different seed is a different cache key.
	code, miss := submit(t, ts, smallSearch(8))
	if code != http.StatusAccepted {
		t.Fatalf("different-seed submit: code %d, want 202", code)
	}
	waitJob(t, ts, miss.ID)

	m := metricsText(t, ts)
	for _, want := range []string{
		"dvfsd_cache_hits_total 1",
		"dvfsd_cache_misses_total 2",
		// Two searches completed; the cache hit is counted under its
		// own label so done agrees with the search-latency series.
		`dvfsd_jobs_total{state="done"} 2`,
		`dvfsd_jobs_total{state="cached"} 1`,
		`dvfsd_stage_seconds_count{stage="search"} 2`,
		`dvfsd_job_ga_evals_per_sec{workload="resnet50"}`,
		`dvfsd_job_ga_score_cache_hit_rate{workload="resnet50"}`,
		`dvfsd_job_ga_generations{workload="resnet50"}`,
		// Island-model instrumentation: per-island throughput of the
		// last search (island 0 always exists) plus the fan-out gauge
		// and the ring-exchange counter.
		`dvfsd_job_ga_island_evals_per_sec{workload="resnet50",island="0"}`,
		"\ndvfsd_ga_islands ",
		"\ndvfsd_ga_migrations_total ",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
	// Two searches ran (the cache hit runs no GA); the cumulative
	// counters must reflect actual evaluations and generations.
	for _, re := range []string{"\ndvfsd_ga_evaluations_total ", "\ndvfsd_ga_generations_total "} {
		i := strings.Index(m, re)
		if i < 0 {
			t.Fatalf("metrics missing %q:\n%s", re, m)
		}
		var v float64
		if _, err := fmt.Sscanf(m[i+len(re):], "%g", &v); err != nil || v <= 0 {
			t.Errorf("counter %q = %g (%v), want > 0", re, v, err)
		}
	}
}

func TestDeadlineCancelsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A deep search under a 1 ms deadline (far deeper than the island
	// engine can finish in a millisecond): the GA observes the expired
	// context at a generation boundary and the job lands in state
	// cancelled, not failed.
	code, st := submit(t, ts, `{"workload": "resnet50", "search": {"pop": 200, "gens": 50000, "timeout_ms": 1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, want 202", code)
	}
	fin := waitJob(t, ts, st.ID)
	if fin.State != traceio.JobCancelled {
		t.Fatalf("state %q (%s), want cancelled", fin.State, fin.Error)
	}
	if fin.Error == "" || !strings.Contains(fin.Error, "deadline") {
		t.Errorf("cancelled job error %q should mention the deadline", fin.Error)
	}
	if !strings.Contains(metricsText(t, ts), `dvfsd_jobs_total{state="cancelled"} 1`) {
		t.Error("metrics missing the cancelled job count")
	}
}

func TestQueueFullRejects(t *testing.T) {
	lab, bundle := fixture(t)
	// No workers can make progress quickly: one worker, deep search,
	// queue depth 1.
	s, err := New(Config{
		Workers: 1, QueueDepth: 1, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx) // force-cancels the deep searches
	})
	// Deep enough that the single worker is still busy while the later
	// submissions arrive (the zero-allocation engine finishes a 200x600
	// search in tens of milliseconds); the cleanup force-cancel reaps it.
	slow := `{"workload": "resnet50", "search": {"pop": 200, "gens": 200000, "seed": %d}}`
	saw503 := false
	for i := 0; i < 4; i++ {
		code, _ := submit(t, ts, fmt.Sprintf(slow, i+1))
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, code)
		}
	}
	if !saw503 {
		t.Error("queue never filled: no 503 after worker+queue capacity exceeded")
	}
}

// TestConcurrentSubmissionsStress fans ≥8 concurrent submissions (a
// mix of distinct seeds and duplicates) at the server. Under -race
// this is the data-race gate for the whole serving path; it also pins
// that equal requests produce byte-identical strategies no matter
// which worker ran them or whether the cache answered.
func TestConcurrentSubmissionsStress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	const n = 10
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i%5 + 1) // 5 distinct searches, each submitted twice
			code, st := submit(t, ts, smallSearch(seed))
			switch code {
			case http.StatusAccepted, http.StatusOK:
				ids[i] = st.ID
			default:
				errs <- fmt.Errorf("submission %d: code %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	bySeed := make(map[int64][]byte)
	for i, id := range ids {
		st := waitJob(t, ts, id)
		if st.State != traceio.JobDone {
			t.Fatalf("job %s: state %q (%s)", id, st.State, st.Error)
		}
		seed := int64(i%5 + 1)
		if prev, ok := bySeed[seed]; ok {
			if !bytes.Equal(prev, st.Result.Strategy) {
				t.Errorf("seed %d: strategies differ across equal submissions", seed)
			}
		} else {
			bySeed[seed] = st.Result.Strategy
		}
	}
}

// goroutineBaseline samples the goroutine count after a settling
// sleep, so lingering runtime/net goroutines from earlier tests don't
// count against the leak budget.
func goroutineBaseline() int {
	time.Sleep(50 * time.Millisecond)
	return runtime.NumGoroutine()
}

func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 { // slack for HTTP keep-alive reapers
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d live, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

func TestShutdownDrainsWithoutLeak(t *testing.T) {
	lab, bundle := fixture(t)
	base := goroutineBaseline()
	s, err := New(Config{
		Workers: 2, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	var ids []string
	for i := 0; i < 4; i++ {
		code, st := submit(t, ts, smallSearch(int64(20+i)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	// Generous deadline: the drain must finish the in-flight searches.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, id := range ids {
		st, ok := s.jobStatus(id)
		if !ok {
			t.Fatalf("job %s evicted before completion", id)
		}
		if st.State != traceio.JobDone {
			t.Errorf("job %s after drain: %q (%s), want done", id, st.State, st.Error)
		}
	}
	// Submissions after shutdown are refused, not queued into the void.
	if code, _ := submit(t, ts, smallSearch(99)); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: code %d, want 503", code)
	}
	ts.Close()
	waitForGoroutines(t, base)
}

func TestShutdownDeadlineForceCancels(t *testing.T) {
	lab, bundle := fixture(t)
	base := goroutineBaseline()
	s, err := New(Config{
		Workers: 1, QueueDepth: 4, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	var ids []string
	for i := 0; i < 3; i++ {
		// Deep searches that cannot finish inside the 100ms deadline;
		// the forced cancellation reaps them at a generation boundary.
		code, st := submit(t, ts, fmt.Sprintf(
			`{"workload": "resnet50", "search": {"pop": 200, "gens": 200000, "seed": %d}}`, 50+i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown under load with a 100ms deadline reported a clean drain")
	}
	// Workers have exited (Shutdown waited for them even on the error
	// path); every job must be terminal and the deep searches
	// cancelled, not abandoned mid-run.
	for _, id := range ids {
		st, ok := s.jobStatus(id)
		if !ok {
			t.Fatalf("job %s missing", id)
		}
		switch st.State {
		case traceio.JobDone, traceio.JobCancelled:
		default:
			t.Errorf("job %s after forced shutdown: %q (%s)", id, st.State, st.Error)
		}
	}
	ts.Close()
	waitForGoroutines(t, base)
}

// TestServerMatchesBatch pins the determinism contract of DESIGN.md
// §8: the served strategy for a workload/seed is byte-identical to
// what the cmd/dvfs-run batch path generates — including when the
// server skips model building via a loaded bundle.
func TestServerMatchesBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy end-to-end case; covered by the non-race suite")
	}
	lab, _ := fixture(t)
	_, ts := newTestServer(t, Config{Workers: 1})

	code, st := submit(t, ts, smallSearch(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	served := waitJob(t, ts, st.ID)
	if served.State != traceio.JobDone {
		t.Fatalf("job %q (%s)", served.State, served.Error)
	}

	// The batch path, exactly as cmd/dvfs-run runs it (fresh models,
	// no bundle).
	m, err := workload.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.GA.PopSize = 16
	cfg.GA.Generations = 8
	cfg.GA.Seed = 7
	strat, _, _, err := core.Generate(ms.Input(lab.Chip), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := traceio.WriteStrategy(&pretty, strat); err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := json.Compact(&want, pretty.Bytes()); err != nil {
		t.Fatal(err)
	}
	// The HTTP layer re-indents embedded JSON; compare the canonical
	// compact form on both sides.
	if err := json.Compact(&got, served.Result.Strategy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("served strategy differs from the batch path:\n--- served ---\n%s\n--- batch ---\n%s",
			got.Bytes(), want.Bytes())
	}
}
