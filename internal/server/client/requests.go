package client

import (
	"encoding/json"
	"os"

	"npudvfs/internal/traceio"
)

// Builder constructs reusable strategy requests from a base workload
// and search spec. The zero-cost variants matter to traffic shaping:
// Request resubmits the identical spec (a cache-hot repeat after the
// first completion), WithSeed perturbs only the GA seed — which enters
// the canonical SearchSpec hash, so every distinct seed is a distinct
// cache key and forces a full search (cache-cold traffic).
type Builder struct {
	// Workload names a registry workload; Trace carries an inline
	// trace instead. Exactly one must be set, mirroring the wire
	// contract.
	Workload string
	Trace    json.RawMessage
	// Base is the search spec the variants derive from.
	Base traceio.SearchSpec
}

// NewBuilder returns a builder for a registry workload.
func NewBuilder(workload string, base traceio.SearchSpec) Builder {
	return Builder{Workload: workload, Base: base}
}

// NewTraceBuilder returns a builder submitting the trace file at path
// inline.
func NewTraceBuilder(path string, base traceio.SearchSpec) (Builder, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Builder{}, err
	}
	return Builder{Trace: json.RawMessage(raw), Base: base}, nil
}

// Request returns the base request. Submitting it repeatedly hits the
// strategy cache once the first submission completes.
func (b Builder) Request() *traceio.StrategyRequest {
	return &traceio.StrategyRequest{Workload: b.Workload, Trace: b.Trace, Search: b.Base}
}

// WithSeed returns the base request with the GA seed replaced. Unique
// seeds defeat the fingerprint+spec cache, making the submission
// cache-cold.
func (b Builder) WithSeed(seed int64) *traceio.StrategyRequest {
	r := b.Request()
	r.Search.Seed = seed
	return r
}
