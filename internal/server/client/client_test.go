package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flaky answers failCode for the first failN requests, then 200.
func flaky(failN int32, failCode int) (*httptest.Server, *int32) {
	var n int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&n, 1) <= failN {
			w.WriteHeader(failCode)
			w.Write([]byte(`{"error": "transient"}`))
			return
		}
		w.Write([]byte(`{"status": "ok"}`))
	}))
	return ts, &n
}

func TestRetryRecoversFrom5xx(t *testing.T) {
	ts, hits := flaky(2, http.StatusBadGateway)
	defer ts.Close()
	c := New(ts.URL)
	c.Retry = &Retry{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health after 2 transient 502s: %v", err)
	}
	if got := atomic.LoadInt32(hits); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 failures + 1 success)", got)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	ts, hits := flaky(99, http.StatusInternalServerError)
	defer ts.Close()
	c := New(ts.URL)
	c.Retry = &Retry{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := c.Health(ctx)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("want the final 500 surfaced, got %v", err)
	}
	if got := atomic.LoadInt32(hits); got != 3 {
		t.Errorf("server saw %d requests, want exactly Attempts=3", got)
	}
}

func TestRetryDoesNotRetry503LoadShedding(t *testing.T) {
	ts, hits := flaky(99, http.StatusServiceUnavailable)
	defer ts.Close()
	c := New(ts.URL)
	c.Retry = &Retry{Attempts: 5, Base: time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := c.Health(ctx)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want the 503 surfaced immediately, got %v", err)
	}
	if got := atomic.LoadInt32(hits); got != 1 {
		t.Errorf("server saw %d requests; 503 load shedding must not be retried", got)
	}
}

func TestRetryDoesNotRetry4xx(t *testing.T) {
	ts, hits := flaky(99, http.StatusNotFound)
	defer ts.Close()
	c := New(ts.URL)
	c.Retry = &Retry{Attempts: 5, Base: time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Health(ctx); err == nil {
		t.Fatal("404 did not surface")
	}
	if got := atomic.LoadInt32(hits); got != 1 {
		t.Errorf("server saw %d requests; client errors must not be retried", got)
	}
}

func TestRetryRecoversFromTransportError(t *testing.T) {
	// A listener that is closed before the first attempt: connection
	// refused is a transport error and must be retried. The test server
	// is started on the same port for the later attempts — racing that
	// rebind is fragile, so instead verify the cheap property: with no
	// server at all, the client makes exactly Attempts connection tries.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	c := New(url)
	var tries int32
	c.Trace = func(ri RequestInfo) { atomic.AddInt32(&tries, 1) }
	c.Retry = &Retry{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Health(ctx); err == nil {
		t.Fatal("health against a closed listener succeeded")
	}
	if got := atomic.LoadInt32(&tries); got != 3 {
		t.Errorf("client made %d connection attempts, want 3", got)
	}
}

func TestNoRetryByDefault(t *testing.T) {
	ts, hits := flaky(99, http.StatusBadGateway)
	defer ts.Close()
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Health(ctx); err == nil {
		t.Fatal("502 did not surface")
	}
	if got := atomic.LoadInt32(hits); got != 1 {
		t.Errorf("server saw %d requests; a nil Retry must mean exactly one attempt", got)
	}
}

func TestBackoffDeterministicForSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		r := &Retry{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: seed}
		var out []time.Duration
		for i := 0; i < 6; i++ {
			out = append(out, r.backoff(i))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff stream not reproducible for a fixed seed: %v vs %v", a, b)
		}
	}
	// Delays are jittered within (0, min(Base·2ⁿ, Cap)].
	caps := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, d := range a {
		if d <= 0 || d > caps[i]*time.Millisecond {
			t.Errorf("backoff(%d) = %v outside (0, %v]", i, d, caps[i]*time.Millisecond)
		}
	}
}
