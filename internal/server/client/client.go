// Package client is the Go client for the dvfsd strategy service. It
// speaks the traceio wire contract over plain net/http and is the
// implementation behind cmd/dvfsctl.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"npudvfs/internal/traceio"
)

// Client talks to one dvfsd instance.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Trace, if set, is invoked after every HTTP round trip the client
	// makes — including each poll inside Wait and each retry attempt —
	// with the request's timing and outcome. It must be safe for
	// concurrent use; the load generator installs one to build
	// transport-level latency and status-code distributions.
	Trace func(RequestInfo)
	// Retry, if set, retries transient failures (transport errors and
	// retryable 5xx responses) with bounded jittered backoff. Nil means
	// no retries — every attempt is surfaced, which the load generator
	// depends on to attribute failures.
	Retry *Retry
}

// Retry is a bounded exponential-backoff policy. 503 is deliberately
// NOT retried: dvfsd answers 503 for queue-full load shedding, and
// hammering a saturated daemon defeats the shedding.
type Retry struct {
	// Attempts is the total number of tries (default 3 when Retry is
	// non-nil).
	Attempts int
	// Base is the first backoff delay (default 100ms); each retry
	// doubles it up to Cap (default 2s).
	Base time.Duration
	Cap  time.Duration
	// Seed seeds the jitter stream so callers that need reproducible
	// schedules (frozen-seed methodology) get one; 0 uses seed 1.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// backoff returns the jittered delay before retry attempt n (0-based):
// a uniformly random fraction of min(Base·2ⁿ, Cap), so synchronized
// clients desynchronize instead of re-colliding.
func (r *Retry) backoff(n int) time.Duration {
	r.once.Do(func() {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		// Explicit seeded source (never the process-global RNG): the
		// jitter stream is reproducible for a fixed Retry.Seed.
		r.rng = rand.New(rand.NewSource(seed))
	})
	base := r.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cp := r.Cap
	if cp <= 0 {
		cp = 2 * time.Second
	}
	d := base << uint(n)
	if d > cp || d <= 0 {
		d = cp
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(d)) + 1)
}

func (r *Retry) attempts() int {
	if r.Attempts < 1 {
		return 3
	}
	return r.Attempts
}

// retryable reports whether a failed attempt should be retried:
// transport errors and 5xx responses, except 503 (load shedding).
func retryable(code int, err error) bool {
	if code == 0 {
		return err != nil // transport failure, no response arrived
	}
	return code >= 500 && code != http.StatusServiceUnavailable
}

// RequestInfo describes one completed HTTP round trip.
type RequestInfo struct {
	Method string
	Path   string
	// Code is the HTTP status, or 0 when the request failed in
	// transport before a response arrived.
	Code     int
	Err      error
	Duration time.Duration
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dvfsd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// trace reports one finished round trip to the Trace hook, if any.
func (c *Client) trace(method, path string, code int, err error, start time.Time) {
	if c.Trace != nil {
		c.Trace(RequestInfo{Method: method, Path: path, Code: code, Err: err, Duration: time.Since(start)})
	}
}

// do runs one API call, retrying transient failures when c.Retry is
// set. body is a byte slice — not a Reader — so every attempt replays
// it from the start.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := 1
	if c.Retry != nil {
		attempts = c.Retry.attempts()
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.Retry.backoff(n - 1)):
			}
		}
		code, err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(code, err) {
			return err
		}
	}
	return lastErr
}

// doOnce runs a single attempt and returns the HTTP status code (0 on
// transport failure) alongside the error.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.http().Do(req)
	if err != nil {
		c.trace(method, path, 0, err, start)
		return 0, err
	}
	c.trace(method, path, resp.StatusCode, nil, start)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var e traceio.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return resp.StatusCode, &StatusError{Code: resp.StatusCode, Message: e.Error}
		}
		return resp.StatusCode, &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(raw, out)
}

// Submit posts a strategy request and returns the job it created (or
// the completed cached job).
func (c *Client) Submit(ctx context.Context, req *traceio.StrategyRequest) (*traceio.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var st traceio.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/strategies", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*traceio.JobStatus, error) {
	var st traceio.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*traceio.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if traceio.IsTerminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Cluster fetches the daemon's cluster status: node identity, store
// backend and ring view.
func (c *Client) Cluster(ctx context.Context) (*traceio.ClusterStatus, error) {
	var st traceio.ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics returns the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	start := time.Now()
	resp, err := c.http().Do(req)
	if err != nil {
		c.trace(http.MethodGet, "/metrics", 0, err, start)
		return "", err
	}
	c.trace(http.MethodGet, "/metrics", resp.StatusCode, nil, start)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
	}
	return string(raw), nil
}
