// Package client is the Go client for the dvfsd strategy service. It
// speaks the traceio wire contract over plain net/http and is the
// implementation behind cmd/dvfsctl.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"npudvfs/internal/traceio"
)

// Client talks to one dvfsd instance.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Trace, if set, is invoked after every HTTP round trip the client
	// makes — including each poll inside Wait — with the request's
	// timing and outcome. It must be safe for concurrent use; the load
	// generator installs one to build transport-level latency and
	// status-code distributions.
	Trace func(RequestInfo)
}

// RequestInfo describes one completed HTTP round trip.
type RequestInfo struct {
	Method string
	Path   string
	// Code is the HTTP status, or 0 when the request failed in
	// transport before a response arrived.
	Code     int
	Err      error
	Duration time.Duration
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dvfsd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// trace reports one finished round trip to the Trace hook, if any.
func (c *Client) trace(method, path string, code int, err error, start time.Time) {
	if c.Trace != nil {
		c.Trace(RequestInfo{Method: method, Path: path, Code: code, Err: err, Duration: time.Since(start)})
	}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.http().Do(req)
	if err != nil {
		c.trace(method, path, 0, err, start)
		return err
	}
	c.trace(method, path, resp.StatusCode, nil, start)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e traceio.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return &StatusError{Code: resp.StatusCode, Message: e.Error}
		}
		return &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Submit posts a strategy request and returns the job it created (or
// the completed cached job).
func (c *Client) Submit(ctx context.Context, req *traceio.StrategyRequest) (*traceio.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var st traceio.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/strategies", bytes.NewReader(body), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*traceio.JobStatus, error) {
	var st traceio.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*traceio.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if traceio.IsTerminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics returns the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	start := time.Now()
	resp, err := c.http().Do(req)
	if err != nil {
		c.trace(http.MethodGet, "/metrics", 0, err, start)
		return "", err
	}
	c.trace(http.MethodGet, "/metrics", resp.StatusCode, nil, start)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
	}
	return string(raw), nil
}
