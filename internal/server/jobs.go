package server

import (
	"strings"
	"time"

	"npudvfs/internal/cluster/jobstore"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// job is one strategy-generation request moving through the queue.
// Every field is set before the queue send and never mutated after:
// the job's mutable state — the queued → running → terminal machine —
// lives in the job store (internal/cluster/jobstore), which is what
// the HTTP handlers read. That split is what makes the fs backend
// possible: each state transition is one store Update, and a record on
// disk is always a complete, serveable snapshot.
type job struct {
	id       string
	workload string
	cacheKey string
	spec     traceio.SearchSpec
	// model is the resolved workload; set at submission (or recovery),
	// read by the worker.
	model *workload.Model
	// req is the original submission body, persisted with the record so
	// a restarted daemon can re-resolve and re-run the job.
	req       *traceio.StrategyRequest
	submitted time.Time
}

// jobStatus reads one job's current status from the store.
func (s *Server) jobStatus(id string) (*traceio.JobStatus, bool) {
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, false
	}
	return rec.Status(), true
}

// storeUpdate persists a state transition, counting (but not
// propagating) durability errors: the record is always current in
// memory, so a full disk degrades persistence, not serving.
func (s *Server) storeUpdate(rec *jobstore.Record) {
	if err := s.store.Update(rec); err != nil {
		s.met.storeError()
	}
}

// millis converts a measured duration to the wire unit.
func millis(d time.Duration) units.Millis {
	return units.Millis(float64(d) / float64(time.Millisecond))
}

// nodePrefix extracts the node ID from a cluster job ID
// ("n1-j00000042" → "n1"). Single-node IDs ("j00000042") have none.
func nodePrefix(id string) string {
	i := strings.LastIndex(id, "-j")
	if i <= 0 {
		return ""
	}
	return id[:i]
}
