package server

import (
	"fmt"
	"sync"
	"time"

	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// job is one strategy-generation request moving through the queue.
// All mutable fields are guarded by mu; the HTTP handlers read
// through status() while a worker advances the state machine
// queued → running → done | failed | cancelled.
type job struct {
	mu sync.Mutex

	id       string
	workload string
	cacheKey string
	spec     traceio.SearchSpec
	// model is the resolved workload; set at submission, read by the
	// worker, never mutated after.
	model *workload.Model

	state     string
	cached    bool
	err       error
	submitted time.Time
	queueDur  time.Duration
	searchDur time.Duration
	result    *traceio.StrategyResponse
}

func (j *job) status() *traceio.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &traceio.JobStatus{
		ID:           j.id,
		State:        j.state,
		Workload:     j.workload,
		Cached:       j.cached,
		QueueMillis:  units.Millis(float64(j.queueDur) / float64(time.Millisecond)),
		SearchMillis: units.Millis(float64(j.searchDur) / float64(time.Millisecond)),
		Result:       j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
}

// jobStore indexes jobs by ID and assigns sequential IDs. Completed
// jobs are retained (they are small — results live mostly in the
// shared cache) up to a bound, evicting the oldest terminal jobs
// first.
type jobStore struct {
	mu    sync.Mutex
	next  uint64
	m     map[string]*job
	order []string // insertion order, for bounded retention
	cap   int
}

func newJobStore(capacity int) *jobStore {
	if capacity < 1 {
		capacity = 1
	}
	return &jobStore{m: make(map[string]*job), cap: capacity}
}

func (s *jobStore) add(j *job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	j.id = fmt.Sprintf("j%08d", s.next)
	s.m[j.id] = j
	s.order = append(s.order, j.id)
	// Evict oldest terminal jobs beyond capacity; never evict live
	// ones — a client must always be able to poll a job it submitted.
	for len(s.m) > s.cap {
		evicted := false
		for i, id := range s.order {
			cand := s.m[id]
			if cand == nil {
				continue
			}
			cand.mu.Lock()
			terminal := cand.state == traceio.JobDone ||
				cand.state == traceio.JobFailed || cand.state == traceio.JobCancelled
			cand.mu.Unlock()
			if terminal {
				delete(s.m, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is live; let the store grow
		}
	}
	return j.id
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.m[id]
	return j, ok
}
