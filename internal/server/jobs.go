package server

import (
	"fmt"
	"sync"
	"time"

	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// job is one strategy-generation request moving through the queue.
// All mutable fields are guarded by mu; the HTTP handlers read
// through status() while a worker advances the state machine
// queued → running → done | failed | cancelled.
type job struct {
	mu sync.Mutex

	id       string
	workload string
	cacheKey string
	spec     traceio.SearchSpec
	// model is the resolved workload; set at submission, read by the
	// worker, never mutated after.
	model *workload.Model

	state     string
	cached    bool
	err       error
	submitted time.Time
	queueDur  time.Duration
	searchDur time.Duration
	result    *traceio.StrategyResponse
}

func (j *job) status() *traceio.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &traceio.JobStatus{
		ID:           j.id,
		State:        j.state,
		Workload:     j.workload,
		Cached:       j.cached,
		QueueMillis:  units.Millis(float64(j.queueDur) / float64(time.Millisecond)),
		SearchMillis: units.Millis(float64(j.searchDur) / float64(time.Millisecond)),
		Result:       j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// jobStore indexes jobs by ID and assigns sequential IDs. Completed
// jobs are retained (they are small — results live mostly in the
// shared cache) up to a bound, evicting the oldest terminal jobs
// first.
//
// Eviction is amortized O(1): instead of rescanning insertion order on
// every insert (O(n²) exactly when the store is full and submission
// rate peaks), terminal jobs queue up on a FIFO of eviction candidates
// — add for jobs born terminal (cache hits), noteTerminal when a
// worker finishes a live one — and eviction pops from its head. Live
// jobs never enter the FIFO, so a client can always poll a job it
// submitted until enough later jobs complete to push it out.
type jobStore struct {
	mu   sync.Mutex
	next uint64
	m    map[string]*job
	// terminal holds IDs of jobs that reached a terminal state, in
	// completion order; head indexes the next eviction candidate.
	// Entries for already-removed IDs are skipped lazily.
	terminal []string
	head     int
	cap      int
}

func newJobStore(capacity int) *jobStore {
	if capacity < 1 {
		capacity = 1
	}
	return &jobStore{m: make(map[string]*job), cap: capacity}
}

// add assigns the job its ID and publishes it. Callers must add a job
// before it can reach a worker (handleSubmit enqueues only after add
// returns): a worker mutates the job concurrently and reads j.id for
// noteTerminal, so the ID write must happen-before the queue send.
func (s *jobStore) add(j *job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("j%08d", s.next)
	j.mu.Lock()
	j.id = id
	terminal := traceio.IsTerminal(j.state)
	j.mu.Unlock()
	s.m[id] = j
	if terminal { // cache hits are born done
		s.terminal = append(s.terminal, id)
	}
	s.evictLocked()
	return id
}

// remove forgets a job that never reached a worker (queue-full
// rejection after the ID was assigned).
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
}

// noteTerminal marks a job eligible for eviction once a worker has
// moved it to a terminal state.
func (s *jobStore) noteTerminal(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return
	}
	s.terminal = append(s.terminal, id)
	s.evictLocked()
}

// evictLocked pops terminal jobs oldest-first until the store fits its
// bound; if everything is live the store grows instead. The drained
// prefix is compacted away once it dominates the slice so the FIFO's
// memory stays proportional to retained jobs.
func (s *jobStore) evictLocked() {
	for len(s.m) > s.cap && s.head < len(s.terminal) {
		delete(s.m, s.terminal[s.head])
		s.head++
	}
	if s.head > 64 && s.head*2 >= len(s.terminal) {
		s.terminal = append(s.terminal[:0], s.terminal[s.head:]...)
		s.head = 0
	}
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.m[id]
	return j, ok
}
