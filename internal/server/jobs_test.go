package server

import (
	"fmt"
	"testing"

	"npudvfs/internal/traceio"
)

func liveJob() *job   { return &job{state: traceio.JobQueued} }
func doneJob() *job   { return &job{state: traceio.JobDone} }
func failedJob() *job { return &job{state: traceio.JobFailed} }

func storeLen(s *jobStore) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestJobStoreEvictsOldestTerminalFirst(t *testing.T) {
	s := newJobStore(3)
	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, s.add(doneJob()))
	}
	if got := storeLen(s); got != 3 {
		t.Fatalf("store size %d, want capacity 3", got)
	}
	for _, id := range ids[:3] {
		if _, ok := s.get(id); ok {
			t.Errorf("oldest terminal job %s not evicted", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := s.get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
}

func TestJobStoreNeverEvictsLiveJobs(t *testing.T) {
	s := newJobStore(2)
	var live []string
	for i := 0; i < 5; i++ {
		live = append(live, s.add(liveJob()))
	}
	// All live: the store grows past capacity rather than dropping a
	// job a client could still poll.
	if got := storeLen(s); got != 5 {
		t.Fatalf("store size %d, want 5 (live jobs are never evicted)", got)
	}
	// A terminal insert is immediately the only candidate.
	victim := s.add(doneJob())
	if _, ok := s.get(victim); ok {
		t.Error("terminal job retained while the store is over capacity with live jobs")
	}
	for _, id := range live {
		if _, ok := s.get(id); !ok {
			t.Errorf("live job %s evicted", id)
		}
	}
	// Once a live job completes, noteTerminal makes it evictable.
	j, _ := s.get(live[0])
	j.mu.Lock()
	j.state = traceio.JobFailed
	j.mu.Unlock()
	s.noteTerminal(live[0])
	if _, ok := s.get(live[0]); ok {
		t.Error("completed job not evicted from an over-capacity store")
	}
}

func TestJobStoreRemoveForgetsRejectedJob(t *testing.T) {
	s := newJobStore(4)
	id := s.add(liveJob())
	s.remove(id)
	if _, ok := s.get(id); ok {
		t.Fatalf("removed job %s still in store", id)
	}
	// noteTerminal for an unknown ID (evicted or removed) is a no-op.
	s.noteTerminal(id)
	s.noteTerminal("j99999999")
}

func TestJobStoreSequentialIDs(t *testing.T) {
	s := newJobStore(8)
	for i := 1; i <= 3; i++ {
		if id := s.add(failedJob()); id != fmt.Sprintf("j%08d", i) {
			t.Errorf("id %d: got %s", i, id)
		}
	}
}

// BenchmarkJobStoreAddSaturated measures add while the store sits at
// capacity and every insert evicts — the pre-fix worst case, where a
// front-rescan made this O(n) per insert (O(n²) across a burst) at the
// exact moment submission rate peaks.
func BenchmarkJobStoreAddSaturated(b *testing.B) {
	s := newJobStore(4096)
	for i := 0; i < 4096; i++ {
		s.add(doneJob())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.add(doneJob())
	}
}
