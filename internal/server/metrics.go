package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"npudvfs/internal/ga"
	"npudvfs/internal/traceio"
)

// Declared label sets, enforced by dvfslint's metricflow analyzer:
// every statically-known label value written into the map-backed
// families below must be a member, so a typo'd state or direction
// can't silently fork a new series. Dynamic values (recovered record
// states, workload names) are exempt by construction.
var (
	jobsTotalLabels    = []string{traceio.JobDone, traceio.JobFailed, traceio.JobCancelled, "cached"}
	forwardsLabels     = []string{"out", "in", "fallback"}
	stageSecondsLabels = []string{"queue", "model", "search"}
)

// metrics is dvfsd's hand-rolled instrumentation, rendered in the
// Prometheus text exposition format by render(). The dependency-free
// subset used here (counters, gauges, fixed-bucket cumulative
// histograms) is all the service needs; pulling in a client library
// would violate the repo's stdlib-only rule.
type metrics struct {
	mu sync.Mutex
	// jobsTotal counts jobs by outcome: terminal state (done, failed,
	// cancelled) plus "cached" for submissions answered from the
	// strategy cache without a search.
	jobsTotal map[string]uint64
	// queueDepth and running are instantaneous gauges.
	queueDepth int
	running    int
	cacheHits  uint64
	cacheMiss  uint64
	// stageSeconds holds one latency histogram per pipeline stage:
	// queue (submit → dequeue), model (profiling + fitting) and search
	// (the GA).
	stageSeconds map[string]*histogram
	// GA throughput instrumentation: cumulative counters across all
	// finished searches, plus per-workload gauges reflecting the most
	// recent job (the operator-facing "how fast is the search engine
	// right now" view).
	gaEvals      uint64
	gaGens       uint64
	gaCacheHits  uint64
	gaMigrations uint64
	// gaIslands is the island count of the most recently finished
	// search — the fan-out the engine actually chose (it defaults from
	// GOMAXPROCS when the spec leaves it unset).
	gaIslands int
	gaJobs    map[string]gaJobStats
	// Cluster instrumentation: forwards by direction ("out" proxied to
	// the owner, "in" received from a peer, "fallback" owner unreachable
	// and served locally), job-store durability errors, and the number
	// of unfinished jobs recovered at boot.
	forwards      map[string]uint64
	storeErrors   uint64
	recoveredJobs int
	// relayErrors counts proxied responses whose body relay to the
	// client broke mid-copy (status already sent, so not retryable).
	relayErrors uint64
}

// gaJobStats is the last finished search's GA throughput for one
// workload. islandEvalsPerSec is indexed by island id; islands run
// concurrently over the worker pool, so each island's rate is its
// evaluation count over the same search wall time.
type gaJobStats struct {
	evalsPerSec       float64
	cacheHitRate      float64
	generations       int
	islandEvalsPerSec []float64
}

// stageBuckets spans sub-millisecond cache bookkeeping to multi-minute
// searches.
var stageBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []uint64  // per-bucket (non-cumulative) observation counts
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{bounds: stageBuckets, counts: make([]uint64, len(stageBuckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.total++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
}

func newMetrics() *metrics {
	return &metrics{
		jobsTotal:    make(map[string]uint64),
		stageSeconds: make(map[string]*histogram),
		gaJobs:       make(map[string]gaJobStats),
		forwards:     make(map[string]uint64),
	}
}

func (m *metrics) forward(direction string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.forwards[direction]++
}

func (m *metrics) relayError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.relayErrors++
}

func (m *metrics) storeError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeErrors++
}

func (m *metrics) setRecovered(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recoveredJobs = n
}

// observeGA records one finished search's GA counters: cumulative
// totals plus the per-workload last-job gauges. The workload label is
// normalized to lower case — the form requests name workloads in.
// searchSeconds is the GA wall time (the search stage, model building
// excluded).
func (m *metrics) observeGA(workload string, res *ga.Result, searchSeconds float64) {
	workload = strings.ToLower(workload)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gaEvals += uint64(res.Evaluations)
	m.gaGens += uint64(res.Generations)
	m.gaCacheHits += uint64(res.CacheHits)
	m.gaMigrations += uint64(res.Migrations)
	m.gaIslands = res.Islands
	st := gaJobStats{generations: res.Generations}
	if searchSeconds > 0 {
		st.evalsPerSec = float64(res.Evaluations) / searchSeconds
		st.islandEvalsPerSec = make([]float64, len(res.IslandEvaluations))
		for i, ev := range res.IslandEvaluations {
			st.islandEvalsPerSec[i] = float64(ev) / searchSeconds
		}
	}
	if res.Evaluations > 0 {
		st.cacheHitRate = float64(res.CacheHits) / float64(res.Evaluations)
	}
	m.gaJobs[workload] = st
}

func (m *metrics) jobFinished(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[state]++
}

// jobCached counts a submission answered from the strategy cache. It
// gets its own label under dvfsd_jobs_total instead of inflating
// state="done": done must track completed searches one-to-one with
// the search-latency histogram, or the two series disagree under
// cache-hot traffic.
func (m *metrics) jobCached() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal["cached"]++
}

func (m *metrics) setQueueDepth(depth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth = depth
}

func (m *metrics) runningDelta(d int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running += d
}

func (m *metrics) cacheHit(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMiss++
	}
}

func (m *metrics) observeStage(stage string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stageSeconds[stage]
	if !ok {
		h = newHistogram()
		m.stageSeconds[stage] = h
	}
	h.observe(seconds)
}

// snapshotJobs returns a copy of the per-state job counters (used by
// tests and by render).
func (m *metrics) snapshotJobs() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.jobsTotal))
	for k, v := range m.jobsTotal {
		out[k] = v
	}
	return out
}

// render writes the Prometheus text exposition format. Series are
// emitted in sorted label order so the output is deterministic.
func (m *metrics) render(w io.Writer, cacheLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP dvfsd_jobs_total Jobs by outcome: terminal search states, plus cached submissions answered without a search.")
	fmt.Fprintln(w, "# TYPE dvfsd_jobs_total counter")
	states := make([]string, 0, len(m.jobsTotal))
	for s := range m.jobsTotal {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "dvfsd_jobs_total{state=%q} %d\n", s, m.jobsTotal[s])
	}

	fmt.Fprintln(w, "# HELP dvfsd_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE dvfsd_queue_depth gauge")
	fmt.Fprintf(w, "dvfsd_queue_depth %d\n", m.queueDepth)

	fmt.Fprintln(w, "# HELP dvfsd_jobs_running Jobs currently in a worker.")
	fmt.Fprintln(w, "# TYPE dvfsd_jobs_running gauge")
	fmt.Fprintf(w, "dvfsd_jobs_running %d\n", m.running)

	fmt.Fprintln(w, "# HELP dvfsd_cache_hits_total Strategy cache hits.")
	fmt.Fprintln(w, "# TYPE dvfsd_cache_hits_total counter")
	fmt.Fprintf(w, "dvfsd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintln(w, "# HELP dvfsd_cache_misses_total Strategy cache misses.")
	fmt.Fprintln(w, "# TYPE dvfsd_cache_misses_total counter")
	fmt.Fprintf(w, "dvfsd_cache_misses_total %d\n", m.cacheMiss)
	fmt.Fprintln(w, "# HELP dvfsd_cache_entries Strategies currently cached.")
	fmt.Fprintln(w, "# TYPE dvfsd_cache_entries gauge")
	fmt.Fprintf(w, "dvfsd_cache_entries %d\n", cacheLen)

	fmt.Fprintln(w, "# HELP dvfsd_cluster_forwards_total Proxied submissions/polls: out to the key owner, in from a peer, fallback served locally with the owner unreachable.")
	fmt.Fprintln(w, "# TYPE dvfsd_cluster_forwards_total counter")
	dirs := make([]string, 0, len(m.forwards))
	for d := range m.forwards {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		fmt.Fprintf(w, "dvfsd_cluster_forwards_total{direction=%q} %d\n", d, m.forwards[d])
	}

	fmt.Fprintln(w, "# HELP dvfsd_relay_errors_total Proxied responses whose body relay broke mid-copy after the status line was sent.")
	fmt.Fprintln(w, "# TYPE dvfsd_relay_errors_total counter")
	fmt.Fprintf(w, "dvfsd_relay_errors_total %d\n", m.relayErrors)

	fmt.Fprintln(w, "# HELP dvfsd_store_errors_total Job-store persistence failures (records stay serveable from memory).")
	fmt.Fprintln(w, "# TYPE dvfsd_store_errors_total counter")
	fmt.Fprintf(w, "dvfsd_store_errors_total %d\n", m.storeErrors)
	fmt.Fprintln(w, "# HELP dvfsd_store_recovered_jobs Unfinished jobs recovered from the store at boot and re-enqueued.")
	fmt.Fprintln(w, "# TYPE dvfsd_store_recovered_jobs gauge")
	fmt.Fprintf(w, "dvfsd_store_recovered_jobs %d\n", m.recoveredJobs)

	fmt.Fprintln(w, "# HELP dvfsd_ga_evaluations_total Individuals evaluated by the GA across all searches.")
	fmt.Fprintln(w, "# TYPE dvfsd_ga_evaluations_total counter")
	fmt.Fprintf(w, "dvfsd_ga_evaluations_total %d\n", m.gaEvals)
	fmt.Fprintln(w, "# HELP dvfsd_ga_generations_total GA generations completed across all searches.")
	fmt.Fprintln(w, "# TYPE dvfsd_ga_generations_total counter")
	fmt.Fprintf(w, "dvfsd_ga_generations_total %d\n", m.gaGens)
	fmt.Fprintln(w, "# HELP dvfsd_ga_score_cache_hits_total GA score-cache hits across all searches.")
	fmt.Fprintln(w, "# TYPE dvfsd_ga_score_cache_hits_total counter")
	fmt.Fprintf(w, "dvfsd_ga_score_cache_hits_total %d\n", m.gaCacheHits)
	fmt.Fprintln(w, "# HELP dvfsd_ga_migrations_total Individuals exchanged over the island ring across all searches.")
	fmt.Fprintln(w, "# TYPE dvfsd_ga_migrations_total counter")
	fmt.Fprintf(w, "dvfsd_ga_migrations_total %d\n", m.gaMigrations)
	fmt.Fprintln(w, "# HELP dvfsd_ga_islands Island count of the last finished search.")
	fmt.Fprintln(w, "# TYPE dvfsd_ga_islands gauge")
	fmt.Fprintf(w, "dvfsd_ga_islands %d\n", m.gaIslands)

	workloads := make([]string, 0, len(m.gaJobs))
	for wl := range m.gaJobs {
		workloads = append(workloads, wl)
	}
	sort.Strings(workloads)
	fmt.Fprintln(w, "# HELP dvfsd_job_ga_evals_per_sec GA evaluations per second of the last finished search.")
	fmt.Fprintln(w, "# TYPE dvfsd_job_ga_evals_per_sec gauge")
	for _, wl := range workloads {
		fmt.Fprintf(w, "dvfsd_job_ga_evals_per_sec{workload=%q} %g\n", wl, m.gaJobs[wl].evalsPerSec)
	}
	fmt.Fprintln(w, "# HELP dvfsd_job_ga_score_cache_hit_rate GA score-cache hit rate of the last finished search.")
	fmt.Fprintln(w, "# TYPE dvfsd_job_ga_score_cache_hit_rate gauge")
	for _, wl := range workloads {
		fmt.Fprintf(w, "dvfsd_job_ga_score_cache_hit_rate{workload=%q} %g\n", wl, m.gaJobs[wl].cacheHitRate)
	}
	fmt.Fprintln(w, "# HELP dvfsd_job_ga_generations GA generations completed by the last finished search.")
	fmt.Fprintln(w, "# TYPE dvfsd_job_ga_generations gauge")
	for _, wl := range workloads {
		fmt.Fprintf(w, "dvfsd_job_ga_generations{workload=%q} %d\n", wl, m.gaJobs[wl].generations)
	}
	fmt.Fprintln(w, "# HELP dvfsd_job_ga_island_evals_per_sec Per-island GA evaluations per second of the last finished search.")
	fmt.Fprintln(w, "# TYPE dvfsd_job_ga_island_evals_per_sec gauge")
	for _, wl := range workloads {
		for i, rate := range m.gaJobs[wl].islandEvalsPerSec {
			fmt.Fprintf(w, "dvfsd_job_ga_island_evals_per_sec{workload=%q,island=\"%d\"} %g\n", wl, i, rate)
		}
	}

	fmt.Fprintln(w, "# HELP dvfsd_stage_seconds Per-stage job latency.")
	fmt.Fprintln(w, "# TYPE dvfsd_stage_seconds histogram")
	stages := make([]string, 0, len(m.stageSeconds))
	for s := range m.stageSeconds {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		h := m.stageSeconds[s]
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "dvfsd_stage_seconds_bucket{stage=%q,le=%q} %d\n", s, formatBound(ub), cum)
		}
		fmt.Fprintf(w, "dvfsd_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", s, h.total)
		fmt.Fprintf(w, "dvfsd_stage_seconds_sum{stage=%q} %g\n", s, h.sum)
		fmt.Fprintf(w, "dvfsd_stage_seconds_count{stage=%q} %d\n", s, h.total)
	}
}

func formatBound(ub float64) string { return fmt.Sprintf("%g", ub) }
