package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"npudvfs/internal/traceio"
)

// Stress tests for the serving path's job lifecycle. Under -race these
// are the data-race gate for submit/poll/shutdown; without -race they
// still pin the logical invariants (no lost jobs, shutdown means
// quiesced) the load harness depends on.

// deepSearch is a request whose GA runs long enough (minutes at full
// speed) to keep a worker busy for a whole test; cleanup force-cancels
// it at a generation boundary.
func deepSearch(seed int64) string {
	return fmt.Sprintf(`{"workload": "resnet50", "search": {"pop": 200, "gens": 2000000, "seed": %d}}`, seed)
}

// TestSubmitPollNoLostJobs reproduces the submit-path lifecycle race:
// before the fix, handleSubmit enqueued the job and only then let
// jobStore.add assign its ID, so a fast worker could finish the job —
// and add, seeing it terminal in an over-capacity store whose other
// entries are all live, would evict the job it was inserting. The
// submitter got a 202 with an ID that immediately 404s. The write of
// j.id also raced the worker's read of it (noteTerminal).
//
// Setup: QueueDepth 1 so the retention bound is tight, long-running
// jobs pinning most workers (the store is saturated with live
// entries), a stream of fast submissions through the remaining
// worker. With the fix (ID assigned and job published before the
// queue send, retention covering workers+queue+1) every accepted job
// is pollable from the moment submit returns until its result has
// been observed.
func TestSubmitPollNoLostJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 1})

	for i := 0; i < 2; i++ {
		code, _ := submit(t, ts, deepSearch(int64(100+i)))
		if code != http.StatusAccepted {
			t.Fatalf("deep submit %d: code %d", i, code)
		}
	}

	iterations := 25
	if testing.Short() {
		iterations = 5
	}
	for i := 0; i < iterations; i++ {
		code, st := submit(t, ts, smallSearch(int64(1000+i)))
		if code != http.StatusAccepted {
			t.Fatalf("fast submit %d: code %d", i, code)
		}
		if st.ID == "" {
			t.Fatalf("fast submit %d: accepted without an ID", i)
		}
		// The accepted job must be pollable immediately — a 404 here
		// is the lost-job manifestation of the pre-fix ordering.
		if code, _ := getJob(t, ts, st.ID); code != http.StatusOK {
			t.Fatalf("fast submit %d: job %s lost right after 202 (GET %d)", i, st.ID, code)
		}
		// ... and the submit/poll chain must converge.
		deadline := time.Now().Add(time.Minute)
		for {
			code, polled := getJob(t, ts, st.ID)
			if code != http.StatusOK {
				t.Fatalf("fast submit %d: job %s lost mid-poll (GET %d)", i, st.ID, code)
			}
			if traceio.IsTerminal(polled.State) {
				if polled.State != traceio.JobDone {
					t.Fatalf("fast submit %d: state %q (%s)", i, polled.State, polled.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fast submit %d: job %s never finished", i, st.ID)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestSubmitPollMetricsConcurrentStress fans concurrent submitters,
// pollers and /metrics scrapers at one server — the shape dvfsload
// generates. Under -race this gates the whole serving path including
// the metrics mutex; the capacity is large enough that a just-added
// job is never evicted before its first poll.
func TestSubmitPollMetricsConcurrentStress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8}) // retention cap 32

	perWorker := 25
	if testing.Short() {
		perWorker = 8
	}
	const submitters = 4
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perWorker+1)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(g*1000 + i + 1)
				code, st := submit(t, ts, smallSearch(seed))
				switch code {
				case http.StatusAccepted, http.StatusOK:
				case http.StatusServiceUnavailable:
					continue // queue-full rejects are load shedding, not loss
				default:
					errs <- fmt.Errorf("submitter %d: code %d", g, code)
					return
				}
				if code, _ := getJob(t, ts, st.ID); code != http.StatusOK {
					errs <- fmt.Errorf("submitter %d: job %s lost right after submit (GET %d)", g, st.ID, code)
					return
				}
			}
		}(g)
	}
	// Mid-run scrapes: the load generator reads queue-depth curves
	// while traffic is in flight, so the metrics path must be
	// race-clean against the job lifecycle.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = metricsText(t, ts)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentShutdownWaits pins the drain contract: every Shutdown
// caller — not just the first — blocks until the workers have exited.
// Before the fix a second concurrent call returned nil immediately
// while searches were still draining, so callers treating "shutdown
// returned" as "daemon quiesced" raced the drain.
func TestConcurrentShutdownWaits(t *testing.T) {
	lab, bundle := fixture(t)
	s, err := New(Config{
		Workers: 1, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One search long enough (tens of thousands of generations) that
	// the drain measurably outlives the second Shutdown call.
	code, st := submit(t, ts, `{"workload": "resnet50", "search": {"pop": 200, "gens": 30000, "seed": 3}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	if _, ok := s.jobStatus(st.ID); !ok {
		t.Fatalf("job %s not in store", st.ID)
	}
	jobID := st.ID

	const callers = 3
	states := make(chan string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger the callers so all but the first hit the
			// already-closed path.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				states <- fmt.Sprintf("error: %v", err)
				return
			}
			// The moment any Shutdown call returns nil, the daemon
			// must be quiesced: no worker is still mutating jobs.
			js, ok := s.jobStatus(jobID)
			if !ok {
				states <- "missing"
				return
			}
			states <- js.State
		}(i)
	}
	wg.Wait()
	close(states)
	for got := range states {
		if !traceio.IsTerminal(got) {
			t.Errorf("Shutdown returned nil while the job was still %q; drain not awaited", got)
		}
	}
}
