// Package server implements dvfsd, the DVFS strategy service: an HTTP
// daemon that accepts workload traces (the traceio wire format), runs
// the Fig. 1 modeling + genetic-search pipeline on a bounded worker
// pool, and returns strategies with model-predicted energy/perf
// deltas. Completed strategies are cached in an LRU keyed by canonical
// trace fingerprint + search config, so resubmitting a trace is a
// sub-millisecond hit instead of a multi-second search.
//
// Determinism contract: the pipeline is the exact one cmd/dvfs-run
// executes (same Lab seed, same profiler offsets, same GA), so for the
// same trace and search spec the served strategy is byte-identical to
// the batch path's — and byte-identical across resubmissions whether
// they hit the cache or re-run the search.
//
// Cluster mode (DESIGN.md §12): given a consistent-hash ring and a
// node ID, the daemon owns the slice of the strategy keyspace the ring
// assigns it. Submissions for keys it does not own are proxied to the
// owner (one hop, loop-guarded by the X-Dvfsd-Forwarded header), so
// every node is a full front end while each strategy is computed and
// cached on exactly one node. The determinism contract makes routing a
// pure optimization: any node serves byte-identical strategies, the
// ring only concentrates cache hits.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"npudvfs/internal/cluster/jobstore"
	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/core"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

// ForwardHeader marks a proxied request so the receiving node serves
// it locally instead of forwarding again: routing is at most one hop,
// even with disagreeing ring files. The value is the sending node's ID.
const ForwardHeader = "X-Dvfsd-Forwarded"

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent searches (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond
	// it are rejected with 503 (default 16).
	QueueDepth int
	// CacheSize is the strategy LRU capacity (default 128).
	CacheSize int
	// DefaultTimeout bounds a single job's model+search wall time when
	// the request does not set timeout_ms (default 10 minutes).
	DefaultTimeout time.Duration
	// Lab is the simulated accelerator the service optimizes for; nil
	// means experiments.NewLab().
	Lab *experiments.Lab
	// Bundles maps lower-cased workload names to pre-fitted models
	// (dvfsd -load-models): jobs for these workloads skip calibration
	// and fit-frequency profiling.
	Bundles map[string]*traceio.ModelBundle

	// Ring is the cluster topology; nil runs single-node. When set,
	// NodeID must name a ring member and submissions whose strategy key
	// hashes to another node are proxied to it.
	Ring *ring.Ring
	// NodeID identifies this daemon in the ring and prefixes its job
	// IDs ("n1-j00000001") so IDs are unique — and routable — cluster
	// wide.
	NodeID string
	// Store is the durable job index; nil means an in-process memory
	// store sized by Retention (single-node behavior, jobs die with the
	// process). An fs store makes acknowledged jobs survive restarts.
	Store jobstore.Store
}

func (c *Config) fillDefaults() {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.CacheSize < 1 {
		c.CacheSize = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.Lab == nil {
		c.Lab = experiments.NewLab()
	}
}

// Retention is the job-store bound for a daemon with the given worker
// pool and queue: every live job (workers + queue) plus headroom for
// completed ones. A bound below this lets a saturated store evict a
// fresh result before the submitter's first poll.
func Retention(workers, queueDepth int) int {
	return 4*queueDepth + workers + 1
}

// Server is the dvfsd service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg    Config
	lab    *experiments.Lab
	cache  *strategyCache
	store  jobstore.Store
	met    *metrics
	mux    *http.ServeMux
	ring   *ring.Ring
	nodeID string
	// peers issues proxied requests to other ring nodes.
	peers *http.Client

	queue chan *job
	// baseCtx parents every job context; cancelAll force-cancels
	// in-flight searches when a shutdown deadline expires.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	workers   sync.WaitGroup
	// stopping is closed when Shutdown begins; it unblocks the recovery
	// goroutine's queue sends so shutdown never deadlocks behind a full
	// queue.
	stopping chan struct{}
	// requeueDone is closed once the recovery goroutine has stopped
	// sending; the queue may only be closed after it (a send on a
	// closed channel panics).
	requeueDone chan struct{}
	// drained is closed once every worker has exited; all Shutdown
	// callers wait on it so "Shutdown returned nil" always means
	// "daemon quiesced", not "someone else is draining".
	drained chan struct{}

	mu     sync.Mutex
	closed bool
}

// New starts the worker pool — re-enqueuing any unfinished jobs the
// store recovered from a previous process — and returns the service.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.Ring != nil {
		if cfg.NodeID == "" {
			return nil, errors.New("server: cluster mode requires a node ID")
		}
		if _, ok := cfg.Ring.Lookup(cfg.NodeID); !ok {
			return nil, fmt.Errorf("server: node %q is not a ring member", cfg.NodeID)
		}
	}
	store := cfg.Store
	if store == nil {
		prefix := ""
		if cfg.NodeID != "" {
			prefix = cfg.NodeID + "-"
		}
		store = jobstore.NewMemory(Retention(cfg.Workers, cfg.QueueDepth), prefix)
	}
	//lint:allow ctxflow daemon lifecycle root: New owns the process-long context that Shutdown cancels
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		lab:         cfg.Lab,
		cache:       newStrategyCache(cfg.CacheSize),
		store:       store,
		met:         newMetrics(),
		mux:         http.NewServeMux(),
		ring:        cfg.Ring,
		nodeID:      cfg.NodeID,
		peers:       &http.Client{Timeout: 30 * time.Second},
		queue:       make(chan *job, cfg.QueueDepth),
		baseCtx:     ctx,
		cancelAll:   cancel,
		stopping:    make(chan struct{}),
		requeueDone: make(chan struct{}),
		drained:     make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/strategies", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	pending := store.Pending()
	s.met.setRecovered(len(pending))
	if len(pending) == 0 {
		close(s.requeueDone)
	} else {
		go s.requeue(pending)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// requeue feeds recovered jobs back into the queue: the jobs a dead
// process acknowledged with 202 but never finished. Sends block until
// a worker frees queue space (recovered jobs may outnumber the queue)
// and abort on shutdown.
func (s *Server) requeue(pending []*jobstore.Record) {
	defer close(s.requeueDone)
	for _, rec := range pending {
		if rec.Request == nil {
			s.failRecovered(rec, errors.New("recovered job has no request body"))
			continue
		}
		m, err := rec.Request.Resolve()
		if err != nil {
			s.failRecovered(rec, err)
			continue
		}
		j := &job{
			id:        rec.ID,
			workload:  rec.Workload,
			cacheKey:  rec.CacheKey,
			spec:      rec.Request.Search,
			model:     m,
			req:       rec.Request,
			submitted: time.Now(),
		}
		// A record recovered mid-run shows queued again until a worker
		// picks it up — pollers see a consistent restart of the machine,
		// not a job stuck "running" in a process that no longer exists.
		s.storeUpdate(&jobstore.Record{
			ID: rec.ID, State: traceio.JobQueued, Workload: rec.Workload,
			CacheKey: rec.CacheKey, Request: rec.Request,
		})
		select {
		case s.queue <- j:
		case <-s.stopping:
			return
		}
	}
}

// failRecovered marks a recovered record that cannot be re-run (no
// request body, or the workload no longer resolves) as failed, so its
// submitter polls a terminal answer instead of a job frozen in queued.
func (s *Server) failRecovered(rec *jobstore.Record, err error) {
	s.storeUpdate(&jobstore.Record{
		ID: rec.ID, State: traceio.JobFailed, Workload: rec.Workload,
		CacheKey: rec.CacheKey,
		Error:    fmt.Sprintf("not recoverable after restart: %v", err),
	})
	s.met.jobFinished(traceio.JobFailed)
}

// Handler returns the HTTP surface, suitable for http.Server and
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting jobs and drains the queue and in-flight
// searches. If ctx expires first, remaining searches are
// force-cancelled (they unwind at the next GA generation boundary) and
// Shutdown waits for the workers to exit before returning ctx's error.
//
// Shutdown is safe to call concurrently: every caller blocks on the
// shared drain channel, so no caller returns nil while workers are
// still running. (Previously a second call returned nil immediately,
// and callers treating that as "daemon quiesced" raced the drain.)
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stopping)
		// The caller that flips closed owns the drain watcher. The
		// queue closes only after the recovery goroutine has stopped
		// sending on it.
		go func() {
			<-s.requeueDone
			close(s.queue)
			s.workers.Wait()
			_ = s.store.Close()
			close(s.drained)
		}()
	}
	s.mu.Unlock()

	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-s.drained
		return ctx.Err()
	}
}

// worker consumes jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.met.setQueueDepth(len(s.queue))
		s.runJob(j)
	}
}

// runJob executes one search under the job's deadline, persisting each
// state transition.
func (s *Server) runJob(j *job) {
	queueDur := time.Since(j.submitted)
	s.storeUpdate(&jobstore.Record{
		ID: j.id, State: traceio.JobRunning, Workload: j.workload,
		CacheKey: j.cacheKey, Request: j.req, QueueMillis: millis(queueDur),
	})
	s.met.observeStage("queue", queueDur.Seconds())
	s.met.runningDelta(1)
	defer s.met.runningDelta(-1)

	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMillis > 0 {
		timeout = time.Duration(j.spec.TimeoutMillis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	start := time.Now()
	resp, gaRes, modelDur, err := s.generate(ctx, j.model, j.spec)
	searchDur := time.Since(start)
	s.met.observeStage("model", modelDur.Seconds())
	s.met.observeStage("search", (searchDur - modelDur).Seconds())
	if gaRes != nil {
		s.met.observeGA(j.workload, gaRes, (searchDur - modelDur).Seconds())
	}

	// Terminal records drop the request body: there is nothing left to
	// re-run, and results dominate the record size already.
	rec := &jobstore.Record{
		ID: j.id, Workload: j.workload, CacheKey: j.cacheKey,
		QueueMillis: millis(queueDur), SearchMillis: millis(searchDur),
	}
	switch {
	case err == nil:
		rec.State = traceio.JobDone
		rec.Result = resp
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		rec.State = traceio.JobCancelled
		rec.Error = err.Error()
	default:
		rec.State = traceio.JobFailed
		rec.Error = err.Error()
	}
	s.met.jobFinished(rec.State)
	if rec.State == traceio.JobDone {
		s.cache.Put(j.cacheKey, resp)
	}
	s.storeUpdate(rec)
}

// generate runs the modeling + search pipeline for one workload. It
// returns the GA result (for the /metrics throughput gauges) and how
// much of the wall time went into model building so the two stages can
// be observed separately.
func (s *Server) generate(ctx context.Context, m *workload.Model, spec traceio.SearchSpec) (*traceio.StrategyResponse, *ga.Result, time.Duration, error) {
	modelStart := time.Now()
	if err := ctx.Err(); err != nil {
		// A force-cancelled queued job must not start a multi-second
		// model build it would only throw away.
		return nil, nil, 0, fmt.Errorf("server: cancelled before model building: %w", err)
	}
	var (
		ms  *experiments.Models
		err error
	)
	if b, ok := s.cfg.Bundles[strings.ToLower(m.Name)]; ok {
		ms, err = s.lab.ModelsFromBundle(m, b)
	} else {
		ms, err = s.lab.BuildModels(m, true)
	}
	if err != nil {
		return nil, nil, time.Since(modelStart), err
	}
	modelDur := time.Since(modelStart)
	if err := ctx.Err(); err != nil {
		return nil, nil, modelDur, fmt.Errorf("server: cancelled after model building: %w", err)
	}

	cfg := core.DefaultConfig()
	cfg.PerfLossTarget = spec.TargetLoss
	cfg.FAIMicros = spec.FAIMillis.Micros()
	cfg.GA.PopSize = spec.Pop
	cfg.GA.Generations = spec.Gens
	cfg.GA.Seed = spec.Seed
	strat, stages, gaRes, err := core.GenerateContext(ctx, ms.Input(s.lab.Chip), cfg)
	if err != nil {
		return nil, nil, modelDur, err
	}

	resp, err := buildResponse(m.Name, spec, ms, s.lab, cfg, strat, stages, gaRes)
	return resp, gaRes, modelDur, err
}

// handleSubmit is POST /v1/strategies. A cache hit answers 200 with an
// already-done job; otherwise the job is queued and answered 202 — on
// this node if it owns the strategy key (or there is no ring), else on
// the owner via a single loop-guarded proxy hop.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req traceio.StrategyRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := req.Resolve()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, traceio.ErrUnknownWorkload) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	key := traceio.CacheKey(traceio.Fingerprint(m.Trace), req.Search)

	if s.ring != nil {
		if r.Header.Get(ForwardHeader) != "" {
			// Already proxied once: serve locally regardless of what our
			// ring file says, so disagreeing topologies degrade to an
			// extra hop, never a loop.
			s.met.forward("in")
		} else if owner := s.ring.Owner(key); owner.ID != s.nodeID {
			if s.proxy(w, owner, "POST", "/v1/strategies", raw) {
				return
			}
			// Owner unreachable: serve locally. The strategy is
			// byte-identical anywhere; only cache locality suffers.
			s.met.forward("fallback")
		}
	}

	if resp, ok := s.cache.Get(key); ok {
		s.met.cacheHit(true)
		rec := &jobstore.Record{
			State: traceio.JobDone, Workload: m.Name, CacheKey: key,
			Cached: true, Result: resp,
		}
		if _, err := s.store.Add(rec); err != nil {
			s.met.storeError()
		}
		// Cache hits run no search: counting them as finished "done"
		// jobs would make dvfsd_jobs_total{state="done"} disagree with
		// the search-latency series under hot traffic. They get their
		// own label instead.
		s.met.jobCached()
		writeJSON(w, http.StatusOK, rec.Status())
		return
	}
	s.met.cacheHit(false)

	rec := &jobstore.Record{
		State: traceio.JobQueued, Workload: m.Name, CacheKey: key, Request: &req,
	}

	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	// Assign the ID and publish the record BEFORE the queue send: the
	// moment the job is on the queue a worker may finish it and persist
	// a terminal transition, so an unpublished record would drop the
	// result — and the submitter could never poll the ID it was
	// acknowledged with. The store write is disk I/O on the fs backend,
	// so it must not happen under s.mu (lockorder); instead the closed
	// check is repeated under the lock before the send, and a record
	// published during a shutdown race is removed again.
	id, addErr := s.store.Add(rec)
	if addErr != nil {
		s.met.storeError()
	}
	j := &job{
		id: id, workload: m.Name, cacheKey: key, spec: req.Search,
		model: m, req: &req, submitted: time.Now(),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.store.Remove(id)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.store.Remove(id)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("queue full (%d jobs waiting); retry later", s.cfg.QueueDepth))
		return
	}
	s.met.setQueueDepth(len(s.queue))
	writeJSON(w, http.StatusAccepted, rec.Status())
}

// handleJob is GET /v1/jobs/{id}. In cluster mode, IDs carry their
// node prefix, so polls for jobs another node accepted are proxied to
// it.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.ring != nil && r.Header.Get(ForwardHeader) == "" {
		if nid := nodePrefix(id); nid != "" && nid != s.nodeID {
			if n, ok := s.ring.Lookup(nid); ok && s.proxy(w, n, "GET", "/v1/jobs/"+id, nil) {
				return
			}
			// Unknown node or unreachable: fall through to the local
			// store, which answers 404 unless this node served the job
			// as a fallback.
		}
	}
	st, ok := s.jobStatus(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// proxy forwards a request to a peer node and relays its response
// verbatim. Returns false on transport failure — the caller falls back
// to serving locally — and true once any response (success or error)
// has been relayed.
func (s *Server) proxy(w http.ResponseWriter, n ring.Node, method, path string, body []byte) bool {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, strings.TrimRight(n.Addr, "/")+path, rd)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardHeader, s.nodeID)
	resp, err := s.peers.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	s.met.forward("out")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is already on the wire, so the caller can't be
		// retried here — but a torn relay must be visible to operators.
		s.met.relayError()
	}
	return true
}

// handleCluster is GET /v1/cluster: this node's identity, store
// backend, and view of the ring.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	st := traceio.ClusterStatus{
		Node:  s.nodeID,
		Store: s.store.Kind(),
	}
	if s.ring != nil {
		st.VNodes = s.ring.VNodes()
		for _, n := range s.ring.Nodes() {
			st.Nodes = append(st.Nodes, traceio.ClusterNode{
				ID: n.ID, Addr: n.Addr, Self: n.ID == s.nodeID,
			})
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.cache.Len())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	//lint:allow errsink the response writer is the only channel back to the client; an encode failure has nowhere else to go
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, traceio.ErrorResponse{Error: err.Error()})
}
