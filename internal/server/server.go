// Package server implements dvfsd, the DVFS strategy service: an HTTP
// daemon that accepts workload traces (the traceio wire format), runs
// the Fig. 1 modeling + genetic-search pipeline on a bounded worker
// pool, and returns strategies with model-predicted energy/perf
// deltas. Completed strategies are cached in an LRU keyed by canonical
// trace fingerprint + search config, so resubmitting a trace is a
// sub-millisecond hit instead of a multi-second search.
//
// Determinism contract: the pipeline is the exact one cmd/dvfs-run
// executes (same Lab seed, same profiler offsets, same GA), so for the
// same trace and search spec the served strategy is byte-identical to
// the batch path's — and byte-identical across resubmissions whether
// they hit the cache or re-run the search.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"npudvfs/internal/core"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent searches (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond
	// it are rejected with 503 (default 16).
	QueueDepth int
	// CacheSize is the strategy LRU capacity (default 128).
	CacheSize int
	// DefaultTimeout bounds a single job's model+search wall time when
	// the request does not set timeout_ms (default 10 minutes).
	DefaultTimeout time.Duration
	// Lab is the simulated accelerator the service optimizes for; nil
	// means experiments.NewLab().
	Lab *experiments.Lab
	// Bundles maps lower-cased workload names to pre-fitted models
	// (dvfsd -load-models): jobs for these workloads skip calibration
	// and fit-frequency profiling.
	Bundles map[string]*traceio.ModelBundle
}

func (c *Config) fillDefaults() {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.CacheSize < 1 {
		c.CacheSize = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.Lab == nil {
		c.Lab = experiments.NewLab()
	}
}

// Server is the dvfsd service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	lab   *experiments.Lab
	cache *strategyCache
	jobs  *jobStore
	met   *metrics
	mux   *http.ServeMux

	queue chan *job
	// baseCtx parents every job context; cancelAll force-cancels
	// in-flight searches when a shutdown deadline expires.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	workers   sync.WaitGroup
	// drained is closed once every worker has exited; all Shutdown
	// callers wait on it so "Shutdown returned nil" always means
	// "daemon quiesced", not "someone else is draining".
	drained chan struct{}

	mu     sync.Mutex
	closed bool
}

// New starts the worker pool and returns the service.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	//lint:allow ctxflow daemon lifecycle root: New owns the process-long context that Shutdown cancels
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		lab:   cfg.Lab,
		cache: newStrategyCache(cfg.CacheSize),
		// Retention must cover every live job (workers + queue) plus
		// headroom for completed ones: a bound below that lets a
		// saturated store evict a fresh result before the submitter's
		// first poll.
		jobs:      newJobStore(4*cfg.QueueDepth + cfg.Workers + 1),
		met:       newMetrics(),
		mux:       http.NewServeMux(),
		queue:     make(chan *job, cfg.QueueDepth),
		baseCtx:   ctx,
		cancelAll: cancel,
		drained:   make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/strategies", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface, suitable for http.Server and
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting jobs and drains the queue and in-flight
// searches. If ctx expires first, remaining searches are
// force-cancelled (they unwind at the next GA generation boundary) and
// Shutdown waits for the workers to exit before returning ctx's error.
//
// Shutdown is safe to call concurrently: every caller blocks on the
// shared drain channel, so no caller returns nil while workers are
// still running. (Previously a second call returned nil immediately,
// and callers treating that as "daemon quiesced" raced the drain.)
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		// The caller that flips closed owns the drain watcher.
		go func() {
			s.workers.Wait()
			close(s.drained)
		}()
	}
	s.mu.Unlock()

	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-s.drained
		return ctx.Err()
	}
}

// worker consumes jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.met.setQueueDepth(len(s.queue))
		s.runJob(j)
	}
}

// runJob executes one search under the job's deadline.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	j.state = traceio.JobRunning
	j.queueDur = time.Since(j.submitted)
	spec := j.spec
	m := j.model
	j.mu.Unlock()
	s.met.observeStage("queue", j.queueDur.Seconds())
	s.met.runningDelta(1)
	defer s.met.runningDelta(-1)

	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMillis > 0 {
		timeout = time.Duration(spec.TimeoutMillis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	start := time.Now()
	resp, gaRes, modelDur, err := s.generate(ctx, m, spec)
	searchDur := time.Since(start)
	s.met.observeStage("model", modelDur.Seconds())
	s.met.observeStage("search", (searchDur - modelDur).Seconds())
	if gaRes != nil {
		s.met.observeGA(j.workload, gaRes, (searchDur - modelDur).Seconds())
	}

	j.mu.Lock()
	j.searchDur = searchDur
	switch {
	case err == nil:
		j.state = traceio.JobDone
		j.result = resp
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		j.state = traceio.JobCancelled
		j.err = err
	default:
		j.state = traceio.JobFailed
		j.err = err
	}
	state := j.state
	j.mu.Unlock()
	s.met.jobFinished(state)
	if state == traceio.JobDone {
		s.cache.Put(j.cacheKey, resp)
	}
	// j.id is safe to read without j.mu: it was assigned before the
	// job was enqueued (jobStore.add happens-before the queue send).
	s.jobs.noteTerminal(j.id)
}

// generate runs the modeling + search pipeline for one workload. It
// returns the GA result (for the /metrics throughput gauges) and how
// much of the wall time went into model building so the two stages can
// be observed separately.
func (s *Server) generate(ctx context.Context, m *workload.Model, spec traceio.SearchSpec) (*traceio.StrategyResponse, *ga.Result, time.Duration, error) {
	modelStart := time.Now()
	if err := ctx.Err(); err != nil {
		// A force-cancelled queued job must not start a multi-second
		// model build it would only throw away.
		return nil, nil, 0, fmt.Errorf("server: cancelled before model building: %w", err)
	}
	var (
		ms  *experiments.Models
		err error
	)
	if b, ok := s.cfg.Bundles[strings.ToLower(m.Name)]; ok {
		ms, err = s.lab.ModelsFromBundle(m, b)
	} else {
		ms, err = s.lab.BuildModels(m, true)
	}
	if err != nil {
		return nil, nil, time.Since(modelStart), err
	}
	modelDur := time.Since(modelStart)
	if err := ctx.Err(); err != nil {
		return nil, nil, modelDur, fmt.Errorf("server: cancelled after model building: %w", err)
	}

	cfg := core.DefaultConfig()
	cfg.PerfLossTarget = spec.TargetLoss
	cfg.FAIMicros = spec.FAIMillis.Micros()
	cfg.GA.PopSize = spec.Pop
	cfg.GA.Generations = spec.Gens
	cfg.GA.Seed = spec.Seed
	strat, stages, gaRes, err := core.GenerateContext(ctx, ms.Input(s.lab.Chip), cfg)
	if err != nil {
		return nil, nil, modelDur, err
	}

	resp, err := buildResponse(m.Name, spec, ms, s.lab, cfg, strat, stages, gaRes)
	return resp, gaRes, modelDur, err
}

// handleSubmit is POST /v1/strategies. A cache hit answers 200 with an
// already-done job; otherwise the job is queued and answered 202.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req traceio.StrategyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := req.Resolve()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, traceio.ErrUnknownWorkload) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	key := traceio.CacheKey(traceio.Fingerprint(m.Trace), req.Search)

	if resp, ok := s.cache.Get(key); ok {
		s.met.cacheHit(true)
		j := &job{
			workload:  m.Name,
			cacheKey:  key,
			spec:      req.Search,
			state:     traceio.JobDone,
			cached:    true,
			submitted: time.Now(),
			result:    resp,
		}
		s.jobs.add(j)
		// Cache hits run no search: counting them as finished "done"
		// jobs would make dvfsd_jobs_total{state="done"} disagree with
		// the search-latency series under hot traffic. They get their
		// own label instead.
		s.met.jobCached()
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	s.met.cacheHit(false)

	j := &job{
		workload:  m.Name,
		cacheKey:  key,
		spec:      req.Search,
		model:     m,
		state:     traceio.JobQueued,
		submitted: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	// Assign the ID and publish the job BEFORE the queue send: the
	// moment j is on the queue a worker may mutate it and read j.id
	// (noteTerminal), so enqueueing an ID-less job is a data race —
	// and the job could finish, be seen as terminal by its own add,
	// and be evicted before the submitter could ever poll it.
	s.jobs.add(j)
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.jobs.remove(j.id)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("queue full (%d jobs waiting); retry later", s.cfg.QueueDepth))
		return
	}
	s.met.setQueueDepth(len(s.queue))
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.cache.Len())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, traceio.ErrorResponse{Error: err.Error()})
}
