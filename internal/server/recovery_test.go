package server

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"npudvfs/internal/cluster/jobstore"
	"npudvfs/internal/traceio"
)

// seedStore simulates a crashed daemon: records written to an fs store
// by a process that died before finishing them. Returns the store
// directory and the IDs in submission order.
func seedStore(t *testing.T, dir string, recs []*jobstore.Record) []string {
	t.Helper()
	st, err := jobstore.OpenFS(dir, 64, "")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(recs))
	for i, rec := range recs {
		id, err := st.Add(rec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

func strategyReq(t *testing.T, body string) *traceio.StrategyRequest {
	t.Helper()
	var req traceio.StrategyRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	return &req
}

// waitStatus polls the server-side store until the job is terminal.
func waitStatus(t *testing.T, s *Server, id string) *traceio.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.jobStatus(id)
		if !ok {
			t.Fatalf("job %s missing from the store", id)
		}
		if traceio.IsTerminal(st.State) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestRecoveryFinishesAcknowledgedJobs is the zero-lost-jobs
// guarantee: a daemon restarted over an fs store re-enqueues every
// non-terminal record — whether the crash caught it queued or running
// — and finishes it, while terminal records stay pollable as-is.
func TestRecoveryFinishesAcknowledgedJobs(t *testing.T) {
	lab, bundle := fixture(t)
	dir := t.TempDir()

	queuedReq := strategyReq(t, smallSearch(31))
	runningReq := strategyReq(t, smallSearch(32))
	if _, err := queuedReq.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := runningReq.Resolve(); err != nil {
		t.Fatal(err)
	}
	ids := seedStore(t, dir, []*jobstore.Record{
		{State: traceio.JobQueued, Workload: "resnet50", Request: queuedReq},
		{State: traceio.JobRunning, Workload: "resnet50", Request: runningReq},
		{State: traceio.JobDone, Workload: "resnet50", Cached: true,
			Result: &traceio.StrategyResponse{Workload: "resnet50"}},
		// A record whose request can no longer resolve: it must land in
		// failed, not sit queued forever.
		{State: traceio.JobQueued, Workload: "ghost",
			Request: &traceio.StrategyRequest{Workload: "ghost"}},
	})

	store, err := jobstore.OpenFS(dir, 64, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store.Pending()); got != 3 {
		t.Fatalf("recovered %d pending jobs, want 3 (queued, running, unresolvable)", got)
	}
	s, err := New(Config{
		Workers: 2, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	for _, id := range ids[:2] {
		st := waitStatus(t, s, id)
		if st.State != traceio.JobDone {
			t.Errorf("recovered job %s finished %q (%s), want done", id, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Strategy) == 0 {
			t.Errorf("recovered job %s carries no strategy", id)
		}
	}
	// The terminal record is untouched and still pollable.
	if st, ok := s.jobStatus(ids[2]); !ok || st.State != traceio.JobDone || !st.Cached {
		t.Errorf("terminal record after restart: %+v (ok=%v)", st, ok)
	}
	// The unresolvable record failed with a recovery explanation.
	ghost := waitStatus(t, s, ids[3])
	if ghost.State != traceio.JobFailed || !strings.Contains(ghost.Error, "not recoverable") {
		t.Errorf("unresolvable record: state %q error %q", ghost.State, ghost.Error)
	}
}

// TestRecoveryResultsSurviveSecondRestart closes the loop: results
// computed by the recovery pass are themselves persisted, so a second
// restart serves them from disk without re-running anything.
func TestRecoveryResultsSurviveSecondRestart(t *testing.T) {
	lab, bundle := fixture(t)
	dir := t.TempDir()
	req := strategyReq(t, smallSearch(33))
	if _, err := req.Resolve(); err != nil {
		t.Fatal(err)
	}
	ids := seedStore(t, dir, []*jobstore.Record{
		{State: traceio.JobQueued, Workload: "resnet50", Request: req},
	})

	store, err := jobstore.OpenFS(dir, 64, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Workers: 1, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := waitStatus(t, s, ids[0])
	if first.State != traceio.JobDone {
		t.Fatalf("recovered job finished %q (%s)", first.State, first.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	store2, err := jobstore.OpenFS(dir, 64, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store2.Pending()); got != 0 {
		t.Fatalf("second restart found %d pending jobs, want 0", got)
	}
	s2, err := New(Config{
		Workers: 1, Lab: lab,
		Bundles: map[string]*traceio.ModelBundle{"resnet50": bundle},
		Store:   store2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	})
	st, ok := s2.jobStatus(ids[0])
	if !ok || st.State != traceio.JobDone || st.Result == nil {
		t.Fatalf("result lost across second restart: %+v (ok=%v)", st, ok)
	}
	if !json.Valid(st.Result.Strategy) || len(st.Result.Strategy) == 0 {
		t.Error("persisted strategy payload is not valid JSON")
	}
}
