package server

import (
	"bytes"
	"encoding/json"

	"npudvfs/internal/core"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/traceio"
)

// buildResponse packages a completed search: the strategy in its wire
// form plus model-predicted deltas against the fixed-maximum baseline,
// computed with the same evaluator the GA scored individuals on — so
// the reported numbers are exactly what the search optimized, with no
// extra simulation runs on the serving path.
func buildResponse(workloadName string, spec traceio.SearchSpec, ms *experiments.Models,
	lab *experiments.Lab, cfg core.Config, strat *core.Strategy,
	stages []preprocess.Stage, gaRes *ga.Result) (*traceio.StrategyResponse, error) {

	var pretty bytes.Buffer
	if err := traceio.WriteStrategy(&pretty, strat); err != nil {
		return nil, err
	}
	// Store the strategy compacted: the HTTP layer re-indents embedded
	// RawMessages when encoding responses, so compact bytes are the
	// stable canonical form the determinism contract is stated over.
	var buf bytes.Buffer
	if err := json.Compact(&buf, pretty.Bytes()); err != nil {
		return nil, err
	}

	ev, err := core.NewEvaluator(ms.Input(lab.Chip), cfg, stages)
	if err != nil {
		return nil, err
	}
	baselineInd := make([]int, ev.Genes())
	for i := range baselineInd {
		baselineInd[i] = ev.BaselineIndex()
	}
	basePred, err := ev.Predict(baselineInd)
	if err != nil {
		return nil, err
	}
	bestPred, err := ev.Predict(gaRes.Best)
	if err != nil {
		return nil, err
	}

	return &traceio.StrategyResponse{
		Workload:    workloadName,
		Fingerprint: traceio.Fingerprint(ms.Workload.Trace),
		Strategy:    json.RawMessage(buf.Bytes()),
		Search:      spec,
		Stages:      len(stages),
		Switches:    strat.Switches(),
		Evaluations: gaRes.Evaluations,
		BestScore:   gaRes.BestScore,
		Predicted: traceio.PredictedDeltas{
			BaselineTimeMicros: basePred.TimeMicros,
			TimeMicros:         bestPred.TimeMicros,
			BaselineSoCWatts:   basePred.SoCWatts,
			SoCWatts:           bestPred.SoCWatts,
			BaselineCoreWatts:  basePred.CoreWatts,
			CoreWatts:          bestPred.CoreWatts,
			PerfLossPct:        100 * (float64(bestPred.TimeMicros)/float64(basePred.TimeMicros) - 1),
			SoCSavingPct:       100 * (1 - float64(bestPred.SoCWatts)/float64(basePred.SoCWatts)),
			CoreSavingPct:      100 * (1 - float64(bestPred.CoreWatts)/float64(basePred.CoreWatts)),
		},
	}, nil
}
