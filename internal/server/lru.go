package server

import (
	"container/list"
	"sync"

	"npudvfs/internal/traceio"
)

// strategyCache is a fixed-capacity LRU over completed strategies,
// keyed by traceio.CacheKey (trace fingerprint + canonical search
// config). Entries are immutable once inserted: the stored
// StrategyResponse is shared between the cache and every job that hit
// it, so callers must not mutate it.
type strategyCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val *traceio.StrategyResponse
}

func newStrategyCache(capacity int) *strategyCache {
	if capacity < 1 {
		capacity = 1
	}
	return &strategyCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *strategyCache) Get(key string) (*traceio.StrategyResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *strategyCache) Put(key string, val *traceio.StrategyResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *strategyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
