//go:build race

package server

// raceEnabled reports whether this test binary was built with the race
// detector. The heavy determinism case skips under -race (its claim is
// numerical, covered by the regular suite); the concurrency tests run
// under -race unconditionally — that is their point.
const raceEnabled = true
