// Package thermal models chip temperature under load as a first-order
// (RC) system. The equilibrium behaviour matches Eq. 15 of the paper:
// the AICore temperature under a sustained load is linear in SoC power,
//
//	T_eq = T_ambient + k * P_soc
//
// and the transient approach to equilibrium is exponential with a
// package time constant, which reproduces the gradual power/temperature
// decay after a load completes that Sect. 5.4.2 exploits to measure γ.
package thermal

import (
	"math"

	"npudvfs/internal/units"
)

// Params holds the physical constants of the thermal model.
type Params struct {
	// AmbientC is T_0 of Eq. 15: the die temperature at zero power
	// (tracks the inlet/ambient temperature).
	AmbientC units.Celsius
	// KCPerWatt is k of Eq. 15: equilibrium °C per watt of SoC power.
	KCPerWatt units.CelsiusPerWatt
	// TauMicros is the package thermal time constant.
	TauMicros units.Micros
}

// Default returns the constants used by the reproduction experiments:
// 35 °C ambient, 0.12 °C/W (≈65 °C at a 250 W SoC), 8 s time constant.
func Default() Params {
	return Params{AmbientC: 35, KCPerWatt: 0.12, TauMicros: 8e6}
}

// State is an evolving die temperature. The zero value is invalid;
// create with NewState.
type State struct {
	Params
	tempC units.Celsius
}

// NewState returns a State at thermal equilibrium with zero power.
func NewState(p Params) *State {
	return &State{Params: p, tempC: p.AmbientC}
}

// TempC returns the current die temperature.
func (s *State) TempC() units.Celsius { return s.tempC }

// DeltaT returns the current temperature rise over ambient, the ΔT of
// Eq. 10.
func (s *State) DeltaT() units.Celsius { return s.tempC - s.AmbientC }

// Equilibrium returns the steady-state temperature for a SoC power, per
// Eq. 15.
func (s *State) Equilibrium(psoc units.Watt) units.Celsius {
	return s.AmbientC + s.KCPerWatt.Times(psoc)
}

// Step advances the temperature by dt of operation at the given SoC
// power, relaxing exponentially toward the equilibrium point.
func (s *State) Step(dt units.Micros, psoc units.Watt) {
	if dt <= 0 {
		return
	}
	teq := s.Equilibrium(psoc)
	decay := math.Exp(-float64(dt) / float64(s.TauMicros))
	s.tempC = teq + (s.tempC-teq)*units.Celsius(decay)
}

// SetTemp forces the temperature, used to start experiments from a
// warmed-up state.
func (s *State) SetTemp(t units.Celsius) { s.tempC = t }
