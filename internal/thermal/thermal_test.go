package thermal

import (
	"math"
	"testing"
)

func TestEquilibriumLinearInPower(t *testing.T) {
	s := NewState(Default())
	t200 := s.Equilibrium(200)
	t300 := s.Equilibrium(300)
	t400 := s.Equilibrium(400)
	// Fig. 10: temperature is linear in SoC power.
	if math.Abs(float64((t300-t200)-(t400-t300))) > 1e-12 {
		t.Errorf("equilibrium not linear: %g %g %g", t200, t300, t400)
	}
	if t200 <= Default().AmbientC {
		t.Errorf("equilibrium at 200 W (%g) must exceed ambient", t200)
	}
}

func TestStepApproachesEquilibrium(t *testing.T) {
	p := Default()
	s := NewState(p)
	const power = 250.0
	teq := s.Equilibrium(power)
	// After 5 time constants, within ~0.7% of equilibrium.
	s.Step(5*p.TauMicros, power)
	if math.Abs(float64(s.TempC()-teq)) > 0.01*float64(teq-p.AmbientC) {
		t.Errorf("after 5 tau: T = %g, want ~%g", s.TempC(), teq)
	}
}

func TestStepMonotoneHeatingAndCooling(t *testing.T) {
	p := Default()
	s := NewState(p)
	prev := s.TempC()
	for i := 0; i < 50; i++ {
		s.Step(1e5, 300)
		if s.TempC() < prev-1e-12 {
			t.Fatalf("heating: temperature decreased at step %d", i)
		}
		prev = s.TempC()
	}
	// Now cool at zero power: must decrease monotonically to ambient.
	for i := 0; i < 50; i++ {
		s.Step(1e5, 0)
		if s.TempC() > prev+1e-12 {
			t.Fatalf("cooling: temperature increased at step %d", i)
		}
		prev = s.TempC()
	}
	if s.TempC() < p.AmbientC-1e-9 {
		t.Errorf("cooled below ambient: %g", s.TempC())
	}
}

func TestStepExactExponential(t *testing.T) {
	p := Params{AmbientC: 30, KCPerWatt: 0.1, TauMicros: 1e6}
	s := NewState(p)
	const power = 100.0
	s.Step(1e6, power) // exactly one time constant
	teq := 30 + 0.1*100
	want := teq + (30-teq)*math.Exp(-1)
	if math.Abs(float64(s.TempC())-want) > 1e-9 {
		t.Errorf("T after 1 tau = %g, want %g", s.TempC(), want)
	}
}

func TestStepIndependentOfSubdivision(t *testing.T) {
	p := Default()
	a := NewState(p)
	b := NewState(p)
	a.Step(1e6, 280)
	for i := 0; i < 100; i++ {
		b.Step(1e4, 280)
	}
	if math.Abs(float64(a.TempC()-b.TempC())) > 1e-9 {
		t.Errorf("subdivided stepping diverged: %g vs %g", a.TempC(), b.TempC())
	}
}

func TestZeroOrNegativeDtIsNoop(t *testing.T) {
	s := NewState(Default())
	before := s.TempC()
	s.Step(0, 500)
	s.Step(-10, 500)
	if s.TempC() != before {
		t.Error("Step with dt <= 0 changed temperature")
	}
}

func TestDeltaTAndSetTemp(t *testing.T) {
	s := NewState(Default())
	if s.DeltaT() != 0 {
		t.Errorf("initial DeltaT = %g, want 0", s.DeltaT())
	}
	s.SetTemp(60)
	if s.TempC() != 60 || math.Abs(float64(s.DeltaT()-25)) > 1e-12 {
		t.Errorf("SetTemp: T=%g DeltaT=%g", s.TempC(), s.DeltaT())
	}
}
