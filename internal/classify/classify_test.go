package classify

import (
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/profiler"
	"npudvfs/internal/workload"
)

func record(spec op.Spec, f float64) *profiler.Record {
	chip := npu.Default()
	return &profiler.Record{
		Spec:      &spec,
		DurMicros: chip.Time(&spec, f),
		FreqMHz:   f,
		Ratios:    chip.Ratios(&spec, f),
	}
}

func TestNonComputeClasses(t *testing.T) {
	cases := []struct {
		class op.Class
		want  Bottleneck
	}{
		{op.AICPU, AICPUOp},
		{op.Communication, CommunicationOp},
		{op.Idle, IdleSlot},
	}
	for _, tc := range cases {
		r := Op(&profiler.Record{Spec: &op.Spec{Name: "x", Class: tc.class, FixedTime: 10}})
		if r.Bottleneck != tc.want {
			t.Errorf("%v: got %v, want %v", tc.class, r.Bottleneck, tc.want)
		}
		if r.Sensitive {
			t.Errorf("%v must be frequency-insensitive", tc.class)
		}
	}
}

func TestCoreBoundSensitive(t *testing.T) {
	// Compute-heavy cube op with PingPong: cube ratio near 1.
	spec := op.Spec{
		Name: "MatMul", Class: op.Compute, Scenario: op.PingPongIndep,
		Blocks: 16, LoadBytes: 1024, StoreBytes: 1024, CoreCycles: 1e6,
		CorePipe: op.Cube, L2Hit: 0.9,
	}
	r := Op(record(spec, 1500))
	if r.Bottleneck != CoreBound {
		t.Fatalf("got %v, want core", r.Bottleneck)
	}
	if r.BoundPipe != op.Cube {
		t.Errorf("bound pipe = %v, want cube", r.BoundPipe)
	}
	if !r.Sensitive {
		t.Error("core-bound must be sensitive (Table 1)")
	}
}

func TestUncoreBoundInsensitive(t *testing.T) {
	// Memory-streaming op: MTE2 dominates.
	spec := op.Spec{
		Name: "Gather", Class: op.Compute, Scenario: op.PingPongIndep,
		Blocks: 16, LoadBytes: 8 << 20, StoreBytes: 2048, CoreCycles: 100,
		CorePipe: op.Vector, L2Hit: 0,
	}
	r := Op(record(spec, 1500))
	if r.Bottleneck != UncoreBound {
		t.Fatalf("got %v (pipe %v), want uncore", r.Bottleneck, r.BoundPipe)
	}
	if r.BoundPipe != op.MTE2 {
		t.Errorf("bound pipe = %v, want mte2 (Ld-bound)", r.BoundPipe)
	}
	if r.Sensitive {
		t.Error("Ld-bound must be insensitive (Table 1)")
	}
}

func TestNoPipelineBound(t *testing.T) {
	// Dispatch-dominated tiny op: pre/post dwarfs pipeline work.
	spec := op.Spec{
		Name: "Cast", Class: op.Compute, Scenario: op.PingPongFreeIndep,
		Blocks: 1, LoadBytes: 4096, StoreBytes: 4096, CoreCycles: 10,
		CorePipe: op.Scalar, L2Hit: 0.9, PrePostTime: 50,
	}
	r := Op(record(spec, 1500))
	if r.Bottleneck != NoPipeline {
		t.Fatalf("got %v, want no-pipeline", r.Bottleneck)
	}
	if r.Sensitive {
		t.Error("no-pipeline bound treated as insensitive")
	}
}

func TestLatencyBound(t *testing.T) {
	// PingPong-free with balanced Ld/core/St: every pipe well below
	// the 0.8 threshold but the sum above 1.
	chip := npu.Default()
	spec := op.Spec{
		Name: "GatherV2", Class: op.Compute, Scenario: op.PingPongFreeDep,
		Blocks: 8, LoadBytes: 2 << 20, StoreBytes: 2 << 20,
		CoreCycles: 4000, CorePipe: op.Vector, L2Hit: 0.5,
	}
	rec := record(spec, 1500)
	sum := 0.0
	for _, r := range rec.Ratios {
		sum += r
	}
	if sum < 1 {
		t.Skipf("premise broken: ratios sum %.2f < 1", sum)
	}
	r := Op(rec)
	if r.Bottleneck != Latency {
		t.Fatalf("got %v (ratios %v), want latency", r.Bottleneck, rec.Ratios)
	}
	if !r.Sensitive {
		t.Error("latency-bound must be sensitive (Table 1)")
	}
	_ = chip
}

func TestTraceAndHistogramOnRealWorkload(t *testing.T) {
	chip := npu.Default()
	p := profiler.NewNoiseless(chip)
	m := workload.GPT3()
	prof, err := p.Run(m.Trace, 1800)
	if err != nil {
		t.Fatal(err)
	}
	results := Trace(prof)
	if len(results) != len(prof.Records) {
		t.Fatalf("got %d results, want %d", len(results), len(prof.Records))
	}
	h := Histogram(results)
	// A GPT-3 iteration must exhibit the full taxonomy: core-bound
	// matmuls, uncore-bound vector ops, no-pipeline tiny ops, and the
	// non-compute classes.
	for _, b := range []Bottleneck{CoreBound, UncoreBound, NoPipeline, AICPUOp, CommunicationOp, IdleSlot} {
		if h[b] == 0 {
			t.Errorf("no %v entries classified in GPT-3 trace (histogram %v)", b, h)
		}
	}
	// Sensitive and insensitive populations must both be substantial
	// for DVFS staging to matter.
	sens := 0
	for _, r := range results {
		if r.Sensitive {
			sens++
		}
	}
	frac := float64(sens) / float64(len(results))
	if frac < 0.1 || frac > 0.9 {
		t.Errorf("sensitive fraction = %.2f, want a real mix", frac)
	}
}

func TestBottleneckStrings(t *testing.T) {
	if NoPipeline.String() != "no-pipeline" || CoreBound.String() != "core" {
		t.Error("bottleneck names wrong")
	}
}
