// Package classify implements the operator bottleneck classification
// of Sect. 6.1 (flowchart Fig. 12) and the AICore-frequency
// sensitivity split of Table 1 that drives LFC/HFC staging.
//
// Compute operators are classified from the pipeline-utilization
// ratios reported by the profiler:
//
//   - no-pipeline bound: the ratios sum below 1 — there is free time
//     during execution, typically dispatch-dominated short operators;
//   - latency bound: the maximum ratio is below 0.8 — suboptimal
//     pipeline arrangement (e.g. missing PingPong);
//   - uncore bound: the maximum ratio belongs to an uncore pipeline
//     (MTE2/MTE3, i.e. Ld/St);
//   - core bound: the maximum ratio belongs to a core pipeline (cube,
//     vector, scalar or MTE1).
//
// Core-bound and latency-bound operators are AICore-frequency
// sensitive; Ld/St-bound, AICPU, communication and idle entries are
// insensitive (Table 1). No-pipeline-bound operators spend most of
// their duration on frequency-independent pre/post processing, so
// they are treated as insensitive.
package classify

import (
	"fmt"

	"npudvfs/internal/op"
	"npudvfs/internal/profiler"
)

// Bottleneck is the classified limiting resource of a trace entry.
type Bottleneck uint8

const (
	// NoPipeline marks operators with free time during execution.
	NoPipeline Bottleneck = iota
	// Latency marks operators with suboptimal pipeline arrangement.
	Latency
	// UncoreBound marks Ld/St (MTE2/MTE3) limited operators.
	UncoreBound
	// CoreBound marks cube/vector/scalar/MTE1 limited operators.
	CoreBound
	// AICPUOp, CommunicationOp and IdleSlot mirror the non-compute
	// trace classes, which bypass the ratio analysis.
	AICPUOp
	CommunicationOp
	IdleSlot
)

var bottleneckNames = [...]string{
	"no-pipeline", "latency", "uncore", "core", "aicpu", "communication", "idle",
}

func (b Bottleneck) String() string {
	if int(b) < len(bottleneckNames) {
		return bottleneckNames[b]
	}
	return fmt.Sprintf("Bottleneck(%d)", uint8(b))
}

// LatencyThreshold is the maximum-ratio cutoff below which an operator
// is latency bound (Sect. 6.1).
const LatencyThreshold = 0.8

// Result is the classification of one trace entry.
type Result struct {
	// Bottleneck is the limiting resource.
	Bottleneck Bottleneck
	// BoundPipe is the pipeline with the maximum ratio; only
	// meaningful for UncoreBound and CoreBound results (e.g.
	// cube-bound, Ld-bound).
	BoundPipe op.Pipe
	// Sensitive reports whether the entry's duration responds to
	// AICore frequency per Table 1.
	Sensitive bool
}

// Op classifies a single profiled record.
func Op(rec *profiler.Record) Result {
	switch rec.Spec.Class {
	case op.AICPU:
		return Result{Bottleneck: AICPUOp}
	case op.Communication:
		return Result{Bottleneck: CommunicationOp}
	case op.Idle:
		return Result{Bottleneck: IdleSlot}
	}
	sum := 0.0
	maxRatio := 0.0
	maxPipe := op.Cube
	for p, r := range rec.Ratios {
		sum += r
		if r > maxRatio {
			maxRatio = r
			maxPipe = op.Pipe(p)
		}
	}
	res := Result{BoundPipe: maxPipe}
	switch {
	case sum < 1:
		res.Bottleneck = NoPipeline
	case maxRatio < LatencyThreshold:
		res.Bottleneck = Latency
		res.Sensitive = true
	case !maxPipe.CoreDomain():
		res.Bottleneck = UncoreBound
	default:
		res.Bottleneck = CoreBound
		res.Sensitive = true
	}
	return res
}

// Trace classifies every record of a profile, in order.
func Trace(prof *profiler.Profile) []Result {
	out := make([]Result, len(prof.Records))
	for i := range prof.Records {
		out[i] = Op(&prof.Records[i])
	}
	return out
}

// Histogram counts classifications by bottleneck type.
func Histogram(results []Result) map[Bottleneck]int {
	h := make(map[Bottleneck]int)
	for _, r := range results {
		h[r.Bottleneck]++
	}
	return h
}
