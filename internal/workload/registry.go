package workload

import (
	"fmt"
	"sort"
	"strings"
)

// builders maps canonical lowercase names to model constructors.
var builders = map[string]func() *Model{
	"gpt3":             GPT3,
	"bert":             BERT,
	"resnet50":         ResNet50,
	"resnet152":        ResNet152,
	"vgg19":            VGG19,
	"vit":              ViTBase,
	"deit":             DeiTSmall,
	"shufflenetv2plus": ShuffleNetV2Plus,
	"llama2-inference": Llama2Inference,
	"mixtral-moe":      MixtralMoE,
}

// Names lists the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds a workload by its registry name (case-insensitive).
func ByName(name string) (*Model, error) {
	b, ok := builders[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("workload: unknown model %q (available: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b(), nil
}
